// End-to-end Vero (QD4) walkthrough on a simulated 8-worker cluster:
// horizontal shards -> horizontal-to-vertical transform -> distributed
// training with placement-bitmap broadcasts -> evaluation, with the
// communication ledger printed along the way.
//
//   ./build/examples/distributed_vero

#include <cstdio>

#include "cluster/communicator.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "partition/transform.h"
#include "quadrants/train_distributed.h"

int main() {
  using namespace vero;

  // A high-dimensional sparse workload — Vero's home turf.
  SyntheticConfig config;
  config.num_instances = 30000;
  config.num_features = 4000;
  config.num_classes = 2;
  config.density = 0.02;
  config.seed = 23;
  const Dataset dataset = GenerateSynthetic(config);
  const auto [train, valid] = dataset.SplitTail(0.2);
  std::printf("workload: N=%u, D=%u, %.2f%% dense\n", train.num_instances(),
              train.num_features(), 100.0 * train.density());

  const int workers = 8;
  Cluster cluster(workers, NetworkModel::Lab1Gbps());

  // Peek at the transform on its own: shard rows, repartition vertically.
  {
    std::vector<Dataset> shards;
    for (int r = 0; r < workers; ++r) {
      const auto [begin, end] =
          HorizontalRange(train.num_instances(), workers, r);
      shards.emplace_back(train.matrix().SliceRows(begin, end),
                          std::vector<float>(train.labels().begin() + begin,
                                             train.labels().begin() + end),
                          train.task(), train.num_classes());
    }
    std::vector<VerticalShard> verticals(workers);
    cluster.Run([&](WorkerContext& ctx) {
      verticals[ctx.rank()] =
          HorizontalToVertical(ctx, shards[ctx.rank()], TransformOptions{});
    });
    std::printf("\nhorizontal-to-vertical transform (blockified encoding):\n");
    for (int r = 0; r < workers; ++r) {
      const VerticalShard& v = verticals[r];
      std::printf(
          "  worker %d: %5zu features, %8llu entries, %zu blocks, "
          "%6.2f MB sent\n",
          r, v.owned_features.size(),
          static_cast<unsigned long long>(v.data.num_entries()),
          v.data.num_blocks(), v.stats.repartition_bytes_sent / 1e6);
    }
  }

  // Full training run.
  DistTrainOptions options;
  options.params.num_trees = 20;
  options.params.num_layers = 7;
  const DistResult result = TrainDistributed(cluster, train, Quadrant::kQD4,
                                             options, &valid);

  std::printf("\ntraining (%u trees, %u layers, W=%d):\n",
              options.params.num_trees, options.params.num_layers, workers);
  std::printf("  modeled time: %.2fs (comp %.2fs + comm %.2fs), setup %.2fs\n",
              result.TrainSeconds(), result.TotalCompSeconds(),
              result.TotalCommSeconds(), result.setup_seconds);
  std::printf("  bytes moved during training: %.2f MB\n",
              result.train_bytes_sent / 1e6);
  std::printf("  peak histogram memory per worker: %.2f MB\n",
              result.peak_histogram_bytes / 1e6);
  std::printf("  valid AUC: %.4f\n",
              EvaluateModel(result.model, valid).value);

  std::printf("\nconvergence (every 5th round):\n");
  for (size_t i = 4; i < result.curve.size(); i += 5) {
    std::printf("  tree %2u: t=%6.2fs  train-loss %.4f  valid-auc %.4f\n",
                result.curve[i].tree_index + 1,
                result.curve[i].elapsed_seconds, result.curve[i].train_loss,
                result.curve[i].valid_metric);
  }
  return 0;
}
