// Command-line scorer: load a model saved by vero_train_cli (or SaveModel)
// and write predictions for a LIBSVM file.
//
// Usage:
//   vero_predict_cli --model model.bin --data test.libsvm [--out preds.txt]
//                    [--margins] [--task binary|multiclass|regression]
//
// Output: one line per instance — P(y=1) for binary, C probabilities for
// multi-class, the margin for regression (or raw margins with --margins).

#include <cstdio>
#include <fstream>
#include <string>

#include "core/metrics.h"
#include "core/model_io.h"
#include "data/libsvm_io.h"

namespace {

using namespace vero;

struct CliOptions {
  std::string model_path;
  std::string data_path;
  std::string out_path;
  std::string task = "binary";
  bool margins = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: vero_predict_cli --model <model.bin> --data "
               "<file.libsvm> [--out preds.txt] [--margins]\n"
               "       [--task binary|multiclass|regression]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--model" && (v = value())) {
      opt->model_path = v;
    } else if (arg == "--data" && (v = value())) {
      opt->data_path = v;
    } else if (arg == "--out" && (v = value())) {
      opt->out_path = v;
    } else if (arg == "--task" && (v = value())) {
      opt->task = v;
    } else if (arg == "--margins") {
      opt->margins = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !opt->model_path.empty() && !opt->data_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    PrintUsage();
    return 2;
  }

  auto model_or = LoadModel(opt.model_path);
  if (!model_or.ok()) {
    std::fprintf(stderr, "failed to load model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const GbdtModel& model = model_or.value();

  LibsvmReadOptions read;
  read.task = model.task();
  if (model.task() == Task::kMultiClass) read.num_classes = model.num_classes();
  auto data_or = ReadLibsvmFile(opt.data_path, read);
  if (!data_or.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  std::ofstream out_file;
  FILE* out = stdout;
  if (!opt.out_path.empty()) {
    out = std::fopen(opt.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.out_path.c_str());
      return 1;
    }
  }

  const uint32_t dims = model.margin_dims();
  std::vector<double> buffer(dims);
  const CsrMatrix& m = data.matrix();
  for (InstanceId i = 0; i < data.num_instances(); ++i) {
    if (opt.margins || model.task() == Task::kRegression) {
      model.PredictMargins(m.RowFeatures(i), m.RowValues(i), buffer.data());
    } else {
      model.PredictProba(m.RowFeatures(i), m.RowValues(i), buffer.data());
    }
    for (uint32_t k = 0; k < dims; ++k) {
      std::fprintf(out, k + 1 == dims ? "%.6g\n" : "%.6g ", buffer[k]);
    }
  }
  if (out != stdout) std::fclose(out);

  // When labels are present, report the headline metric as a convenience.
  const MetricValue metric = EvaluateModel(model, data);
  std::fprintf(stderr, "%s on %u instances: %.5f\n", metric.name.c_str(),
               data.num_instances(), metric.value);
  return 0;
}
