// Command-line scorer: load a model saved by vero_train_cli (or SaveModel)
// and write predictions for a LIBSVM file.
//
// Usage:
//   vero_predict_cli --model model.bin --data test.libsvm [--out preds.txt]
//                    [--margins] [--task binary|multiclass|regression]
//                    [--batch 8192] [--threads N]
//
// Output: one line per instance — P(y=1) for binary, C probabilities for
// multi-class, the margin for regression (or raw margins with --margins).
//
// Scoring goes through the flat-forest batched predictor (src/serve/),
// which is bit-identical to per-row traversal at any --batch / --threads
// (see docs/serving.md).

#include <cstdio>
#include <fstream>
#include <string>

#include "core/metrics.h"
#include "core/model_io.h"
#include "data/libsvm_io.h"
#include "serve/batch_predictor.h"
#include "serve/flat_forest.h"

namespace {

using namespace vero;

struct CliOptions {
  std::string model_path;
  std::string data_path;
  std::string out_path;
  std::string task = "binary";
  bool margins = false;
  uint32_t batch = 8192;
  uint32_t threads = 1;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: vero_predict_cli --model <model.bin> --data "
               "<file.libsvm> [--out preds.txt] [--margins]\n"
               "       [--task binary|multiclass|regression] "
               "[--batch 8192] [--threads N]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--model" && (v = value())) {
      opt->model_path = v;
    } else if (arg == "--data" && (v = value())) {
      opt->data_path = v;
    } else if (arg == "--out" && (v = value())) {
      opt->out_path = v;
    } else if (arg == "--task" && (v = value())) {
      opt->task = v;
    } else if (arg == "--margins") {
      opt->margins = true;
    } else if (arg == "--batch" && (v = value())) {
      opt->batch = std::atoi(v);
    } else if (arg == "--threads" && (v = value())) {
      opt->threads = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !opt->model_path.empty() && !opt->data_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    PrintUsage();
    return 2;
  }

  auto model_or = LoadModel(opt.model_path);
  if (!model_or.ok()) {
    std::fprintf(stderr, "failed to load model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const GbdtModel& model = model_or.value();

  LibsvmReadOptions read;
  read.task = model.task();
  if (model.task() == Task::kMultiClass) read.num_classes = model.num_classes();
  auto data_or = ReadLibsvmFile(opt.data_path, read);
  if (!data_or.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  std::ofstream out_file;
  FILE* out = stdout;
  if (!opt.out_path.empty()) {
    out = std::fopen(opt.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.out_path.c_str());
      return 1;
    }
  }

  auto forest_or = serve::FlatForest::FromModel(model);
  if (!forest_or.ok()) {
    std::fprintf(stderr, "model rejected by serving compiler: %s\n",
                 forest_or.status().ToString().c_str());
    return 1;
  }
  serve::ServeOptions serve_options;
  serve_options.num_threads = std::max(1u, opt.threads);
  if (!serve_options.Validate().ok()) {
    std::fprintf(stderr, "bad serving options (--threads in [1,256])\n");
    return 2;
  }
  const serve::BatchPredictor predictor(&forest_or.value(), serve_options);

  const uint32_t dims = model.margin_dims();
  const uint32_t batch = std::max(1u, opt.batch);
  std::vector<double> buffer(static_cast<size_t>(batch) * dims);
  const CsrMatrix& m = data.matrix();
  const bool raw = opt.margins || model.task() == Task::kRegression;
  for (InstanceId b = 0; b < data.num_instances(); b += batch) {
    const InstanceId e = std::min<InstanceId>(b + batch,
                                              data.num_instances());
    if (raw) {
      predictor.PredictCsrMargins(m, b, e, buffer.data());
    } else {
      predictor.PredictCsrProba(m, b, e, buffer.data());
    }
    for (InstanceId i = b; i < e; ++i) {
      const double* row = buffer.data() + static_cast<size_t>(i - b) * dims;
      for (uint32_t k = 0; k < dims; ++k) {
        std::fprintf(out, k + 1 == dims ? "%.6g\n" : "%.6g ", row[k]);
      }
    }
  }
  if (out != stdout) std::fclose(out);

  // When labels are present, report the headline metric as a convenience.
  const MetricValue metric = EvaluateModel(model, data);
  std::fprintf(stderr, "%s on %u instances: %.5f\n", metric.name.c_str(),
               data.num_instances(), metric.value);
  return 0;
}
