// Command-line trainer: train a GBDT from a LIBSVM file (or a built-in
// synthetic profile), evaluate, and save the model — the "downstream user"
// entry point.
//
// Usage:
//   vero_train_cli --data <file.libsvm> [--task binary|multiclass|regression]
//                  [--valid-fraction 0.2] [--trees 100] [--layers 8]
//                  [--bins 20] [--learning-rate 0.1] [--leaf-wise]
//                  [--max-leaves N] [--row-subsample F] [--col-subsample F]
//                  [--early-stopping R] [--workers W] [--quadrant qd1..qd4]
//                  [--compression off|sparse|sparse_delta|quantized]
//                  [--model out.bin] [--importance]
//   vero_train_cli --profile RCV1 ...   (synthetic stand-in instead of file)
//
// Serving mode (no training): score a LIBSVM file with a saved model
// through the flat-forest batched predictor (src/serve/):
//   vero_train_cli --predict --model model.bin --data test.libsvm
//                  [--out preds.txt] [--margins] [--batch 8192] [--threads N]

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/communicator.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"
#include "serve/batch_predictor.h"
#include "serve/flat_forest.h"

namespace {

using namespace vero;

struct CliOptions {
  std::string data_path;
  std::string profile;
  std::string task = "binary";
  std::string model_path;
  std::string out_path;
  std::string quadrant;  // empty = single-process reference trainer
  double valid_fraction = 0.2;
  int workers = 4;
  bool importance = false;
  bool predict = false;  // Serving mode: score --data with --model.
  bool margins = false;
  uint32_t batch = 8192;
  uint32_t serve_threads = 1;
  GbdtParams params;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: vero_train_cli (--data <file.libsvm> | --profile <name>)\n"
      "  [--task binary|multiclass|regression] [--valid-fraction F]\n"
      "  [--trees T] [--layers L] [--bins q] [--learning-rate eta]\n"
      "  [--lambda L2] [--gamma G] [--leaf-wise] [--max-leaves N]\n"
      "  [--row-subsample F] [--col-subsample F] [--early-stopping R]\n"
      "  [--quadrant qd1|qd2|qd3|qd4] [--workers W]\n"
      "  [--compression off|sparse|sparse_delta|quantized]\n"
      "  [--model out.bin] [--importance]\n"
      "profiles: SUSY Higgs Criteo Epsilon RCV1 Synthesis RCV1-multi\n"
      "          Synthesis-multi Gender Age Taste\n"
      "serving: vero_train_cli --predict --model model.bin --data f.libsvm\n"
      "  [--out preds.txt] [--margins] [--batch 8192] [--threads N]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--data" && (v = need_value(i))) {
      opt->data_path = v;
    } else if (arg == "--profile" && (v = need_value(i))) {
      opt->profile = v;
    } else if (arg == "--task" && (v = need_value(i))) {
      opt->task = v;
    } else if (arg == "--valid-fraction" && (v = need_value(i))) {
      opt->valid_fraction = std::atof(v);
    } else if (arg == "--trees" && (v = need_value(i))) {
      opt->params.num_trees = std::atoi(v);
    } else if (arg == "--layers" && (v = need_value(i))) {
      opt->params.num_layers = std::atoi(v);
    } else if (arg == "--bins" && (v = need_value(i))) {
      opt->params.num_candidate_splits = std::atoi(v);
    } else if (arg == "--learning-rate" && (v = need_value(i))) {
      opt->params.learning_rate = std::atof(v);
    } else if (arg == "--lambda" && (v = need_value(i))) {
      opt->params.reg_lambda = std::atof(v);
    } else if (arg == "--gamma" && (v = need_value(i))) {
      opt->params.reg_gamma = std::atof(v);
    } else if (arg == "--leaf-wise") {
      opt->params.growth = GrowthPolicy::kLeafWise;
    } else if (arg == "--max-leaves" && (v = need_value(i))) {
      opt->params.max_leaves = std::atoi(v);
    } else if (arg == "--row-subsample" && (v = need_value(i))) {
      opt->params.row_subsample = std::atof(v);
    } else if (arg == "--col-subsample" && (v = need_value(i))) {
      opt->params.column_subsample = std::atof(v);
    } else if (arg == "--early-stopping" && (v = need_value(i))) {
      opt->params.early_stopping_rounds = std::atoi(v);
    } else if (arg == "--compression" && (v = need_value(i))) {
      const std::string mode = v;
      if (mode == "off") {
        opt->params.compression = HistogramCompression::kOff;
      } else if (mode == "sparse") {
        opt->params.compression = HistogramCompression::kSparse;
      } else if (mode == "sparse_delta") {
        opt->params.compression = HistogramCompression::kSparseDelta;
      } else if (mode == "quantized") {
        opt->params.compression = HistogramCompression::kQuantized;
      } else {
        std::fprintf(stderr, "unknown --compression mode: %s\n", v);
        return false;
      }
    } else if (arg == "--quadrant" && (v = need_value(i))) {
      opt->quadrant = v;
    } else if (arg == "--workers" && (v = need_value(i))) {
      opt->workers = std::atoi(v);
    } else if (arg == "--model" && (v = need_value(i))) {
      opt->model_path = v;
    } else if (arg == "--out" && (v = need_value(i))) {
      opt->out_path = v;
    } else if (arg == "--importance") {
      opt->importance = true;
    } else if (arg == "--predict") {
      opt->predict = true;
    } else if (arg == "--margins") {
      opt->margins = true;
    } else if (arg == "--batch" && (v = need_value(i))) {
      opt->batch = std::atoi(v);
    } else if (arg == "--threads" && (v = need_value(i))) {
      opt->serve_threads = std::atoi(v);
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt->predict) {
    if (opt->model_path.empty() || opt->data_path.empty()) {
      std::fprintf(stderr, "--predict requires --model and --data\n");
      return false;
    }
    return true;
  }
  if (opt->data_path.empty() == opt->profile.empty()) {
    std::fprintf(stderr,
                 "exactly one of --data or --profile is required\n");
    return false;
  }
  return true;
}

StatusOr<Dataset> LoadData(const CliOptions& opt) {
  if (!opt.profile.empty()) {
    return GenerateFromProfile(FindProfile(opt.profile), 1.0);
  }
  LibsvmReadOptions read;
  if (opt.task == "multiclass") {
    read.task = Task::kMultiClass;
  } else if (opt.task == "regression") {
    read.task = Task::kRegression;
  } else {
    read.task = Task::kBinary;
  }
  return ReadLibsvmFile(opt.data_path, read);
}

// --predict: compile the saved model into a FlatForest and score the file
// in batches through the cache-tiled predictor (bit-identical to the
// per-row path; see docs/serving.md).
int RunPredict(const CliOptions& opt) {
  auto model_or = LoadModel(opt.model_path);
  if (!model_or.ok()) {
    std::fprintf(stderr, "failed to load model: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const GbdtModel& model = model_or.value();

  LibsvmReadOptions read;
  read.task = model.task();
  if (model.task() == Task::kMultiClass) {
    read.num_classes = model.num_classes();
  }
  auto data_or = ReadLibsvmFile(opt.data_path, read);
  if (!data_or.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  auto forest_or = serve::FlatForest::FromModel(model);
  if (!forest_or.ok()) {
    std::fprintf(stderr, "model rejected by serving compiler: %s\n",
                 forest_or.status().ToString().c_str());
    return 1;
  }
  const serve::FlatForest& forest = forest_or.value();

  serve::ServeOptions serve_options;
  serve_options.num_threads = std::max(1u, opt.serve_threads);
  if (!serve_options.Validate().ok()) {
    std::fprintf(stderr, "bad serving options (--threads in [1,256])\n");
    return 2;
  }
  const serve::BatchPredictor predictor(&forest, serve_options);

  FILE* out = stdout;
  if (!opt.out_path.empty()) {
    out = std::fopen(opt.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.out_path.c_str());
      return 1;
    }
  }

  const uint32_t dims = forest.num_dims();
  const uint32_t batch = std::max(1u, opt.batch);
  const CsrMatrix& m = data.matrix();
  std::vector<double> buffer(static_cast<size_t>(batch) * dims);
  const bool raw = opt.margins || model.task() == Task::kRegression;
  WallTimer timer;
  double score_seconds = 0.0;
  for (InstanceId b = 0; b < data.num_instances(); b += batch) {
    const InstanceId e = std::min<InstanceId>(b + batch,
                                              data.num_instances());
    WallTimer block_timer;
    if (raw) {
      predictor.PredictCsrMargins(m, b, e, buffer.data());
    } else {
      predictor.PredictCsrProba(m, b, e, buffer.data());
    }
    block_timer.Stop();
    score_seconds += block_timer.Seconds();
    for (InstanceId i = b; i < e; ++i) {
      const double* row = buffer.data() + static_cast<size_t>(i - b) * dims;
      for (uint32_t k = 0; k < dims; ++k) {
        std::fprintf(out, k + 1 == dims ? "%.6g\n" : "%.6g ", row[k]);
      }
    }
  }
  timer.Stop();
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr,
               "scored %u rows with %zu trees (%u internal nodes): "
               "%.0f rows/s scoring, %.2fs total (batch=%u threads=%u)\n",
               data.num_instances(), model.num_trees(),
               forest.num_internal_nodes(),
               data.num_instances() / std::max(score_seconds, 1e-9),
               timer.Seconds(), batch, serve_options.num_threads);
  const MetricValue metric = EvaluateModel(model, data);
  std::fprintf(stderr, "%s on %u instances: %.5f\n", metric.name.c_str(),
               data.num_instances(), metric.value);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    PrintUsage();
    return 2;
  }
  if (opt.predict) return RunPredict(opt);
  auto data_or = LoadData(opt);
  if (!data_or.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  std::printf("data: %u instances, %u features, %u classes, task=%s\n",
              data.num_instances(), data.num_features(), data.num_classes(),
              TaskToString(data.task()));

  Dataset train_storage, valid_storage;
  const Dataset* train = &data;
  const Dataset* valid = nullptr;
  if (opt.valid_fraction > 0.0 && opt.valid_fraction < 1.0 &&
      data.num_instances() >= 10) {
    auto split = data.SplitTail(opt.valid_fraction);
    train_storage = std::move(split.first);
    valid_storage = std::move(split.second);
    train = &train_storage;
    valid = &valid_storage;
  }

  GbdtModel model;
  if (opt.quadrant.empty()) {
    Trainer trainer(opt.params);
    auto model_or =
        trainer.Train(*train, valid, [](const IterationStats& it) {
          if ((it.tree_index + 1) % 10 == 0 || it.tree_index == 0) {
            std::printf("  round %3u  train-loss %.5f", it.tree_index + 1,
                        it.train_loss);
            if (it.has_valid_metric) {
              std::printf("  valid %.5f", it.valid_metric);
            }
            std::printf("\n");
          }
        });
    if (!model_or.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   model_or.status().ToString().c_str());
      return 1;
    }
    model = std::move(model_or).value();
    std::printf("trained %zu trees in %.2fs (best round %u)\n",
                model.num_trees(), trainer.report().total_seconds,
                trainer.report().best_iteration + 1);
  } else {
    Quadrant quadrant;
    if (opt.quadrant == "qd1") {
      quadrant = Quadrant::kQD1;
    } else if (opt.quadrant == "qd2") {
      quadrant = Quadrant::kQD2;
    } else if (opt.quadrant == "qd3") {
      quadrant = Quadrant::kQD3;
    } else if (opt.quadrant == "qd4") {
      quadrant = Quadrant::kQD4;
    } else {
      std::fprintf(stderr, "unknown quadrant: %s\n", opt.quadrant.c_str());
      return 2;
    }
    Cluster cluster(opt.workers);
    DistTrainOptions options;
    options.params = opt.params;
    const DistResult result =
        TrainDistributed(cluster, *train, quadrant, options, valid);
    model = result.model;
    std::printf(
        "trained %zu trees on %d simulated workers (%s): modeled %.2fs "
        "(comp %.2fs, comm %.2fs), %.2f MB moved\n",
        model.num_trees(), opt.workers, QuadrantToString(quadrant),
        result.TrainSeconds(), result.TotalCompSeconds(),
        result.TotalCommSeconds(), result.train_bytes_sent / 1e6);
  }

  const MetricValue train_metric = EvaluateModel(model, *train);
  std::printf("train %s: %.5f\n", train_metric.name.c_str(),
              train_metric.value);
  if (valid != nullptr) {
    const MetricValue valid_metric = EvaluateModel(model, *valid);
    std::printf("valid %s: %.5f\n", valid_metric.name.c_str(),
                valid_metric.value);
  }

  if (opt.importance) {
    std::vector<double> gain = model.FeatureImportance(
        data.num_features(), GbdtModel::ImportanceType::kGain);
    std::printf("top features by gain:\n");
    for (int rank = 0; rank < 10; ++rank) {
      uint32_t best = 0;
      double best_gain = -1.0;
      for (uint32_t f = 0; f < gain.size(); ++f) {
        if (gain[f] > best_gain) {
          best_gain = gain[f];
          best = f;
        }
      }
      if (best_gain <= 0) break;
      std::printf("  f%-6u %.4f\n", best, best_gain);
      gain[best] = -1.0;
    }
  }

  if (!opt.model_path.empty()) {
    const Status status = SaveModel(model, opt.model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to save model: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("model saved to %s\n", opt.model_path.c_str());
  }
  return 0;
}
