// Command-line trainer: train a GBDT from a LIBSVM file (or a built-in
// synthetic profile), evaluate, and save the model — the "downstream user"
// entry point.
//
// Usage:
//   vero_train_cli --data <file.libsvm> [--task binary|multiclass|regression]
//                  [--valid-fraction 0.2] [--trees 100] [--layers 8]
//                  [--bins 20] [--learning-rate 0.1] [--leaf-wise]
//                  [--max-leaves N] [--row-subsample F] [--col-subsample F]
//                  [--early-stopping R] [--workers W] [--quadrant qd1..qd4]
//                  [--compression off|sparse|sparse_delta|quantized]
//                  [--model out.bin] [--importance]
//   vero_train_cli --profile RCV1 ...   (synthetic stand-in instead of file)

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/communicator.h"
#include "core/metrics.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"

namespace {

using namespace vero;

struct CliOptions {
  std::string data_path;
  std::string profile;
  std::string task = "binary";
  std::string model_path;
  std::string quadrant;  // empty = single-process reference trainer
  double valid_fraction = 0.2;
  int workers = 4;
  bool importance = false;
  GbdtParams params;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: vero_train_cli (--data <file.libsvm> | --profile <name>)\n"
      "  [--task binary|multiclass|regression] [--valid-fraction F]\n"
      "  [--trees T] [--layers L] [--bins q] [--learning-rate eta]\n"
      "  [--lambda L2] [--gamma G] [--leaf-wise] [--max-leaves N]\n"
      "  [--row-subsample F] [--col-subsample F] [--early-stopping R]\n"
      "  [--quadrant qd1|qd2|qd3|qd4] [--workers W]\n"
      "  [--compression off|sparse|sparse_delta|quantized]\n"
      "  [--model out.bin] [--importance]\n"
      "profiles: SUSY Higgs Criteo Epsilon RCV1 Synthesis RCV1-multi\n"
      "          Synthesis-multi Gender Age Taste\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--data" && (v = need_value(i))) {
      opt->data_path = v;
    } else if (arg == "--profile" && (v = need_value(i))) {
      opt->profile = v;
    } else if (arg == "--task" && (v = need_value(i))) {
      opt->task = v;
    } else if (arg == "--valid-fraction" && (v = need_value(i))) {
      opt->valid_fraction = std::atof(v);
    } else if (arg == "--trees" && (v = need_value(i))) {
      opt->params.num_trees = std::atoi(v);
    } else if (arg == "--layers" && (v = need_value(i))) {
      opt->params.num_layers = std::atoi(v);
    } else if (arg == "--bins" && (v = need_value(i))) {
      opt->params.num_candidate_splits = std::atoi(v);
    } else if (arg == "--learning-rate" && (v = need_value(i))) {
      opt->params.learning_rate = std::atof(v);
    } else if (arg == "--lambda" && (v = need_value(i))) {
      opt->params.reg_lambda = std::atof(v);
    } else if (arg == "--gamma" && (v = need_value(i))) {
      opt->params.reg_gamma = std::atof(v);
    } else if (arg == "--leaf-wise") {
      opt->params.growth = GrowthPolicy::kLeafWise;
    } else if (arg == "--max-leaves" && (v = need_value(i))) {
      opt->params.max_leaves = std::atoi(v);
    } else if (arg == "--row-subsample" && (v = need_value(i))) {
      opt->params.row_subsample = std::atof(v);
    } else if (arg == "--col-subsample" && (v = need_value(i))) {
      opt->params.column_subsample = std::atof(v);
    } else if (arg == "--early-stopping" && (v = need_value(i))) {
      opt->params.early_stopping_rounds = std::atoi(v);
    } else if (arg == "--compression" && (v = need_value(i))) {
      const std::string mode = v;
      if (mode == "off") {
        opt->params.compression = HistogramCompression::kOff;
      } else if (mode == "sparse") {
        opt->params.compression = HistogramCompression::kSparse;
      } else if (mode == "sparse_delta") {
        opt->params.compression = HistogramCompression::kSparseDelta;
      } else if (mode == "quantized") {
        opt->params.compression = HistogramCompression::kQuantized;
      } else {
        std::fprintf(stderr, "unknown --compression mode: %s\n", v);
        return false;
      }
    } else if (arg == "--quadrant" && (v = need_value(i))) {
      opt->quadrant = v;
    } else if (arg == "--workers" && (v = need_value(i))) {
      opt->workers = std::atoi(v);
    } else if (arg == "--model" && (v = need_value(i))) {
      opt->model_path = v;
    } else if (arg == "--importance") {
      opt->importance = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt->data_path.empty() == opt->profile.empty()) {
    std::fprintf(stderr,
                 "exactly one of --data or --profile is required\n");
    return false;
  }
  return true;
}

StatusOr<Dataset> LoadData(const CliOptions& opt) {
  if (!opt.profile.empty()) {
    return GenerateFromProfile(FindProfile(opt.profile), 1.0);
  }
  LibsvmReadOptions read;
  if (opt.task == "multiclass") {
    read.task = Task::kMultiClass;
  } else if (opt.task == "regression") {
    read.task = Task::kRegression;
  } else {
    read.task = Task::kBinary;
  }
  return ReadLibsvmFile(opt.data_path, read);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!ParseArgs(argc, argv, &opt)) {
    PrintUsage();
    return 2;
  }
  auto data_or = LoadData(opt);
  if (!data_or.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  std::printf("data: %u instances, %u features, %u classes, task=%s\n",
              data.num_instances(), data.num_features(), data.num_classes(),
              TaskToString(data.task()));

  Dataset train_storage, valid_storage;
  const Dataset* train = &data;
  const Dataset* valid = nullptr;
  if (opt.valid_fraction > 0.0 && opt.valid_fraction < 1.0 &&
      data.num_instances() >= 10) {
    auto split = data.SplitTail(opt.valid_fraction);
    train_storage = std::move(split.first);
    valid_storage = std::move(split.second);
    train = &train_storage;
    valid = &valid_storage;
  }

  GbdtModel model;
  if (opt.quadrant.empty()) {
    Trainer trainer(opt.params);
    auto model_or =
        trainer.Train(*train, valid, [](const IterationStats& it) {
          if ((it.tree_index + 1) % 10 == 0 || it.tree_index == 0) {
            std::printf("  round %3u  train-loss %.5f", it.tree_index + 1,
                        it.train_loss);
            if (it.has_valid_metric) {
              std::printf("  valid %.5f", it.valid_metric);
            }
            std::printf("\n");
          }
        });
    if (!model_or.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   model_or.status().ToString().c_str());
      return 1;
    }
    model = std::move(model_or).value();
    std::printf("trained %zu trees in %.2fs (best round %u)\n",
                model.num_trees(), trainer.report().total_seconds,
                trainer.report().best_iteration + 1);
  } else {
    Quadrant quadrant;
    if (opt.quadrant == "qd1") {
      quadrant = Quadrant::kQD1;
    } else if (opt.quadrant == "qd2") {
      quadrant = Quadrant::kQD2;
    } else if (opt.quadrant == "qd3") {
      quadrant = Quadrant::kQD3;
    } else if (opt.quadrant == "qd4") {
      quadrant = Quadrant::kQD4;
    } else {
      std::fprintf(stderr, "unknown quadrant: %s\n", opt.quadrant.c_str());
      return 2;
    }
    Cluster cluster(opt.workers);
    DistTrainOptions options;
    options.params = opt.params;
    const DistResult result =
        TrainDistributed(cluster, *train, quadrant, options, valid);
    model = result.model;
    std::printf(
        "trained %zu trees on %d simulated workers (%s): modeled %.2fs "
        "(comp %.2fs, comm %.2fs), %.2f MB moved\n",
        model.num_trees(), opt.workers, QuadrantToString(quadrant),
        result.TrainSeconds(), result.TotalCompSeconds(),
        result.TotalCommSeconds(), result.train_bytes_sent / 1e6);
  }

  const MetricValue train_metric = EvaluateModel(model, *train);
  std::printf("train %s: %.5f\n", train_metric.name.c_str(),
              train_metric.value);
  if (valid != nullptr) {
    const MetricValue valid_metric = EvaluateModel(model, *valid);
    std::printf("valid %s: %.5f\n", valid_metric.name.c_str(),
                valid_metric.value);
  }

  if (opt.importance) {
    std::vector<double> gain = model.FeatureImportance(
        data.num_features(), GbdtModel::ImportanceType::kGain);
    std::printf("top features by gain:\n");
    for (int rank = 0; rank < 10; ++rank) {
      uint32_t best = 0;
      double best_gain = -1.0;
      for (uint32_t f = 0; f < gain.size(); ++f) {
        if (gain[f] > best_gain) {
          best_gain = gain[f];
          best = f;
        }
      }
      if (best_gain <= 0) break;
      std::printf("  f%-6u %.4f\n", best, best_gain);
      gain[best] = -1.0;
    }
  }

  if (!opt.model_path.empty()) {
    const Status status = SaveModel(model, opt.model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "failed to save model: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("model saved to %s\n", opt.model_path.c_str());
  }
  return 0;
}
