// The paper's closing open problem, answered with its own cost model:
// "How to determine an optimal data management strategy given the size of
// dataset along with the application environment is remained unsolved."
// (§6). This example calibrates the advisor on the current host, asks it
// for a recommendation for each of the paper's datasets, and then verifies
// one recommendation empirically on the simulated cluster.
//
//   ./build/examples/policy_advisor

#include <cstdio>

#include "data/synthetic.h"
#include "quadrants/advisor.h"
#include "quadrants/train_distributed.h"

int main() {
  using namespace vero;

  // Calibrate kernel throughputs with short micro-runs.
  EnvironmentSpec env;
  env.num_workers = 8;
  env.network = NetworkModel::Lab1Gbps();
  env.memory_budget_bytes = 24ull << 30;  // The paper's 30 GB nodes, minus
                                          // headroom for data.
  env = QuadrantAdvisor::Calibrate(env);
  std::printf("calibrated: scan %.0fM entries/s, gain %.0fM evals/s\n",
              env.scan_throughput / 1e6, env.gain_throughput / 1e6);
  QuadrantAdvisor advisor(env);

  // Ask for recommendations at the PAPER's full dataset sizes.
  std::printf("\nrecommendations at paper scale (W=8, L=8, q=20):\n");
  std::printf("%-16s %10s %6s %4s | %-26s %12s\n", "dataset", "N", "D", "C",
              "recommended", "est. s/tree");
  for (const char* name :
       {"SUSY", "Higgs", "Criteo", "Epsilon", "RCV1", "Synthesis",
        "RCV1-multi", "Synthesis-multi", "Gender", "Age", "Taste"}) {
    const DatasetProfile& p = FindProfile(name);
    WorkloadSpec w;
    w.num_instances = p.paper_instances;
    w.num_features = p.paper_features;
    w.num_classes = p.num_classes;
    w.density = p.density;  // Stand-in density approximates the real one.
    const auto ranking = advisor.Rank(w);
    std::printf("%-16s %10llu %6llu %4u | %-26s %12.2f\n", name,
                static_cast<unsigned long long>(w.num_instances),
                static_cast<unsigned long long>(w.num_features),
                w.num_classes, QuadrantToString(ranking.front().quadrant),
                ranking.front().total_seconds());
  }

  // Full explanation for the paper's flagship workload (Age).
  {
    const DatasetProfile& age = FindProfile("Age");
    WorkloadSpec w;
    w.num_instances = age.paper_instances;
    w.num_features = age.paper_features;
    w.num_classes = age.num_classes;
    w.density = age.density;
    std::printf("\n%s", advisor.Explain(w).c_str());
  }

  // Empirical check: train a high-dimensional workload under the advisor's
  // top pick and its last pick, and compare.
  std::printf("\nempirical check on a laptop-scale HS workload:\n");
  SyntheticConfig config;
  config.num_instances = 20000;
  config.num_features = 3000;
  config.num_classes = 2;
  config.density = 0.02;
  config.seed = 59;
  const Dataset data = GenerateSynthetic(config);
  WorkloadSpec w;
  w.num_instances = data.num_instances();
  w.num_features = data.num_features();
  w.num_classes = 2;
  w.density = data.density();
  const auto ranking = advisor.Rank(w);
  DistTrainOptions options;
  options.params.num_trees = 5;
  for (const QuadrantEstimate& pick : {ranking.front(), ranking.back()}) {
    Cluster cluster(8);
    const DistResult result =
        TrainDistributed(cluster, data, pick.quadrant, options);
    std::printf("  %-26s predicted %.3fs/tree, measured %.3fs/tree\n",
                QuadrantToString(pick.quadrant), pick.total_seconds(),
                result.TrainSeconds() / options.params.num_trees);
  }
  std::printf("(the prediction is a model, not a stopwatch — the ordering "
              "is what matters)\n");
  return 0;
}
