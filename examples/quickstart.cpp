// Quickstart: train a GBDT on a synthetic binary-classification dataset with
// the single-process reference trainer, evaluate it, and save/reload the
// model.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "core/metrics.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/synthetic.h"

int main() {
  using namespace vero;

  // 1. Make a dataset (20k instances, 50 features, 20% dense) and hold out
  //    20% for validation.
  SyntheticConfig config;
  config.num_instances = 20000;
  config.num_features = 50;
  config.num_classes = 2;
  config.density = 0.2;
  config.seed = 7;
  const Dataset dataset = GenerateSynthetic(config);
  const auto [train, valid] = dataset.SplitTail(0.2);
  std::printf("train: %u instances, %u features, %.1f%% dense\n",
              train.num_instances(), train.num_features(),
              100.0 * train.density());

  // 2. Train 30 trees of 6 layers with q=20 candidate splits.
  GbdtParams params;
  params.num_trees = 30;
  params.num_layers = 6;
  params.num_candidate_splits = 20;
  params.learning_rate = 0.1;

  Trainer trainer(params);
  auto model_or = trainer.Train(train, &valid, [](const IterationStats& it) {
    if ((it.tree_index + 1) % 10 == 0) {
      std::printf("  tree %2u  train-logloss %.4f  valid-auc %.4f\n",
                  it.tree_index + 1, it.train_loss, it.valid_metric);
    }
  });
  if (!model_or.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const GbdtModel& model = model_or.value();

  // 3. Evaluate.
  const MetricValue train_metric = EvaluateModel(model, train);
  const MetricValue valid_metric = EvaluateModel(model, valid);
  std::printf("final: train-%s %.4f, valid-%s %.4f\n",
              train_metric.name.c_str(), train_metric.value,
              valid_metric.name.c_str(), valid_metric.value);
  std::printf("timing: %.2fs total (hist %.2fs, split %.2fs)\n",
              trainer.report().total_seconds,
              trainer.report().histogram_seconds,
              trainer.report().split_find_seconds);

  // 4. Round-trip the model through disk.
  const std::string path = "/tmp/vero_quickstart.model";
  VERO_CHECK_OK(SaveModel(model, path));
  auto loaded = LoadModel(path);
  VERO_CHECK_OK(loaded.status());
  const MetricValue reloaded = EvaluateModel(loaded.value(), valid);
  std::printf("reloaded model valid-%s %.4f\n", reloaded.name.c_str(),
              reloaded.value);
  return 0;
}
