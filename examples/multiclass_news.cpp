// Multi-class scenario modeled on the paper's user-persona workloads (§6):
// many classes, high-dimensional sparse features. Shows why vertical
// partitioning wins when the gradient dimension C multiplies histogram
// size, and demonstrates model save/load plus per-class probabilities.
//
//   ./build/examples/multiclass_news

#include <cstdio>

#include "cluster/communicator.h"
#include "common/logging.h"
#include "core/metrics.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"

int main() {
  using namespace vero;

  // 12-way classification over sparse features (a scaled-down "Taste").
  SyntheticConfig config;
  config.num_instances = 15000;
  config.num_features = 1500;
  config.num_classes = 12;
  config.density = 0.03;
  config.seed = 37;
  const Dataset dataset = GenerateSynthetic(config);
  const auto [train, valid] = dataset.SplitTail(0.2);
  std::printf("workload: N=%u, D=%u, C=%u classes\n", train.num_instances(),
              train.num_features(), train.num_classes());

  DistTrainOptions options;
  options.params.num_trees = 15;
  options.params.num_layers = 6;

  // Horizontal vs vertical under a C-times-larger histogram.
  std::printf("\n%-26s %10s %10s %12s\n", "quadrant", "comp/tree",
              "comm/tree", "hist-mem");
  GbdtModel vero_model;
  for (Quadrant q : {Quadrant::kQD2, Quadrant::kQD4}) {
    Cluster cluster(8);
    const DistResult result =
        TrainDistributed(cluster, train, q, options, &valid);
    const TreeCostSummary s = SummarizeTreeCosts(result.tree_costs);
    std::printf("%-26s %9.3fs %9.3fs %9.2f MB\n", QuadrantToString(q),
                s.mean.comp_seconds(), s.mean.comm_seconds,
                result.peak_histogram_bytes / 1e6);
    if (q == Quadrant::kQD4) vero_model = result.model;
  }

  const MetricValue acc = EvaluateModel(vero_model, valid);
  std::printf("\nVero valid accuracy: %.4f (uniform guessing: %.4f)\n",
              acc.value, 1.0 / train.num_classes());

  // Per-class probabilities for one held-out user.
  const CsrMatrix& vm = valid.matrix();
  std::vector<double> proba(train.num_classes());
  vero_model.PredictProba(vm.RowFeatures(0), vm.RowValues(0), proba.data());
  std::printf("first validation instance (true class %d):\n",
              static_cast<int>(valid.labels()[0]));
  for (uint32_t k = 0; k < train.num_classes(); ++k) {
    std::printf("  class %2u: %.3f %s\n", k, proba[k],
                proba[k] > 0.2 ? "<--" : "");
  }

  // Persist and reload.
  const std::string path = "/tmp/vero_multiclass.model";
  VERO_CHECK_OK(SaveModel(vero_model, path));
  auto reloaded = LoadModel(path);
  VERO_CHECK_OK(reloaded.status());
  std::printf("reloaded model accuracy: %.4f\n",
              EvaluateModel(reloaded.value(), valid).value);
  return 0;
}
