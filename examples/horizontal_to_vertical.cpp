// Deep dive into the horizontal-to-vertical transformation (§4.2.1):
// runs the five-step pipeline under all three wire encodings, prints the
// per-step cost ledger and compression ratios, and shows the
// load-balancing effect of greedy column grouping vs round-robin.
//
//   ./build/examples/horizontal_to_vertical

#include <cstdio>
#include <vector>

#include "cluster/communicator.h"
#include "data/synthetic.h"
#include "partition/transform.h"

namespace {

using namespace vero;

std::vector<Dataset> ShardRows(const Dataset& data, int w) {
  std::vector<Dataset> shards;
  for (int r = 0; r < w; ++r) {
    const auto [begin, end] = HorizontalRange(data.num_instances(), w, r);
    shards.emplace_back(data.matrix().SliceRows(begin, end),
                        std::vector<float>(data.labels().begin() + begin,
                                           data.labels().begin() + end),
                        data.task(), data.num_classes());
  }
  return shards;
}

}  // namespace

int main() {
  // Skewed sparse dataset: some features are far denser than others, which
  // is what makes load-balanced column grouping matter.
  SyntheticConfig config;
  config.num_instances = 20000;
  config.num_features = 2000;
  config.num_classes = 2;
  config.density = 0.03;
  config.seed = 41;
  const Dataset data = GenerateSynthetic(config);
  const int workers = 6;
  const auto shards = ShardRows(data, workers);
  std::printf("dataset: N=%u, D=%u, nnz=%llu; %d workers\n",
              data.num_instances(), data.num_features(),
              static_cast<unsigned long long>(data.num_nonzeros()), workers);

  // --- Encoding comparison (Table 5's ablation) ---
  std::printf("\nwire encodings for the column-group repartition:\n");
  std::printf("%-14s %14s %14s %14s\n", "encoding", "bytes-sent",
              "encode+decode", "bytes/entry");
  for (TransformEncoding e :
       {TransformEncoding::kNaive, TransformEncoding::kCompressed,
        TransformEncoding::kBlockified}) {
    Cluster cluster(workers);
    TransformOptions options;
    options.encoding = e;
    uint64_t bytes = 0;
    double cpu = 0.0;
    std::vector<VerticalShard> verticals(workers);
    cluster.Run([&](WorkerContext& ctx) {
      verticals[ctx.rank()] =
          HorizontalToVertical(ctx, shards[ctx.rank()], options);
    });
    for (const auto& v : verticals) {
      bytes += v.stats.repartition_bytes_sent;
      cpu = std::max(cpu, v.stats.encode_seconds + v.stats.decode_seconds);
    }
    std::printf("%-14s %14s %13.3fs %14.2f\n", TransformEncodingToString(e),
                std::to_string(bytes / 1024) .append(" KB").c_str(), cpu,
                static_cast<double>(bytes) / data.num_nonzeros());
  }

  // --- Grouping strategies and worker balance ---
  std::printf("\ncolumn grouping strategies (entries per worker):\n");
  for (auto strategy :
       {ColumnGroupingStrategy::kGreedyBalance,
        ColumnGroupingStrategy::kRoundRobin, ColumnGroupingStrategy::kRange}) {
    Cluster cluster(workers);
    TransformOptions options;
    options.grouping = strategy;
    std::vector<uint64_t> entries(workers, 0);
    cluster.Run([&](WorkerContext& ctx) {
      entries[ctx.rank()] =
          HorizontalToVertical(ctx, shards[ctx.rank()], options)
              .data.num_entries();
    });
    uint64_t max_e = 0, min_e = ~0ull;
    std::printf("  %-12s:", ColumnGroupingStrategyToString(strategy));
    for (uint64_t e : entries) {
      std::printf(" %8llu", static_cast<unsigned long long>(e));
      max_e = std::max(max_e, e);
      min_e = std::min(min_e, e);
    }
    std::printf("   (max/min = %.2f)\n",
                static_cast<double>(max_e) / static_cast<double>(min_e));
  }

  // --- The per-step ledger for the default pipeline ---
  {
    Cluster cluster(workers);
    std::vector<VerticalShard> verticals(workers);
    cluster.Run([&](WorkerContext& ctx) {
      verticals[ctx.rank()] =
          HorizontalToVertical(ctx, shards[ctx.rank()], TransformOptions{});
    });
    std::printf("\nper-step ledger (worker 0, blockified default):\n");
    const TransformStats& s = verticals[0].stats;
    std::printf("  steps 1-2  sketches + candidate splits : %.4fs (CPU)\n",
                s.sketch_seconds);
    std::printf("  step  3    column grouping + encoding  : %.4fs (CPU)\n",
                s.encode_seconds);
    std::printf("  step  4    repartition decode          : %.4fs (CPU), "
                "%.2f MB sent\n",
                s.decode_seconds, s.repartition_bytes_sent / 1e6);
    std::printf("  step  5    label broadcast             : %.4fs (network)\n",
                s.label_broadcast_sim_seconds);
    std::printf("  total network time                     : %.4fs\n",
                s.sim_comm_seconds);
    std::printf("  blocks after merge                     : %zu\n",
                verticals[0].data.num_blocks());
  }
  return 0;
}
