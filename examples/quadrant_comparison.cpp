// Trains the same workload under all four data-management quadrants on a
// simulated 4-worker cluster and prints the paper-style comparison: per-tree
// computation/communication breakdown, memory, bytes moved, and accuracy.
//
//   ./build/examples/quadrant_comparison

#include <cstdio>

#include "cluster/communicator.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"

int main() {
  using namespace vero;

  SyntheticConfig config;
  config.num_instances = 20000;
  config.num_features = 500;
  config.num_classes = 2;
  config.density = 0.2;
  config.seed = 11;
  const Dataset dataset = GenerateSynthetic(config);
  const auto [train, valid] = dataset.SplitTail(0.2);

  DistTrainOptions options;
  options.params.num_trees = 10;
  options.params.num_layers = 6;
  options.params.num_candidate_splits = 20;

  std::printf("workload: N=%u D=%u C=%u, 4 workers, %u trees x %u layers\n\n",
              train.num_instances(), train.num_features(),
              train.num_classes(), options.params.num_trees,
              options.params.num_layers);
  std::printf("%-28s %10s %10s %12s %12s %8s\n", "quadrant", "comp/tree",
              "comm/tree", "hist-mem", "MB-sent", "auc");

  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    Cluster cluster(4, NetworkModel::Lab1Gbps());
    const DistResult result =
        TrainDistributed(cluster, train, q, options, &valid);
    const TreeCostSummary summary = SummarizeTreeCosts(result.tree_costs);
    const MetricValue metric = EvaluateModel(result.model, valid);
    std::printf("%-28s %9.3fs %9.3fs %9.2f MB %9.2f MB %8.4f\n",
                QuadrantToString(q), summary.mean.comp_seconds(),
                summary.mean.comm_seconds,
                result.peak_histogram_bytes / 1e6,
                result.train_bytes_sent / 1e6, metric.value);
  }
  return 0;
}
