// Table 6 (Appendix B): scalability of Vero — run time per tree and
// speedup on W in {2, 4, 6, 8} for the Synthesis-N10M (instance-heavy) and
// Synthesis-D25K (feature-heavy) subsets.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

void Main() {
  PrintHeader(
      "Table 6: scalability of Vero",
      "Fu et al., VLDB'19, Appendix B, Table 6",
      "run time falls with more machines but sub-linearly; the "
      "instance-heavy subset (D25K) scales worse because node splitting "
      "touches every instance on every worker; paper speedups at W=8: "
      "2.6x (N10M) / 1.6x (D25K)");

  struct Subset {
    const char* name;
    uint32_t n, d;
    double density;
  };
  // Shape stand-ins: N10M = more instances than features matter;
  // D25K = wide, instance-heavy variant.
  const std::vector<Subset> subsets = {
      {"Synthesis-N10M", ScaledN(20000), 25000, 50.0 / 25000},
      {"Synthesis-D25K", ScaledN(60000), 8000, 50.0 / 8000},
  };

  for (const Subset& subset : subsets) {
    const Dataset data =
        MakeWorkload(subset.n, subset.d, 2, subset.density, 4001);
    std::printf("\n--- %s (N=%u, D=%u) ---\n", subset.name, subset.n,
                subset.d);
    std::printf("%-10s %14s %10s\n", "machines", "run time(s)", "speedup");
    double base_time = 0.0;
    for (int w : {2, 4, 6, 8}) {
      const DistResult result =
          RunQuadrant(data, Quadrant::kQD4, w, PaperParams(8));
      const double time = result.TrainSeconds();
      if (w == 2) base_time = time;
      std::printf("%-10d %14.3f %9.1fx\n", w, time, base_time / time);
    }
  }
  std::printf(
      "\nRun time = modeled training time for %u trees (max-worker compute\n"
      "+ modeled communication), matching the paper's protocol of timing\n"
      "the same workload as machines are added.\n",
      BenchTrees());
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
