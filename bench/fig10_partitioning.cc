// Figure 10(a)-(d): partitioning-scheme comparison, QD2 (Horizontal+Row)
// vs QD4 (Vertical+Row/Vero). Per-tree computation/communication breakdown
// under sweeps of instance count, dimensionality, tree depth, and classes.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

void RunPanel(const char* title, const char* sweep_name,
              const std::vector<std::string>& labels,
              const std::vector<Dataset>& datasets, uint32_t num_layers) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-10s %-26s %14s %14s %14s %14s\n", sweep_name, "quadrant",
              "comp/tree(s)", "comp std", "comm/tree(s)", "comm std");
  for (size_t i = 0; i < datasets.size(); ++i) {
    for (Quadrant q : {Quadrant::kQD2, Quadrant::kQD4}) {
      const DistResult result =
          RunQuadrant(datasets[i], q, /*workers=*/8, PaperParams(num_layers));
      const TreeCostSummary s = SummarizeTreeCosts(result.tree_costs);
      std::printf("%-10s %-26s %14.4f %14.4f %14.4f %14.4f\n",
                  labels[i].c_str(), QuadrantToString(q),
                  s.mean.comp_seconds(), s.comp_std, s.mean.comm_seconds,
                  s.comm_std);
    }
  }
}

void Main() {
  PrintHeader(
      "Figure 10(a-d): impact of partitioning scheme (QD2 vs QD4)",
      "Fu et al., VLDB'19, Figure 10(a)-(d), N/D/L/C sweeps, W=8, q=20",
      "(a) low D: QD2 comm negligible, QD4 comm grows with N; "
      "(b) QD2 comm grows linearly with D, QD4 flat; "
      "(c) QD2 comm grows ~2x per extra layer, QD4 linear; "
      "(d) QD2 comm proportional to C, QD4 flat");

  // (a) Impact of instance number. D=100, C=2, L=8. The paper runs
  // N=5M..20M against D=100; the point of the panel is an extreme N:D
  // ratio, so the scaled version keeps N large (sparse rows keep the
  // single-core cost manageable) rather than shrinking it with the rest.
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 1001;
    for (uint32_t base : {200000u, 400000u, 600000u, 800000u}) {
      const uint32_t n = ScaledN(base);
      labels.push_back("N=" + std::to_string(n));
      datasets.push_back(MakeWorkload(n, 100, 2, 0.05, seed++));
    }
    RunPanel("(a) impact of instance number (D=100, C=2, L=8)", "N", labels,
             datasets, 8);
  }

  // (b) Impact of dimensionality. C=2, L=8.
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 1011;
    const uint32_t n = ScaledN(8000);
    for (uint32_t d : {2500u, 5000u, 7500u, 10000u}) {
      labels.push_back("D=" + std::to_string(d));
      // Keep nnz/row fixed (~100) so only histogram size varies with D.
      datasets.push_back(MakeWorkload(n, d, 2, 100.0 / d, seed++));
    }
    RunPanel("(b) impact of dimensionality (C=2, L=8)", "D", labels,
             datasets, 8);
  }

  // (c) Impact of tree depth. Fixed N, D.
  {
    const uint32_t n = ScaledN(8000);
    const Dataset data = MakeWorkload(n, 5000, 2, 100.0 / 5000, 1021);
    std::printf("\n--- (c) impact of tree depth (D=5000, C=2) ---\n");
    std::printf("%-10s %-26s %14s %14s\n", "L", "quadrant", "comp/tree(s)",
                "comm/tree(s)");
    for (uint32_t layers : {8u, 9u, 10u}) {
      for (Quadrant q : {Quadrant::kQD2, Quadrant::kQD4}) {
        const DistResult result =
            RunQuadrant(data, q, 8, PaperParams(layers));
        const TreeCostSummary s = SummarizeTreeCosts(result.tree_costs);
        std::printf("%-10u %-26s %14.4f %14.4f\n", layers,
                    QuadrantToString(q), s.mean.comp_seconds(),
                    s.mean.comm_seconds);
      }
    }
  }

  // (d) Impact of multi-class count. Lower D, as the paper does (QD2 OOMs
  // at D=100K, C=10).
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 1031;
    const uint32_t n = ScaledN(8000);
    for (uint32_t c : {3u, 5u, 10u}) {
      labels.push_back("C=" + std::to_string(c));
      datasets.push_back(MakeWorkload(n, 2500, c, 100.0 / 2500, seed++));
    }
    RunPanel("(d) impact of multi-class (D=2500, L=8)", "C", labels,
             datasets, 8);
  }
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
