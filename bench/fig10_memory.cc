// Figure 10(e)-(f): memory-consumption breakdown (data vs histogram) per
// worker, QD2 (Horizontal+Row) vs QD4 (Vertical+Row/Vero), under
// dimensionality and class-count sweeps.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

void RunPanel(const char* title, const std::vector<std::string>& labels,
              const std::vector<Dataset>& datasets) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-10s %-26s %14s %14s %10s\n", "sweep", "quadrant",
              "data-mem", "hist-mem", "hist-ratio");
  // Peak memory stabilizes within a tree or two; no need for the full
  // per-tree-cost protocol here.
  GbdtParams params = PaperParams(8);
  params.num_trees = 2;
  for (size_t i = 0; i < datasets.size(); ++i) {
    uint64_t qd2_hist = 0;
    for (Quadrant q : {Quadrant::kQD2, Quadrant::kQD4}) {
      const DistResult result =
          RunQuadrant(datasets[i], q, /*workers=*/8, params);
      if (q == Quadrant::kQD2) qd2_hist = result.peak_histogram_bytes;
      const double ratio =
          q == Quadrant::kQD4 && result.peak_histogram_bytes > 0
              ? static_cast<double>(qd2_hist) / result.peak_histogram_bytes
              : 1.0;
      std::printf("%-10s %-26s %14s %14s %9.1fx\n", labels[i].c_str(),
                  QuadrantToString(q),
                  FormatBytes(static_cast<double>(result.data_bytes)).c_str(),
                  FormatBytes(static_cast<double>(result.peak_histogram_bytes))
                      .c_str(),
                  ratio);
    }
  }
}

void Main() {
  PrintHeader(
      "Figure 10(e-f): memory consumption breakdown (QD2 vs QD4)",
      "Fu et al., VLDB'19, Figure 10(e)-(f), W=8, L=8, q=20",
      "data memory similar; QD2 histogram memory ~W x QD4's (6-8x at W=8); "
      "QD2 histogram memory dominates and grows with C in multi-class");

  const uint32_t n = ScaledN(8000);

  // (e) Dimensionality sweep, binary.
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 2001;
    for (uint32_t d : {2500u, 5000u, 7500u, 10000u}) {
      labels.push_back("D=" + std::to_string(d));
      datasets.push_back(MakeWorkload(n, d, 2, 100.0 / d, seed++));
    }
    RunPanel("(e) memory vs dimensionality (C=2)", labels, datasets);
  }

  // (f) Class sweep at moderate D (the paper drops to D=25K for the same
  // reason: horizontal histograms explode with C).
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 2011;
    for (uint32_t c : {3u, 5u, 10u}) {
      labels.push_back("C=" + std::to_string(c));
      datasets.push_back(MakeWorkload(n, 2500, c, 100.0 / 2500, seed++));
    }
    RunPanel("(f) memory vs classes (D=2500)", labels, datasets);
  }
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
