// Serving-throughput sweep: flat-forest batched scoring vs the per-row
// Tree::PredictInto path, over batch size x threads x forest size x C.
//
// Emits a "vero.serve_bench.v1" JSON snapshot (--json <path>) for the perf
// harness (scripts/check_bench_serve.py, bench_smoke.sh). Every cell carries
// an FNV-1a digest of the full margin matrix; the checker asserts all cells
// of one forest — including the per-row baseline — share it, which proves
// thread- and batch-invariance on real measured runs, not just unit inputs.
// See docs/serving.md for how to read the numbers.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "integrity/auditor.h"
#include "serve/batch_predictor.h"
#include "serve/flat_forest.h"

namespace vero {
namespace {

using serve::BatchPredictor;
using serve::FlatForest;
using serve::ServeOptions;

template <typename Fn>
double BestSeconds(const Fn& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    fn();
    timer.Stop();
    best = std::min(best, timer.Seconds());
  }
  return std::max(best, 1e-9);
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

std::string HexDigest(uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

// A full depth-L tree (every slot used) so each routed row costs exactly
// L - 1 node probes: throughput differences between cells then measure the
// memory layout and tiling, not forest-shape luck.
Tree MakeFullTree(Rng& rng, uint32_t max_layers, uint32_t dims,
                  uint32_t num_features) {
  Tree tree(max_layers, dims);
  for (NodeId id = 0; static_cast<uint32_t>(id) < tree.max_nodes(); ++id) {
    if (static_cast<uint32_t>(RightChild(id)) >= tree.max_nodes()) break;
    tree.SetSplit(id, static_cast<FeatureId>(rng.Uniform(num_features)),
                  static_cast<float>(rng.UniformDouble(-1.5, 1.5)),
                  static_cast<BinId>(rng.Uniform(16)), rng.Bernoulli(0.5),
                  1.0);
  }
  for (NodeId id = 0; static_cast<uint32_t>(id) < tree.max_nodes(); ++id) {
    if (tree.node(id).state != TreeNode::State::kLeaf) continue;
    std::vector<float> weights(dims);
    for (float& w : weights) {
      w = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    }
    tree.SetLeaf(id, weights);
  }
  return tree;
}

GbdtModel MakeForest(uint32_t trees, uint32_t depth, uint32_t dims,
                     uint32_t num_features, uint64_t seed) {
  Rng rng(seed);
  GbdtModel model(dims == 1 ? Task::kBinary : Task::kMultiClass,
                  dims == 1 ? 2 : dims, 0.1);
  for (uint32_t t = 0; t < trees; ++t) {
    model.AddTree(MakeFullTree(rng, depth, dims, num_features));
  }
  return model;
}

struct Cell {
  uint32_t batch;
  uint32_t threads;
  double seconds;
  double rows_per_sec;
  double speedup_vs_per_row;
  uint64_t digest;
};

int Run(const std::string& json_path) {
  const uint32_t n = bench::ScaledN(20000);
  const uint32_t d = 50;
  const uint32_t depth = 8;
  const double density = 0.3;

  bench::PrintHeader(
      "serve_sweep: flat-forest batched scoring vs per-row traversal",
      "paper §3.1 (prediction cost anatomy)",
      "batched flat scoring >= 5x per-row PredictInto at batch >= 1024 on "
      "the 8-tree forest; identical digests across every cell of a forest");

  const Dataset data = bench::MakeWorkload(n, d, 2, density, /*seed=*/42);
  const CsrMatrix& rows = data.matrix();

  std::string json = "{\"schema\":\"vero.serve_bench.v1\",\"workload\":{";
  json += "\"rows\":" + std::to_string(n);
  json += ",\"features\":" + std::to_string(d);
  json += ",\"depth\":" + std::to_string(depth);
  json += ",\"density\":";
  AppendJsonNumber(&json, density);
  json += ",\"scale\":";
  AppendJsonNumber(&json, bench::Scale());
  json += ",\"cpus\":" +
          std::to_string(std::max(1u, std::thread::hardware_concurrency()));
  json += "},\"forests\":[";

  bool first_forest = true;
  for (const uint32_t trees : {8u, 64u}) {
    for (const uint32_t dims : {1u, 3u}) {
      const GbdtModel model =
          MakeForest(trees, depth, dims, d, /*seed=*/1000 + trees + dims);
      auto forest_or = FlatForest::FromModel(model);
      VERO_CHECK(forest_or.ok()) << forest_or.status().ToString();
      const FlatForest& forest = forest_or.value();

      std::vector<double> margins(static_cast<size_t>(n) * dims);

      // Baseline: the training-side path — route every row through every
      // tree with Tree::PredictInto, binary-searching the row per node.
      const double per_row_seconds = BestSeconds([&] {
        for (InstanceId i = 0; i < n; ++i) {
          model.PredictMargins(rows.RowFeatures(i), rows.RowValues(i),
                               margins.data() + static_cast<size_t>(i) * dims);
        }
      });
      const uint64_t per_row_digest = AuditDigestDoubles(margins);

      std::printf("forest T=%u C=%u (%u internal, %u leaves):\n", trees, dims,
                  forest.num_internal_nodes(), forest.num_leaves());
      std::printf("  %-22s %10.0f rows/s\n", "per-row PredictInto",
                  n / per_row_seconds);

      std::vector<Cell> cells;
      for (const uint32_t batch : {64u, 1024u, 8192u}) {
        for (const uint32_t threads : {1u, 4u}) {
          ServeOptions options;
          options.num_threads = threads;
          const BatchPredictor predictor(&forest, options);
          const double seconds = BestSeconds([&] {
            for (InstanceId b = 0; b < n; b += batch) {
              const InstanceId e = std::min<InstanceId>(b + batch, n);
              predictor.PredictCsrMargins(
                  rows, b, e, margins.data() + static_cast<size_t>(b) * dims);
            }
          });
          const uint64_t digest = AuditDigestDoubles(margins);
          VERO_CHECK_EQ(digest, per_row_digest)
              << "batched margins diverge from per-row at batch=" << batch
              << " threads=" << threads;
          cells.push_back({batch, threads, seconds, n / seconds,
                           per_row_seconds / seconds, digest});
          std::printf("  batch=%-5u threads=%u %12.0f rows/s  %5.2fx\n",
                      batch, threads, n / seconds, per_row_seconds / seconds);
        }
      }

      if (!first_forest) json += ",";
      first_forest = false;
      json += "{\"trees\":" + std::to_string(trees);
      json += ",\"dims\":" + std::to_string(dims);
      json += ",\"internal_nodes\":" +
              std::to_string(forest.num_internal_nodes());
      json += ",\"leaves\":" + std::to_string(forest.num_leaves());
      json += ",\"per_row\":{\"seconds\":";
      AppendJsonNumber(&json, per_row_seconds);
      json += ",\"rows_per_sec\":";
      AppendJsonNumber(&json, n / per_row_seconds);
      json += ",\"digest\":\"" + HexDigest(per_row_digest) + "\"}";
      json += ",\"cells\":[";
      for (size_t i = 0; i < cells.size(); ++i) {
        const Cell& c = cells[i];
        if (i > 0) json += ",";
        json += "{\"batch\":" + std::to_string(c.batch);
        json += ",\"threads\":" + std::to_string(c.threads);
        json += ",\"seconds\":";
        AppendJsonNumber(&json, c.seconds);
        json += ",\"rows_per_sec\":";
        AppendJsonNumber(&json, c.rows_per_sec);
        json += ",\"speedup_vs_per_row\":";
        AppendJsonNumber(&json, c.speedup_vs_per_row);
        json += ",\"digest\":\"" + HexDigest(c.digest) + "\"}";
      }
      json += "]}";
    }
  }
  json += "]}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  return vero::Run(json_path);
}
