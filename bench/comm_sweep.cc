// Compressed-communication sweep: goodput vs histogram density under the
// CollectiveCompression codec (docs/wire_formats.md). For each dataset
// density x quadrant cell the same workload is trained under all four
// compression modes; because compression=off delegates straight to the
// uncompressed collectives and the lossless modes reconstruct bit-exact
// payloads, every lossless cell trains the identical model — only the bytes
// on the wire (and therefore the modeled network seconds) change.
//
// Reported per run: modeled train/comm seconds, total bytes on the wire,
// the codec's raw-vs-encoded histogram volume (comm.<Op>.raw_bytes /
// comm.<Op>.compressed_bytes), block-shape counters, the model digest, and
// goodput = useful (uncompressed-equivalent) histogram bytes delivered per
// modeled network second — the numerator is mode-independent within a
// cell, so goodput ratios compare transport efficiency, not payload
// accounting.
//
// Run with [--json out.json] [--report out.json]; scripts/check_bench_comm.py
// validates the emitted "vero.comm_bench.v1" file (the check_bench_comm
// ctest runs it at a tiny scale).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/json_writer.h"

namespace vero {
namespace bench {
namespace {

const char* ModeTag(HistogramCompression mode) {
  switch (mode) {
    case HistogramCompression::kOff:
      return "off";
    case HistogramCompression::kSparse:
      return "sparse";
    case HistogramCompression::kSparseDelta:
      return "sparse_delta";
    case HistogramCompression::kQuantized:
      return "quantized";
  }
  return "unknown";
}

const char* QuadrantTag(Quadrant quadrant) {
  return quadrant == Quadrant::kQD1 ? "qd1" : "qd2";
}

uint64_t Counter(const DistResult& result, const std::string& name) {
  return result.report.enabled ? result.report.metrics.CounterValue(name) : 0;
}

// Sums comm.<Op>.raw_bytes / comm.<Op>.compressed_bytes over all ops.
uint64_t SumOpCounters(const DistResult& result, const char* suffix) {
  uint64_t total = 0;
  for (int op = 0; op < kNumCollectiveOps; ++op) {
    const std::string name =
        std::string("comm.") +
        CollectiveOpToString(static_cast<CollectiveOp>(op)) + "." + suffix;
    total += Counter(result, name);
  }
  return total;
}

struct Row {
  std::string label;
  const char* quadrant;
  const char* mode;
  double density = 0.0;
  int workers = 0;
  double train_seconds = 0.0;
  double comm_seconds = 0.0;
  uint64_t bytes_on_wire = 0;
  uint64_t hist_raw_bytes = 0;
  uint64_t hist_wire_bytes = 0;
  uint64_t blocks_dense = 0;
  uint64_t blocks_sparse = 0;
  uint64_t blocks_quantized = 0;
  uint64_t model_digest = 0;
  double goodput = 0.0;  // filled once the cell's raw reference is known
};

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "comm_sweep: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String("vero.comm_bench.v1");
  w.Key("scale");
  w.Double(Scale());
  w.Key("runs");
  w.BeginArray();
  for (const Row& row : rows) {
    w.BeginObject();
    w.Key("label");
    w.String(row.label);
    w.Key("quadrant");
    w.String(row.quadrant);
    w.Key("mode");
    w.String(row.mode);
    w.Key("density");
    w.Double(row.density);
    w.Key("workers");
    w.Int(row.workers);
    w.Key("train_seconds");
    w.Double(row.train_seconds);
    w.Key("comm_seconds");
    w.Double(row.comm_seconds);
    w.Key("bytes_on_wire");
    w.UInt(row.bytes_on_wire);
    w.Key("hist_raw_bytes");
    w.UInt(row.hist_raw_bytes);
    w.Key("hist_wire_bytes");
    w.UInt(row.hist_wire_bytes);
    w.Key("blocks_dense");
    w.UInt(row.blocks_dense);
    w.Key("blocks_sparse");
    w.UInt(row.blocks_sparse);
    w.Key("blocks_quantized");
    w.UInt(row.blocks_quantized);
    w.Key("model_digest");
    w.UInt(row.model_digest);
    w.Key("goodput");
    w.Double(row.goodput);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

void Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  PrintHeader(
      "Comm sweep: compressed histogram exchange (QD1/QD2, W=4)",
      "Fu et al., VLDB'19, SS4.3 communication-cost discussion; sparse / "
      "quantized gradient-histogram compression literature (see "
      "docs/wire_formats.md)",
      "at low density the sparse codecs cut bytes on the wire by the bin "
      "occupancy ratio with bit-identical models; at full density the "
      "dense fallback keeps the overhead (and goodput regression) within "
      "a few percent");

  const double kDensities[] = {0.02, 0.05, 0.1, 0.5, 1.0};
  const Quadrant kQuadrants[] = {Quadrant::kQD1, Quadrant::kQD2};
  const HistogramCompression kModes[] = {
      HistogramCompression::kOff,
      HistogramCompression::kSparse,
      HistogramCompression::kSparseDelta,
      HistogramCompression::kQuantized,
  };

  std::vector<Row> rows;
  std::printf("\n%-26s %9s %9s %12s %12s %8s\n", "cell", "train(s)",
              "comm(s)", "hist_raw", "hist_wire", "ratio");
  for (double density : kDensities) {
    const Dataset train = MakeWorkload(ScaledN(2400), 40, 2, density,
                                       /*seed=*/31);
    for (Quadrant quadrant : kQuadrants) {
      const size_t cell_begin = rows.size();
      for (HistogramCompression mode : kModes) {
        BenchRunSpec spec;
        spec.workers = 4;
        spec.params = PaperParams(6);
        spec.params.num_candidate_splits = 32;
        spec.params.compression = mode;
        spec.force_observe = true;
        char tag[64];
        std::snprintf(tag, sizeof(tag), "cs-d%.2f-%s", density,
                      ModeTag(mode));
        spec.label = tag;
        const DistResult result = RunQuadrantSpec(train, quadrant, spec);
        if (!result.status.ok()) {
          std::printf("%-26s FAILED: %s\n", tag,
                      result.status.ToString().c_str());
          std::exit(1);
        }
        Row row;
        row.label = std::string(QuadrantTag(quadrant)) + "-" + tag;
        row.quadrant = QuadrantTag(quadrant);
        row.mode = ModeTag(mode);
        row.density = density;
        row.workers = spec.workers;
        row.train_seconds = result.TrainSeconds();
        row.comm_seconds = result.TotalCommSeconds();
        row.bytes_on_wire = result.train_bytes_sent;
        row.hist_raw_bytes = SumOpCounters(result, "raw_bytes");
        row.hist_wire_bytes = SumOpCounters(result, "compressed_bytes");
        row.blocks_dense = Counter(result, "codec.blocks_dense");
        row.blocks_sparse = Counter(result, "codec.blocks_sparse");
        row.blocks_quantized = Counter(result, "codec.blocks_quantized");
        row.model_digest = result.report.model_digest;
        rows.push_back(row);
        std::printf("%-26s %9.4f %9.4f %12llu %12llu %7.2fx\n",
                    row.label.c_str(), row.train_seconds, row.comm_seconds,
                    static_cast<unsigned long long>(row.hist_raw_bytes),
                    static_cast<unsigned long long>(row.hist_wire_bytes),
                    row.hist_wire_bytes > 0
                        ? static_cast<double>(row.hist_raw_bytes) /
                              static_cast<double>(row.hist_wire_bytes)
                        : 1.0);
      }
      // Goodput: uncompressed-equivalent histogram bytes delivered per
      // modeled *network* second (the codec's encode/decode CPU shows up in
      // the reported train_seconds, not here). The numerator is the cell's
      // raw histogram volume — identical across modes (same op stream, same
      // logical payloads), and read from the codec runs because the off run
      // records no codec counters by design.
      uint64_t raw_ref = 0;
      for (size_t i = cell_begin; i < rows.size(); ++i) {
        raw_ref = std::max(raw_ref, rows[i].hist_raw_bytes);
      }
      for (size_t i = cell_begin; i < rows.size(); ++i) {
        rows[i].goodput =
            rows[i].comm_seconds > 0.0
                ? static_cast<double>(raw_ref) / rows[i].comm_seconds
                : 0.0;
      }
    }
  }

  if (!json_path.empty()) {
    WriteJson(json_path, rows);
    std::printf("\ncomm sweep report: %s (%zu runs)\n", json_path.c_str(),
                rows.size());
  }
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main(argc, argv);
  return 0;
}
