// Table 5 (Appendix A): efficiency of the horizontal-to-vertical
// transformation — data loading, candidate-split generation, repartition
// under the three encodings (naive / compress / Vero-blockified), and the
// label broadcast.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "partition/transform.h"

namespace vero {
namespace bench {
namespace {

struct Timing {
  double get_splits = 0.0;
  double repartition = 0.0;
  double broadcast_label = 0.0;
};

Timing RunTransform(const Dataset& data, int workers,
                    TransformEncoding encoding) {
  Cluster cluster(workers);
  std::vector<Dataset> shards;
  for (int r = 0; r < workers; ++r) {
    const auto [begin, end] =
        HorizontalRange(data.num_instances(), workers, r);
    shards.emplace_back(data.matrix().SliceRows(begin, end),
                        std::vector<float>(data.labels().begin() + begin,
                                           data.labels().begin() + end),
                        data.task(), data.num_classes());
  }
  TransformOptions options;
  options.encoding = encoding;
  std::vector<TransformStats> stats(workers);
  cluster.Run([&](WorkerContext& ctx) {
    stats[ctx.rank()] =
        HorizontalToVertical(ctx, shards[ctx.rank()], options).stats;
  });
  Timing t;
  for (const TransformStats& s : stats) {
    t.get_splits = std::max(t.get_splits, s.sketch_seconds);
    t.repartition = std::max(
        t.repartition, s.encode_seconds + s.decode_seconds);
    t.broadcast_label =
        std::max(t.broadcast_label, s.label_broadcast_sim_seconds);
  }
  // Repartition wall time = encode+decode compute plus the repartition
  // all-to-all's modeled network time (sketch/split exchange excluded).
  double comm = 0.0;
  for (const TransformStats& s : stats) {
    comm = std::max(comm, s.repartition_sim_seconds);
  }
  t.repartition += comm;
  return t;
}

void Main() {
  PrintHeader(
      "Table 5: time cost of data loading and preprocessing",
      "Fu et al., VLDB'19, Appendix A, Table 5 (RCV1, RCV1-multi, "
      "Synthesis)",
      "repartition: naive > compress > Vero(blockified); compression cuts "
      "~16%+ and blockify a further chunk; label broadcast negligible; "
      "transform overhead is a fraction of load+sketch");

  std::printf("\n%-16s %10s %10s | %12s %12s %12s | %10s\n", "dataset",
              "load(s)", "splits(s)", "repart-naive", "repart-comp",
              "repart-vero", "bcastLbl(s)");
  for (const char* name : {"RCV1", "RCV1-multi", "Synthesis"}) {
    WallTimer load_timer;
    const Dataset data = GenerateFromProfile(FindProfile(name), Scale());
    const double load_seconds = load_timer.Seconds();
    const int workers = 8;

    const Timing naive =
        RunTransform(data, workers, TransformEncoding::kNaive);
    const Timing comp =
        RunTransform(data, workers, TransformEncoding::kCompressed);
    const Timing vero =
        RunTransform(data, workers, TransformEncoding::kBlockified);

    std::printf("%-16s %10.2f %10.3f | %12.3f %12.3f %12.3f | %10.4f\n",
                name, load_seconds, vero.get_splits, naive.repartition,
                comp.repartition, vero.repartition, vero.broadcast_label);
  }
  std::printf(
      "\nload(s) is synthetic-generation time (the stand-in for reading\n"
      "from HDFS); repartition columns = max-worker encode+decode CPU plus\n"
      "modeled network time, mirroring the paper's Naive/Compress/Vero\n"
      "columns.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
