// Measured cost anatomy across the quadrant x worker grid, next to the
// §3.1 closed-form cost model. anatomy_model evaluates the model on the
// paper's worked example; this sweep runs the simulator, stitches every
// run's trace into the exact attribution (obs::AnatomyReport), and reports
// model-vs-measured error per category. Expected paper shape: the comm
// share grows with W for the horizontal quadrants (QD1/QD2), while the
// vertical quadrants (QD3/QD4) keep comm flat and shift the blame to
// compute / partition.
//
// Run with --anatomy <out.json> to also emit the machine-readable
// "vero.anatomy_bench.v1" report validated by scripts/check_anatomy.py.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

struct Cell {
  Quadrant quadrant;
  int workers;
  obs::AnatomyReport anatomy;
};

// Measured per-category share of the attributed training time.
struct Shares {
  double comm = 0.0;
  double gradient = 0.0;
  double hist = 0.0;
  double split_eval = 0.0;
  double partition = 0.0;
  double other = 0.0;
  double total = 0.0;
};

double Category(const obs::AnatomyReport& a, const std::string& name) {
  for (const auto& [key, seconds] : a.categories) {
    if (key == name) return seconds;
  }
  return 0.0;
}

Shares MeasuredShares(const obs::AnatomyReport& a) {
  Shares s;
  s.comm = Category(a, "comm.total");
  s.gradient = Category(a, "compute.gradient");
  s.hist = Category(a, "compute.hist_build");
  s.split_eval = Category(a, "compute.split_eval");
  s.partition = Category(a, "compute.partition");
  s.other = Category(a, "compute.other");
  s.total = a.attributed_train_seconds;
  return s;
}

double Pct(double part, double total) {
  return total > 0.0 ? 100.0 * part / total : 0.0;
}

const char* ShortTag(Quadrant q) {
  switch (q) {
    case Quadrant::kQD1:
      return "QD1";
    case Quadrant::kQD2:
      return "QD2";
    case Quadrant::kQD3:
      return "QD3";
    case Quadrant::kQD4:
      return "QD4";
    case Quadrant::kFeatureParallel:
      return "FP";
  }
  return "?";
}

bool IsHorizontal(Quadrant q) {
  return q == Quadrant::kQD1 || q == Quadrant::kQD2;
}

// Closed-form model inputs (same shape as anatomy_model's §3.1 worked
// example, here filled from the sweep's own workload).
struct AnatomyModelInputs {
  double n = 0, d = 0, q = 0, c = 0, layers = 0, workers = 0;
};

// §3.1.3 closed-form per-rank wire bytes per tree, matched to the
// simulator's collectives: horizontal quadrants ring-all-reduce one
// histogram per built node (subtraction builds 2^(L-2) nodes per tree);
// vertical quadrants broadcast ceil(N/8)-byte placement bitmaps for L-1
// split layers, W-1 receivers each.
double ModelWireBytesPerTree(Quadrant q, const AnatomyModelInputs& in) {
  const double size_hist = 2.0 * in.d * in.q * in.c * 8.0;
  if (IsHorizontal(q)) {
    if (in.workers <= 1) return 0.0;
    const double nodes = std::pow(2.0, in.layers - 2);
    return 2.0 * (in.workers - 1) / in.workers * size_hist * nodes;
  }
  if (in.workers <= 1) return 0.0;
  return std::ceil(in.n / 8.0) * (in.workers - 1) * (in.layers - 1) /
         in.workers;
}

// Model comm seconds per tree: the measured per-rank op count carries the
// latency term (op *count* is structural, not a cost model), the closed
// form above carries the volume term.
double ModelCommSeconds(const Cell& cell, const AnatomyModelInputs& in,
                        const NetworkModel& net, uint32_t trees) {
  double cluster_ops = 0.0;
  for (const auto& op : cell.anatomy.comm_ops) {
    cluster_ops += static_cast<double>(op.ops);
  }
  if (cell.workers <= 1) return 0.0;  // W=1 collectives short-circuit.
  const double ops_per_rank = cluster_ops / cell.workers;
  return ops_per_rank * net.latency_seconds +
         trees * ModelWireBytesPerTree(cell.quadrant, in) /
             net.bandwidth_bytes_per_second;
}

void Main() {
  PrintHeader(
      "Anatomy sweep: measured cost attribution across quadrant x workers",
      "Fu et al., VLDB'19, §3.1 cost anatomy + Fig. 10 decomposition",
      "comm share grows with W for QD1/QD2 (horizontal); QD3/QD4 keep comm "
      "flat and shift blame to compute / partition; every cell's "
      "attribution sums exactly to the run's total");

  const uint32_t n = ScaledN(4000);
  const uint32_t d = 60;
  const uint32_t c = 2;
  const Dataset data = MakeWorkload(n, d, c, 0.25, 7040);
  GbdtParams params = PaperParams(6);
  const NetworkModel net = NetworkModel::Lab1Gbps();

  const Quadrant quadrants[] = {Quadrant::kQD1, Quadrant::kQD2,
                                Quadrant::kQD3, Quadrant::kQD4};
  const int worker_counts[] = {1, 2, 4, 8};

  std::vector<Cell> cells;
  for (Quadrant q : quadrants) {
    for (int w : worker_counts) {
      BenchRunSpec spec;
      spec.workers = w;
      spec.params = params;
      spec.network = net;
      spec.force_trace = true;
      char label[32];
      std::snprintf(label, sizeof(label), "anatomy-%s", ShortTag(q));
      spec.label = label;
      DistResult result = RunQuadrantSpec(data, q, spec);
      if (!result.status.ok()) {
        std::printf("  %s W=%d FAILED: %s\n", QuadrantToString(q), w,
                    result.status.ToString().c_str());
        continue;
      }
      cells.push_back(Cell{q, w, std::move(result.anatomy)});
    }
  }

  std::printf("\nMeasured attribution (share of attributed train time):\n");
  std::printf("%-5s %3s %12s %6s %6s %6s %6s %6s %6s %7s %5s\n", "quad",
              "W", "train(s)", "comm%", "grad%", "hist%", "split%", "part%",
              "other%", "cp/tot", "exact");
  for (const Cell& cell : cells) {
    const Shares s = MeasuredShares(cell.anatomy);
    const double cp_ratio =
        cell.anatomy.total_seconds > 0.0
            ? cell.anatomy.critical_path.length_seconds /
                  cell.anatomy.total_seconds
            : 0.0;
    std::printf("%-5s %3d %12.6f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %7.3f %5s\n",
                ShortTag(cell.quadrant), cell.workers, s.total,
                Pct(s.comm, s.total), Pct(s.gradient, s.total),
                Pct(s.hist, s.total), Pct(s.split_eval, s.total),
                Pct(s.partition, s.total), Pct(s.other, s.total), cp_ratio,
                cell.anatomy.exact ? "yes" : "NO");
  }

  // Model vs measured: the comm category against the §3.1.3 closed forms,
  // and the compute categories against the W=1 cell under the orientation's
  // ideal-scaling law (rows split horizontally; features split vertically).
  std::printf("\nModel vs measured per category (err%% = (model-measured)/measured):\n");
  std::printf("%-5s %3s %11s %11s %7s %11s %11s %7s\n", "quad", "W",
              "comm_model", "comm_meas", "err%", "hist_model", "hist_meas",
              "err%");
  std::map<int, Shares> base;  // quadrant index -> W=1 measured shares
  for (const Cell& cell : cells) {
    if (cell.workers == 1) {
      base[static_cast<int>(cell.quadrant)] = MeasuredShares(cell.anatomy);
    }
  }
  for (const Cell& cell : cells) {
    const Shares s = MeasuredShares(cell.anatomy);
    const auto it = base.find(static_cast<int>(cell.quadrant));
    if (it == base.end()) continue;
    AnatomyModelInputs in;
    in.n = n;
    in.d = d;
    in.q = params.num_candidate_splits;
    in.c = c;
    in.layers = params.num_layers;
    in.workers = cell.workers;
    const double comm_model =
        ModelCommSeconds(cell, in, net, cell.anatomy.trees);
    // Histogram build splits W ways in every quadrant (rows horizontally,
    // features vertically).
    const double hist_model = it->second.hist / cell.workers;
    const double comm_err =
        s.comm > 0.0 ? Pct(comm_model - s.comm, s.comm) : 0.0;
    const double hist_err =
        s.hist > 0.0 ? Pct(hist_model - s.hist, s.hist) : 0.0;
    std::printf("%-5s %3d %11.6f %11.6f %7.1f %11.6f %11.6f %7.1f\n",
                ShortTag(cell.quadrant), cell.workers, comm_model,
                s.comm, comm_err, hist_model, s.hist, hist_err);
  }

  // Qualitative paper checks (printed, not asserted: shapes hold at any
  // scale, exact percentages do not).
  std::printf("\nPaper-shape checks:\n");
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2}) {
    double first = -1.0, last = -1.0;
    for (const Cell& cell : cells) {
      if (cell.quadrant != q) continue;
      const Shares s = MeasuredShares(cell.anatomy);
      const double share = Pct(s.comm, s.total);
      if (cell.workers == 1) first = share;
      last = share;
    }
    std::printf("  %s comm share W=1 -> W=8: %.1f%% -> %.1f%% (%s)\n",
                ShortTag(q), first, last,
                last > first ? "grows, as expected" : "UNEXPECTED");
  }
  int exact_cells = 0;
  for (const Cell& cell : cells) exact_cells += cell.anatomy.exact ? 1 : 0;
  std::printf("  exact attribution: %d/%zu cells\n", exact_cells,
              cells.size());
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
