// Ablations of the design choices DESIGN.md calls out, measured at the
// training level: histogram subtraction on/off, placement encoding
// (bitmap vs 4-byte ids), QD3 index policies, transform wire encodings,
// and column-grouping strategies.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "partition/transform.h"

namespace vero {
namespace bench {
namespace {

void SubtractionAblation() {
  std::printf("\n--- histogram subtraction (QD4, W=8) ---\n");
  const Dataset data = MakeWorkload(ScaledN(30000), 2000, 2, 0.05, 6001);
  std::printf("%-14s %14s %14s\n", "subtraction", "hist/tree(s)",
              "comp/tree(s)");
  for (bool on : {true, false}) {
    GbdtParams params = PaperParams(8);
    params.histogram_subtraction = on;
    Cluster cluster(8);
    DistTrainOptions options;
    options.params = params;
    const DistResult result =
        TrainDistributed(cluster, data, Quadrant::kQD4, options);
    const TreeCostSummary s = SummarizeTreeCosts(result.tree_costs);
    std::printf("%-14s %14.4f %14.4f\n", on ? "on" : "off",
                s.mean.hist_seconds, s.mean.comp_seconds());
  }
  std::printf("expected: subtraction roughly halves histogram time at L=8 "
              "(skips the larger sibling of every pair)\n");
}

void PlacementEncodingAblation() {
  std::printf("\n--- placement encoding: bitmap vs 4-byte ids ---\n");
  const uint32_t n = ScaledN(500000);
  const double bitmap_bytes = std::ceil(n / 8.0);
  const double int_bytes = 4.0 * n;
  const NetworkModel net = NetworkModel::Lab1Gbps();
  const int w = 8;
  const uint32_t layers = 8;
  const double bitmap_tree =
      (layers - 1) * (net.latency_seconds +
                      bitmap_bytes * (w - 1) / net.bandwidth_bytes_per_second);
  const double int_tree =
      (layers - 1) * (net.latency_seconds +
                      int_bytes * (w - 1) / net.bandwidth_bytes_per_second);
  std::printf("N=%u, W=%d, L=%u: bitmap %.1f KB/layer -> %.4fs/tree; "
              "int32 %.1f KB/layer -> %.4fs/tree (%.0fx more)\n",
              n, w, layers, bitmap_bytes / 1e3, bitmap_tree, int_bytes / 1e3,
              int_tree, int_bytes / bitmap_bytes);
  std::printf("expected: the paper's 32x wire reduction (§4.2.2)\n");
}

void Qd3IndexAblation() {
  std::printf("\n--- QD3 index policy (W=8) ---\n");
  const Dataset data = MakeWorkload(ScaledN(40000), 2000, 2, 0.05, 6011);
  std::printf("%-16s %14s %14s\n", "policy", "hist/tree(s)", "comp/tree(s)");
  for (Qd3IndexPolicy policy :
       {Qd3IndexPolicy::kLinearScanOnly, Qd3IndexPolicy::kBinarySearchOnly,
        Qd3IndexPolicy::kMixed}) {
    const DistResult result =
        RunQuadrant(data, Quadrant::kQD3, 8, PaperParams(8),
                    NetworkModel::Lab1Gbps(), nullptr, policy);
    const TreeCostSummary s = SummarizeTreeCosts(result.tree_costs);
    std::printf("%-16s %14.4f %14.4f\n", Qd3IndexPolicyToString(policy),
                s.mean.hist_seconds, s.mean.comp_seconds());
  }
  std::printf("expected: mixed <= linear-scan << binary-search "
              "(Appendix C's index plan)\n");
}

void TransformEncodingAblation() {
  std::printf("\n--- transform wire encoding (W=8) ---\n");
  const Dataset data = MakeWorkload(ScaledN(30000), 4000, 2, 0.02, 6021);
  const int w = 8;
  std::vector<Dataset> shards;
  for (int r = 0; r < w; ++r) {
    const auto [begin, end] = HorizontalRange(data.num_instances(), w, r);
    shards.emplace_back(data.matrix().SliceRows(begin, end),
                        std::vector<float>(data.labels().begin() + begin,
                                           data.labels().begin() + end),
                        data.task(), data.num_classes());
  }
  std::printf("%-14s %14s %16s\n", "encoding", "MB sent", "bytes/entry");
  for (TransformEncoding e :
       {TransformEncoding::kNaive, TransformEncoding::kCompressed,
        TransformEncoding::kBlockified}) {
    Cluster cluster(w);
    TransformOptions options;
    options.encoding = e;
    std::vector<uint64_t> sent(w, 0);
    cluster.Run([&](WorkerContext& ctx) {
      sent[ctx.rank()] = HorizontalToVertical(ctx, shards[ctx.rank()], options)
                             .stats.repartition_bytes_sent;
    });
    uint64_t total = 0;
    for (uint64_t s : sent) total += s;
    std::printf("%-14s %14.2f %16.2f\n", TransformEncodingToString(e),
                total / 1e6, static_cast<double>(total) / data.num_nonzeros());
  }
  std::printf("expected: ~12 B/entry naive -> ~3 B/entry blockified "
              "(the paper's 'up to 4x compression')\n");
}

void GroupingAblation() {
  std::printf("\n--- column grouping strategy under skewed features (W=8) "
              "---\n");
  // A skew-heavy dataset: first features are far denser.
  CsrMatrix matrix;
  const uint32_t n = ScaledN(20000), d = 512;
  matrix.set_num_cols(d);
  Rng rng(6031);
  std::vector<float> labels;
  for (uint32_t i = 0; i < n; ++i) {
    matrix.StartRow();
    for (uint32_t f = 0; f < d; ++f) {
      // Feature f present with probability ~ 1/(1+f/8): Zipf-ish skew.
      if (rng.NextDouble() < 1.0 / (1.0 + f / 8.0)) {
        matrix.PushEntry(f, static_cast<float>(rng.NextDouble()));
      }
    }
    labels.push_back(rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  const Dataset data(std::move(matrix), std::move(labels), Task::kBinary, 2);
  const int w = 8;
  std::vector<Dataset> shards;
  for (int r = 0; r < w; ++r) {
    const auto [begin, end] = HorizontalRange(data.num_instances(), w, r);
    shards.emplace_back(data.matrix().SliceRows(begin, end),
                        std::vector<float>(data.labels().begin() + begin,
                                           data.labels().begin() + end),
                        data.task(), data.num_classes());
  }
  std::printf("%-14s %18s\n", "strategy", "load imbalance");
  for (auto strategy :
       {ColumnGroupingStrategy::kGreedyBalance,
        ColumnGroupingStrategy::kRoundRobin, ColumnGroupingStrategy::kRange}) {
    Cluster cluster(w);
    TransformOptions options;
    options.grouping = strategy;
    std::vector<uint64_t> entries(w, 0);
    cluster.Run([&](WorkerContext& ctx) {
      entries[ctx.rank()] =
          HorizontalToVertical(ctx, shards[ctx.rank()], options)
              .data.num_entries();
    });
    std::printf("%-14s %18.3f\n", ColumnGroupingStrategyToString(strategy),
                LoadImbalance(entries));
  }
  std::printf("expected: greedy ~1.0; range suffers under skew "
              "(the straggler effect of §4.2.3)\n");
}

void Main() {
  PrintHeader("Ablations of Vero's design choices",
              "Fu et al., VLDB'19 §2.1.2 (subtraction), §4.2.2 (bitmap), "
              "§5.2.2 (index plan), Appendix A (encodings), §4.2.3 "
              "(load balance)",
              "each optimization pays for itself; see per-section notes");
  SubtractionAblation();
  PlacementEncodingAblation();
  Qd3IndexAblation();
  TransformEncodingAblation();
  GroupingAblation();
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
