// Failure sweep: straggler mitigation under a deterministic fault grid.
// Replays the exact same injected-delay schedule (phase x rank x delay)
// against the three mitigation modes and compares goodput: strict pays every
// delay on the critical path, bounded staleness drops the straggler's
// histogram contribution for the round, speculation re-serves the block from
// an idle worker at the price of duplicated traffic (wasted_bytes).
//
// Run with --fault-grid [--report out.json] ; scripts/check_bench_faults.py
// validates the emitted "vero.bench_report.v1" file (the check_bench_faults
// ctest runs both at a tiny scale).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

struct GridCell {
  FaultPhase phase;
  int rank;
  double delay;
};

const char* ModeTag(StragglerMitigation mode) {
  switch (mode) {
    case StragglerMitigation::kStrict:
      return "strict";
    case StragglerMitigation::kBoundedStaleness:
      return "bounded";
    case StragglerMitigation::kSpeculative:
      return "speculative";
  }
  return "unknown";
}

// One delay schedule per cell, identical across modes. Train-phase cells hit
// the QD1 layer-histogram all-reduces (odd kTrain occurrences after the
// gradient all-reduce at occurrence 0); setup-phase cells delay the first
// setup collective, which no mitigation mode can route around — that cell
// documents the mitigation's scope, not a win.
FaultPlan MakePlan(const GridCell& cell) {
  FaultPlan plan;
  if (cell.phase == FaultPhase::kSetup) {
    plan.Delay(cell.rank, CollectiveOp::kAny, 0, cell.delay,
               FaultPhase::kSetup);
    return plan;
  }
  for (uint64_t occ : {1, 3, 5, 7, 9}) {
    plan.Delay(cell.rank, CollectiveOp::kAllReduceSum, occ, cell.delay,
               FaultPhase::kTrain);
  }
  return plan;
}

uint64_t Counter(const DistResult& result, const char* name) {
  return result.report.enabled ? result.report.metrics.CounterValue(name) : 0;
}

void Main() {
  PrintHeader(
      "Fault grid: straggler mitigation goodput (QD1, W=4)",
      "Fu et al., VLDB'19, SS5 failure discussion; bounded-staleness / "
      "speculative-execution literature (see docs/straggler_mitigation.md)",
      "with a single slow rank dominating the round, bounded and "
      "speculative runs beat strict wall time; the setup-phase cell shows "
      "no win (mitigation only covers training aggregations)");

  const Dataset train =
      MakeWorkload(ScaledN(4000), 40, 2, 0.3, /*seed=*/29);

  const GridCell kGrid[] = {
      {FaultPhase::kTrain, 1, 0.25},
      {FaultPhase::kTrain, 1, 1.0},
      {FaultPhase::kTrain, 2, 1.0},
      {FaultPhase::kSetup, 1, 1.0},
  };
  const StragglerMitigation kModes[] = {
      StragglerMitigation::kStrict,
      StragglerMitigation::kBoundedStaleness,
      StragglerMitigation::kSpeculative,
  };

  std::printf("\n%-22s %-11s %9s %8s %5s %5s %5s %10s %10s\n", "cell",
              "mode", "train(s)", "speedup", "defer", "force", "spec",
              "wasted", "loss");
  for (const GridCell& cell : kGrid) {
    const FaultPlan plan = MakePlan(cell);
    char cell_tag[48];
    std::snprintf(cell_tag, sizeof(cell_tag), "fg-%s-r%d-d%.2f",
                  cell.phase == FaultPhase::kSetup ? "setup" : "train",
                  cell.rank, cell.delay);
    double strict_seconds = 0.0;
    for (StragglerMitigation mode : kModes) {
      BenchRunSpec spec;
      spec.workers = 4;
      spec.params = PaperParams(6);
      spec.params.straggler_mitigation = mode;
      spec.params.staleness_deadline_seconds = 0.01;
      spec.params.speculation_threshold_seconds = 0.01;
      spec.fault_plan = &plan;
      spec.force_observe = true;
      spec.label = std::string(cell_tag) + "-" + ModeTag(mode);
      const DistResult result =
          RunQuadrantSpec(train, Quadrant::kQD1, spec);
      if (!result.status.ok()) {
        std::printf("%-22s %-11s FAILED: %s\n", cell_tag, ModeTag(mode),
                    result.status.ToString().c_str());
        continue;
      }
      const double seconds = result.TrainSeconds();
      if (mode == StragglerMitigation::kStrict) strict_seconds = seconds;
      const double loss =
          result.curve.empty() ? 0.0 : result.curve.back().train_loss;
      std::printf("%-22s %-11s %9.4f %7.2fx %5llu %5llu %5llu %10s %10.5f\n",
                  cell_tag, ModeTag(mode), seconds,
                  strict_seconds > 0 ? strict_seconds / seconds : 1.0,
                  static_cast<unsigned long long>(
                      Counter(result, "staleness.deferred_contributions")),
                  static_cast<unsigned long long>(
                      Counter(result, "staleness.forced_syncs")),
                  static_cast<unsigned long long>(
                      Counter(result, "speculation.launched")),
                  FormatBytes(static_cast<double>(result.wasted_bytes))
                      .c_str(),
                  loss);
    }
  }
  std::printf(
      "\ndefer/force/spec are staleness.* / speculation.* counter totals;\n"
      "wasted = duplicated speculative traffic (report wasted_bytes).\n"
      "Strict rows keep every counter at zero: the default path is\n"
      "bit-identical to a run without mitigation compiled in.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  // --fault-grid selects the (only) sweep this binary implements; it is
  // accepted explicitly so driver scripts read naturally.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: fault_grid [--fault-grid] [--report out.json] "
                  "[--trace-dir dir] [--threads n]\n");
      return 0;
    }
  }
  vero::bench::Main();
}
