// Failure sweep: straggler mitigation under a deterministic fault grid.
// Replays the exact same injected-delay schedule (phase x rank x delay)
// against the three mitigation modes and compares goodput: strict pays every
// delay on the critical path, bounded staleness drops the straggler's
// histogram contribution for the round, speculation re-serves the block from
// an idle worker at the price of duplicated traffic (wasted_bytes).
//
// A second sweep covers the recovery-cost surface: checkpoint interval x
// crash schedule x elastic-resize decision (none/up/down), reporting trees
// recovered vs retrained, re-shard traffic, and the final cluster width.
//
// Run with --fault-grid [--report out.json] ; scripts/check_bench_faults.py
// validates the emitted "vero.bench_report.v1" file (the check_bench_faults
// ctest runs both at a tiny scale).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

struct GridCell {
  FaultPhase phase;
  int rank;
  double delay;
};

const char* ModeTag(StragglerMitigation mode) {
  switch (mode) {
    case StragglerMitigation::kStrict:
      return "strict";
    case StragglerMitigation::kBoundedStaleness:
      return "bounded";
    case StragglerMitigation::kSpeculative:
      return "speculative";
  }
  return "unknown";
}

// One delay schedule per cell, identical across modes. Train-phase cells hit
// the QD1 layer-histogram all-reduces (odd kTrain occurrences after the
// gradient all-reduce at occurrence 0); setup-phase cells delay the first
// setup collective, which no mitigation mode can route around — that cell
// documents the mitigation's scope, not a win.
FaultPlan MakePlan(const GridCell& cell) {
  FaultPlan plan;
  if (cell.phase == FaultPhase::kSetup) {
    plan.Delay(cell.rank, CollectiveOp::kAny, 0, cell.delay,
               FaultPhase::kSetup);
    return plan;
  }
  for (uint64_t occ : {1, 3, 5, 7, 9}) {
    plan.Delay(cell.rank, CollectiveOp::kAllReduceSum, occ, cell.delay,
               FaultPhase::kTrain);
  }
  return plan;
}

uint64_t Counter(const DistResult& result, const char* name) {
  return result.report.enabled ? result.report.metrics.CounterValue(name) : 0;
}

void Main() {
  PrintHeader(
      "Fault grid: straggler mitigation goodput (QD1, W=4)",
      "Fu et al., VLDB'19, SS5 failure discussion; bounded-staleness / "
      "speculative-execution literature (see docs/straggler_mitigation.md)",
      "with a single slow rank dominating the round, bounded and "
      "speculative runs beat strict wall time; the setup-phase cell shows "
      "no win (mitigation only covers training aggregations)");

  const Dataset train =
      MakeWorkload(ScaledN(4000), 40, 2, 0.3, /*seed=*/29);

  const GridCell kGrid[] = {
      {FaultPhase::kTrain, 1, 0.25},
      {FaultPhase::kTrain, 1, 1.0},
      {FaultPhase::kTrain, 2, 1.0},
      {FaultPhase::kSetup, 1, 1.0},
  };
  const StragglerMitigation kModes[] = {
      StragglerMitigation::kStrict,
      StragglerMitigation::kBoundedStaleness,
      StragglerMitigation::kSpeculative,
  };

  std::printf("\n%-22s %-11s %9s %8s %5s %5s %5s %10s %10s\n", "cell",
              "mode", "train(s)", "speedup", "defer", "force", "spec",
              "wasted", "loss");
  for (const GridCell& cell : kGrid) {
    const FaultPlan plan = MakePlan(cell);
    char cell_tag[48];
    std::snprintf(cell_tag, sizeof(cell_tag), "fg-%s-r%d-d%.2f",
                  cell.phase == FaultPhase::kSetup ? "setup" : "train",
                  cell.rank, cell.delay);
    double strict_seconds = 0.0;
    for (StragglerMitigation mode : kModes) {
      BenchRunSpec spec;
      spec.workers = 4;
      spec.params = PaperParams(6);
      spec.params.straggler_mitigation = mode;
      spec.params.staleness_deadline_seconds = 0.01;
      spec.params.speculation_threshold_seconds = 0.01;
      spec.fault_plan = &plan;
      spec.force_observe = true;
      spec.label = std::string(cell_tag) + "-" + ModeTag(mode);
      const DistResult result =
          RunQuadrantSpec(train, Quadrant::kQD1, spec);
      if (!result.status.ok()) {
        std::printf("%-22s %-11s FAILED: %s\n", cell_tag, ModeTag(mode),
                    result.status.ToString().c_str());
        continue;
      }
      const double seconds = result.TrainSeconds();
      if (mode == StragglerMitigation::kStrict) strict_seconds = seconds;
      const double loss =
          result.curve.empty() ? 0.0 : result.curve.back().train_loss;
      std::printf("%-22s %-11s %9.4f %7.2fx %5llu %5llu %5llu %10s %10.5f\n",
                  cell_tag, ModeTag(mode), seconds,
                  strict_seconds > 0 ? strict_seconds / seconds : 1.0,
                  static_cast<unsigned long long>(
                      Counter(result, "staleness.deferred_contributions")),
                  static_cast<unsigned long long>(
                      Counter(result, "staleness.forced_syncs")),
                  static_cast<unsigned long long>(
                      Counter(result, "speculation.launched")),
                  FormatBytes(static_cast<double>(result.wasted_bytes))
                      .c_str(),
                  loss);
    }
  }
  std::printf(
      "\ndefer/force/spec are staleness.* / speculation.* counter totals;\n"
      "wasted = duplicated speculative traffic (report wasted_bytes).\n"
      "Strict rows keep every counter at zero: the default path is\n"
      "bit-identical to a run without mitigation compiled in.\n");
}

// Total kAny collective calls the crash-target rank issues on a clean run;
// crash occurrences for the recovery grid are placed as fractions of this so
// "early" / "late" track the workload instead of hard-coded indices.
uint64_t ProbeAnyOps(const Dataset& train, const GbdtParams& params,
                     int workers, int rank) {
  Cluster cluster(workers, NetworkModel::Lab1Gbps());
  DistTrainOptions options;
  options.params = params;
  const DistResult result =
      TrainDistributed(cluster, train, Quadrant::kQD1, options);
  if (!result.status.ok()) return 0;
  return cluster.worker_stats(rank).num_ops;
}

void RecoveryGrid() {
  PrintHeader(
      "Recovery grid: checkpoint interval x crash schedule x resize (QD1, "
      "W=4)",
      "Fu et al., VLDB'19, SS5 failure discussion; delta-checkpoint / "
      "elastic-membership design in docs/fault_tolerance.md",
      "denser checkpoints retrain fewer trees after a crash (retrained at "
      "ci=4 >= ci=1); resize cells land on the scheduled width with "
      "re-shard traffic priced through the network model");

  const Dataset train =
      MakeWorkload(ScaledN(3000), 30, 2, 0.3, /*seed=*/31);

  GbdtParams base = PaperParams(5);
  // The resize boundary must sit strictly inside the run.
  base.num_trees = std::max(2u, base.num_trees);
  const uint32_t boundary = std::max(1u, base.num_trees / 2);
  const int kWorkers = 4;
  const int kCrashRank = 2;  // survives the scale-down cells (top rank 3 retires)
  const uint64_t probe_ops = ProbeAnyOps(train, base, kWorkers, kCrashRank);

  struct CrashSpec {
    const char* tag;
    bool enabled;
    uint64_t occurrence;
  };
  const CrashSpec kCrashes[] = {
      {"none", false, 0},
      {"early", true, probe_ops / 4},
      {"late", true, (2 * probe_ops) / 3},
  };
  struct ResizeSpec {
    const char* tag;
    int delta;
  };
  const ResizeSpec kResizes[] = {{"none", 0}, {"up", +1}, {"down", -1}};
  const uint32_t kIntervals[] = {1, 4};

  std::printf("\n%-20s %-6s %5s %5s %7s %6s %10s %9s %9s\n", "cell", "ok",
              "rec", "retr", "resize", "W_end", "reshard", "recov(s)",
              "train(s)");
  for (uint32_t interval : kIntervals) {
    for (const CrashSpec& crash : kCrashes) {
      for (const ResizeSpec& resize : kResizes) {
        FaultPlan plan;
        if (crash.enabled) {
          plan.Crash(kCrashRank, CollectiveOp::kAny, crash.occurrence);
        }
        char cell_tag[64];
        std::snprintf(cell_tag, sizeof(cell_tag), "rg-ci%u-%s-%s", interval,
                      crash.tag, resize.tag);
        BenchRunSpec spec;
        spec.workers = kWorkers;
        spec.params = base;
        spec.params.elastic_resize_after_trees =
            resize.delta != 0 ? boundary : 0;
        spec.params.elastic_resize_delta = resize.delta;
        spec.checkpoint.interval = interval;
        spec.max_recovery_attempts = 3;
        spec.elastic_rejoin = true;
        spec.fault_plan = crash.enabled ? &plan : nullptr;
        spec.force_observe = true;
        spec.label = cell_tag;
        const DistResult result = RunQuadrantSpec(train, Quadrant::kQD1, spec);
        if (!result.status.ok()) {
          std::printf("%-20s FAILED: %s\n", cell_tag,
                      result.status.ToString().c_str());
          continue;
        }
        const obs::RunReport& rep = result.report;
        std::printf("%-20s %-6s %5u %5u %7d %6d %10s %9.4f %9.4f\n", cell_tag,
                    "yes", rep.recovery.trees_recovered,
                    rep.recovery.trees_retrained, rep.elasticity.resizes,
                    rep.recovery.final_world_size,
                    FormatBytes(static_cast<double>(
                                    rep.elasticity.reshard_bytes))
                        .c_str(),
                    rep.recovery.recovery_seconds, result.TrainSeconds());
      }
    }
  }
  std::printf(
      "\nrec/retr = trees restored from the latest checkpoint vs re-built\n"
      "from scratch after a crash; reshard = bytes the re-shard plan moved\n"
      "at the resize rendezvous (priced, not copied). ci=1 keeps a\n"
      "checkpoint per tree, so its retrained count never exceeds ci=4's.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  // --fault-grid selects the sweeps this binary implements; it is accepted
  // explicitly so driver scripts read naturally.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: fault_grid [--fault-grid] [--report out.json] "
                  "[--trace-dir dir] [--threads n]\n");
      return 0;
    }
  }
  vero::bench::Main();
  vero::bench::RecoveryGrid();
}
