// Failure sweep: straggler mitigation under a deterministic fault grid.
// Replays the exact same injected-delay schedule (phase x rank x delay)
// against the three mitigation modes and compares goodput: strict pays every
// delay on the critical path, bounded staleness drops the straggler's
// histogram contribution for the round, speculation re-serves the block from
// an idle worker at the price of duplicated traffic (wasted_bytes).
//
// A second sweep covers the recovery-cost surface: checkpoint interval x
// crash schedule x elastic-resize decision (none/up/down), reporting trees
// recovered vs retrained, re-shard traffic, and the final cluster width.
//
// A third sweep (--integrity-grid) covers the silent-corruption surface:
// audit overhead per quadrant x integrity level on clean runs (byte- and
// model-digest-identical across levels), detection/blame/heal cells for
// kSilentCorrupt / kPoison injections on QD1, and an escape demonstration —
// a corruption that provably changes the final model at integrity=off and
// is caught and healed at integrity=full.
//
// Run with --fault-grid and/or --integrity-grid [--report out.json] ;
// scripts/check_bench_faults.py / scripts/check_bench_integrity.py validate
// the emitted "vero.bench_report.v1" files (the check_bench_faults and
// check_bench_integrity ctests run both at a tiny scale).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/model_io.h"
#include "integrity/auditor.h"

namespace vero {
namespace bench {
namespace {

struct GridCell {
  FaultPhase phase;
  int rank;
  double delay;
};

const char* ModeTag(StragglerMitigation mode) {
  switch (mode) {
    case StragglerMitigation::kStrict:
      return "strict";
    case StragglerMitigation::kBoundedStaleness:
      return "bounded";
    case StragglerMitigation::kSpeculative:
      return "speculative";
  }
  return "unknown";
}

// One delay schedule per cell, identical across modes. Train-phase cells hit
// the QD1 layer-histogram all-reduces (odd kTrain occurrences after the
// gradient all-reduce at occurrence 0); setup-phase cells delay the first
// setup collective, which no mitigation mode can route around — that cell
// documents the mitigation's scope, not a win.
FaultPlan MakePlan(const GridCell& cell) {
  FaultPlan plan;
  if (cell.phase == FaultPhase::kSetup) {
    plan.Delay(cell.rank, CollectiveOp::kAny, 0, cell.delay,
               FaultPhase::kSetup);
    return plan;
  }
  for (uint64_t occ : {1, 3, 5, 7, 9}) {
    plan.Delay(cell.rank, CollectiveOp::kAllReduceSum, occ, cell.delay,
               FaultPhase::kTrain);
  }
  return plan;
}

uint64_t Counter(const DistResult& result, const char* name) {
  return result.report.enabled ? result.report.metrics.CounterValue(name) : 0;
}

void Main() {
  PrintHeader(
      "Fault grid: straggler mitigation goodput (QD1, W=4)",
      "Fu et al., VLDB'19, SS5 failure discussion; bounded-staleness / "
      "speculative-execution literature (see docs/straggler_mitigation.md)",
      "with a single slow rank dominating the round, bounded and "
      "speculative runs beat strict wall time; the setup-phase cell shows "
      "no win (mitigation only covers training aggregations)");

  const Dataset train =
      MakeWorkload(ScaledN(4000), 40, 2, 0.3, /*seed=*/29);

  const GridCell kGrid[] = {
      {FaultPhase::kTrain, 1, 0.25},
      {FaultPhase::kTrain, 1, 1.0},
      {FaultPhase::kTrain, 2, 1.0},
      {FaultPhase::kSetup, 1, 1.0},
  };
  const StragglerMitigation kModes[] = {
      StragglerMitigation::kStrict,
      StragglerMitigation::kBoundedStaleness,
      StragglerMitigation::kSpeculative,
  };

  std::printf("\n%-22s %-11s %9s %8s %5s %5s %5s %10s %10s\n", "cell",
              "mode", "train(s)", "speedup", "defer", "force", "spec",
              "wasted", "loss");
  for (const GridCell& cell : kGrid) {
    const FaultPlan plan = MakePlan(cell);
    char cell_tag[48];
    std::snprintf(cell_tag, sizeof(cell_tag), "fg-%s-r%d-d%.2f",
                  cell.phase == FaultPhase::kSetup ? "setup" : "train",
                  cell.rank, cell.delay);
    double strict_seconds = 0.0;
    for (StragglerMitigation mode : kModes) {
      BenchRunSpec spec;
      spec.workers = 4;
      spec.params = PaperParams(6);
      spec.params.straggler_mitigation = mode;
      spec.params.staleness_deadline_seconds = 0.01;
      spec.params.speculation_threshold_seconds = 0.01;
      spec.fault_plan = &plan;
      spec.force_observe = true;
      spec.label = std::string(cell_tag) + "-" + ModeTag(mode);
      const DistResult result =
          RunQuadrantSpec(train, Quadrant::kQD1, spec);
      if (!result.status.ok()) {
        std::printf("%-22s %-11s FAILED: %s\n", cell_tag, ModeTag(mode),
                    result.status.ToString().c_str());
        continue;
      }
      const double seconds = result.TrainSeconds();
      if (mode == StragglerMitigation::kStrict) strict_seconds = seconds;
      const double loss =
          result.curve.empty() ? 0.0 : result.curve.back().train_loss;
      std::printf("%-22s %-11s %9.4f %7.2fx %5llu %5llu %5llu %10s %10.5f\n",
                  cell_tag, ModeTag(mode), seconds,
                  strict_seconds > 0 ? strict_seconds / seconds : 1.0,
                  static_cast<unsigned long long>(
                      Counter(result, "staleness.deferred_contributions")),
                  static_cast<unsigned long long>(
                      Counter(result, "staleness.forced_syncs")),
                  static_cast<unsigned long long>(
                      Counter(result, "speculation.launched")),
                  FormatBytes(static_cast<double>(result.wasted_bytes))
                      .c_str(),
                  loss);
    }
  }
  std::printf(
      "\ndefer/force/spec are staleness.* / speculation.* counter totals;\n"
      "wasted = duplicated speculative traffic (report wasted_bytes).\n"
      "Strict rows keep every counter at zero: the default path is\n"
      "bit-identical to a run without mitigation compiled in.\n");
}

// Total kAny collective calls the crash-target rank issues on a clean run;
// crash occurrences for the recovery grid are placed as fractions of this so
// "early" / "late" track the workload instead of hard-coded indices.
uint64_t ProbeAnyOps(const Dataset& train, const GbdtParams& params,
                     int workers, int rank) {
  Cluster cluster(workers, NetworkModel::Lab1Gbps());
  DistTrainOptions options;
  options.params = params;
  const DistResult result =
      TrainDistributed(cluster, train, Quadrant::kQD1, options);
  if (!result.status.ok()) return 0;
  return cluster.worker_stats(rank).num_ops;
}

void RecoveryGrid() {
  PrintHeader(
      "Recovery grid: checkpoint interval x crash schedule x resize (QD1, "
      "W=4)",
      "Fu et al., VLDB'19, SS5 failure discussion; delta-checkpoint / "
      "elastic-membership design in docs/fault_tolerance.md",
      "denser checkpoints retrain fewer trees after a crash (retrained at "
      "ci=4 >= ci=1); resize cells land on the scheduled width with "
      "re-shard traffic priced through the network model");

  const Dataset train =
      MakeWorkload(ScaledN(3000), 30, 2, 0.3, /*seed=*/31);

  GbdtParams base = PaperParams(5);
  // The resize boundary must sit strictly inside the run.
  base.num_trees = std::max(2u, base.num_trees);
  const uint32_t boundary = std::max(1u, base.num_trees / 2);
  const int kWorkers = 4;
  const int kCrashRank = 2;  // survives the scale-down cells (top rank 3 retires)
  const uint64_t probe_ops = ProbeAnyOps(train, base, kWorkers, kCrashRank);

  struct CrashSpec {
    const char* tag;
    bool enabled;
    uint64_t occurrence;
  };
  const CrashSpec kCrashes[] = {
      {"none", false, 0},
      {"early", true, probe_ops / 4},
      {"late", true, (2 * probe_ops) / 3},
  };
  struct ResizeSpec {
    const char* tag;
    int delta;
  };
  const ResizeSpec kResizes[] = {{"none", 0}, {"up", +1}, {"down", -1}};
  const uint32_t kIntervals[] = {1, 4};

  std::printf("\n%-20s %-6s %5s %5s %7s %6s %10s %9s %9s\n", "cell", "ok",
              "rec", "retr", "resize", "W_end", "reshard", "recov(s)",
              "train(s)");
  for (uint32_t interval : kIntervals) {
    for (const CrashSpec& crash : kCrashes) {
      for (const ResizeSpec& resize : kResizes) {
        FaultPlan plan;
        if (crash.enabled) {
          plan.Crash(kCrashRank, CollectiveOp::kAny, crash.occurrence);
        }
        char cell_tag[64];
        std::snprintf(cell_tag, sizeof(cell_tag), "rg-ci%u-%s-%s", interval,
                      crash.tag, resize.tag);
        BenchRunSpec spec;
        spec.workers = kWorkers;
        spec.params = base;
        spec.params.elastic_resize_after_trees =
            resize.delta != 0 ? boundary : 0;
        spec.params.elastic_resize_delta = resize.delta;
        spec.checkpoint.interval = interval;
        spec.max_recovery_attempts = 3;
        spec.elastic_rejoin = true;
        spec.fault_plan = crash.enabled ? &plan : nullptr;
        spec.force_observe = true;
        spec.label = cell_tag;
        const DistResult result = RunQuadrantSpec(train, Quadrant::kQD1, spec);
        if (!result.status.ok()) {
          std::printf("%-20s FAILED: %s\n", cell_tag,
                      result.status.ToString().c_str());
          continue;
        }
        const obs::RunReport& rep = result.report;
        std::printf("%-20s %-6s %5u %5u %7d %6d %10s %9.4f %9.4f\n", cell_tag,
                    "yes", rep.recovery.trees_recovered,
                    rep.recovery.trees_retrained, rep.elasticity.resizes,
                    rep.recovery.final_world_size,
                    FormatBytes(static_cast<double>(
                                    rep.elasticity.reshard_bytes))
                        .c_str(),
                    rep.recovery.recovery_seconds, result.TrainSeconds());
      }
    }
  }
  std::printf(
      "\nrec/retr = trees restored from the latest checkpoint vs re-built\n"
      "from scratch after a crash; reshard = bytes the re-shard plan moved\n"
      "at the resize rendezvous (priced, not copied). ci=1 keeps a\n"
      "checkpoint per tree, so its retrained count never exceeds ci=4's.\n");
}

// Trains `quadrant` on a throwaway cluster (no observer, no report entry)
// with `plan` installed, returning the model's canonical text ("" on any
// failure). The integrity grid uses this to scan corruption configurations
// for one that provably changes the model at integrity=off without polluting
// the emitted report with probe runs.
std::string ProbeModelText(const Dataset& train, Quadrant quadrant,
                           const GbdtParams& params, int workers,
                           const FaultPlan* plan) {
  Cluster cluster(workers, NetworkModel::Lab1Gbps());
  if (plan != nullptr) cluster.InstallFaultPlan(*plan);
  DistTrainOptions options;
  options.params = params;
  options.transform.encoding = TransformEncoding::kBlockified;
  const DistResult result =
      TrainDistributed(cluster, train, quadrant, options);
  if (!result.status.ok()) return std::string();
  return ModelToText(result.model);
}

// One corruption configuration the escape scan tries at integrity=off.
// QD2's all-to-all candidate exchange and QD1's gradient buffer are the two
// channels where a single-rank fault stays SPMD-replicated downstream (the
// run completes instead of desynchronizing collectives), so a wrong model
// can actually escape; whether a given bit-flip lands on a winning split
// depends on the workload, hence the scan over ranks and seeds.
struct EscapeConfig {
  Quadrant quadrant;
  bool poison;  // false: SilentCorrupt on the exchange collective
  int rank;
  uint64_t seed;
};

FaultPlan MakeEscapePlan(const EscapeConfig& config) {
  FaultPlan plan;
  if (config.poison) {
    plan.Poison(config.rank, ComputePoint::kGradient, /*occurrence=*/0,
                /*inf=*/false, FaultPhase::kTrain, config.seed);
  } else {
    plan.SilentCorrupt(config.rank, CollectiveOp::kAllToAll,
                       /*occurrence=*/0, config.seed, FaultPhase::kTrain);
  }
  return plan;
}

void IntegrityGrid() {
  PrintHeader(
      "Integrity grid: audit overhead + detection/blame/heal (W=4)",
      "Fu et al., VLDB'19, SS3.1 histogram mass identities; ABFT-style "
      "invariant auditing (see docs/fault_tolerance.md)",
      "clean runs are byte- and model-identical across integrity levels "
      "(the audit rides existing rendezvous); every injected corruption is "
      "detected with the faulty rank blamed and the model healed; one "
      "scanned corruption provably changes the model at integrity=off");

  const Dataset train = MakeWorkload(ScaledN(2500), 24, 2, 0.3, /*seed=*/37);
  const int kWorkers = 4;
  GbdtParams base = PaperParams(6);

  const IntegrityLevel kAllLevels[] = {IntegrityLevel::kOff,
                                       IntegrityLevel::kChecksum,
                                       IntegrityLevel::kFull};

  // --- Part A: clean overhead grid, quadrant x level. The auditor's digest
  // exchange rides the instrumentation rendezvous (zero modeled bytes /
  // seconds), so train(s) and bytes must match integrity=off exactly.
  const Quadrant kQuadrants[] = {Quadrant::kQD1, Quadrant::kQD2,
                                 Quadrant::kQD3, Quadrant::kQD4};
  std::printf("\n%-6s %-9s %9s %12s %7s %5s %18s\n", "quad", "level",
              "train(s)", "bytes", "checks", "viol", "model digest");
  uint64_t clean_qd1_digest = 0;
  for (Quadrant quadrant : kQuadrants) {
    for (IntegrityLevel level : kAllLevels) {
      BenchRunSpec spec;
      spec.workers = kWorkers;
      spec.params = base;
      spec.params.integrity = level;
      spec.force_observe = true;
      spec.label = std::string("ig-clean-") + IntegrityLevelToString(level);
      const DistResult result = RunQuadrantSpec(train, quadrant, spec);
      if (!result.status.ok()) {
        std::printf("%-6s %-9s FAILED: %s\n", QuadrantToString(quadrant),
                    IntegrityLevelToString(level),
                    result.status.ToString().c_str());
        continue;
      }
      if (quadrant == Quadrant::kQD1) {
        clean_qd1_digest = result.report.model_digest;
      }
      std::printf("%-6s %-9s %9.4f %12s %7llu %5llu %018llx\n",
                  QuadrantToString(quadrant), IntegrityLevelToString(level),
                  result.TrainSeconds(),
                  FormatBytes(static_cast<double>(result.train_bytes_sent))
                      .c_str(),
                  static_cast<unsigned long long>(result.integrity.checks),
                  static_cast<unsigned long long>(
                      result.integrity.violations),
                  static_cast<unsigned long long>(
                      result.report.model_digest));
    }
  }

  // --- Part B: QD1 injection cells. Each cell replays one fault against
  // every level it can safely run under. Silent corruption of a replicated
  // all-reduce result is excluded at integrity=off by construction: the
  // corrupted rank's split decisions diverge and the SPMD collectives abort
  // (that crash, not a wrong model, is the failure mode there — the escape
  // demo below uses channels whose decisions stay replicated).
  struct InjectCell {
    const char* tag;
    FaultPlan plan;
    std::vector<IntegrityLevel> levels;
    bool rollback;  // expects escalation: checkpoint per tree + budget
  };
  std::vector<InjectCell> cells;
  {
    InjectCell cell;
    cell.tag = "silent-hist";  // L0 hist all-reduce replica, tree 0
    cell.plan.SilentCorrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/1,
                            /*seed=*/77, FaultPhase::kTrain);
    cell.levels = {IntegrityLevel::kChecksum, IntegrityLevel::kFull};
    cell.rollback = false;
    cells.push_back(cell);
  }
  {
    InjectCell cell;
    cell.tag = "silent-counts";  // L0 child-counts all-reduce, tree 0
    cell.plan.SilentCorrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/2,
                            /*seed=*/81, FaultPhase::kTrain);
    cell.levels = {IntegrityLevel::kChecksum, IntegrityLevel::kFull};
    cell.rollback = true;
    cells.push_back(cell);
  }
  {
    InjectCell cell;
    cell.tag = "poison-grad";  // NaN into rank 1's gradients, tree 0
    cell.plan.Poison(1, ComputePoint::kGradient, /*occurrence=*/0,
                     /*inf=*/false, FaultPhase::kTrain);
    cell.levels = {IntegrityLevel::kOff, IntegrityLevel::kChecksum,
                   IntegrityLevel::kFull};
    cell.rollback = false;
    cells.push_back(cell);
  }
  {
    InjectCell cell;
    cell.tag = "poison-hist";  // +Inf into rank 0's L0 histogram, tree 0
    cell.plan.Poison(0, ComputePoint::kHistogram, /*occurrence=*/0,
                     /*inf=*/true, FaultPhase::kTrain);
    cell.levels = {IntegrityLevel::kOff, IntegrityLevel::kChecksum,
                   IntegrityLevel::kFull};
    cell.rollback = false;
    cells.push_back(cell);
  }

  std::printf("\n%-14s %-9s %-4s %6s %5s %4s %4s %3s %6s %6s %7s\n", "cell",
              "level", "ok", "checks", "viol", "rec", "esc", "rb", "blamed",
              "W_end", "healed");
  for (const InjectCell& cell : cells) {
    for (IntegrityLevel level : cell.levels) {
      BenchRunSpec spec;
      spec.workers = kWorkers;
      spec.params = base;
      spec.params.integrity = level;
      spec.fault_plan = &cell.plan;
      spec.force_observe = true;
      if (cell.rollback) {
        spec.checkpoint.interval = 1;
        spec.max_recovery_attempts = 3;
      }
      spec.label = std::string("ig-") + cell.tag + "-" +
                   IntegrityLevelToString(level);
      const DistResult result = RunQuadrantSpec(train, Quadrant::kQD1, spec);
      if (!result.status.ok()) {
        std::printf("%-14s %-9s FAILED: %s\n", cell.tag,
                    IntegrityLevelToString(level),
                    result.status.ToString().c_str());
        continue;
      }
      std::printf("%-14s %-9s %-4s %6llu %5llu %4llu %4llu %3d %6d %6d "
                  "%7s\n",
                  cell.tag, IntegrityLevelToString(level), "yes",
                  static_cast<unsigned long long>(result.integrity.checks),
                  static_cast<unsigned long long>(
                      result.integrity.violations),
                  static_cast<unsigned long long>(
                      result.integrity.recomputes),
                  static_cast<unsigned long long>(
                      result.integrity.escalations),
                  result.integrity_rollbacks,
                  result.integrity.last_blamed_rank,
                  result.recovery.final_world_size,
                  result.report.model_digest == clean_qd1_digest ? "yes"
                                                                 : "no");
    }
  }

  // --- Part C: the escape demonstration. Scan corruption configs at
  // integrity=off (unreported probe runs) until one provably changes the
  // final model, then emit three reported runs on the winning config: a
  // clean reference, the escaped run at off, and the same fault at full
  // (detected, blamed, healed back to the reference digest).
  std::vector<EscapeConfig> candidates;
  for (int rank = 1; rank < kWorkers; ++rank) {
    for (uint64_t seed : {5ull, 13ull, 17ull, 1ull, 29ull, 37ull}) {
      candidates.push_back({Quadrant::kQD2, /*poison=*/false, rank, seed});
    }
  }
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    candidates.push_back({Quadrant::kQD1, /*poison=*/true, 1, seed});
  }

  std::string clean_text[2];  // [0]=QD2, [1]=QD1 reference model text
  clean_text[0] =
      ProbeModelText(train, Quadrant::kQD2, base, kWorkers, nullptr);
  clean_text[1] =
      ProbeModelText(train, Quadrant::kQD1, base, kWorkers, nullptr);

  const EscapeConfig* winner = nullptr;
  for (const EscapeConfig& candidate : candidates) {
    const std::string& reference =
        clean_text[candidate.quadrant == Quadrant::kQD1 ? 1 : 0];
    if (reference.empty()) continue;
    const FaultPlan plan = MakeEscapePlan(candidate);
    const std::string text = ProbeModelText(train, candidate.quadrant, base,
                                            kWorkers, &plan);
    if (!text.empty() && text != reference) {
      winner = &candidate;
      break;
    }
  }
  if (winner == nullptr) {
    // Emit the last config anyway so the checker fails loudly instead of
    // silently skipping the escape contract.
    std::printf("\nintegrity-grid: WARNING: no scanned corruption changed "
                "the model at integrity=off\n");
    winner = &candidates.back();
  }

  const FaultPlan escape_plan = MakeEscapePlan(*winner);
  std::printf("\nescape config: %s %s rank=%d seed=%llu\n",
              QuadrantToString(winner->quadrant),
              winner->poison ? "poison-grad" : "silent-alltoall",
              winner->rank, static_cast<unsigned long long>(winner->seed));
  struct EscapeRun {
    const char* tag;
    IntegrityLevel level;
    const FaultPlan* plan;
  };
  const EscapeRun kEscapeRuns[] = {
      {"ig-escape-ref", IntegrityLevel::kOff, nullptr},
      {"ig-escape-off", IntegrityLevel::kOff, &escape_plan},
      {"ig-escape-full", IntegrityLevel::kFull, &escape_plan},
  };
  uint64_t ref_digest = 0;
  for (const EscapeRun& run : kEscapeRuns) {
    BenchRunSpec spec;
    spec.workers = kWorkers;
    spec.params = base;
    spec.params.integrity = run.level;
    spec.fault_plan = run.plan;
    spec.force_observe = true;
    spec.label = run.tag;
    const DistResult result =
        RunQuadrantSpec(train, winner->quadrant, spec);
    if (!result.status.ok()) {
      std::printf("%-16s FAILED: %s\n", run.tag,
                  result.status.ToString().c_str());
      continue;
    }
    if (std::strcmp(run.tag, "ig-escape-ref") == 0) {
      ref_digest = result.report.model_digest;
    }
    std::printf("%-16s level=%-8s viol=%llu blamed=%d digest=%018llx %s\n",
                run.tag, IntegrityLevelToString(run.level),
                static_cast<unsigned long long>(result.integrity.violations),
                result.integrity.last_blamed_rank,
                static_cast<unsigned long long>(result.report.model_digest),
                result.report.model_digest == ref_digest ? "(= ref)"
                                                         : "(DIVERGED)");
  }
  std::printf(
      "\nClean rows: identical bytes and model digest across levels — the\n"
      "audit exchanges digests over the existing rendezvous, so integrity\n"
      "costs no modeled traffic (train(s) folds in measured host compute\n"
      "and jitters run to run). Injection rows: viol/rec/esc/rb are the\n"
      "integrity.* counters; healed compares the final model digest to the\n"
      "clean QD1 run. The escape rows show the same corruption escaping at\n"
      "off (digest diverges, zero checks) and healed at full.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  // Sweep selection: --fault-grid runs the straggler + recovery sweeps,
  // --integrity-grid the silent-corruption sweep; no flag runs everything.
  bool fault_grid = false;
  bool integrity_grid = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: fault_grid [--fault-grid] [--integrity-grid] "
                  "[--report out.json] [--trace-dir dir] [--threads n]\n");
      return 0;
    }
    if (std::strcmp(argv[i], "--fault-grid") == 0) fault_grid = true;
    if (std::strcmp(argv[i], "--integrity-grid") == 0) integrity_grid = true;
  }
  const bool all = !fault_grid && !integrity_grid;
  if (all || fault_grid) {
    vero::bench::Main();
    vero::bench::RecoveryGrid();
  }
  if (all || integrity_grid) {
    vero::bench::IntegrityGrid();
  }
}
