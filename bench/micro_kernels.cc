// Micro-benchmarks (google-benchmark) for the kernels the paper's analysis
// is built on: histogram construction under each store/index combination,
// histogram subtraction, bitmap encoding vs 4-byte ids, quantile sketch
// throughput, two-phase index lookups, and the collectives.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "cluster/communicator.h"
#include "common/bitmap.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/binned.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/node_indexer.h"
#include "data/synthetic.h"
#include "partition/column_group.h"
#include "sketch/quantile_summary.h"

namespace vero {
namespace {

Dataset BenchData(uint32_t n, uint32_t d, double density) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = density;
  config.seed = 7001;
  return GenerateSynthetic(config);
}

const Dataset& SharedData() {
  static const Dataset* data = new Dataset(BenchData(20000, 500, 0.1));
  return *data;
}

const CandidateSplits& SharedSplits() {
  static const CandidateSplits* splits =
      new CandidateSplits(ProposeCandidateSplits(SharedData(), 20));
  return *splits;
}

GradientBuffer MakeGrads(uint32_t n, uint32_t dims = 1) {
  GradientBuffer grads(n, dims);
  Rng rng(11);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t k = 0; k < dims; ++k) {
      grads.at(i, k) = GradPair{rng.NextGaussian(), rng.NextDouble()};
    }
  }
  return grads;
}

std::vector<InstanceId> AllRows(uint32_t n) {
  std::vector<InstanceId> rows(n);
  for (InstanceId i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

// Shared-builder row-layer kernel across the dims x threads grid: the code
// path every row-store trainer (QD2/QD4/feature-parallel) bottoms out in.
void BM_HistBuilderRowLayer(benchmark::State& state) {
  const uint32_t dims = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const Dataset& data = SharedData();
  const BinnedRowStore store =
      BinnedRowStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances(), dims);
  const std::vector<InstanceId> rows = AllRows(data.num_instances());
  Histogram hist(data.num_features(), 20, dims);
  std::vector<HistogramBuilder::NodeRows> tasks = {
      {&hist, std::span<const InstanceId>(rows)}};
  HistogramBuilder builder(threads);
  for (auto _ : state) {
    hist.Clear();
    builder.BuildRowStoreLayer(
        store, grads, std::span<const HistogramBuilder::NodeRows>(tasks), 0,
        data.num_features(), data.num_features());
    benchmark::DoNotOptimize(hist.raw_data());
  }
  state.SetItemsProcessed(state.iterations() * data.num_nonzeros());
}
BENCHMARK(BM_HistBuilderRowLayer)->ArgsProduct({{1, 3}, {1, 4}});

// Shared-builder one-sweep column kernel (QD1) across the same grid.
void BM_HistBuilderColumnSweep(benchmark::State& state) {
  const uint32_t dims = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const Dataset& data = SharedData();
  const BinnedColumnStore store =
      BinnedColumnStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances(), dims);
  InstanceToNode node_of;
  node_of.Init(data.num_instances());
  Histogram hist(data.num_features(), 20, dims);
  std::vector<Histogram*> hist_of_node = {&hist};
  HistogramBuilder builder(threads);
  for (auto _ : state) {
    hist.Clear();
    builder.BuildColumnStoreSweep(store, grads, node_of, hist_of_node);
    benchmark::DoNotOptimize(hist.raw_data());
  }
  state.SetItemsProcessed(state.iterations() * data.num_nonzeros());
}
BENCHMARK(BM_HistBuilderColumnSweep)->ArgsProduct({{1, 3}, {1, 4}});

// Row-store histogram build with the node-to-instance index (QD2/QD4 hot
// loop).
void BM_HistogramBuildRowStore(benchmark::State& state) {
  const Dataset& data = SharedData();
  const BinnedRowStore store =
      BinnedRowStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances());
  Histogram hist(data.num_features(), 20, 1);
  for (auto _ : state) {
    hist.Clear();
    for (InstanceId i = 0; i < data.num_instances(); ++i) {
      auto features = store.RowFeatures(i);
      auto bins = store.RowBins(i);
      const GradPair* g = grads.row(i);
      for (size_t k = 0; k < features.size(); ++k) {
        hist.Add(features[k], bins[k], g);
      }
    }
    benchmark::DoNotOptimize(hist.raw_data());
  }
  state.SetItemsProcessed(state.iterations() * data.num_nonzeros());
}
BENCHMARK(BM_HistogramBuildRowStore);

// Column-store histogram build with the instance-to-node index (QD1 loop).
void BM_HistogramBuildColumnStore(benchmark::State& state) {
  const Dataset& data = SharedData();
  const BinnedColumnStore store =
      BinnedColumnStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances());
  InstanceToNode node_of;
  node_of.Init(data.num_instances());
  Histogram hist(data.num_features(), 20, 1);
  for (auto _ : state) {
    hist.Clear();
    for (FeatureId f = 0; f < data.num_features(); ++f) {
      auto rows = store.ColumnRows(f);
      auto bins = store.ColumnBins(f);
      for (size_t k = 0; k < rows.size(); ++k) {
        benchmark::DoNotOptimize(node_of.Get(rows[k]));
        hist.Add(f, bins[k], grads.row(rows[k]));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * data.num_nonzeros());
}
BENCHMARK(BM_HistogramBuildColumnStore);

// Column-store histogram build with per-instance binary search (the
// node-to-instance-on-columns combination §3.2.3 warns about).
void BM_HistogramBuildColumnBinarySearch(benchmark::State& state) {
  const Dataset& data = SharedData();
  const BinnedColumnStore store =
      BinnedColumnStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances());
  Histogram hist(data.num_features(), 20, 1);
  for (auto _ : state) {
    hist.Clear();
    for (FeatureId f = 0; f < data.num_features(); ++f) {
      for (InstanceId i = 0; i < data.num_instances(); ++i) {
        const auto bin = store.FindBin(f, i);
        if (bin.has_value()) hist.Add(f, *bin, grads.row(i));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * data.num_instances() *
                          data.num_features());
}
BENCHMARK(BM_HistogramBuildColumnBinarySearch);

void BM_HistogramSubtraction(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  Histogram parent(d, 20, 1), child(d, 20, 1), sibling(d, 20, 1);
  for (auto _ : state) {
    sibling.SetToDifference(parent, child);
    benchmark::DoNotOptimize(sibling.raw_data());
  }
  state.SetBytesProcessed(state.iterations() * parent.MemoryBytes());
}
BENCHMARK(BM_HistogramSubtraction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BitmapEncodePlacement(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Bitmap bitmap(n);
  for (size_t i = 0; i < n; ++i) bitmap.Assign(i, rng.Bernoulli(0.5));
  for (auto _ : state) {
    std::vector<uint8_t> bytes;
    bitmap.SerializeTo(&bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * bitmap.SerializedBytes());
}
BENCHMARK(BM_BitmapEncodePlacement)->Arg(100000)->Arg(1000000);

// The 4-byte-per-instance alternative the bitmap replaces (32x larger).
void BM_Int32EncodePlacement(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<uint32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    std::vector<uint8_t> bytes(ids.size() * sizeof(uint32_t));
    std::memcpy(bytes.data(), ids.data(), bytes.size());
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(uint32_t));
}
BENCHMARK(BM_Int32EncodePlacement)->Arg(100000)->Arg(1000000);

void BM_QuantileSketchAdd(benchmark::State& state) {
  Rng rng(5);
  std::vector<float> values(100000);
  for (auto& v : values) v = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    QuantileSketch sketch(256);
    for (float v : values) sketch.Add(v);
    benchmark::DoNotOptimize(sketch.Finalize().num_entries());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_QuantileSketchAdd);

void BM_QuantileSummaryMerge(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> a(10000), b(10000);
  for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
  const QuantileSummary sa = QuantileSummary::FromValues(a).Prune(256);
  const QuantileSummary sb = QuantileSummary::FromValues(b).Prune(256);
  for (auto _ : state) {
    QuantileSummary merged = sa.Merge(sb).Prune(256);
    benchmark::DoNotOptimize(merged.num_entries());
  }
}
BENCHMARK(BM_QuantileSummaryMerge);

void BM_TwoPhaseIndexLookup(benchmark::State& state) {
  // Build a 5-block column group and measure random row lookups.
  const Dataset& data = SharedData();
  const BinnedRowStore store =
      BinnedRowStore::FromCsr(data.matrix(), SharedSplits());
  ColumnGroup group;
  const uint32_t n = data.num_instances();
  InstanceId offset = 0;
  for (int b = 0; b < 5; ++b) {
    const InstanceId end = n * (b + 1) / 5;
    ColumnGroupBlock block;
    block.row_offset = offset;
    for (InstanceId i = offset; i < end; ++i) {
      auto features = store.RowFeatures(i);
      auto bins = store.RowBins(i);
      for (size_t k = 0; k < features.size(); ++k) {
        block.features.push_back(features[k]);
        block.bins.push_back(bins[k]);
      }
      block.row_ptr.push_back(static_cast<uint32_t>(block.features.size()));
    }
    group.AppendBlock(std::move(block));
    offset = end;
  }
  Rng rng(13);
  for (auto _ : state) {
    const InstanceId i = static_cast<InstanceId>(rng.Uniform(n));
    benchmark::DoNotOptimize(group.RowFeatures(i).size());
  }
}
BENCHMARK(BM_TwoPhaseIndexLookup);

void BM_RowPartitionSplit(benchmark::State& state) {
  const uint32_t n = 100000;
  Rng rng(17);
  Bitmap go_left(n);
  for (uint32_t i = 0; i < n; ++i) go_left.Assign(i, rng.Bernoulli(0.5));
  for (auto _ : state) {
    RowPartition partition;
    partition.Init(n, 3);
    partition.Split(0, go_left);
    benchmark::DoNotOptimize(partition.Count(1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowPartitionSplit);

void BM_AllReduce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Cluster cluster(4);
  for (auto _ : state) {
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n, 1.0);
      ctx.AllReduceSum(data);
      benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(double) * 4);
}
BENCHMARK(BM_AllReduce)->Arg(1000)->Arg(100000);

// ---- --hist-json: machine-readable histogram-kernel snapshot -------------
//
// Runs the shared-builder row-layer kernel across dims x threads plus the
// seed-style scalar loop (per-row Histogram::Add) and writes one JSON file
// for the perf-regression harness (scripts/bench_smoke.sh, check ctest
// entry). See docs/performance.md for how to read it.

struct HistMeasurement {
  const char* name;
  uint32_t dims;
  uint32_t threads;
  double seconds;
  double rows_per_sec;
  double entries_per_sec;
  double bytes_per_sec;
  double speedup_vs_scalar;
};

template <typename Fn>
double BestSeconds(const Fn& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    fn();
    timer.Stop();
    best = std::min(best, timer.Seconds());
  }
  return std::max(best, 1e-9);
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

int RunHistJson(const std::string& path) {
  const uint32_t n = bench::ScaledN(20000);
  const uint32_t d = 500;
  const uint32_t kNodes = 4;  // A depth-2 level-wise frontier.
  const double density = 0.1;
  const Dataset data = BenchData(n, d, density);
  const CandidateSplits splits = ProposeCandidateSplits(data, 20);
  const BinnedRowStore store = BinnedRowStore::FromCsr(data.matrix(), splits);
  const uint64_t entries = data.num_nonzeros();

  // One layer's worth of work: the frontier nodes partition the rows, so a
  // layer build touches every row exactly once whichever way it is built.
  std::vector<std::vector<InstanceId>> node_rows(kNodes);
  {
    Rng rng(29);
    for (InstanceId i = 0; i < data.num_instances(); ++i) {
      node_rows[rng.Uniform(kNodes)].push_back(i);
    }
  }

  std::vector<HistMeasurement> results;
  for (const uint32_t dims : {1u, 3u}) {
    const GradientBuffer grads = MakeGrads(data.num_instances(), dims);
    // Per entry: 6 bytes of store input plus a read-modify-write of the
    // dims gradient pairs in the target cell.
    const double bytes_per_entry = 6.0 + 32.0 * dims;

    std::vector<Histogram> hists;
    for (uint32_t k = 0; k < kNodes; ++k) hists.emplace_back(d, 20, dims);

    // Seed kernel: one scalar re-scan per frontier node through
    // Histogram::Add (the pre-builder trainer loop).
    const double scalar_seconds = BestSeconds([&] {
      for (uint32_t node = 0; node < kNodes; ++node) {
        hists[node].Clear();
        for (const InstanceId i : node_rows[node]) {
          const auto features = store.RowFeatures(i);
          const auto bins = store.RowBins(i);
          const GradPair* g = grads.row(i);
          for (size_t k = 0; k < features.size(); ++k) {
            hists[node].Add(features[k], bins[k], g);
          }
        }
      }
    });
    results.push_back({"scalar_row_add", dims, 1, scalar_seconds,
                       n / scalar_seconds, entries / scalar_seconds,
                       entries * bytes_per_entry / scalar_seconds, 1.0});

    for (const uint32_t threads : {1u, 4u}) {
      HistogramBuilder builder(threads);
      std::vector<HistogramBuilder::NodeRows> tasks;
      for (uint32_t k = 0; k < kNodes; ++k) {
        tasks.push_back(
            {&hists[k], std::span<const InstanceId>(node_rows[k])});
      }
      const double seconds = BestSeconds([&] {
        for (Histogram& h : hists) h.Clear();
        builder.BuildRowStoreLayer(
            store, grads, std::span<const HistogramBuilder::NodeRows>(tasks),
            0, d, d);
      });
      results.push_back({"builder_row_layer", dims, threads, seconds,
                         n / seconds, entries / seconds,
                         entries * bytes_per_entry / seconds,
                         scalar_seconds / seconds});
    }
  }

  // Column-store layer build: the seed QD3 binary-search kernel (one FindBin
  // probe per node x feature x instance) against the builder's one-sweep
  // pass over each column — the headline one-sweep win, independent of the
  // host's core count.
  {
    const BinnedColumnStore col_store =
        BinnedColumnStore::FromCsr(data.matrix(), splits);
    const GradientBuffer grads = MakeGrads(data.num_instances(), 1);
    const double bytes_per_entry = 6.0 + 32.0;
    InstanceToNode node_of;
    node_of.Init(data.num_instances());
    for (uint32_t node = 0; node < kNodes; ++node) {
      for (const InstanceId i : node_rows[node]) {
        node_of.Set(i, static_cast<NodeId>(node));
      }
    }
    std::vector<Histogram> hists;
    for (uint32_t k = 0; k < kNodes; ++k) hists.emplace_back(d, 20, 1);

    const double scalar_seconds = BestSeconds([&] {
      for (uint32_t node = 0; node < kNodes; ++node) {
        hists[node].Clear();
        for (FeatureId f = 0; f < d; ++f) {
          for (const InstanceId i : node_rows[node]) {
            const auto bin = col_store.FindBin(f, i);
            if (bin.has_value()) hists[node].Add(f, *bin, grads.row(i));
          }
        }
      }
    });
    results.push_back({"scalar_column_binary_search", 1, 1, scalar_seconds,
                       n / scalar_seconds, entries / scalar_seconds,
                       entries * bytes_per_entry / scalar_seconds, 1.0});

    std::vector<Histogram*> hist_of_node;
    for (uint32_t k = 0; k < kNodes; ++k) hist_of_node.push_back(&hists[k]);
    for (const uint32_t threads : {1u, 4u}) {
      HistogramBuilder builder(threads);
      const double seconds = BestSeconds([&] {
        for (Histogram& h : hists) h.Clear();
        builder.BuildColumnStoreSweep(col_store, grads, node_of,
                                      hist_of_node);
      });
      results.push_back({"builder_column_sweep", 1, threads, seconds,
                         n / seconds, entries / seconds,
                         entries * bytes_per_entry / seconds,
                         scalar_seconds / seconds});
    }
  }

  std::string json = "{\"schema\":\"vero.hist_bench.v1\",\"workload\":{";
  json += "\"instances\":" + std::to_string(n);
  json += ",\"features\":" + std::to_string(d);
  json += ",\"bins\":20,\"density\":";
  AppendJsonNumber(&json, density);
  json += ",\"entries\":" + std::to_string(entries);
  json += ",\"layer_nodes\":" + std::to_string(kNodes);
  // Wall-clock parallel speedup needs this many cores; threads beyond it
  // timeslice (see docs/performance.md).
  json += ",\"cpus\":" +
          std::to_string(std::max(1u, std::thread::hardware_concurrency()));
  json += "},\"kernels\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const HistMeasurement& m = results[i];
    if (i > 0) json += ",";
    json += "{\"name\":\"" + std::string(m.name) + "\"";
    json += ",\"dims\":" + std::to_string(m.dims);
    json += ",\"threads\":" + std::to_string(m.threads);
    json += ",\"seconds\":";
    AppendJsonNumber(&json, m.seconds);
    json += ",\"rows_per_sec\":";
    AppendJsonNumber(&json, m.rows_per_sec);
    json += ",\"entries_per_sec\":";
    AppendJsonNumber(&json, m.entries_per_sec);
    json += ",\"bytes_per_sec\":";
    AppendJsonNumber(&json, m.bytes_per_sec);
    json += ",\"speedup_vs_scalar\":";
    AppendJsonNumber(&json, m.speedup_vs_scalar);
    json += "}";
  }
  json += "]}\n";

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;

  std::printf("histogram kernels (N=%u D=%u nnz=%llu):\n", n, d,
              static_cast<unsigned long long>(entries));
  for (const HistMeasurement& m : results) {
    std::printf("  %-18s dims=%u threads=%u  %8.3f Mrows/s  %s/s  %5.2fx\n",
                m.name, m.dims, m.threads, m.rows_per_sec / 1e6,
                bench::FormatBytes(m.bytes_per_sec).c_str(),
                m.speedup_vs_scalar);
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace vero

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--hist-json" && i + 1 < argc) {
      return vero::RunHistJson(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
