// Micro-benchmarks (google-benchmark) for the kernels the paper's analysis
// is built on: histogram construction under each store/index combination,
// histogram subtraction, bitmap encoding vs 4-byte ids, quantile sketch
// throughput, two-phase index lookups, and the collectives.

#include <benchmark/benchmark.h>

#include <cstring>

#include "cluster/communicator.h"
#include "common/bitmap.h"
#include "common/random.h"
#include "core/binned.h"
#include "core/histogram.h"
#include "core/node_indexer.h"
#include "data/synthetic.h"
#include "partition/column_group.h"
#include "sketch/quantile_summary.h"

namespace vero {
namespace {

Dataset BenchData(uint32_t n, uint32_t d, double density) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = density;
  config.seed = 7001;
  return GenerateSynthetic(config);
}

const Dataset& SharedData() {
  static const Dataset* data = new Dataset(BenchData(20000, 500, 0.1));
  return *data;
}

const CandidateSplits& SharedSplits() {
  static const CandidateSplits* splits =
      new CandidateSplits(ProposeCandidateSplits(SharedData(), 20));
  return *splits;
}

GradientBuffer MakeGrads(uint32_t n) {
  GradientBuffer grads(n, 1);
  Rng rng(11);
  for (uint32_t i = 0; i < n; ++i) {
    grads.at(i, 0) = GradPair{rng.NextGaussian(), rng.NextDouble()};
  }
  return grads;
}

// Row-store histogram build with the node-to-instance index (QD2/QD4 hot
// loop).
void BM_HistogramBuildRowStore(benchmark::State& state) {
  const Dataset& data = SharedData();
  const BinnedRowStore store =
      BinnedRowStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances());
  Histogram hist(data.num_features(), 20, 1);
  for (auto _ : state) {
    hist.Clear();
    for (InstanceId i = 0; i < data.num_instances(); ++i) {
      auto features = store.RowFeatures(i);
      auto bins = store.RowBins(i);
      const GradPair* g = grads.row(i);
      for (size_t k = 0; k < features.size(); ++k) {
        hist.Add(features[k], bins[k], g);
      }
    }
    benchmark::DoNotOptimize(hist.raw_data());
  }
  state.SetItemsProcessed(state.iterations() * data.num_nonzeros());
}
BENCHMARK(BM_HistogramBuildRowStore);

// Column-store histogram build with the instance-to-node index (QD1 loop).
void BM_HistogramBuildColumnStore(benchmark::State& state) {
  const Dataset& data = SharedData();
  const BinnedColumnStore store =
      BinnedColumnStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances());
  InstanceToNode node_of;
  node_of.Init(data.num_instances());
  Histogram hist(data.num_features(), 20, 1);
  for (auto _ : state) {
    hist.Clear();
    for (FeatureId f = 0; f < data.num_features(); ++f) {
      auto rows = store.ColumnRows(f);
      auto bins = store.ColumnBins(f);
      for (size_t k = 0; k < rows.size(); ++k) {
        benchmark::DoNotOptimize(node_of.Get(rows[k]));
        hist.Add(f, bins[k], grads.row(rows[k]));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * data.num_nonzeros());
}
BENCHMARK(BM_HistogramBuildColumnStore);

// Column-store histogram build with per-instance binary search (the
// node-to-instance-on-columns combination §3.2.3 warns about).
void BM_HistogramBuildColumnBinarySearch(benchmark::State& state) {
  const Dataset& data = SharedData();
  const BinnedColumnStore store =
      BinnedColumnStore::FromCsr(data.matrix(), SharedSplits());
  const GradientBuffer grads = MakeGrads(data.num_instances());
  Histogram hist(data.num_features(), 20, 1);
  for (auto _ : state) {
    hist.Clear();
    for (FeatureId f = 0; f < data.num_features(); ++f) {
      for (InstanceId i = 0; i < data.num_instances(); ++i) {
        const auto bin = store.FindBin(f, i);
        if (bin.has_value()) hist.Add(f, *bin, grads.row(i));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * data.num_instances() *
                          data.num_features());
}
BENCHMARK(BM_HistogramBuildColumnBinarySearch);

void BM_HistogramSubtraction(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  Histogram parent(d, 20, 1), child(d, 20, 1), sibling(d, 20, 1);
  for (auto _ : state) {
    sibling.SetToDifference(parent, child);
    benchmark::DoNotOptimize(sibling.raw_data());
  }
  state.SetBytesProcessed(state.iterations() * parent.MemoryBytes());
}
BENCHMARK(BM_HistogramSubtraction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BitmapEncodePlacement(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Bitmap bitmap(n);
  for (size_t i = 0; i < n; ++i) bitmap.Assign(i, rng.Bernoulli(0.5));
  for (auto _ : state) {
    std::vector<uint8_t> bytes;
    bitmap.SerializeTo(&bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * bitmap.SerializedBytes());
}
BENCHMARK(BM_BitmapEncodePlacement)->Arg(100000)->Arg(1000000);

// The 4-byte-per-instance alternative the bitmap replaces (32x larger).
void BM_Int32EncodePlacement(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<uint32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    std::vector<uint8_t> bytes(ids.size() * sizeof(uint32_t));
    std::memcpy(bytes.data(), ids.data(), bytes.size());
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(uint32_t));
}
BENCHMARK(BM_Int32EncodePlacement)->Arg(100000)->Arg(1000000);

void BM_QuantileSketchAdd(benchmark::State& state) {
  Rng rng(5);
  std::vector<float> values(100000);
  for (auto& v : values) v = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    QuantileSketch sketch(256);
    for (float v : values) sketch.Add(v);
    benchmark::DoNotOptimize(sketch.Finalize().num_entries());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_QuantileSketchAdd);

void BM_QuantileSummaryMerge(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> a(10000), b(10000);
  for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
  const QuantileSummary sa = QuantileSummary::FromValues(a).Prune(256);
  const QuantileSummary sb = QuantileSummary::FromValues(b).Prune(256);
  for (auto _ : state) {
    QuantileSummary merged = sa.Merge(sb).Prune(256);
    benchmark::DoNotOptimize(merged.num_entries());
  }
}
BENCHMARK(BM_QuantileSummaryMerge);

void BM_TwoPhaseIndexLookup(benchmark::State& state) {
  // Build a 5-block column group and measure random row lookups.
  const Dataset& data = SharedData();
  const BinnedRowStore store =
      BinnedRowStore::FromCsr(data.matrix(), SharedSplits());
  ColumnGroup group;
  const uint32_t n = data.num_instances();
  InstanceId offset = 0;
  for (int b = 0; b < 5; ++b) {
    const InstanceId end = n * (b + 1) / 5;
    ColumnGroupBlock block;
    block.row_offset = offset;
    for (InstanceId i = offset; i < end; ++i) {
      auto features = store.RowFeatures(i);
      auto bins = store.RowBins(i);
      for (size_t k = 0; k < features.size(); ++k) {
        block.features.push_back(features[k]);
        block.bins.push_back(bins[k]);
      }
      block.row_ptr.push_back(static_cast<uint32_t>(block.features.size()));
    }
    group.AppendBlock(std::move(block));
    offset = end;
  }
  Rng rng(13);
  for (auto _ : state) {
    const InstanceId i = static_cast<InstanceId>(rng.Uniform(n));
    benchmark::DoNotOptimize(group.RowFeatures(i).size());
  }
}
BENCHMARK(BM_TwoPhaseIndexLookup);

void BM_RowPartitionSplit(benchmark::State& state) {
  const uint32_t n = 100000;
  Rng rng(17);
  Bitmap go_left(n);
  for (uint32_t i = 0; i < n; ++i) go_left.Assign(i, rng.Bernoulli(0.5));
  for (auto _ : state) {
    RowPartition partition;
    partition.Init(n, 3);
    partition.Split(0, go_left);
    benchmark::DoNotOptimize(partition.Count(1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowPartitionSplit);

void BM_AllReduce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Cluster cluster(4);
  for (auto _ : state) {
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n, 1.0);
      ctx.AllReduceSum(data);
      benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(double) * 4);
}
BENCHMARK(BM_AllReduce)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace vero

BENCHMARK_MAIN();
