// Table 7 (Appendix C): comparison with Yggdrasil on low-dimensional
// datasets. Yggdrasil is represented by QD3 restricted to linear column
// scans without histogram subtraction (its column-wise node-to-instance
// index pays a full index rewrite per layer); "QD3 (ours)" is the paper's
// optimized mixed-index QD3; Vero is QD4.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

double TimePerTree(const Dataset& data, Quadrant q, Qd3IndexPolicy policy,
                   bool subtraction) {
  GbdtParams params = PaperParams(8);
  params.histogram_subtraction = subtraction;
  Cluster cluster(5);
  DistTrainOptions options;
  options.params = params;
  const DistResult result =
      TrainDistributed(cluster, data, q, options, nullptr, policy);
  return result.TrainSeconds() / params.num_trees;
}

void Main() {
  PrintHeader(
      "Table 7: comparison with Yggdrasil-style QD3 (low-dim datasets, W=5)",
      "Fu et al., VLDB'19, Appendix C, Table 7 (Epsilon, SUSY, Higgs)",
      "QD3(ours, mixed index) beats the Yggdrasil-style variant on all "
      "three datasets; Vero(QD4) is fastest (paper: e.g. Epsilon "
      "137/24/5 s per tree)");

  struct Row {
    const char* dataset;
    double paper_ygg, paper_qd3, paper_vero;
  };
  const std::vector<Row> rows = {
      {"Epsilon", 137.0, 24.0, 5.0},
      {"SUSY", 32.0, 9.0, 5.0},
      {"Higgs", 71.0, 14.0, 7.0},
  };

  std::printf("\n%-10s %14s %14s %14s | %10s %10s %10s\n", "dataset",
              "Yggdrasil(s)", "QD3-ours(s)", "Vero(s)", "paperYgg",
              "paperQD3", "paperVero");
  for (const Row& row : rows) {
    const Dataset data =
        GenerateFromProfile(FindProfile(row.dataset), Scale());
    const double ygg = TimePerTree(data, Quadrant::kQD3,
                                   Qd3IndexPolicy::kLinearScanOnly,
                                   /*subtraction=*/false);
    const double qd3 = TimePerTree(data, Quadrant::kQD3,
                                   Qd3IndexPolicy::kMixed,
                                   /*subtraction=*/true);
    const double vero = TimePerTree(data, Quadrant::kQD4,
                                    Qd3IndexPolicy::kMixed,
                                    /*subtraction=*/true);
    std::printf("%-10s %14.4f %14.4f %14.4f | %10.0f %10.0f %10.0f\n",
                row.dataset, ygg, qd3, vero, row.paper_ygg, row.paper_qd3,
                row.paper_vero);
  }
  std::printf(
      "\nYggdrasil column = QD3 with linear-scan-only index and no\n"
      "histogram subtraction (the cost profile of its column-wise\n"
      "node-to-instance index); QD3-ours = the paper's mixed index plan.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
