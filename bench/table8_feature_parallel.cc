// Table 8 (Appendix D): data-parallel vs feature-parallel LightGBM vs Vero
// on the small RCV1 / RCV1-multi stand-ins. Feature-parallel avoids
// histogram aggregation by replicating the full dataset on every worker.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

void Main() {
  PrintHeader(
      "Table 8: LightGBM data-parallel vs feature-parallel vs Vero (W=5)",
      "Fu et al., VLDB'19, Appendix D, Table 8 (RCV1, RCV1-multi)",
      "FP beats DP (no histogram aggregation) but replicates the whole "
      "dataset on every worker; Vero is fastest and keeps per-worker data "
      "at ~1/W (paper: RCV1 17/5/3 s, RCV1-multi 127/23/13 s)");

  struct Row {
    const char* dataset;
    double paper_dp, paper_fp, paper_vero;
  };
  const std::vector<Row> rows = {
      {"RCV1", 17.0, 5.0, 3.0},
      {"RCV1-multi", 127.0, 23.0, 13.0},
  };
  const int workers = 5;

  std::printf("\n%-12s %-22s %12s %14s | %8s\n", "dataset", "system",
              "s/tree", "data-mem/wkr", "paper-s");
  for (const Row& row : rows) {
    const Dataset data =
        GenerateFromProfile(FindProfile(row.dataset), Scale());
    const GbdtParams params = PaperParams(8);
    struct SystemRun {
      const char* name;
      Quadrant quadrant;
      double paper;
    };
    const std::vector<SystemRun> systems = {
        {"LightGBM-DP(QD2)", Quadrant::kQD2, row.paper_dp},
        {"LightGBM-FP", Quadrant::kFeatureParallel, row.paper_fp},
        {"Vero(QD4)", Quadrant::kQD4, row.paper_vero},
    };
    for (const SystemRun& sys : systems) {
      const DistResult result =
          RunQuadrant(data, sys.quadrant, workers, params);
      std::printf("%-12s %-22s %12.4f %14s | %8.0f\n", row.dataset, sys.name,
                  result.TrainSeconds() / params.num_trees,
                  FormatBytes(static_cast<double>(result.data_bytes)).c_str(),
                  sys.paper);
    }
    std::printf("\n");
  }
  std::printf(
      "data-mem/wkr shows FP's memory cost: the full dataset on every\n"
      "worker, which is why the paper rules it out at scale.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
