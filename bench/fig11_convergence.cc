// Figure 11: end-to-end convergence — validation metric against (modeled)
// wall-clock time for each system on each evaluation dataset. Prints the
// curve series the paper plots, one block per (dataset, system).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

struct Workload {
  const char* dataset;
  int workers;
};

void Main() {
  PrintHeader(
      "Figure 11: convergence curves (valid AUC / accuracy vs time)",
      "Fu et al., VLDB'19, Figure 11(a)-(h)",
      "all systems converge to comparable quality; LightGBM(QD2) reaches it "
      "first on LD datasets, Vero(QD4) first on HS and MC datasets");

  const std::vector<Workload> workloads = {
      {"SUSY", 5},     {"Higgs", 5},      {"Epsilon", 5},
      {"RCV1", 5},     {"Synthesis", 8},  {"RCV1-multi", 8},
      {"Synthesis-multi", 8},
  };
  // More rounds than the cost benches so the curves actually bend.
  GbdtParams params = PaperParams(8);
  params.num_trees = std::max(params.num_trees, 12u);

  for (const Workload& w : workloads) {
    const Dataset data = GenerateFromProfile(FindProfile(w.dataset), Scale());
    const auto [train, valid] = data.SplitTail(0.2);
    std::printf("\n--- %s (N=%u, D=%u, C=%u, W=%d) ---\n", w.dataset,
                train.num_instances(), train.num_features(),
                train.num_classes(), w.workers);
    for (Quadrant q :
         {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD4}) {
      const DistResult result = RunQuadrant(
          train, q, w.workers, params, NetworkModel::Lab1Gbps(), &valid);
      std::printf("%s\n  time(s): ", QuadrantToString(q));
      for (const IterationStats& it : result.curve) {
        std::printf(" %8.3f", it.elapsed_seconds);
      }
      std::printf("\n  metric : ");
      for (const IterationStats& it : result.curve) {
        std::printf(" %8.4f", it.valid_metric);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nEach series is (cumulative modeled time, validation metric) after\n"
      "every boosting round, matching the axes of Figure 11.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
