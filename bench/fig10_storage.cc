// Figure 10(g)-(h): storage-pattern comparison under vertical partitioning,
// QD3 (Vertical+Column) vs QD4 (Vertical+Row/Vero). (g) uses very few
// instances with growing dimensionality (column-store's one niche); (h)
// grows the instance count at high dimensionality (row-store wins).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

void RunPanel(const char* title, const char* sweep_name,
              const std::vector<std::string>& labels,
              const std::vector<Dataset>& datasets) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-10s %-26s %14s %14s %14s %14s\n", sweep_name, "quadrant",
              "comp/tree(s)", "comp std", "hist/tree(s)", "comm/tree(s)");
  for (size_t i = 0; i < datasets.size(); ++i) {
    for (Quadrant q : {Quadrant::kQD3, Quadrant::kQD4}) {
      const DistResult result =
          RunQuadrant(datasets[i], q, /*workers=*/8, PaperParams(8));
      const TreeCostSummary s = SummarizeTreeCosts(result.tree_costs);
      std::printf("%-10s %-26s %14.4f %14.4f %14.4f %14.4f\n",
                  labels[i].c_str(), QuadrantToString(q),
                  s.mean.comp_seconds(), s.comp_std, s.mean.hist_seconds,
                  s.mean.comm_seconds);
    }
  }
}

void Main() {
  PrintHeader(
      "Figure 10(g-h): impact of storage pattern (QD3 vs QD4)",
      "Fu et al., VLDB'19, Figure 10(g)-(h), W=8, L=8, q=20",
      "(g) tiny N, growing D: both comm flat; QD3 computes slightly less "
      "(cache-friendly column writes); "
      "(h) large N, high D: QD3 spends 3-4x QD4's computation and "
      "oscillates (binary-search branch misses); comm identical");

  // (g) Very few instances, high dimensionality.
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 3001;
    const uint32_t n = ScaledN(2000);
    for (uint32_t d : {2500u, 5000u, 7500u, 10000u}) {
      labels.push_back("D=" + std::to_string(d));
      datasets.push_back(MakeWorkload(n, d, 2, 200.0 / d, seed++));
    }
    RunPanel("(g) impact of dimensionality (N small, C=2, L=8)", "D", labels,
             datasets);
  }

  // (h) Growing instance count. The paper's panel uses N up to 40M at
  // D=100K; the scaled version keeps N >> D so histogram construction
  // (where the storage patterns differ) dominates split finding.
  {
    std::vector<std::string> labels;
    std::vector<Dataset> datasets;
    uint64_t seed = 3011;
    const uint32_t d = 2000;
    for (uint32_t base : {25000u, 50000u, 75000u, 100000u}) {
      const uint32_t n = ScaledN(base);
      labels.push_back("N=" + std::to_string(n));
      datasets.push_back(MakeWorkload(n, d, 2, 100.0 / d, seed++));
    }
    RunPanel("(h) impact of instance number (D=2000, C=2, L=8)", "N",
             labels, datasets);
  }
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
