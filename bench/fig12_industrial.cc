// Figure 12 + Table 4: industrial workloads (Gender / Age / Taste
// stand-ins) on the 10 Gbps production network model. Prints time per tree
// for each system and the convergence series.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/metrics.h"

namespace vero {
namespace bench {
namespace {

struct Row {
  const char* dataset;
  // Paper Table 4 (seconds per tree).
  double paper_xgb;
  double paper_dim;  // -1 when the paper has no DimBoost entry.
  double paper_vero;
};

void Main() {
  PrintHeader(
      "Figure 12 + Table 4: industrial datasets on the production network",
      "Fu et al., VLDB'19, §6 (Gender/Age/Taste, 10 Gbps cluster)",
      "Gender (huge N, binary): DimBoost(QD2) beats Vero (fast network + "
      "N-dominant), both beat XGBoost(QD1) ~5x; Age (multi-class, high D): "
      "Vero ~8x faster than XGBoost; Taste (100 classes): Vero ~4.5x "
      "faster than XGBoost");

  const std::vector<Row> rows = {
      {"Gender", 438.0, 52.0, 79.0},
      {"Age", 1738.0, -1.0, 207.0},
      {"Taste", 627.0, -1.0, 139.0},
  };
  const NetworkModel network = NetworkModel::Production10Gbps();
  const int workers = 8;  // Paper: 50/20/20 Yarn containers; see DESIGN.md.

  std::printf("\n%-8s %-26s %12s %12s %10s %14s\n", "dataset", "system",
              "s/tree", "paper-s/tree", "quality", "rel-to-Vero");
  for (const Row& row : rows) {
    const Dataset data =
        GenerateFromProfile(FindProfile(row.dataset), Scale());
    const auto [train, valid] = data.SplitTail(0.2);
    const GbdtParams params = PaperParams(8);

    struct SystemRun {
      const char* name;
      Quadrant quadrant;
      double paper;
    };
    std::vector<SystemRun> systems = {
        {"XGBoost(QD1)", Quadrant::kQD1, row.paper_xgb},
        {"Vero(QD4)", Quadrant::kQD4, row.paper_vero},
    };
    if (row.paper_dim > 0) {
      systems.insert(systems.begin() + 1,
                     {"DimBoost(QD2)", Quadrant::kQD2, row.paper_dim});
    }

    double vero_time = 0.0;
    std::vector<double> times(systems.size());
    std::vector<double> quality(systems.size());
    for (size_t s = 0; s < systems.size(); ++s) {
      const DistResult result = RunQuadrant(train, systems[s].quadrant,
                                            workers, params, network, &valid);
      times[s] = result.TrainSeconds() / params.num_trees;
      quality[s] = EvaluateModel(result.model, valid).value;
      if (systems[s].quadrant == Quadrant::kQD4) vero_time = times[s];
    }
    for (size_t s = 0; s < systems.size(); ++s) {
      std::printf("%-8s %-26s %12.4f %12.1f %10.4f %13.2fx\n", row.dataset,
                  systems[s].name, times[s], systems[s].paper, quality[s],
                  times[s] / vero_time);
    }
    std::printf("\n");
  }
  std::printf(
      "rel-to-Vero compares measured time per tree against Vero's; the\n"
      "paper's absolute seconds (paper-s/tree) are for its full-size\n"
      "datasets on the Tencent cluster — only the ordering and rough\n"
      "ratios are expected to transfer.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
