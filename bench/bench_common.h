#ifndef VERO_BENCH_BENCH_COMMON_H_
#define VERO_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/communicator.h"
#include "cluster/fault_injector.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace bench {

/// Parses the shared bench flags and arms the run-report machinery:
///   --report <out.json>   collect one RunReport per RunQuadrant call and
///                         write a "vero.bench_report.v1" JSON file at exit
///   --trace-dir <dir>     also record per-phase / per-collective traces and
///                         write one Chrome trace JSON per run into <dir>
///   --anatomy <out.json>  also record traces, stitch each run's cost
///                         anatomy (see obs::AnatomyReport), and write a
///                         "vero.anatomy_bench.v1" JSON file at exit
///   --threads <n>         per-worker histogram-builder threads (see
///                         BenchThreads())
/// Unknown arguments are ignored. Call first thing in main().
void InitBench(int argc, char** argv);

/// Global instance-count multiplier, read from VERO_SCALE (default 1.0).
/// Benches are sized for a single-core CI box at scale 1; raise the scale on
/// bigger machines to stress absolute numbers (shapes hold at any scale).
double Scale();

/// Round(n * Scale()), minimum 200.
uint32_t ScaledN(uint32_t n);

/// Number of boosting rounds used to estimate per-tree costs, from
/// VERO_BENCH_TREES (default 5).
uint32_t BenchTrees();

/// Per-worker histogram-builder threads (GbdtParams::num_threads), from the
/// --threads flag or VERO_THREADS (default 1). A simulated cluster runs one
/// builder per worker, so a run uses up to W x threads OS threads; results
/// are bit-identical at any value (see docs/performance.md).
uint32_t BenchThreads();

/// Prints the standard bench header with workload and environment notes.
void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

/// One synthetic workload matching the paper's §5.2 generator.
Dataset MakeWorkload(uint32_t n, uint32_t d, uint32_t c, double density,
                     uint64_t seed);

/// Everything one bench run needs beyond the workload and the quadrant.
/// The long-standing RunQuadrant signature delegates here; failure-sweep
/// benches use the spec directly to install fault plans and force metric
/// collection without threading ever more positional arguments around.
struct BenchRunSpec {
  int workers = 4;
  GbdtParams params;
  NetworkModel network = NetworkModel::Lab1Gbps();
  const Dataset* valid = nullptr;
  Qd3IndexPolicy qd3_policy = Qd3IndexPolicy::kMixed;
  TransformEncoding encoding = TransformEncoding::kBlockified;
  /// Installed on the fresh cluster before training (not owned; may be
  /// null). Lets sweeps replay the exact same delay schedule per mode.
  const FaultPlan* fault_plan = nullptr;
  /// Checkpoint / recovery policy for sweeps that inject crashes or
  /// schedule resizes (defaults match DistTrainOptions: no checkpoints, one
  /// recovery attempt, degrade-to-survivors).
  CheckpointOptions checkpoint;
  int max_recovery_attempts = 1;
  bool elastic_rejoin = false;
  /// Attach a RunObserver even without --report/--trace-dir, so the caller
  /// can read result.report.metrics (e.g. staleness.* counters) for its own
  /// comparison tables.
  bool force_observe = false;
  /// Also record traces (and therefore build result.anatomy) even without
  /// --anatomy / --trace-dir, so the caller can read the measured cost
  /// anatomy for its own tables. Implies force_observe.
  bool force_trace = false;
  /// Appended to the generated "runNNN-<quadrant>-wW" report label; sweep
  /// scripts group cells by this suffix.
  std::string label;
};

/// Runs `trees` rounds of a quadrant on a fresh cluster built from `spec`
/// and returns the result (convergence curve omitted unless `spec.valid`).
DistResult RunQuadrantSpec(const Dataset& train, Quadrant quadrant,
                           const BenchRunSpec& spec);

/// Back-compat wrapper over RunQuadrantSpec.
DistResult RunQuadrant(const Dataset& train, Quadrant quadrant, int workers,
                       const GbdtParams& params,
                       const NetworkModel& network = NetworkModel::Lab1Gbps(),
                       const Dataset* valid = nullptr,
                       Qd3IndexPolicy qd3_policy = Qd3IndexPolicy::kMixed,
                       TransformEncoding encoding =
                           TransformEncoding::kBlockified);

/// Default paper hyper-parameters (§5.1): L=8, q=20; T from BenchTrees().
GbdtParams PaperParams(uint32_t num_layers = 8);

/// "12.34 MB" / "1.23 GB" formatting.
std::string FormatBytes(double bytes);

}  // namespace bench
}  // namespace vero

#endif  // VERO_BENCH_BENCH_COMMON_H_
