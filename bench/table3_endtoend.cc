// Table 3: end-to-end comparison — average run time per tree scaled by
// Vero across the eight evaluation datasets (Table 2 stand-ins).
//
// External systems are mapped to their quadrant implementations in this
// code base (the paper's own methodology for §5.2): XGBoost -> QD1,
// LightGBM -> QD2, DimBoost -> QD2 (same quadrant; the paper attributes
// DimBoost's deviations to JVM overheads we do not model), Vero -> QD4.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/metrics.h"

namespace vero {
namespace bench {
namespace {

struct Row {
  const char* dataset;
  int workers;                    // Paper: 5 for LD/RCV1, 8 otherwise.
  double paper_xgb, paper_lgbm, paper_dim, paper_vero;  // Table 3 values.
};

void Main() {
  PrintHeader(
      "Table 3: run time per tree scaled by Vero (plus Figure 11 metrics)",
      "Fu et al., VLDB'19, Table 3; datasets of Table 2 (synthetic "
      "stand-ins with matching shape class)",
      "LD (SUSY/Higgs/Criteo): LightGBM(QD2) fastest, Vero slower; "
      "Epsilon: Vero comparable; HS (RCV1/Synthesis): Vero fastest by "
      "2-19x; MC: Vero fastest");

  const std::vector<Row> rows = {
      {"SUSY", 5, 0.3, 0.1, 0.5, 1.0},
      {"Higgs", 5, 0.5, 0.2, 0.8, 1.0},
      {"Criteo", 5, 0.5, 0.2, 0.7, 1.0},
      {"Epsilon", 5, 2.8, 0.7, 1.9, 1.0},
      {"RCV1", 5, 17.3, 5.6, 4.0, 1.0},
      {"Synthesis", 8, 18.9, 5.0, 2.0, 1.0},
      {"RCV1-multi", 8, 34.7, 9.7, -1.0, 1.0},
      {"Synthesis-multi", 8, 7.1, 3.3, -1.0, 1.0},
  };

  std::printf("\n%-16s %8s | %9s %9s %9s | %9s %9s %9s | %7s\n", "dataset",
              "quality", "XGB(QD1)", "LGB(QD2)", "Vero", "paperXGB",
              "paperLGB", "paperVero", "s/tree");
  for (const Row& row : rows) {
    const Dataset data =
        GenerateFromProfile(FindProfile(row.dataset), Scale());
    const auto [train, valid] = data.SplitTail(0.2);
    const GbdtParams params = PaperParams(8);

    double vero_time = 0.0;
    double qd1_time = 0.0, qd2_time = 0.0;
    double quality = 0.0;
    {
      const DistResult r =
          RunQuadrant(train, Quadrant::kQD4, row.workers, params);
      vero_time = r.TrainSeconds() / params.num_trees;
      quality = EvaluateModel(r.model, valid).value;
    }
    {
      const DistResult r =
          RunQuadrant(train, Quadrant::kQD1, row.workers, params);
      qd1_time = r.TrainSeconds() / params.num_trees;
    }
    {
      const DistResult r =
          RunQuadrant(train, Quadrant::kQD2, row.workers, params);
      qd2_time = r.TrainSeconds() / params.num_trees;
    }
    std::printf("%-16s %8.4f | %9.2f %9.2f %9.2f | %9.1f %9.1f %9.1f | %7.3f\n",
                row.dataset, quality, qd1_time / vero_time,
                qd2_time / vero_time, 1.0, row.paper_xgb, row.paper_lgbm,
                row.paper_vero, vero_time);
  }
  std::printf(
      "\nColumns 3-5: measured time per tree scaled by Vero (this repo);\n"
      "columns 6-8: the paper's Table 3. DimBoost shares QD2 and is not\n"
      "separately modeled (its JVM/sparse-handling overheads are outside\n"
      "the data-management model). quality = valid AUC (binary) or\n"
      "accuracy (multi-class) after the benchmark's trees.\n");
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
