// §3.1 analytical cost model, evaluated on the paper's own worked example
// (the Age dataset, §3.1.4) and cross-checked against the paper's numbers:
// histogram size per node ~906 MB, horizontal memory ~56.6 GB, horizontal
// communication ~900 GB per tree, vertical memory ~7.08 GB, vertical
// communication ~366 MB per tree.

#include <cstdio>

#include <cmath>

#include "bench/bench_common.h"

namespace vero {
namespace bench {
namespace {

struct AnatomyInputs {
  double n, d, q, c, layers, workers;
};

double SizeHistBytes(const AnatomyInputs& in) {
  // Sizehist = 2 x D x q x C x 8 bytes (§3.1.1).
  return 2.0 * in.d * in.q * in.c * 8.0;
}

void Main() {
  PrintHeader(
      "Anatomy model: §3.1 closed-form costs on the Age worked example",
      "Fu et al., VLDB'19, §3.1.4 (48M instances, 330K features, 9 "
      "classes, W=8, L=8, q=20)",
      "matches the paper's arithmetic: ~906 MB/node histograms, ~56.6 GB "
      "horizontal memory, ~900 GB horizontal comm/tree, ~7 GB vertical "
      "memory, ~366 MB vertical comm/tree");

  const AnatomyInputs age{48e6, 330e3, 20, 9, 8, 8};
  const double size_hist = SizeHistBytes(age);

  // §3.1.2: horizontal memory = Sizehist x 2^(L-2); vertical divides by W.
  const double mem_horizontal = size_hist * std::pow(2.0, age.layers - 2);
  const double mem_vertical = mem_horizontal / age.workers;

  // §3.1.3: horizontal comm >= Sizehist x W x (2^(L-1) - 1) per tree;
  // vertical comm = ceil(N/8) x W x L per tree.
  const double comm_horizontal =
      size_hist * age.workers * (std::pow(2.0, age.layers - 1) - 1);
  const double comm_vertical =
      std::ceil(age.n / 8.0) * age.workers * age.layers;

  std::printf("\n%-34s %14s %14s\n", "quantity", "model", "paper");
  std::printf("%-34s %14s %14s\n", "Sizehist per node",
              FormatBytes(size_hist).c_str(), "906 MB");
  std::printf("%-34s %14s %14s\n", "horizontal histogram memory",
              FormatBytes(mem_horizontal).c_str(), "56.6 GB");
  std::printf("%-34s %14s %14s\n", "horizontal comm per tree",
              FormatBytes(comm_horizontal).c_str(), "900 GB");
  std::printf("%-34s %14s %14s\n", "vertical histogram memory/worker",
              FormatBytes(mem_vertical).c_str(), "7.08 GB");
  std::printf("%-34s %14s %14s\n", "vertical comm per tree",
              FormatBytes(comm_vertical).c_str(), "366 MB");

  // Cross-check the model against the measured simulator on a small
  // workload: predicted vs counted bytes for QD4's placement broadcasts.
  const uint32_t n = ScaledN(20000);
  const Dataset data = MakeWorkload(n, 500, 2, 0.1, 5001);
  GbdtParams params = PaperParams(8);
  params.num_trees = 2;
  Cluster cluster(8);
  DistTrainOptions options;
  options.params = params;
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD4, options);
  // Model: per layer the owners broadcast ceil(N/8) bitmap bytes to W-1
  // peers; L-1 split layers per tree (plus small split exchanges).
  const double predicted = std::ceil(n / 8.0) * (8 - 1) *
                           (params.num_layers - 1) * params.num_trees;
  std::printf("\nsimulator cross-check (N=%u, W=8, %u trees):\n", n,
              params.num_trees);
  std::printf("  predicted bitmap bytes  : %s\n",
              FormatBytes(predicted).c_str());
  std::printf("  measured training bytes : %s (includes split exchange)\n",
              FormatBytes(static_cast<double>(result.train_bytes_sent))
                  .c_str());
  std::printf("  ratio measured/predicted: %.2f (expected slightly > 1)\n",
              result.train_bytes_sent / predicted);
}

}  // namespace
}  // namespace bench
}  // namespace vero

int main(int argc, char** argv) {
  vero::bench::InitBench(argc, argv);
  vero::bench::Main();
}
