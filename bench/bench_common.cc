#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.h"
#include "core/model_io.h"
#include "integrity/auditor.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace vero {
namespace bench {
namespace {

// Short filesystem-friendly tag for per-run trace filenames.
const char* QuadrantTag(Quadrant q) {
  switch (q) {
    case Quadrant::kQD1:
      return "qd1";
    case Quadrant::kQD2:
      return "qd2";
    case Quadrant::kQD3:
      return "qd3";
    case Quadrant::kQD4:
      return "qd4";
    case Quadrant::kFeatureParallel:
      return "fp";
  }
  return "unknown";
}

// State behind --report / --trace-dir / --anatomy; one report entry per
// RunQuadrant.
struct BenchObsState {
  std::string report_path;
  std::string trace_dir;
  std::string anatomy_path;
  uint32_t threads_flag = 0;  // 0 = not set on the command line
  int run_counter = 0;
  std::vector<std::string> run_reports;     // serialized RunReport objects
  std::vector<std::string> anatomy_reports;  // serialized AnatomyReport
};

BenchObsState& ObsState() {
  static BenchObsState* state = new BenchObsState();
  return *state;
}

bool ObsRequested() {
  const BenchObsState& s = ObsState();
  return obs::kObsEnabled &&
         (!s.report_path.empty() || !s.trace_dir.empty() ||
          !s.anatomy_path.empty());
}

void FlushBenchReport() {
  BenchObsState& s = ObsState();
  if (s.report_path.empty()) return;
  std::ofstream out(s.report_path, std::ios::binary);
  if (!out) {
    VERO_LOG(Warning) << "cannot write bench report: " << s.report_path;
    return;
  }
  out << "{\"schema\":\"vero.bench_report.v1\",\"runs\":[";
  for (size_t i = 0; i < s.run_reports.size(); ++i) {
    if (i > 0) out << ",";
    out << s.run_reports[i];
  }
  out << "]}\n";
}

void FlushAnatomyReport() {
  BenchObsState& s = ObsState();
  if (s.anatomy_path.empty()) return;
  std::ofstream out(s.anatomy_path, std::ios::binary);
  if (!out) {
    VERO_LOG(Warning) << "cannot write anatomy report: " << s.anatomy_path;
    return;
  }
  out << "{\"schema\":\"vero.anatomy_bench.v1\",\"runs\":[";
  for (size_t i = 0; i < s.anatomy_reports.size(); ++i) {
    if (i > 0) out << ",";
    out << s.anatomy_reports[i];
  }
  out << "]}\n";
}

}  // namespace

void InitBench(int argc, char** argv) {
  BenchObsState& s = ObsState();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      s.report_path = argv[++i];
    } else if (arg == "--trace-dir" && i + 1 < argc) {
      s.trace_dir = argv[++i];
    } else if (arg == "--anatomy" && i + 1 < argc) {
      s.anatomy_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      if (v > 0) s.threads_flag = static_cast<uint32_t>(v);
    }
  }
  if (!s.report_path.empty()) std::atexit(FlushBenchReport);
  if (!s.anatomy_path.empty()) std::atexit(FlushAnatomyReport);
  if (!obs::kObsEnabled && (!s.report_path.empty() || !s.trace_dir.empty() ||
                            !s.anatomy_path.empty())) {
    VERO_LOG(Warning) << "--report/--trace-dir/--anatomy ignored: built with "
                         "VERO_DISABLE_OBS";
  }
}

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("VERO_SCALE");
    if (env != nullptr) {
      const double v = std::atof(env);
      if (v > 0) return v;
    }
    return 1.0;
  }();
  return scale;
}

uint32_t ScaledN(uint32_t n) {
  const double scaled = n * Scale();
  return static_cast<uint32_t>(std::max(200.0, std::llround(scaled) * 1.0));
}

uint32_t BenchTrees() {
  static const uint32_t trees = [] {
    const char* env = std::getenv("VERO_BENCH_TREES");
    if (env != nullptr) {
      const int v = std::atoi(env);
      if (v > 0) return static_cast<uint32_t>(v);
    }
    return 5u;
  }();
  return trees;
}

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("scale=%.3g, trees/run=%u (simulated cluster; comm time from\n"
              "the byte-exact network cost model, comp time = max worker\n"
              "thread-CPU seconds)\n",
              Scale(), BenchTrees());
  std::printf("=============================================================\n");
}

Dataset MakeWorkload(uint32_t n, uint32_t d, uint32_t c, double density,
                     uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = c;
  config.density = density;
  config.informative_ratio = std::min(1.0, std::max(0.2, density));
  config.seed = seed;
  return GenerateSynthetic(config);
}

uint32_t BenchThreads() {
  const uint32_t flag = ObsState().threads_flag;
  if (flag > 0) return flag;
  static const uint32_t env_threads = [] {
    const char* env = std::getenv("VERO_THREADS");
    if (env != nullptr) {
      const int v = std::atoi(env);
      if (v > 0) return static_cast<uint32_t>(v);
    }
    return 1u;
  }();
  return env_threads;
}

GbdtParams PaperParams(uint32_t num_layers) {
  GbdtParams params;
  params.num_trees = BenchTrees();
  params.num_layers = num_layers;
  params.num_candidate_splits = 20;
  params.learning_rate = 0.1;
  params.num_threads = BenchThreads();
  return params;
}

DistResult RunQuadrantSpec(const Dataset& train, Quadrant quadrant,
                           const BenchRunSpec& spec) {
  Cluster cluster(spec.workers, spec.network);
  if (spec.fault_plan != nullptr) {
    cluster.InstallFaultPlan(*spec.fault_plan);
  }
  DistTrainOptions options;
  options.params = spec.params;
  options.transform.encoding = spec.encoding;
  options.checkpoint = spec.checkpoint;
  options.max_recovery_attempts = spec.max_recovery_attempts;
  options.elastic_rejoin = spec.elastic_rejoin;
  const bool observe =
      ObsRequested() ||
      (obs::kObsEnabled && (spec.force_observe || spec.force_trace));
  if (!observe) {
    return TrainDistributed(cluster, train, quadrant, options, spec.valid,
                            spec.qd3_policy);
  }

  BenchObsState& s = ObsState();
  obs::ObsOptions obs_options;
  obs_options.trace =
      !s.trace_dir.empty() || !s.anatomy_path.empty() || spec.force_trace;
  obs::RunObserver observer(obs_options);
  cluster.AttachObserver(&observer);
  DistResult result = TrainDistributed(cluster, train, quadrant, options,
                                       spec.valid, spec.qd3_policy);

  char label[64];
  std::snprintf(label, sizeof(label), "run%03d-%s-w%d", s.run_counter++,
                QuadrantTag(quadrant), spec.workers);
  if (result.status.ok()) {
    // Stamp the model digest so sweep checkers can compare runs for
    // bit-identity (or provable divergence) from the report alone.
    const std::string text = ModelToText(result.model);
    result.report.model_digest = AuditDigestBytes(text.data(), text.size());
  }
  result.report.label = label;
  result.anatomy.label = result.report.label;
  if (!spec.label.empty()) {
    result.report.label += "-" + spec.label;
    result.anatomy.label = result.report.label;
  }
  if (observer.trace_enabled() && !s.trace_dir.empty()) {
    const std::string path =
        s.trace_dir + "/" + result.report.label + ".trace.json";
    const Status status = observer.trace().WriteChromeJson(path);
    if (status.ok()) {
      result.report.trace_path = path;
    } else {
      VERO_LOG(Warning) << "trace export failed: " << status.ToString();
    }
  }
  if (!s.report_path.empty()) {
    s.run_reports.push_back(result.report.ToJson());
  }
  if (!s.anatomy_path.empty() && result.anatomy.enabled) {
    s.anatomy_reports.push_back(result.anatomy.ToJson());
  }
  return result;
}

DistResult RunQuadrant(const Dataset& train, Quadrant quadrant, int workers,
                       const GbdtParams& params, const NetworkModel& network,
                       const Dataset* valid, Qd3IndexPolicy qd3_policy,
                       TransformEncoding encoding) {
  BenchRunSpec spec;
  spec.workers = workers;
  spec.params = params;
  spec.network = network;
  spec.valid = valid;
  spec.qd3_policy = qd3_policy;
  spec.encoding = encoding;
  return RunQuadrantSpec(train, quadrant, spec);
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace vero
