#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>

namespace vero {
namespace bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("VERO_SCALE");
    if (env != nullptr) {
      const double v = std::atof(env);
      if (v > 0) return v;
    }
    return 1.0;
  }();
  return scale;
}

uint32_t ScaledN(uint32_t n) {
  const double scaled = n * Scale();
  return static_cast<uint32_t>(std::max(200.0, std::llround(scaled) * 1.0));
}

uint32_t BenchTrees() {
  static const uint32_t trees = [] {
    const char* env = std::getenv("VERO_BENCH_TREES");
    if (env != nullptr) {
      const int v = std::atoi(env);
      if (v > 0) return static_cast<uint32_t>(v);
    }
    return 5u;
  }();
  return trees;
}

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("scale=%.3g, trees/run=%u (simulated cluster; comm time from\n"
              "the byte-exact network cost model, comp time = max worker\n"
              "thread-CPU seconds)\n",
              Scale(), BenchTrees());
  std::printf("=============================================================\n");
}

Dataset MakeWorkload(uint32_t n, uint32_t d, uint32_t c, double density,
                     uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = c;
  config.density = density;
  config.informative_ratio = std::min(1.0, std::max(0.2, density));
  config.seed = seed;
  return GenerateSynthetic(config);
}

GbdtParams PaperParams(uint32_t num_layers) {
  GbdtParams params;
  params.num_trees = BenchTrees();
  params.num_layers = num_layers;
  params.num_candidate_splits = 20;
  params.learning_rate = 0.1;
  return params;
}

DistResult RunQuadrant(const Dataset& train, Quadrant quadrant, int workers,
                       const GbdtParams& params, const NetworkModel& network,
                       const Dataset* valid, Qd3IndexPolicy qd3_policy,
                       TransformEncoding encoding) {
  Cluster cluster(workers, network);
  DistTrainOptions options;
  options.params = params;
  options.transform.encoding = encoding;
  return TrainDistributed(cluster, train, quadrant, options, valid,
                          qd3_policy);
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace vero
