file(REMOVE_RECURSE
  "CMakeFiles/fig12_industrial.dir/fig12_industrial.cc.o"
  "CMakeFiles/fig12_industrial.dir/fig12_industrial.cc.o.d"
  "fig12_industrial"
  "fig12_industrial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_industrial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
