# Empty dependencies file for fig12_industrial.
# This may be replaced when dependencies are built.
