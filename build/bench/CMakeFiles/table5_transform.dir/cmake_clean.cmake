file(REMOVE_RECURSE
  "CMakeFiles/table5_transform.dir/table5_transform.cc.o"
  "CMakeFiles/table5_transform.dir/table5_transform.cc.o.d"
  "table5_transform"
  "table5_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
