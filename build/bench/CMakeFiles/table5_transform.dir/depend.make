# Empty dependencies file for table5_transform.
# This may be replaced when dependencies are built.
