# Empty dependencies file for vero_bench_common.
# This may be replaced when dependencies are built.
