file(REMOVE_RECURSE
  "libvero_bench_common.a"
)
