file(REMOVE_RECURSE
  "CMakeFiles/vero_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/vero_bench_common.dir/bench_common.cc.o.d"
  "libvero_bench_common.a"
  "libvero_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
