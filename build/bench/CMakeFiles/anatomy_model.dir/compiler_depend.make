# Empty compiler generated dependencies file for anatomy_model.
# This may be replaced when dependencies are built.
