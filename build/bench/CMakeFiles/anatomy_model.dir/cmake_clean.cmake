file(REMOVE_RECURSE
  "CMakeFiles/anatomy_model.dir/anatomy_model.cc.o"
  "CMakeFiles/anatomy_model.dir/anatomy_model.cc.o.d"
  "anatomy_model"
  "anatomy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anatomy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
