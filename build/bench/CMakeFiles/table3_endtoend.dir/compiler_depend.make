# Empty compiler generated dependencies file for table3_endtoend.
# This may be replaced when dependencies are built.
