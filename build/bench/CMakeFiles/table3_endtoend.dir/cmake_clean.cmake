file(REMOVE_RECURSE
  "CMakeFiles/table3_endtoend.dir/table3_endtoend.cc.o"
  "CMakeFiles/table3_endtoend.dir/table3_endtoend.cc.o.d"
  "table3_endtoend"
  "table3_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
