file(REMOVE_RECURSE
  "CMakeFiles/table6_scalability.dir/table6_scalability.cc.o"
  "CMakeFiles/table6_scalability.dir/table6_scalability.cc.o.d"
  "table6_scalability"
  "table6_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
