# Empty dependencies file for table6_scalability.
# This may be replaced when dependencies are built.
