file(REMOVE_RECURSE
  "CMakeFiles/table7_yggdrasil.dir/table7_yggdrasil.cc.o"
  "CMakeFiles/table7_yggdrasil.dir/table7_yggdrasil.cc.o.d"
  "table7_yggdrasil"
  "table7_yggdrasil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_yggdrasil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
