# Empty compiler generated dependencies file for table7_yggdrasil.
# This may be replaced when dependencies are built.
