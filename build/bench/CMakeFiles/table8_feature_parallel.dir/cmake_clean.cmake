file(REMOVE_RECURSE
  "CMakeFiles/table8_feature_parallel.dir/table8_feature_parallel.cc.o"
  "CMakeFiles/table8_feature_parallel.dir/table8_feature_parallel.cc.o.d"
  "table8_feature_parallel"
  "table8_feature_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_feature_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
