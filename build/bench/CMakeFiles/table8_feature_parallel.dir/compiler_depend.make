# Empty compiler generated dependencies file for table8_feature_parallel.
# This may be replaced when dependencies are built.
