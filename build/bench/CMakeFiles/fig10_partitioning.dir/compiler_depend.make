# Empty compiler generated dependencies file for fig10_partitioning.
# This may be replaced when dependencies are built.
