file(REMOVE_RECURSE
  "CMakeFiles/fig10_partitioning.dir/fig10_partitioning.cc.o"
  "CMakeFiles/fig10_partitioning.dir/fig10_partitioning.cc.o.d"
  "fig10_partitioning"
  "fig10_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
