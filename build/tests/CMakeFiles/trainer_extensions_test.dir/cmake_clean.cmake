file(REMOVE_RECURSE
  "CMakeFiles/trainer_extensions_test.dir/trainer_extensions_test.cc.o"
  "CMakeFiles/trainer_extensions_test.dir/trainer_extensions_test.cc.o.d"
  "trainer_extensions_test"
  "trainer_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
