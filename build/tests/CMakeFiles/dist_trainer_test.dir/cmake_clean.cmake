file(REMOVE_RECURSE
  "CMakeFiles/dist_trainer_test.dir/dist_trainer_test.cc.o"
  "CMakeFiles/dist_trainer_test.dir/dist_trainer_test.cc.o.d"
  "dist_trainer_test"
  "dist_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
