# Empty compiler generated dependencies file for misc_unit_test.
# This may be replaced when dependencies are built.
