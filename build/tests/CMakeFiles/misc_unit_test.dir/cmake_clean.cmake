file(REMOVE_RECURSE
  "CMakeFiles/misc_unit_test.dir/misc_unit_test.cc.o"
  "CMakeFiles/misc_unit_test.dir/misc_unit_test.cc.o.d"
  "misc_unit_test"
  "misc_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
