file(REMOVE_RECURSE
  "CMakeFiles/column_grouping_test.dir/column_grouping_test.cc.o"
  "CMakeFiles/column_grouping_test.dir/column_grouping_test.cc.o.d"
  "column_grouping_test"
  "column_grouping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
