# Empty compiler generated dependencies file for column_grouping_test.
# This may be replaced when dependencies are built.
