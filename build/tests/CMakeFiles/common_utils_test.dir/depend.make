# Empty dependencies file for common_utils_test.
# This may be replaced when dependencies are built.
