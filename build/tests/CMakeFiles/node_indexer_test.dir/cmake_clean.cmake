file(REMOVE_RECURSE
  "CMakeFiles/node_indexer_test.dir/node_indexer_test.cc.o"
  "CMakeFiles/node_indexer_test.dir/node_indexer_test.cc.o.d"
  "node_indexer_test"
  "node_indexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_indexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
