file(REMOVE_RECURSE
  "CMakeFiles/binned_test.dir/binned_test.cc.o"
  "CMakeFiles/binned_test.dir/binned_test.cc.o.d"
  "binned_test"
  "binned_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
