# Empty dependencies file for binned_test.
# This may be replaced when dependencies are built.
