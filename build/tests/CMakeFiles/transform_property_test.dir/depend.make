# Empty dependencies file for transform_property_test.
# This may be replaced when dependencies are built.
