file(REMOVE_RECURSE
  "CMakeFiles/communicator_stress_test.dir/communicator_stress_test.cc.o"
  "CMakeFiles/communicator_stress_test.dir/communicator_stress_test.cc.o.d"
  "communicator_stress_test"
  "communicator_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/communicator_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
