# Empty dependencies file for communicator_stress_test.
# This may be replaced when dependencies are built.
