# Empty dependencies file for candidate_splits_test.
# This may be replaced when dependencies are built.
