file(REMOVE_RECURSE
  "CMakeFiles/candidate_splits_test.dir/candidate_splits_test.cc.o"
  "CMakeFiles/candidate_splits_test.dir/candidate_splits_test.cc.o.d"
  "candidate_splits_test"
  "candidate_splits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_splits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
