file(REMOVE_RECURSE
  "CMakeFiles/quantile_summary_test.dir/quantile_summary_test.cc.o"
  "CMakeFiles/quantile_summary_test.dir/quantile_summary_test.cc.o.d"
  "quantile_summary_test"
  "quantile_summary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantile_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
