# Empty dependencies file for column_group_test.
# This may be replaced when dependencies are built.
