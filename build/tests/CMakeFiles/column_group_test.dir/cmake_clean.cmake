file(REMOVE_RECURSE
  "CMakeFiles/column_group_test.dir/column_group_test.cc.o"
  "CMakeFiles/column_group_test.dir/column_group_test.cc.o.d"
  "column_group_test"
  "column_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
