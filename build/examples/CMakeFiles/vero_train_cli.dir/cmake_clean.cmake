file(REMOVE_RECURSE
  "CMakeFiles/vero_train_cli.dir/vero_train_cli.cpp.o"
  "CMakeFiles/vero_train_cli.dir/vero_train_cli.cpp.o.d"
  "vero_train_cli"
  "vero_train_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_train_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
