# Empty dependencies file for vero_train_cli.
# This may be replaced when dependencies are built.
