# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vero_predict_cli.
