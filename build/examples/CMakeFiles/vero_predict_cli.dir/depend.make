# Empty dependencies file for vero_predict_cli.
# This may be replaced when dependencies are built.
