file(REMOVE_RECURSE
  "CMakeFiles/vero_predict_cli.dir/vero_predict_cli.cpp.o"
  "CMakeFiles/vero_predict_cli.dir/vero_predict_cli.cpp.o.d"
  "vero_predict_cli"
  "vero_predict_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_predict_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
