
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/vero_predict_cli.cpp" "examples/CMakeFiles/vero_predict_cli.dir/vero_predict_cli.cpp.o" "gcc" "examples/CMakeFiles/vero_predict_cli.dir/vero_predict_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vero_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/vero_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
