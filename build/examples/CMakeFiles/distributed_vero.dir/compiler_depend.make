# Empty compiler generated dependencies file for distributed_vero.
# This may be replaced when dependencies are built.
