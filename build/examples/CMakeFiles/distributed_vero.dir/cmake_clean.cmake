file(REMOVE_RECURSE
  "CMakeFiles/distributed_vero.dir/distributed_vero.cpp.o"
  "CMakeFiles/distributed_vero.dir/distributed_vero.cpp.o.d"
  "distributed_vero"
  "distributed_vero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_vero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
