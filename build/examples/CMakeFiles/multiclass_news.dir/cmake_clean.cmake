file(REMOVE_RECURSE
  "CMakeFiles/multiclass_news.dir/multiclass_news.cpp.o"
  "CMakeFiles/multiclass_news.dir/multiclass_news.cpp.o.d"
  "multiclass_news"
  "multiclass_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclass_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
