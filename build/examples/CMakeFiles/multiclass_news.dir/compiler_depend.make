# Empty compiler generated dependencies file for multiclass_news.
# This may be replaced when dependencies are built.
