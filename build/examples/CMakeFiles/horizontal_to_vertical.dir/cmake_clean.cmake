file(REMOVE_RECURSE
  "CMakeFiles/horizontal_to_vertical.dir/horizontal_to_vertical.cpp.o"
  "CMakeFiles/horizontal_to_vertical.dir/horizontal_to_vertical.cpp.o.d"
  "horizontal_to_vertical"
  "horizontal_to_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizontal_to_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
