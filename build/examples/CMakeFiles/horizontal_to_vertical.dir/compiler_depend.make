# Empty compiler generated dependencies file for horizontal_to_vertical.
# This may be replaced when dependencies are built.
