# Empty dependencies file for quadrant_comparison.
# This may be replaced when dependencies are built.
