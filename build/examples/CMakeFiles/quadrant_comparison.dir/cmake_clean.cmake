file(REMOVE_RECURSE
  "CMakeFiles/quadrant_comparison.dir/quadrant_comparison.cpp.o"
  "CMakeFiles/quadrant_comparison.dir/quadrant_comparison.cpp.o.d"
  "quadrant_comparison"
  "quadrant_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadrant_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
