# Empty dependencies file for vero_cluster.
# This may be replaced when dependencies are built.
