file(REMOVE_RECURSE
  "CMakeFiles/vero_cluster.dir/communicator.cc.o"
  "CMakeFiles/vero_cluster.dir/communicator.cc.o.d"
  "CMakeFiles/vero_cluster.dir/fault_injector.cc.o"
  "CMakeFiles/vero_cluster.dir/fault_injector.cc.o.d"
  "libvero_cluster.a"
  "libvero_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
