file(REMOVE_RECURSE
  "libvero_cluster.a"
)
