# Empty dependencies file for vero_data.
# This may be replaced when dependencies are built.
