file(REMOVE_RECURSE
  "libvero_data.a"
)
