file(REMOVE_RECURSE
  "CMakeFiles/vero_data.dir/dataset.cc.o"
  "CMakeFiles/vero_data.dir/dataset.cc.o.d"
  "CMakeFiles/vero_data.dir/libsvm_io.cc.o"
  "CMakeFiles/vero_data.dir/libsvm_io.cc.o.d"
  "CMakeFiles/vero_data.dir/sparse_matrix.cc.o"
  "CMakeFiles/vero_data.dir/sparse_matrix.cc.o.d"
  "CMakeFiles/vero_data.dir/synthetic.cc.o"
  "CMakeFiles/vero_data.dir/synthetic.cc.o.d"
  "libvero_data.a"
  "libvero_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
