# Empty compiler generated dependencies file for vero_sketch.
# This may be replaced when dependencies are built.
