file(REMOVE_RECURSE
  "CMakeFiles/vero_sketch.dir/candidate_splits.cc.o"
  "CMakeFiles/vero_sketch.dir/candidate_splits.cc.o.d"
  "CMakeFiles/vero_sketch.dir/quantile_summary.cc.o"
  "CMakeFiles/vero_sketch.dir/quantile_summary.cc.o.d"
  "libvero_sketch.a"
  "libvero_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
