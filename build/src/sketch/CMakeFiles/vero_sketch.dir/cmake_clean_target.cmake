file(REMOVE_RECURSE
  "libvero_sketch.a"
)
