
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/candidate_splits.cc" "src/sketch/CMakeFiles/vero_sketch.dir/candidate_splits.cc.o" "gcc" "src/sketch/CMakeFiles/vero_sketch.dir/candidate_splits.cc.o.d"
  "/root/repo/src/sketch/quantile_summary.cc" "src/sketch/CMakeFiles/vero_sketch.dir/quantile_summary.cc.o" "gcc" "src/sketch/CMakeFiles/vero_sketch.dir/quantile_summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/vero_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
