file(REMOVE_RECURSE
  "CMakeFiles/vero_common.dir/bitmap.cc.o"
  "CMakeFiles/vero_common.dir/bitmap.cc.o.d"
  "CMakeFiles/vero_common.dir/crc32.cc.o"
  "CMakeFiles/vero_common.dir/crc32.cc.o.d"
  "CMakeFiles/vero_common.dir/logging.cc.o"
  "CMakeFiles/vero_common.dir/logging.cc.o.d"
  "CMakeFiles/vero_common.dir/random.cc.o"
  "CMakeFiles/vero_common.dir/random.cc.o.d"
  "CMakeFiles/vero_common.dir/status.cc.o"
  "CMakeFiles/vero_common.dir/status.cc.o.d"
  "CMakeFiles/vero_common.dir/threading.cc.o"
  "CMakeFiles/vero_common.dir/threading.cc.o.d"
  "libvero_common.a"
  "libvero_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
