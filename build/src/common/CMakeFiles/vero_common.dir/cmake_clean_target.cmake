file(REMOVE_RECURSE
  "libvero_common.a"
)
