# Empty compiler generated dependencies file for vero_common.
# This may be replaced when dependencies are built.
