file(REMOVE_RECURSE
  "CMakeFiles/vero_core.dir/binned.cc.o"
  "CMakeFiles/vero_core.dir/binned.cc.o.d"
  "CMakeFiles/vero_core.dir/cross_validation.cc.o"
  "CMakeFiles/vero_core.dir/cross_validation.cc.o.d"
  "CMakeFiles/vero_core.dir/histogram.cc.o"
  "CMakeFiles/vero_core.dir/histogram.cc.o.d"
  "CMakeFiles/vero_core.dir/loss.cc.o"
  "CMakeFiles/vero_core.dir/loss.cc.o.d"
  "CMakeFiles/vero_core.dir/metrics.cc.o"
  "CMakeFiles/vero_core.dir/metrics.cc.o.d"
  "CMakeFiles/vero_core.dir/model_io.cc.o"
  "CMakeFiles/vero_core.dir/model_io.cc.o.d"
  "CMakeFiles/vero_core.dir/node_indexer.cc.o"
  "CMakeFiles/vero_core.dir/node_indexer.cc.o.d"
  "CMakeFiles/vero_core.dir/split.cc.o"
  "CMakeFiles/vero_core.dir/split.cc.o.d"
  "CMakeFiles/vero_core.dir/trainer.cc.o"
  "CMakeFiles/vero_core.dir/trainer.cc.o.d"
  "CMakeFiles/vero_core.dir/tree.cc.o"
  "CMakeFiles/vero_core.dir/tree.cc.o.d"
  "libvero_core.a"
  "libvero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
