
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binned.cc" "src/core/CMakeFiles/vero_core.dir/binned.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/binned.cc.o.d"
  "/root/repo/src/core/cross_validation.cc" "src/core/CMakeFiles/vero_core.dir/cross_validation.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/cross_validation.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/core/CMakeFiles/vero_core.dir/histogram.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/histogram.cc.o.d"
  "/root/repo/src/core/loss.cc" "src/core/CMakeFiles/vero_core.dir/loss.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/loss.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/vero_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/vero_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/node_indexer.cc" "src/core/CMakeFiles/vero_core.dir/node_indexer.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/node_indexer.cc.o.d"
  "/root/repo/src/core/split.cc" "src/core/CMakeFiles/vero_core.dir/split.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/split.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/vero_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/tree.cc" "src/core/CMakeFiles/vero_core.dir/tree.cc.o" "gcc" "src/core/CMakeFiles/vero_core.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/vero_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vero_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
