# Empty compiler generated dependencies file for vero_core.
# This may be replaced when dependencies are built.
