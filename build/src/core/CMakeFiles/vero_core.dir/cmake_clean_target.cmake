file(REMOVE_RECURSE
  "libvero_core.a"
)
