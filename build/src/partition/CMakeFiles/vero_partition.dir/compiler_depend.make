# Empty compiler generated dependencies file for vero_partition.
# This may be replaced when dependencies are built.
