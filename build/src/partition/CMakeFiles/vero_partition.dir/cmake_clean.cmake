file(REMOVE_RECURSE
  "CMakeFiles/vero_partition.dir/column_group.cc.o"
  "CMakeFiles/vero_partition.dir/column_group.cc.o.d"
  "CMakeFiles/vero_partition.dir/column_grouping.cc.o"
  "CMakeFiles/vero_partition.dir/column_grouping.cc.o.d"
  "CMakeFiles/vero_partition.dir/transform.cc.o"
  "CMakeFiles/vero_partition.dir/transform.cc.o.d"
  "libvero_partition.a"
  "libvero_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
