file(REMOVE_RECURSE
  "libvero_partition.a"
)
