file(REMOVE_RECURSE
  "CMakeFiles/vero_quadrants.dir/advisor.cc.o"
  "CMakeFiles/vero_quadrants.dir/advisor.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/checkpoint.cc.o"
  "CMakeFiles/vero_quadrants.dir/checkpoint.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/dist_common.cc.o"
  "CMakeFiles/vero_quadrants.dir/dist_common.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/feature_parallel.cc.o"
  "CMakeFiles/vero_quadrants.dir/feature_parallel.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/qd1_trainer.cc.o"
  "CMakeFiles/vero_quadrants.dir/qd1_trainer.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/qd2_trainer.cc.o"
  "CMakeFiles/vero_quadrants.dir/qd2_trainer.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/qd3_trainer.cc.o"
  "CMakeFiles/vero_quadrants.dir/qd3_trainer.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/qd4_vero.cc.o"
  "CMakeFiles/vero_quadrants.dir/qd4_vero.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/train_distributed.cc.o"
  "CMakeFiles/vero_quadrants.dir/train_distributed.cc.o.d"
  "CMakeFiles/vero_quadrants.dir/vertical_common.cc.o"
  "CMakeFiles/vero_quadrants.dir/vertical_common.cc.o.d"
  "libvero_quadrants.a"
  "libvero_quadrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vero_quadrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
