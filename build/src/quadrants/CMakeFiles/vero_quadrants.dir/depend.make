# Empty dependencies file for vero_quadrants.
# This may be replaced when dependencies are built.
