file(REMOVE_RECURSE
  "libvero_quadrants.a"
)
