
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quadrants/advisor.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/advisor.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/advisor.cc.o.d"
  "/root/repo/src/quadrants/checkpoint.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/checkpoint.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/checkpoint.cc.o.d"
  "/root/repo/src/quadrants/dist_common.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/dist_common.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/dist_common.cc.o.d"
  "/root/repo/src/quadrants/feature_parallel.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/feature_parallel.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/feature_parallel.cc.o.d"
  "/root/repo/src/quadrants/qd1_trainer.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd1_trainer.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd1_trainer.cc.o.d"
  "/root/repo/src/quadrants/qd2_trainer.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd2_trainer.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd2_trainer.cc.o.d"
  "/root/repo/src/quadrants/qd3_trainer.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd3_trainer.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd3_trainer.cc.o.d"
  "/root/repo/src/quadrants/qd4_vero.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd4_vero.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/qd4_vero.cc.o.d"
  "/root/repo/src/quadrants/train_distributed.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/train_distributed.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/train_distributed.cc.o.d"
  "/root/repo/src/quadrants/vertical_common.cc" "src/quadrants/CMakeFiles/vero_quadrants.dir/vertical_common.cc.o" "gcc" "src/quadrants/CMakeFiles/vero_quadrants.dir/vertical_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/vero_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/vero_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/vero_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/vero_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
