#ifndef VERO_SKETCH_QUANTILE_SUMMARY_H_
#define VERO_SKETCH_QUANTILE_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace vero {

/// One entry of a quantile summary: a value together with bounds on its rank
/// in the underlying multiset.
///
/// rmin = total weight of elements strictly smaller than `value` (lower
/// bound), rmax = total weight of elements <= `value` (upper bound),
/// w = total weight of elements equal to `value`. Invariant:
/// rmin + w <= rmax.
struct SummaryEntry {
  double value = 0.0;
  double rmin = 0.0;
  double rmax = 0.0;
  double w = 0.0;

  /// Upper bound on the rank of values strictly less than this entry.
  double RMinNext() const { return rmin + w; }
  /// Lower bound on the rank of values greater than this entry.
  double RMaxPrev() const { return rmax - w; }
};

/// Mergeable epsilon-approximate quantile summary over weighted values
/// (the structure behind histogram candidate-split proposal, following the
/// GK/WQSummary family the paper cites [15, 22]).
///
/// Summaries built exactly from sorted data have zero rank error; Merge is
/// exact given exact inputs; Prune(b) introduces at most total_weight/(b-1)
/// rank error. Distributed pipelines build exact local summaries, merge
/// them pairwise, and prune to bound memory.
class QuantileSummary {
 public:
  QuantileSummary() = default;

  /// Builds an exact summary from unsorted, unweighted values.
  static QuantileSummary FromValues(std::vector<float> values);

  /// Builds an exact summary from unsorted (value, weight) pairs.
  static QuantileSummary FromWeightedValues(
      std::vector<std::pair<float, float>> weighted);

  /// Exact combination of two summaries (rank bounds add).
  QuantileSummary Merge(const QuantileSummary& other) const;

  /// Reduces to at most `max_entries` entries, keeping extremes; adds at most
  /// total_weight/(max_entries-1) rank error.
  QuantileSummary Prune(size_t max_entries) const;

  /// Value whose estimated rank ((rmin+rmax)/2) is closest to `rank`.
  /// Requires a non-empty summary.
  double Query(double rank) const;

  /// Proposes up to `q` split values at quantiles 1/q .. q/q; deduplicated
  /// and ending at the maximum value so every observed value falls in a bin.
  std::vector<float> ProposeSplits(uint32_t q) const;

  double total_weight() const { return total_weight_; }
  size_t num_entries() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<SummaryEntry>& entries() const { return entries_; }
  double min_value() const;
  double max_value() const;

  /// Checks rank-bound invariants; used by tests and debug paths.
  Status CheckInvariants() const;

  /// Wire format used when repartitioning sketches across workers.
  void SerializeTo(ByteWriter* writer) const;
  static Status Deserialize(ByteReader* reader, QuantileSummary* out);

 private:
  explicit QuantileSummary(std::vector<SummaryEntry> entries);

  std::vector<SummaryEntry> entries_;  // sorted by value, distinct.
  double total_weight_ = 0.0;
};

/// Streaming sketch: buffers incoming values and folds them into a pruned
/// summary once the buffer fills, keeping memory bounded regardless of
/// stream length.
class QuantileSketch {
 public:
  /// `max_entries` bounds the retained summary size (rank error ~ W/b);
  /// `buffer_size` controls the batching granularity.
  explicit QuantileSketch(size_t max_entries = 256, size_t buffer_size = 4096);

  void Add(float value);
  void AddWeighted(float value, float weight);

  /// Folds any buffered values and returns the current summary.
  const QuantileSummary& Finalize();

  /// Total weight added so far.
  double total_weight() const { return total_weight_; }

 private:
  void Flush();

  size_t max_entries_;
  size_t buffer_size_;
  std::vector<std::pair<float, float>> buffer_;
  QuantileSummary summary_;
  double total_weight_ = 0.0;
};

}  // namespace vero

#endif  // VERO_SKETCH_QUANTILE_SUMMARY_H_
