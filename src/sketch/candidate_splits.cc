#include "sketch/candidate_splits.h"

#include <algorithm>

#include "common/logging.h"
#include "sketch/quantile_summary.h"

namespace vero {

BinId CandidateSplits::BinForValue(FeatureId f, float v) const {
  const std::vector<float>& s = splits_[f];
  VERO_DCHECK(!s.empty());
  const auto it = std::lower_bound(s.begin(), s.end(), v);
  if (it == s.end()) return static_cast<BinId>(s.size() - 1);
  return static_cast<BinId>(it - s.begin());
}

uint64_t CandidateSplits::TotalBins() const {
  uint64_t total = 0;
  for (const auto& s : splits_) total += s.size();
  return total;
}

void CandidateSplits::SerializeTo(ByteWriter* writer) const {
  writer->WriteU32(max_bins_);
  writer->WriteU32(static_cast<uint32_t>(splits_.size()));
  for (const auto& s : splits_) writer->WriteVector(s);
}

Status CandidateSplits::Deserialize(ByteReader* reader, CandidateSplits* out) {
  uint32_t max_bins = 0;
  uint32_t num_features = 0;
  VERO_RETURN_IF_ERROR(reader->ReadU32(&max_bins));
  VERO_RETURN_IF_ERROR(reader->ReadU32(&num_features));
  std::vector<std::vector<float>> splits(num_features);
  for (auto& s : splits) {
    VERO_RETURN_IF_ERROR(reader->ReadVector(&s));
  }
  *out = CandidateSplits(max_bins, std::move(splits));
  return Status::OK();
}

CandidateSplits ProposeCandidateSplits(const Dataset& dataset, uint32_t q,
                                       size_t sketch_entries) {
  VERO_CHECK_GT(q, 0u);
  const CsrMatrix& m = dataset.matrix();
  std::vector<QuantileSketch> sketches;
  sketches.reserve(m.num_cols());
  for (uint32_t f = 0; f < m.num_cols(); ++f) {
    sketches.emplace_back(sketch_entries);
  }
  const auto& features = m.features();
  const auto& values = m.values();
  for (size_t k = 0; k < features.size(); ++k) {
    sketches[features[k]].Add(values[k]);
  }
  std::vector<std::vector<float>> splits(m.num_cols());
  for (uint32_t f = 0; f < m.num_cols(); ++f) {
    const QuantileSummary& summary = sketches[f].Finalize();
    if (!summary.empty()) splits[f] = summary.ProposeSplits(q);
  }
  return CandidateSplits(q, std::move(splits));
}

std::vector<BinId> BinValues(const CsrMatrix& matrix,
                             const CandidateSplits& splits) {
  const auto& features = matrix.features();
  const auto& values = matrix.values();
  std::vector<BinId> bins(features.size());
  for (size_t k = 0; k < features.size(); ++k) {
    const FeatureId f = features[k];
    bins[k] = (splits.NumBins(f) == 0) ? BinId{0}
                                       : splits.BinForValue(f, values[k]);
  }
  return bins;
}

}  // namespace vero
