#include "sketch/quantile_summary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vero {

QuantileSummary::QuantileSummary(std::vector<SummaryEntry> entries)
    : entries_(std::move(entries)) {
  total_weight_ = entries_.empty() ? 0.0 : entries_.back().rmax;
}

QuantileSummary QuantileSummary::FromValues(std::vector<float> values) {
  std::vector<std::pair<float, float>> weighted;
  weighted.reserve(values.size());
  for (float v : values) weighted.emplace_back(v, 1.0f);
  return FromWeightedValues(std::move(weighted));
}

QuantileSummary QuantileSummary::FromWeightedValues(
    std::vector<std::pair<float, float>> weighted) {
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<SummaryEntry> entries;
  double cum = 0.0;
  size_t i = 0;
  while (i < weighted.size()) {
    const float v = weighted[i].first;
    double w = 0.0;
    while (i < weighted.size() && weighted[i].first == v) {
      w += weighted[i].second;
      ++i;
    }
    SummaryEntry e;
    e.value = v;
    e.rmin = cum;
    e.w = w;
    cum += w;
    e.rmax = cum;
    entries.push_back(e);
  }
  return QuantileSummary(std::move(entries));
}

QuantileSummary QuantileSummary::Merge(const QuantileSummary& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  const auto& a = entries_;
  const auto& b = other.entries_;
  std::vector<SummaryEntry> out;
  out.reserve(a.size() + b.size());

  size_t i = 0, j = 0;
  // Rank contribution of the *other* list below the current position:
  // for an entry x taken from A, elements of B strictly below x contribute
  // at least b_prev.rmin + b_prev.w to rmin and at most b_next.rmax - b_next.w
  // to rmax (b_prev = last B entry < x, b_next = first B entry > x).
  while (i < a.size() || j < b.size()) {
    SummaryEntry e;
    if (j == b.size() || (i < a.size() && a[i].value < b[j].value)) {
      const SummaryEntry& x = a[i++];
      const double b_below = (j == 0) ? 0.0 : b[j - 1].RMinNext();
      const double b_above_floor =
          (j == b.size()) ? other.total_weight_ : b[j].RMaxPrev();
      e.value = x.value;
      e.w = x.w;
      e.rmin = x.rmin + b_below;
      e.rmax = x.rmax + b_above_floor;
    } else if (i == a.size() || b[j].value < a[i].value) {
      const SummaryEntry& x = b[j++];
      const double a_below = (i == 0) ? 0.0 : a[i - 1].RMinNext();
      const double a_above_floor =
          (i == a.size()) ? total_weight_ : a[i].RMaxPrev();
      e.value = x.value;
      e.w = x.w;
      e.rmin = x.rmin + a_below;
      e.rmax = x.rmax + a_above_floor;
    } else {
      // Equal values combine exactly.
      const SummaryEntry& x = a[i++];
      const SummaryEntry& y = b[j++];
      e.value = x.value;
      e.w = x.w + y.w;
      e.rmin = x.rmin + y.rmin;
      e.rmax = x.rmax + y.rmax;
    }
    out.push_back(e);
  }
  return QuantileSummary(std::move(out));
}

QuantileSummary QuantileSummary::Prune(size_t max_entries) const {
  if (entries_.size() <= max_entries || max_entries < 2) return *this;
  std::vector<SummaryEntry> out;
  out.reserve(max_entries);
  out.push_back(entries_.front());
  const size_t interior = max_entries - 2;
  size_t cursor = 0;
  for (size_t k = 1; k <= interior; ++k) {
    const double target =
        total_weight_ * static_cast<double>(k) / (interior + 1);
    // Advance to the entry whose midpoint rank is closest to target.
    while (cursor + 1 < entries_.size()) {
      const double mid_next =
          0.5 * (entries_[cursor + 1].rmin + entries_[cursor + 1].rmax);
      if (mid_next <= target) {
        ++cursor;
      } else {
        break;
      }
    }
    size_t pick = cursor;
    if (cursor + 1 < entries_.size()) {
      const double mid_cur =
          0.5 * (entries_[cursor].rmin + entries_[cursor].rmax);
      const double mid_next =
          0.5 * (entries_[cursor + 1].rmin + entries_[cursor + 1].rmax);
      if (std::abs(mid_next - target) < std::abs(mid_cur - target)) {
        pick = cursor + 1;
      }
    }
    if (out.back().value != entries_[pick].value &&
        entries_[pick].value != entries_.back().value) {
      out.push_back(entries_[pick]);
    }
  }
  if (entries_.size() > 1) out.push_back(entries_.back());
  return QuantileSummary(std::move(out));
}

double QuantileSummary::Query(double rank) const {
  VERO_CHECK(!empty());
  if (rank <= 0) return entries_.front().value;
  if (rank >= total_weight_) return entries_.back().value;
  size_t best = 0;
  double best_err = 1e300;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const double mid = 0.5 * (entries_[i].rmin + entries_[i].rmax);
    const double err = std::abs(mid - rank);
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return entries_[best].value;
}

std::vector<float> QuantileSummary::ProposeSplits(uint32_t q) const {
  std::vector<float> splits;
  if (empty() || q == 0) return splits;
  splits.reserve(q);
  for (uint32_t k = 1; k <= q; ++k) {
    const double rank = total_weight_ * static_cast<double>(k) / q;
    const float v = static_cast<float>(Query(rank));
    if (splits.empty() || v > splits.back()) splits.push_back(v);
  }
  // Guarantee the last split covers the maximum so binning is total.
  const float max_v = static_cast<float>(entries_.back().value);
  if (splits.empty() || splits.back() < max_v) {
    if (!splits.empty() && splits.size() >= q) {
      splits.back() = max_v;
    } else {
      splits.push_back(max_v);
    }
  }
  return splits;
}

double QuantileSummary::min_value() const {
  VERO_CHECK(!empty());
  return entries_.front().value;
}

double QuantileSummary::max_value() const {
  VERO_CHECK(!empty());
  return entries_.back().value;
}

Status QuantileSummary::CheckInvariants() const {
  double prev_value = -1e300;
  for (const auto& e : entries_) {
    if (e.value <= prev_value) {
      return Status::Corruption("summary values not strictly increasing");
    }
    prev_value = e.value;
    if (e.w < 0 || e.rmin < 0 || e.rmin + e.w > e.rmax + 1e-9) {
      return Status::Corruption("summary rank bounds violated");
    }
    if (e.rmax > total_weight_ + 1e-9) {
      return Status::Corruption("rmax exceeds total weight");
    }
  }
  return Status::OK();
}

void QuantileSummary::SerializeTo(ByteWriter* writer) const {
  writer->WriteU64(entries_.size());
  for (const auto& e : entries_) {
    writer->WriteF64(e.value);
    writer->WriteF64(e.rmin);
    writer->WriteF64(e.rmax);
    writer->WriteF64(e.w);
  }
}

Status QuantileSummary::Deserialize(ByteReader* reader, QuantileSummary* out) {
  uint64_t n = 0;
  VERO_RETURN_IF_ERROR(reader->ReadU64(&n));
  std::vector<SummaryEntry> entries(n);
  for (auto& e : entries) {
    VERO_RETURN_IF_ERROR(reader->ReadF64(&e.value));
    VERO_RETURN_IF_ERROR(reader->ReadF64(&e.rmin));
    VERO_RETURN_IF_ERROR(reader->ReadF64(&e.rmax));
    VERO_RETURN_IF_ERROR(reader->ReadF64(&e.w));
  }
  *out = QuantileSummary(std::move(entries));
  return Status::OK();
}

QuantileSketch::QuantileSketch(size_t max_entries, size_t buffer_size)
    : max_entries_(std::max<size_t>(max_entries, 4)),
      buffer_size_(std::max<size_t>(buffer_size, 16)) {
  // The buffer grows lazily: datasets allocate one sketch per feature, and
  // most features of a sparse dataset see few values.
}

void QuantileSketch::Add(float value) { AddWeighted(value, 1.0f); }

void QuantileSketch::AddWeighted(float value, float weight) {
  buffer_.emplace_back(value, weight);
  total_weight_ += weight;
  if (buffer_.size() >= buffer_size_) Flush();
}

void QuantileSketch::Flush() {
  if (buffer_.empty()) return;
  QuantileSummary batch =
      QuantileSummary::FromWeightedValues(std::move(buffer_));
  buffer_.clear();
  summary_ = summary_.Merge(batch).Prune(max_entries_);
}

const QuantileSummary& QuantileSketch::Finalize() {
  Flush();
  return summary_;
}

}  // namespace vero
