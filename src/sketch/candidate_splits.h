#ifndef VERO_SKETCH_CANDIDATE_SPLITS_H_
#define VERO_SKETCH_CANDIDATE_SPLITS_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/types.h"

namespace vero {

/// Per-feature candidate split values proposed from quantile sketches
/// (Figure 3 of the paper). Feature f has splits[f] ascending values; a raw
/// value v maps to the bin of the first split >= v. Features never observed
/// have an empty split list.
class CandidateSplits {
 public:
  CandidateSplits() = default;
  CandidateSplits(uint32_t max_bins, std::vector<std::vector<float>> splits)
      : max_bins_(max_bins), splits_(std::move(splits)) {}

  uint32_t num_features() const {
    return static_cast<uint32_t>(splits_.size());
  }
  /// Upper bound q on bins per feature.
  uint32_t max_bins() const { return max_bins_; }
  /// Number of bins actually used by feature f.
  uint32_t NumBins(FeatureId f) const {
    return static_cast<uint32_t>(splits_[f].size());
  }
  const std::vector<float>& FeatureSplits(FeatureId f) const {
    return splits_[f];
  }

  /// Bin of value v for feature f: first split >= v, clamped to the last
  /// bin (values above the observed max land in the top bin).
  BinId BinForValue(FeatureId f, float v) const;

  /// The raw split value represented by (feature, bin).
  float SplitValue(FeatureId f, BinId bin) const { return splits_[f][bin]; }

  /// Total candidate count, used for load-balanced column grouping.
  uint64_t TotalBins() const;

  void SerializeTo(ByteWriter* writer) const;
  static Status Deserialize(ByteReader* reader, CandidateSplits* out);

  bool operator==(const CandidateSplits& other) const {
    return max_bins_ == other.max_bins_ && splits_ == other.splits_;
  }

 private:
  uint32_t max_bins_ = 0;
  std::vector<std::vector<float>> splits_;
};

/// Builds exact per-feature candidate splits from a full dataset via
/// streaming sketches (single-node path; the distributed path builds local
/// sketches and merges them — see partition/transform).
CandidateSplits ProposeCandidateSplits(const Dataset& dataset, uint32_t q,
                                       size_t sketch_entries = 256);

/// Quantizes a CSR matrix into per-entry bin ids, parallel to
/// matrix.features(). Values for features with no splits map to bin 0.
std::vector<BinId> BinValues(const CsrMatrix& matrix,
                             const CandidateSplits& splits);

}  // namespace vero

#endif  // VERO_SKETCH_CANDIDATE_SPLITS_H_
