#ifndef VERO_OBS_TRACE_H_
#define VERO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace vero {
namespace obs {

/// Compile-time kill switch for the observability layer. Building with
/// -DVERO_OBS_DISABLED (cmake -DVERO_DISABLE_OBS=ON) turns the trace macros
/// into nothing and makes Cluster::AttachObserver a no-op, so instrumented
/// code paths carry zero overhead beyond an always-false pointer check.
#ifdef VERO_OBS_DISABLED
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// One closed span. Wall stamps are microseconds since the recorder's epoch
/// (steady clock, NOT deterministic); sim stamps are simulated-cluster
/// seconds (deterministic across identical seeded runs, -1 when the span has
/// no simulated clock); cpu_seconds is thread-CPU time inside the span.
struct TraceEvent {
  const char* name = "";      ///< Static-lifetime phase / collective name.
  const char* category = "";  ///< "phase", "collective", or "driver".
  int rank = -1;              ///< Worker rank; -1 for the driver thread.
  int32_t tree = -1;          ///< Boosting round, -1 outside training.
  int32_t layer = -1;         ///< Tree layer, -1 outside layer loops.
  int64_t wall_begin_us = 0;
  int64_t wall_end_us = 0;
  double sim_begin_s = -1.0;
  double sim_end_s = -1.0;
  double cpu_seconds = 0.0;
  uint64_t bytes = 0;  ///< Bytes sent inside the span (collectives).
  /// Per-rank collective sequence number within one cluster incarnation
  /// (-1 for non-collective spans). The SPMD ordering invariant — every
  /// worker issues the same collectives in the same order — makes
  /// (incarnation, op_id) a cross-rank join key: the n-th collective on
  /// every rank of one incarnation is the same logical operation, which is
  /// how the anatomy analyzer stitches per-rank spans into one causal DAG.
  int64_t op_id = -1;
  /// Cluster attach generation the recording buffer was created under; a
  /// recovery / resize transition rebuilds the cluster and re-attaches the
  /// observer, bumping this. 0 for the first incarnation and for buffers
  /// created outside a cluster attach (driver, tests).
  int32_t incarnation = 0;
};

class TraceRecorder;

/// Single-writer event sink. Each worker thread owns exactly one buffer, so
/// recording a span is a plain vector push with no synchronization — the
/// "lock-cheap" property the trainers rely on. Buffers are merged by the
/// recorder once the run is quiescent.
class TraceBuffer {
 public:
  int rank() const { return rank_; }

  /// Attribution for spans recorded until the next call; collectives pick
  /// these up so communication nests under the right tree / layer.
  void SetContext(int32_t tree, int32_t layer) {
    tree_ = tree;
    layer_ = layer;
  }
  int32_t tree() const { return tree_; }
  int32_t layer() const { return layer_; }

  /// Appends a closed event (rank and incarnation are filled in from the
  /// buffer).
  void Record(TraceEvent event) {
    event.rank = rank_;
    event.incarnation = incarnation_;
    events_.push_back(event);
  }

  int incarnation() const { return incarnation_; }

  /// Wall microseconds since the owning recorder's epoch.
  int64_t NowUs() const;

 private:
  friend class TraceRecorder;
  TraceBuffer(const TraceRecorder* recorder, int rank, int incarnation)
      : recorder_(recorder), rank_(rank), incarnation_(incarnation) {}

  const TraceRecorder* recorder_;
  int rank_;
  int incarnation_;
  int32_t tree_ = -1;
  int32_t layer_ = -1;
  std::vector<TraceEvent> events_;
};

/// Owns the per-thread TraceBuffers of one run and exports the merged span
/// stream as Chrome trace-event JSON (load in chrome://tracing or Perfetto).
/// CreateBuffer is thread-safe; merging/export must happen after all worker
/// threads have joined.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Registers a new single-writer buffer for `rank` (-1 = driver). The
  /// returned pointer stays valid for the recorder's lifetime. `incarnation`
  /// tags every event the buffer records with the cluster attach generation
  /// (a rank that rejoins after recovery owns one buffer per incarnation).
  TraceBuffer* CreateBuffer(int rank, int incarnation = 0);

  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// All events, buffers concatenated in creation order (rank order for a
  /// cluster run), insertion order within a buffer. Deterministic for
  /// seeded runs up to the wall / cpu fields.
  std::vector<TraceEvent> MergedEvents() const;

  size_t event_count() const;

  /// Chrome trace-event JSON ("traceEvents" array of ph:"X" complete
  /// events; tid = rank, deterministic fields duplicated under args).
  void ExportChromeJson(std::ostream& os) const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

inline int64_t TraceBuffer::NowUs() const { return recorder_->NowUs(); }

/// RAII span that always measures (wall + thread-CPU + optional simulated
/// clock) and records into `buffer` when tracing is on. Close() returns the
/// measured thread-CPU seconds so instrumented code can use the *same*
/// measurement for its cost accounting — trace totals then match TreeCost
/// by construction instead of within sampling error.
class PhaseSpan {
 public:
  /// `sim_clock` (optional) is sampled at open/close; point it at the
  /// worker's CommStats::sim_seconds for deterministic sim stamps.
  PhaseSpan(TraceBuffer* buffer, const char* name,
            const double* sim_clock = nullptr)
      : buffer_(buffer), sim_clock_(sim_clock) {
    event_.name = name;
    event_.category = "phase";
    if (buffer_ != nullptr) {
      event_.wall_begin_us = buffer_->NowUs();
      if (sim_clock_ != nullptr) event_.sim_begin_s = *sim_clock_;
    }
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Overrides the default "phase" category (e.g. "driver" for spans
  /// recorded by the orchestration thread).
  void set_category(const char* category) { event_.category = category; }

  /// Stops the span, records it, and returns its thread-CPU seconds.
  double Close() {
    cpu_.Stop();
    const double seconds = cpu_.Seconds();
    if (!closed_) {
      closed_ = true;
      if (buffer_ != nullptr) {
        event_.cpu_seconds = seconds;
        event_.wall_end_us = buffer_->NowUs();
        if (sim_clock_ != nullptr) event_.sim_end_s = *sim_clock_;
        event_.tree = buffer_->tree();
        event_.layer = buffer_->layer();
        buffer_->Record(event_);
      }
    }
    return seconds;
  }

  ~PhaseSpan() {
    if (!closed_) Close();
  }

 private:
  TraceBuffer* buffer_;
  const double* sim_clock_;
  TraceEvent event_;
  ThreadCpuTimer cpu_;
  bool closed_ = false;
};

}  // namespace obs
}  // namespace vero

/// Scoped span that compiles away entirely under VERO_OBS_DISABLED. Use for
/// purely observational spans; code that feeds measurements into cost
/// accounting uses PhaseSpan directly (the measurement must survive even
/// with tracing off).
#ifdef VERO_OBS_DISABLED
#define VERO_TRACE_SCOPE(buffer, name, sim_clock)
#else
#define VERO_TRACE_SCOPE_CAT2(a, b) a##b
#define VERO_TRACE_SCOPE_CAT(a, b) VERO_TRACE_SCOPE_CAT2(a, b)
#define VERO_TRACE_SCOPE(buffer, name, sim_clock)              \
  ::vero::obs::PhaseSpan VERO_TRACE_SCOPE_CAT(_vero_span_,     \
                                              __LINE__)(      \
      (buffer), (name), (sim_clock))
#endif

#endif  // VERO_OBS_TRACE_H_
