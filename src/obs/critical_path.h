#ifndef VERO_OBS_CRITICAL_PATH_H_
#define VERO_OBS_CRITICAL_PATH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace vero {
namespace obs {

/// Happens-before DAG stitched from the per-rank trace buffers of one run.
///
/// Every span contributes two vertices (its begin and its end, joined by a
/// duration edge); additional vertices model collective rendezvous. Edges
/// come from three sources:
///  * program order within one (incarnation, rank) buffer — a worker's
///    spans are causally ordered by its own execution;
///  * collective rendezvous: collective spans sharing (incarnation, op_id)
///    are the same logical operation (the SPMD contract keeps the per-rank
///    op counter in lockstep), so each participant's entry happens-before
///    every participant's exit, modeled as begin(span) -> join vertex ->
///    end(span) for every participant;
///  * incarnation joins: the j-th driver "recovery" / "resize" span
///    happens-after every span of incarnation j and happens-before every
///    span of incarnation j+1 (a recovery / resize transition rebuilds the
///    cluster and re-attaches the observer, bumping the incarnation).
///
/// A well-formed trace yields a single weakly-connected acyclic graph;
/// `weak_components` / `acyclic` are integrity signals the anatomy checker
/// enforces (an admitted rank whose spans failed to stitch would show up as
/// a second component).
struct CausalDag {
  std::vector<TraceEvent> events;  ///< Span i owns vertices 2i and 2i+1.

  /// Vertex count: 2 * events.size() span vertices + one join vertex per
  /// distinct (incarnation, op_id) collective group.
  size_t num_vertices = 0;
  /// Flat happens-before edge list over vertex ids.
  std::vector<std::pair<int32_t, int32_t>> edges;

  size_t num_program_edges = 0;
  size_t num_collective_edges = 0;
  size_t num_incarnation_edges = 0;
  size_t num_collective_groups = 0;
  int num_incarnations = 0;  ///< max event incarnation + 1 (0 when empty).
  size_t weak_components = 0;
  bool acyclic = true;

  static constexpr int32_t BeginVertex(size_t event_index) {
    return static_cast<int32_t>(2 * event_index);
  }
  static constexpr int32_t EndVertex(size_t event_index) {
    return static_cast<int32_t>(2 * event_index + 1);
  }
};

CausalDag BuildCausalDag(std::vector<TraceEvent> events);

/// Per (incarnation, rank, tree) aggregation of one rank's causal chain
/// through one boosting round: per-phase CPU sums accumulated in program
/// order (the same order, over the same doubles, as the trainer's TreeCost
/// accumulation) plus the collective sim window. `chain_seconds()` applies
/// the canonical TreeCost summation order, so on the committing incarnation
/// max-across-ranks per category reproduces the cost model bit-for-bit.
struct TreeChain {
  int incarnation = 0;
  int rank = -1;
  int32_t tree = -1;
  double gradient = 0.0;
  double hist = 0.0;
  double find_split = 0.0;
  double node_split = 0.0;
  double other = 0.0;
  /// Collective sim window: last collective sim_end minus first collective
  /// sim_begin for this (rank, tree). The sim clock only advances inside
  /// collectives during training, so this telescopes to exactly the
  /// trainer's `stats().sim_seconds - tree_sim_start` (same subtraction,
  /// same operands — bit-identical, not approximately equal).
  double comm = 0.0;
  bool has_comm = false;
  double comm_first_begin = 0.0;
  double comm_last_end = 0.0;
  /// True once the tree's closing margin-update span was seen: the tree
  /// completed on this incarnation (a crashed attempt leaves it false or
  /// the tree gets retrained on a later incarnation).
  bool complete = false;

  /// Canonical TreeCost order: ((((gradient + hist) + find_split) +
  /// node_split) + other) + comm, matching comp_seconds() + comm_seconds.
  double chain_seconds() const {
    return ((((gradient + hist) + find_split) + node_split) + other) + comm;
  }
};

/// Collects the per-(incarnation, rank, tree) chains from a merged event
/// stream, preserving program order within each buffer. Only the five
/// trainer phase spans and collective spans participate; checkpoint and
/// setup spans are attributed elsewhere. Rows are ordered by (tree,
/// incarnation, rank).
std::vector<TreeChain> CollectTreeChains(const std::vector<TraceEvent>& events);

/// For each tree, the incarnation whose training run was committed: the
/// last incarnation on which any rank completed the tree. A tree trained by
/// a failed attempt and retrained after recovery completes on both, and the
/// retraining (later) incarnation is the one whose costs the committed
/// DistResult carries; a tree restored from a checkpoint only ever
/// completed on the incarnation that originally trained it. Returns pairs
/// (tree, incarnation) sorted by tree.
std::vector<std::pair<int32_t, int>> ChooseTreeIncarnations(
    const std::vector<TreeChain>& chains);

/// One segment of the extracted critical path.
struct CriticalPathSegment {
  const char* kind = "tree";  ///< "setup", "tree", "recovery", "reshard".
  int32_t tree = -1;          ///< Valid for kind == "tree".
  int rank = -1;              ///< Blamed rank (-1 for driver segments).
  int incarnation = 0;
  double seconds = 0.0;
  /// Category carrying the largest share of the segment (one of the
  /// TreeChain field names, or the segment kind for driver segments).
  const char* dominant = "";
  double dominant_seconds = 0.0;
};

/// Critical path in simulated time, extracted at the cost model's tree
/// granularity: within each boosting round the path follows the rank whose
/// full-round chain (comp + comm) is heaviest, switching ranks at the
/// round-boundary collectives the DAG provides. This is the heaviest
/// tree-granular path through the causal DAG, and it inherits the model's
/// invariant: length_seconds <= the run's attributed total (per-category
/// maxima can only exceed a single rank's chain), with bit-exact equality
/// at W = 1 where the single rank's chain IS the total.
struct CriticalPath {
  double length_seconds = 0.0;
  std::vector<CriticalPathSegment> segments;  ///< Execution order.
};

/// Extracts the critical path from the collected chains. `chosen` maps each
/// tree to its committing incarnation (ChooseTreeIncarnations); setup /
/// recovery / reshard seconds become driver segments bracketing the trees.
/// length_seconds accumulates as ((setup + sum of per-tree maxima) +
/// recovery) + reshard — the same association order the anatomy total uses,
/// so the <= / == invariants hold bitwise.
CriticalPath ExtractCriticalPath(
    const std::vector<TreeChain>& chains,
    const std::vector<std::pair<int32_t, int>>& chosen, double setup_seconds,
    double recovery_seconds, double reshard_seconds);

}  // namespace obs
}  // namespace vero

#endif  // VERO_OBS_CRITICAL_PATH_H_
