#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vero {
namespace obs {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    std::string_view name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const Entry* entry = Find(name);
  return entry != nullptr && entry->kind == MetricKind::kCounter
             ? entry->counter
             : 0;
}

namespace {

/// Bucket-boundary quantile estimate: the upper edge of the smallest bucket
/// whose cumulative count reaches q * count, clamped into [min, max] so the
/// estimate never leaves the observed range. Deterministic given the
/// (deterministically bucketed) counts.
double BucketQuantile(const std::array<uint64_t, kHistogramBuckets>& buckets,
                      uint64_t count, double min, double max, double q) {
  if (count == 0) return 0.0;
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return std::min(std::max(HistogramMetric::BucketUpperBound(i), min),
                      max);
    }
  }
  return max;
}

}  // namespace

MetricsShard::Cell* MetricsShard::GetOrCreate(const std::string& name,
                                              MetricKind kind) {
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(name, std::make_unique<Cell>(Cell{kind, {}, {}, {}}))
             .first;
  }
  VERO_CHECK(it->second->kind == kind)
      << "metric '" << name << "' registered as "
      << MetricKindToString(it->second->kind) << ", requested as "
      << MetricKindToString(kind);
  return it->second.get();
}

Counter* MetricsShard::counter(const std::string& name) {
  return &GetOrCreate(name, MetricKind::kCounter)->counter;
}

Gauge* MetricsShard::gauge(const std::string& name) {
  return &GetOrCreate(name, MetricKind::kGauge)->gauge;
}

HistogramMetric* MetricsShard::histogram(const std::string& name) {
  return &GetOrCreate(name, MetricKind::kHistogram)->histogram;
}

MetricsShard* MetricsRegistry::CreateShard() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.emplace_back(new MetricsShard());
  return shards_.back().get();
}

MetricsSnapshot MetricsRegistry::Merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Keyed map keeps the snapshot sorted by name, the order the report
  // schema promises.
  std::map<std::string, MetricsSnapshot::Entry> merged;
  for (const auto& shard : shards_) {
    for (const auto& [name, cell] : shard->cells_) {
      auto it = merged.find(name);
      if (it == merged.end()) {
        MetricsSnapshot::Entry entry;
        entry.name = name;
        entry.kind = cell->kind;
        if (cell->kind == MetricKind::kHistogram) {
          entry.min = std::numeric_limits<double>::infinity();
          entry.max = -std::numeric_limits<double>::infinity();
        }
        it = merged.emplace(name, std::move(entry)).first;
      }
      MetricsSnapshot::Entry& entry = it->second;
      VERO_CHECK(entry.kind == cell->kind)
          << "metric '" << name << "' has kind "
          << MetricKindToString(cell->kind) << " in one shard and "
          << MetricKindToString(entry.kind) << " in another";
      switch (cell->kind) {
        case MetricKind::kCounter:
          entry.counter += cell->counter.value();
          break;
        case MetricKind::kGauge:
          if (cell->gauge.is_set()) {
            entry.gauge = entry.count == 0
                              ? cell->gauge.value()
                              : std::max(entry.gauge, cell->gauge.value());
            entry.count = 1;  // Reused as "any shard set this gauge".
          }
          break;
        case MetricKind::kHistogram:
          entry.count += cell->histogram.count();
          entry.sum += cell->histogram.sum();
          if (cell->histogram.count() > 0) {
            entry.min = std::min(entry.min, cell->histogram.min());
            entry.max = std::max(entry.max, cell->histogram.max());
            for (int i = 0; i < kHistogramBuckets; ++i) {
              entry.buckets[i] += cell->histogram.buckets()[i];
            }
          }
          break;
      }
    }
  }
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(merged.size());
  for (auto& [name, entry] : merged) {
    if (entry.kind == MetricKind::kGauge) {
      entry.count = 0;  // Internal "set" marker, not part of the snapshot.
    }
    if (entry.kind == MetricKind::kHistogram) {
      if (entry.count == 0) {
        entry.min = 0.0;
        entry.max = 0.0;
      }
      entry.p50 =
          BucketQuantile(entry.buckets, entry.count, entry.min, entry.max,
                         0.50);
      entry.p99 =
          BucketQuantile(entry.buckets, entry.count, entry.min, entry.max,
                         0.99);
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (const auto& [name, cell] : shard->cells_) {
      cell->counter.Reset();
      cell->gauge.Reset();
      cell->histogram.Reset();
    }
  }
}

}  // namespace obs
}  // namespace vero
