#ifndef VERO_OBS_METRICS_H_
#define VERO_OBS_METRICS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vero {
namespace obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindToString(MetricKind kind);

/// Monotonic event / byte count. Shard-local, so Add is a plain integer add.
class Counter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level. Merging across shards keeps the maximum, which is
/// the cluster-level semantics for peaks (histogram-pool high-water mark,
/// stored data bytes).
class Gauge {
 public:
  void Set(double value) {
    value_ = value;
    set_ = true;
  }
  void SetMax(double value) {
    if (!set_ || value > value_) Set(value);
  }
  double value() const { return value_; }
  bool is_set() const { return set_; }
  void Reset() {
    value_ = 0.0;
    set_ = false;
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Distribution summary (count / sum / min / max). Used for durations —
/// checkpoint latency, straggler delays — where both the total and the
/// extremes matter.
class HistogramMetric {
 public:
  void Observe(double value) {
    ++count_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  void Reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Point-in-time view of every metric, merged across shards and sorted by
/// name (the report JSON schema promises that ordering).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    uint64_t counter = 0;  ///< kCounter: summed value.
    double gauge = 0.0;    ///< kGauge: max across shards.
    // kHistogram: merged distribution.
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  std::vector<Entry> entries;

  const Entry* Find(std::string_view name) const;
  /// Convenience: counter value by name (0 when absent).
  uint64_t CounterValue(std::string_view name) const;
};

/// One worker's private metric cells. Lookups get-or-create by name; the
/// returned typed handles are stable for the shard's lifetime, so hot paths
/// resolve a handle once and then pay a single add per update with no
/// locking (each shard has exactly one writer thread).
class MetricsShard {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name);

 private:
  friend class MetricsRegistry;

  struct Cell {
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    HistogramMetric histogram;
  };

  Cell* GetOrCreate(const std::string& name, MetricKind kind);

  // std::map keeps per-shard iteration order deterministic for merging.
  std::map<std::string, std::unique_ptr<Cell>> cells_;
};

/// Run-level registry: hands out per-worker shards during setup (locked,
/// cold) and merges them into a snapshot once the run is quiescent.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a new single-writer shard; the pointer stays valid for the
  /// registry's lifetime.
  MetricsShard* CreateShard();

  /// Merged view of all shards: counters sum, gauges keep the max, and
  /// histograms combine count/sum/min/max. Call only when no worker thread
  /// is writing.
  MetricsSnapshot Merged() const;

  /// Zeroes every metric in every shard (handles stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MetricsShard>> shards_;
};

}  // namespace obs
}  // namespace vero

#endif  // VERO_OBS_METRICS_H_
