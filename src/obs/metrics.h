#ifndef VERO_OBS_METRICS_H_
#define VERO_OBS_METRICS_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vero {
namespace obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindToString(MetricKind kind);

/// Monotonic event / byte count. Shard-local, so Add is a plain integer add.
class Counter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level. Merging across shards keeps the maximum, which is
/// the cluster-level semantics for peaks (histogram-pool high-water mark,
/// stored data bytes).
class Gauge {
 public:
  void Set(double value) {
    value_ = value;
    set_ = true;
  }
  void SetMax(double value) {
    if (!set_ || value > value_) Set(value);
  }
  double value() const { return value_; }
  bool is_set() const { return set_; }
  void Reset() {
    value_ = 0.0;
    set_ = false;
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Number of fixed base-2 log buckets every HistogramMetric carries. Bucket
/// i covers [2^(i + kHistogramMinExp), 2^(i + 1 + kHistogramMinExp)); with
/// kHistogramMinExp = -30 the range spans ~1 ns to ~4.7 hours (in seconds),
/// with under- / overflow clamped into the end buckets.
inline constexpr int kHistogramBuckets = 44;
inline constexpr int kHistogramMinExp = -30;

/// Distribution summary (count / sum / min / max plus fixed log-bucket
/// counts for quantile estimates). Used for durations — checkpoint latency,
/// straggler delays, per-op collective time — where the total, the
/// extremes, and the shape all matter. Bucketing is deterministic: the same
/// observations always land in the same buckets, so merged p50/p99 are
/// stable across runs and platforms.
class HistogramMetric {
 public:
  /// Fixed bucket for `value`: floor(log2(value)) shifted by
  /// kHistogramMinExp, clamped into [0, kHistogramBuckets). Non-positive
  /// values land in bucket 0.
  static int BucketIndex(double value) {
    if (!(value > 0.0)) return 0;
    int exp = 0;
    std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1).
    const int index = (exp - 1) - kHistogramMinExp;
    if (index < 0) return 0;
    if (index >= kHistogramBuckets) return kHistogramBuckets - 1;
    return index;
  }

  /// Exclusive upper edge of bucket `index`.
  static double BucketUpperBound(int index) {
    return std::ldexp(1.0, index + 1 + kHistogramMinExp);
  }

  void Observe(double value) {
    ++count_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
    ++buckets_[BucketIndex(value)];
  }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::array<uint64_t, kHistogramBuckets>& buckets() const {
    return buckets_;
  }
  void Reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    buckets_.fill(0);
  }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<uint64_t, kHistogramBuckets> buckets_{};
};

/// Point-in-time view of every metric, merged across shards and sorted by
/// name (the report JSON schema promises that ordering).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    uint64_t counter = 0;  ///< kCounter: summed value.
    double gauge = 0.0;    ///< kGauge: max across shards.
    // kHistogram: merged distribution. p50 / p99 are bucket-boundary
    // quantile estimates from the merged log buckets, clamped into
    // [min, max] (so a single-observation histogram reports the exact
    // value); 0 when the histogram is empty.
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    std::array<uint64_t, kHistogramBuckets> buckets{};
  };

  std::vector<Entry> entries;

  const Entry* Find(std::string_view name) const;
  /// Convenience: counter value by name (0 when absent).
  uint64_t CounterValue(std::string_view name) const;
};

/// One worker's private metric cells. Lookups get-or-create by name; the
/// returned typed handles are stable for the shard's lifetime, so hot paths
/// resolve a handle once and then pay a single add per update with no
/// locking (each shard has exactly one writer thread).
class MetricsShard {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name);

 private:
  friend class MetricsRegistry;

  struct Cell {
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    HistogramMetric histogram;
  };

  Cell* GetOrCreate(const std::string& name, MetricKind kind);

  // std::map keeps per-shard iteration order deterministic for merging.
  std::map<std::string, std::unique_ptr<Cell>> cells_;
};

/// Run-level registry: hands out per-worker shards during setup (locked,
/// cold) and merges them into a snapshot once the run is quiescent.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a new single-writer shard; the pointer stays valid for the
  /// registry's lifetime.
  MetricsShard* CreateShard();

  /// Merged view of all shards: counters sum, gauges keep the max, and
  /// histograms combine count/sum/min/max. Call only when no worker thread
  /// is writing.
  MetricsSnapshot Merged() const;

  /// Zeroes every metric in every shard (handles stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MetricsShard>> shards_;
};

}  // namespace obs
}  // namespace vero

#endif  // VERO_OBS_METRICS_H_
