#include "obs/trace.h"

#include <fstream>

#include "obs/json_writer.h"

namespace vero {
namespace obs {

TraceBuffer* TraceRecorder::CreateBuffer(int rank, int incarnation) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.emplace_back(new TraceBuffer(this, rank, incarnation));
  return buffers_.back().get();
}

std::vector<TraceEvent> TraceRecorder::MergedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> merged;
  size_t total = 0;
  for (const auto& b : buffers_) total += b->events_.size();
  merged.reserve(total);
  for (const auto& b : buffers_) {
    merged.insert(merged.end(), b->events_.begin(), b->events_.end());
  }
  return merged;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& b : buffers_) total += b->events_.size();
  return total;
}

void TraceRecorder::ExportChromeJson(std::ostream& os) const {
  const std::vector<TraceEvent> events = MergedEvents();
  JsonWriter w(os);
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("name");
    w.String(ev.name);
    w.Key("cat");
    w.String(ev.category);
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Int(ev.wall_begin_us);
    w.Key("dur");
    w.Int(ev.wall_end_us - ev.wall_begin_us);
    w.Key("pid");
    w.Int(0);
    // Perfetto renders one track per tid; map the driver (-1) onto its own
    // track above the workers.
    w.Key("tid");
    w.Int(ev.rank < 0 ? 1000 : ev.rank);
    w.Key("args");
    w.BeginObject();
    w.Key("rank");
    w.Int(ev.rank);
    w.Key("tree");
    w.Int(ev.tree);
    w.Key("layer");
    w.Int(ev.layer);
    w.Key("sim_begin");
    w.Double(ev.sim_begin_s);
    w.Key("sim_end");
    w.Double(ev.sim_end_s);
    w.Key("cpu_seconds");
    w.Double(ev.cpu_seconds);
    w.Key("bytes");
    w.UInt(ev.bytes);
    w.Key("op_id");
    w.Int(ev.op_id);
    w.Key("incarnation");
    w.Int(ev.incarnation);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open trace file for writing: " + path);
  }
  ExportChromeJson(out);
  out.flush();
  if (!out) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace vero
