#ifndef VERO_OBS_JSON_WRITER_H_
#define VERO_OBS_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace vero {
namespace obs {

/// Minimal streaming JSON writer used by the trace / report exporters.
/// Handles comma placement and string escaping; the caller is responsible
/// for balanced Begin/End calls. Doubles are emitted with %.17g so values
/// round-trip exactly (the report schema promises stable numbers).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject() {
    Separate();
    os_ << '{';
    stack_.push_back(false);
  }
  void EndObject() {
    stack_.pop_back();
    os_ << '}';
  }
  void BeginArray() {
    Separate();
    os_ << '[';
    stack_.push_back(false);
  }
  void EndArray() {
    stack_.pop_back();
    os_ << ']';
  }

  void Key(std::string_view key) {
    Separate();
    WriteEscaped(key);
    os_ << ':';
    key_pending_ = true;
  }

  void String(std::string_view value) {
    Separate();
    WriteEscaped(value);
  }
  void Bool(bool value) {
    Separate();
    os_ << (value ? "true" : "false");
  }
  void Int(int64_t value) {
    Separate();
    os_ << value;
  }
  void UInt(uint64_t value) {
    Separate();
    os_ << value;
  }
  void Double(double value) {
    Separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os_ << buf;
  }

 private:
  /// Emits the comma before a new value/key when needed and marks the
  /// enclosing container as non-empty.
  void Separate() {
    if (key_pending_) {
      key_pending_ = false;
      return;  // Value directly follows its key.
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  void WriteEscaped(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\r':
          os_ << "\\r";
          break;
        case '\t':
          os_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // Per open container: "has emitted an element".
  bool key_pending_ = false;
};

}  // namespace obs
}  // namespace vero

#endif  // VERO_OBS_JSON_WRITER_H_
