#ifndef VERO_OBS_REPORT_H_
#define VERO_OBS_REPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vero {
namespace obs {

/// What to collect for one run. Metrics are cheap (per-worker counter adds)
/// and on by default whenever an observer is attached; tracing buffers every
/// phase / collective span and is opt-in.
struct ObsOptions {
  bool trace = false;
};

/// Bundles the per-run trace recorder and metrics registry. Owned by the
/// caller (bench harness / test) and attached to one or more Clusters —
/// recovery clusters re-attach the same observer, so a run's observability
/// survives worker failures.
class RunObserver {
 public:
  explicit RunObserver(ObsOptions options = {}) : options_(options) {}

  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  const ObsOptions& options() const { return options_; }
  bool trace_enabled() const { return kObsEnabled && options_.trace; }

  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Buffer / shard for the driver thread (the code orchestrating attempts
  /// outside any worker), created lazily and reused.
  TraceBuffer* driver_buffer();
  MetricsShard* driver_shard();

  /// Called by Cluster::AttachObserver: advances the attach generation and
  /// returns it (0 for the first cluster, 1 for the first recovery / resize
  /// rebuild, ...). Worker trace buffers created during that attach carry
  /// the returned incarnation, which is how the anatomy analyzer tells the
  /// pre- and post-transition halves of one logical rank apart.
  int BeginIncarnation() { return ++incarnation_; }
  int incarnation() const { return incarnation_.load(); }

 private:
  ObsOptions options_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  std::mutex driver_mu_;
  TraceBuffer* driver_buffer_ = nullptr;
  MetricsShard* driver_shard_ = nullptr;
  std::atomic<int> incarnation_{-1};
};

/// Machine-readable summary of one distributed training run: headline cost
/// numbers, per-phase totals, goodput, recovery cost, and the merged metric
/// snapshot. Serialized with the stable "vero.run_report.v1" JSON schema
/// (documented in docs/observability.md); benches collect one per run under
/// --report so figure/table outputs are scriptable.
struct RunReport {
  bool enabled = false;

  std::string label;     ///< Harness-assigned run id (may be empty).
  std::string quadrant;  ///< QuadrantToString of the trained quadrant.
  int workers = 0;       ///< Initial cluster size.
  uint32_t trees = 0;    ///< Trees in the final model.

  /// FNV-1a digest of the final model's canonical text form (0 = not
  /// stamped). Two runs that trained the same model bit-for-bit share a
  /// digest, so sweep checkers can assert "integrity=off is byte-identical"
  /// or "the healed model matches the clean one" without shipping models.
  uint64_t model_digest = 0;

  /// Modeled seconds (sum over trees of max-comp + max-comm).
  double train_seconds = 0.0;
  double comp_seconds = 0.0;
  double comm_seconds = 0.0;
  double setup_seconds = 0.0;

  /// Per-phase totals, summed over trees of the cluster-level (max across
  /// workers) per-round cost — the Fig. 10 decomposition.
  struct Phases {
    double gradient = 0.0;
    double hist = 0.0;
    double find_split = 0.0;
    double node_split = 0.0;
    double other = 0.0;
    double comm = 0.0;
  } phases;

  uint64_t train_bytes_sent = 0;
  uint64_t peak_histogram_bytes = 0;
  uint64_t data_bytes = 0;

  /// Goodput: work thrown away by failed attempts (zero on clean runs).
  uint64_t wasted_bytes = 0;
  double wasted_seconds = 0.0;

  struct Recovery {
    int failures_observed = 0;
    int recovery_attempts = 0;
    uint32_t trees_recovered = 0;
    uint32_t trees_retrained = 0;
    int final_world_size = 0;
    int rejoined_workers = 0;
    int rendezvous_failures = 0;
    double recovery_seconds = 0.0;
    uint64_t recovery_bytes = 0;
  } recovery;

  /// Elasticity cost (zero unless a scale-up/scale-down was scheduled).
  struct Elasticity {
    int resizes = 0;
    int admitted_workers = 0;
    int retired_workers = 0;
    uint64_t reshard_bytes = 0;
    double reshard_seconds = 0.0;
  } elasticity;

  /// Integrity auditing outcome ("off" with all-zero counters when the
  /// auditor is disabled).
  struct Integrity {
    std::string level = "off";
    uint64_t checks = 0;
    uint64_t violations = 0;
    uint64_t recomputes = 0;
    uint64_t escalations = 0;
    int rollbacks = 0;
    int last_blamed_rank = -1;
    uint64_t wasted_bytes = 0;
    double wasted_seconds = 0.0;
  } integrity;

  MetricsSnapshot metrics;

  /// Where the run's Chrome trace JSON was written ("" = not exported).
  std::string trace_path;

  void AppendJson(std::ostream& os) const;
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace vero

#endif  // VERO_OBS_REPORT_H_
