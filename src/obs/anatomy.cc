#include "obs/anatomy.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/json_writer.h"

namespace vero {
namespace obs {

namespace {

double MetricSum(const MetricsSnapshot& metrics, std::string_view name) {
  const MetricsSnapshot::Entry* entry = metrics.Find(name);
  return entry == nullptr ? 0.0 : entry->sum;
}

bool NameIs(const TraceEvent& ev, const char* name) {
  return std::strcmp(ev.name, name) == 0;
}

bool NameStartsWith(const TraceEvent& ev, std::string_view prefix) {
  return std::string_view(ev.name).substr(0, prefix.size()) == prefix;
}

}  // namespace

AnatomyReport BuildAnatomyReport(std::vector<TraceEvent> events,
                                 const MetricsSnapshot& metrics,
                                 const AnatomyTotals& totals) {
  AnatomyReport r;
  r.enabled = true;
  r.label = totals.label;
  r.quadrant = totals.quadrant;
  r.workers = totals.workers;
  r.trees = totals.trees;
  r.setup_seconds = totals.setup_seconds;
  r.train_seconds = totals.train_seconds;
  r.recovery_seconds = totals.recovery_seconds;
  r.reshard_seconds = totals.reshard_seconds;
  r.wasted_seconds = totals.wasted_seconds;
  r.train_bytes_sent = totals.train_bytes_sent;
  // Canonical association order; check_anatomy.py re-sums the emitted
  // components in exactly this order and demands bit-equality.
  r.total_seconds = ((totals.setup_seconds + totals.train_seconds) +
                     totals.recovery_seconds) +
                    totals.reshard_seconds;

  CausalDag dag = BuildCausalDag(std::move(events));
  r.incarnations = dag.num_incarnations;
  r.dag.events = dag.events.size();
  r.dag.vertices = dag.num_vertices;
  r.dag.program_edges = dag.num_program_edges;
  r.dag.collective_edges = dag.num_collective_edges;
  r.dag.incarnation_edges = dag.num_incarnation_edges;
  r.dag.collective_groups = dag.num_collective_groups;
  r.dag.weak_components = dag.weak_components;
  r.dag.acyclic = dag.acyclic;

  const std::vector<TreeChain> chains = CollectTreeChains(dag.events);
  const std::vector<std::pair<int32_t, int>> chosen =
      ChooseTreeIncarnations(chains);

  // Per-tree rows: per-category maxima across ranks of the committing
  // incarnation — the same plain std::max over the same doubles the
  // trainer's InstrumentMax reduced, summed in the canonical TreeCost
  // order. Summing the row totals left-to-right reproduces
  // DistResult::TrainSeconds() bit-for-bit; `exact` records that check.
  double attributed = 0.0;
  double barrier_skew = 0.0;
  r.per_tree.reserve(chosen.size());
  for (const auto& [tree, incarnation] : chosen) {
    AnatomyReport::TreeRow row;
    row.tree = tree;
    row.incarnation = incarnation;
    bool first = true;
    double best_comp = 0.0;
    double min_comm = 0.0;
    for (const TreeChain& chain : chains) {
      if (chain.tree != tree || chain.incarnation != incarnation) continue;
      const double comp = ((((chain.gradient + chain.hist) +
                             chain.find_split) +
                            chain.node_split) +
                           chain.other);
      if (first) {
        row.gradient = chain.gradient;
        row.hist = chain.hist;
        row.find_split = chain.find_split;
        row.node_split = chain.node_split;
        row.other = chain.other;
        row.comm = chain.comm;
        row.blame_comp_rank = chain.rank;
        row.blame_comm_rank = chain.rank;
        best_comp = comp;
        min_comm = chain.comm;
        first = false;
        continue;
      }
      row.gradient = std::max(row.gradient, chain.gradient);
      row.hist = std::max(row.hist, chain.hist);
      row.find_split = std::max(row.find_split, chain.find_split);
      row.node_split = std::max(row.node_split, chain.node_split);
      row.other = std::max(row.other, chain.other);
      if (chain.comm > row.comm) {
        row.comm = chain.comm;
        row.blame_comm_rank = chain.rank;
      }
      min_comm = std::min(min_comm, chain.comm);
      if (comp > best_comp) {
        best_comp = comp;
        row.blame_comp_rank = chain.rank;
      }
    }
    if (first) continue;  // No chains for this tree (cannot happen).
    row.total = ((((row.gradient + row.hist) + row.find_split) +
                  row.node_split) +
                 row.other) +
                row.comm;
    attributed += row.total;
    barrier_skew += row.comm - min_comm;
    r.per_tree.push_back(row);
  }
  r.attributed_train_seconds = attributed;
  r.exact = attributed == totals.train_seconds;

  // Per-(incarnation, rank) skew rows; comm here is the display sum of
  // per-collective sim deltas, not the exact-sum window.
  std::map<std::pair<int, int>, AnatomyReport::RankRow> rank_rows;
  double sketch_seconds = 0.0;
  double transform_seconds = 0.0;
  double checkpoint_seconds = 0.0;
  for (const TraceEvent& ev : dag.events) {
    if (NameIs(ev, "sketch-build")) {
      sketch_seconds += ev.cpu_seconds;
    } else if (NameIs(ev, "transform-encode") ||
               NameIs(ev, "transform-decode") ||
               NameIs(ev, "label-broadcast")) {
      transform_seconds += ev.cpu_seconds;
    } else if (NameStartsWith(ev, "checkpoint")) {
      checkpoint_seconds += ev.cpu_seconds;
    }
    if (ev.rank < 0) continue;
    AnatomyReport::RankRow& row = rank_rows[{ev.incarnation, ev.rank}];
    row.incarnation = ev.incarnation;
    row.rank = ev.rank;
    ++row.events;
    row.bytes += ev.bytes;
    if (std::strcmp(ev.category, "collective") == 0) {
      if (ev.sim_end_s >= 0.0 && ev.sim_begin_s >= 0.0) {
        row.comm_seconds += ev.sim_end_s - ev.sim_begin_s;
      }
    } else {
      row.comp_seconds += ev.cpu_seconds;
    }
  }
  r.per_rank.reserve(rank_rows.size());
  for (const auto& [key, row] : rank_rows) r.per_rank.push_back(row);

  // Display taxonomy. Compute / comm aggregates sum the per-tree rows; wait
  // categories are overlays (their seconds already sit inside the comm
  // windows) sourced from the mitigation metrics and the per-tree comm
  // spread.
  double gradient = 0.0, hist = 0.0, split_eval = 0.0, partition = 0.0,
         other = 0.0, comm_total = 0.0;
  for (const AnatomyReport::TreeRow& row : r.per_tree) {
    gradient += row.gradient;
    hist += row.hist;
    split_eval += row.find_split;
    partition += row.node_split;
    other += row.other;
    comm_total += row.comm;
  }
  r.categories = {
      {"comm.total", comm_total},
      {"compute.gradient", gradient},
      {"compute.hist_build", hist},
      {"compute.split_eval", split_eval},
      {"compute.partition", partition},
      {"compute.other", other},
      {"compute.sketch", sketch_seconds},
      {"compute.transform", transform_seconds},
      {"setup", totals.setup_seconds},
      {"checkpoint", checkpoint_seconds},
      {"recovery", totals.recovery_seconds},
      {"reshard", totals.reshard_seconds},
      {"wasted", totals.wasted_seconds},
      {"wait.deadline_wait",
       MetricSum(metrics, "staleness.deadline_wait_seconds")},
      {"wait.straggler_absorb",
       MetricSum(metrics, "staleness.deferred_seconds") +
           MetricSum(metrics, "speculation.absorbed_seconds")},
      {"wait.injected_stall", MetricSum(metrics, "comm.straggler_seconds")},
      {"wait.barrier_skew", barrier_skew},
  };
  std::sort(r.categories.begin(), r.categories.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Per-op communication profile from the comm.<Op>.sim_seconds histograms.
  for (const MetricsSnapshot::Entry& entry : metrics.entries) {
    if (entry.kind != MetricKind::kHistogram || entry.count == 0) continue;
    const std::string_view name(entry.name);
    constexpr std::string_view kPrefix = "comm.";
    constexpr std::string_view kSuffix = ".sim_seconds";
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    if (name.substr(name.size() - kSuffix.size()) != kSuffix) continue;
    AnatomyReport::CommOp op;
    op.op = std::string(name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size()));
    op.ops = entry.count;
    op.sim_seconds = entry.sum;
    op.p50 = entry.p50;
    op.p99 = entry.p99;
    r.comm_ops.push_back(std::move(op));
  }
  std::sort(r.comm_ops.begin(), r.comm_ops.end(),
            [](const AnatomyReport::CommOp& a, const AnatomyReport::CommOp& b) {
              return a.op < b.op;
            });

  r.critical_path =
      ExtractCriticalPath(chains, chosen, totals.setup_seconds,
                          totals.recovery_seconds, totals.reshard_seconds);
  return r;
}

AnatomyReport BuildAnatomyReport(const RunObserver& observer,
                                 const AnatomyTotals& totals) {
  return BuildAnatomyReport(observer.trace().MergedEvents(),
                            observer.metrics().Merged(), totals);
}

void AnatomyReport::AppendJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String("vero.anatomy.v1");
  w.Key("label");
  w.String(label);
  w.Key("quadrant");
  w.String(quadrant);
  w.Key("workers");
  w.Int(workers);
  w.Key("trees");
  w.UInt(trees);
  w.Key("incarnations");
  w.Int(incarnations);
  w.Key("total_seconds");
  w.Double(total_seconds);
  w.Key("components");
  w.BeginObject();
  w.Key("setup");
  w.Double(setup_seconds);
  w.Key("train");
  w.Double(train_seconds);
  w.Key("recovery");
  w.Double(recovery_seconds);
  w.Key("reshard");
  w.Double(reshard_seconds);
  w.EndObject();
  w.Key("attributed_train_seconds");
  w.Double(attributed_train_seconds);
  w.Key("exact");
  w.Bool(exact);
  w.Key("wasted_seconds");
  w.Double(wasted_seconds);
  w.Key("train_bytes_sent");
  w.UInt(train_bytes_sent);
  w.Key("categories");
  w.BeginObject();
  for (const auto& [name, seconds] : categories) {
    w.Key(name);
    w.Double(seconds);
  }
  w.EndObject();
  w.Key("comm_ops");
  w.BeginArray();
  for (const CommOp& op : comm_ops) {
    w.BeginObject();
    w.Key("op");
    w.String(op.op);
    w.Key("ops");
    w.UInt(op.ops);
    w.Key("sim_seconds");
    w.Double(op.sim_seconds);
    w.Key("p50");
    w.Double(op.p50);
    w.Key("p99");
    w.Double(op.p99);
    w.EndObject();
  }
  w.EndArray();
  w.Key("per_tree");
  w.BeginArray();
  for (const TreeRow& row : per_tree) {
    w.BeginObject();
    w.Key("tree");
    w.Int(row.tree);
    w.Key("incarnation");
    w.Int(row.incarnation);
    w.Key("gradient");
    w.Double(row.gradient);
    w.Key("hist");
    w.Double(row.hist);
    w.Key("find_split");
    w.Double(row.find_split);
    w.Key("node_split");
    w.Double(row.node_split);
    w.Key("other");
    w.Double(row.other);
    w.Key("comm");
    w.Double(row.comm);
    w.Key("total");
    w.Double(row.total);
    w.Key("blame_comp_rank");
    w.Int(row.blame_comp_rank);
    w.Key("blame_comm_rank");
    w.Int(row.blame_comm_rank);
    w.EndObject();
  }
  w.EndArray();
  w.Key("per_rank");
  w.BeginArray();
  for (const RankRow& row : per_rank) {
    w.BeginObject();
    w.Key("incarnation");
    w.Int(row.incarnation);
    w.Key("rank");
    w.Int(row.rank);
    w.Key("comp_seconds");
    w.Double(row.comp_seconds);
    w.Key("comm_seconds");
    w.Double(row.comm_seconds);
    w.Key("events");
    w.UInt(row.events);
    w.Key("bytes");
    w.UInt(row.bytes);
    w.EndObject();
  }
  w.EndArray();
  w.Key("critical_path");
  w.BeginObject();
  w.Key("length_seconds");
  w.Double(critical_path.length_seconds);
  w.Key("segments_total");
  w.UInt(critical_path.segments.size());
  // Top-k blame view: heaviest segments first (the full execution-order
  // path lives in memory; the report keeps the headline offenders).
  std::vector<CriticalPathSegment> top = critical_path.segments;
  std::stable_sort(top.begin(), top.end(),
                   [](const CriticalPathSegment& a,
                      const CriticalPathSegment& b) {
                     return a.seconds > b.seconds;
                   });
  if (top.size() > kTopSegments) top.resize(kTopSegments);
  w.Key("segments");
  w.BeginArray();
  for (const CriticalPathSegment& seg : top) {
    w.BeginObject();
    w.Key("kind");
    w.String(seg.kind);
    w.Key("tree");
    w.Int(seg.tree);
    w.Key("rank");
    w.Int(seg.rank);
    w.Key("incarnation");
    w.Int(seg.incarnation);
    w.Key("seconds");
    w.Double(seg.seconds);
    w.Key("dominant");
    w.String(seg.dominant);
    w.Key("dominant_seconds");
    w.Double(seg.dominant_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("dag");
  w.BeginObject();
  w.Key("events");
  w.UInt(dag.events);
  w.Key("vertices");
  w.UInt(dag.vertices);
  w.Key("program_edges");
  w.UInt(dag.program_edges);
  w.Key("collective_edges");
  w.UInt(dag.collective_edges);
  w.Key("incarnation_edges");
  w.UInt(dag.incarnation_edges);
  w.Key("collective_groups");
  w.UInt(dag.collective_groups);
  w.Key("weak_components");
  w.UInt(dag.weak_components);
  w.Key("acyclic");
  w.Bool(dag.acyclic);
  w.EndObject();
  w.EndObject();
}

std::string AnatomyReport::ToJson() const {
  std::ostringstream os;
  AppendJson(os);
  return os.str();
}

}  // namespace obs
}  // namespace vero
