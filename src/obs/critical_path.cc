#include "obs/critical_path.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <tuple>
#include <utility>

namespace vero {
namespace obs {

namespace {

bool IsTransitionSpan(const TraceEvent& ev) {
  return ev.rank < 0 && (std::strcmp(ev.name, "recovery") == 0 ||
                         std::strcmp(ev.name, "resize") == 0);
}

bool IsCollective(const TraceEvent& ev) {
  return std::strcmp(ev.category, "collective") == 0;
}

/// Union-find over vertex ids, for the weak-connectivity integrity signal.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }
  size_t CountRoots() {
    size_t roots = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
      if (Find(i) == i) ++roots;
    }
    return roots;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

CausalDag BuildCausalDag(std::vector<TraceEvent> events) {
  CausalDag dag;
  dag.events = std::move(events);
  const size_t n = dag.events.size();
  for (const TraceEvent& ev : dag.events) {
    dag.num_incarnations = std::max(dag.num_incarnations, ev.incarnation + 1);
  }
  if (n == 0) {
    dag.num_incarnations = 0;
    return dag;
  }

  // Per-buffer program order. One rank owns one buffer per incarnation, so
  // (incarnation, rank) identifies a buffer; the merged stream preserves
  // insertion order within each.
  std::map<std::pair<int, int>, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    groups[{dag.events[i].incarnation, dag.events[i].rank}].push_back(i);
  }

  // Span duration edges (begin -> end) count as program order: they encode
  // one rank's own execution.
  for (size_t i = 0; i < n; ++i) {
    dag.edges.emplace_back(CausalDag::BeginVertex(i), CausalDag::EndVertex(i));
    ++dag.num_program_edges;
  }
  for (const auto& [key, members] : groups) {
    for (size_t k = 1; k < members.size(); ++k) {
      dag.edges.emplace_back(CausalDag::EndVertex(members[k - 1]),
                             CausalDag::BeginVertex(members[k]));
      ++dag.num_program_edges;
    }
  }

  // Collective rendezvous: spans sharing (incarnation, op_id) are the same
  // logical operation. Each participant's entry happens-before every
  // participant's exit, modeled through one join vertex per group.
  std::map<std::pair<int, int64_t>, std::vector<size_t>> collectives;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = dag.events[i];
    if (IsCollective(ev) && ev.op_id >= 0) {
      collectives[{ev.incarnation, ev.op_id}].push_back(i);
    }
  }
  int32_t next_vertex = static_cast<int32_t>(2 * n);
  for (const auto& [key, members] : collectives) {
    const int32_t join = next_vertex++;
    for (size_t m : members) {
      dag.edges.emplace_back(CausalDag::BeginVertex(m), join);
      dag.edges.emplace_back(join, CausalDag::EndVertex(m));
      dag.num_collective_edges += 2;
    }
    ++dag.num_collective_groups;
  }
  dag.num_vertices = static_cast<size_t>(next_vertex);

  // Incarnation joins: the j-th driver recovery / resize span tears down
  // incarnation j and brings up incarnation j+1 (Cluster::AttachObserver
  // bumps the generation once per rebuilt cluster).
  std::vector<size_t> transitions;
  for (size_t i = 0; i < n; ++i) {
    if (IsTransitionSpan(dag.events[i])) transitions.push_back(i);
  }
  for (size_t j = 0; j < transitions.size(); ++j) {
    const size_t span = transitions[j];
    for (const auto& [key, members] : groups) {
      if (key.second < 0) continue;  // The driver chains by program order.
      if (key.first == static_cast<int>(j)) {
        dag.edges.emplace_back(CausalDag::EndVertex(members.back()),
                               CausalDag::BeginVertex(span));
        ++dag.num_incarnation_edges;
      } else if (key.first == static_cast<int>(j) + 1) {
        dag.edges.emplace_back(CausalDag::BeginVertex(span),
                               CausalDag::BeginVertex(members.front()));
        ++dag.num_incarnation_edges;
      }
    }
  }

  // Integrity signals: one weak component (everything stitched together)
  // and no cycles (op ids in cross-rank lockstep; a skewed counter would
  // fold later work onto an earlier join and show up here).
  UnionFind uf(dag.num_vertices);
  std::vector<std::vector<int32_t>> adj(dag.num_vertices);
  std::vector<int32_t> indegree(dag.num_vertices, 0);
  for (const auto& [from, to] : dag.edges) {
    uf.Union(static_cast<size_t>(from), static_cast<size_t>(to));
    adj[static_cast<size_t>(from)].push_back(to);
    ++indegree[static_cast<size_t>(to)];
  }
  dag.weak_components = uf.CountRoots();
  std::vector<int32_t> ready;
  for (size_t v = 0; v < dag.num_vertices; ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<int32_t>(v));
  }
  size_t visited = 0;
  while (!ready.empty()) {
    const int32_t v = ready.back();
    ready.pop_back();
    ++visited;
    for (int32_t w : adj[static_cast<size_t>(v)]) {
      if (--indegree[static_cast<size_t>(w)] == 0) ready.push_back(w);
    }
  }
  dag.acyclic = visited == dag.num_vertices;
  return dag;
}

std::vector<TreeChain> CollectTreeChains(
    const std::vector<TraceEvent>& events) {
  std::map<std::tuple<int, int, int32_t>, size_t> index;
  std::vector<TreeChain> chains;
  for (const TraceEvent& ev : events) {
    if (ev.tree < 0 || ev.rank < 0) continue;
    const std::tuple<int, int, int32_t> key(ev.incarnation, ev.rank, ev.tree);
    auto it = index.find(key);
    if (it == index.end()) {
      TreeChain chain;
      chain.incarnation = ev.incarnation;
      chain.rank = ev.rank;
      chain.tree = ev.tree;
      it = index.emplace(key, chains.size()).first;
      chains.push_back(chain);
    }
    TreeChain& chain = chains[it->second];
    if (IsCollective(ev)) {
      if (!chain.has_comm) {
        chain.has_comm = true;
        chain.comm_first_begin = ev.sim_begin_s;
      }
      chain.comm_last_end = ev.sim_end_s;
    } else if (std::strcmp(ev.name, "gradient") == 0) {
      chain.gradient += ev.cpu_seconds;
    } else if (std::strcmp(ev.name, "hist-build") == 0) {
      chain.hist += ev.cpu_seconds;
    } else if (std::strcmp(ev.name, "find-split") == 0) {
      chain.find_split += ev.cpu_seconds;
    } else if (std::strcmp(ev.name, "node-split") == 0) {
      chain.node_split += ev.cpu_seconds;
    } else if (std::strcmp(ev.name, "margin-update") == 0) {
      chain.other += ev.cpu_seconds;
      chain.complete = true;
    }
    // Checkpoint and other non-trainer spans are attributed elsewhere.
  }
  for (TreeChain& chain : chains) {
    if (chain.has_comm) {
      // Telescoped window: identical to the trainer's
      // stats().sim_seconds - tree_sim_start (same operands, one
      // subtraction), because the sim clock only moves inside collectives.
      chain.comm = chain.comm_last_end - chain.comm_first_begin;
    }
  }
  std::sort(chains.begin(), chains.end(),
            [](const TreeChain& a, const TreeChain& b) {
              return std::tie(a.tree, a.incarnation, a.rank) <
                     std::tie(b.tree, b.incarnation, b.rank);
            });
  return chains;
}

std::vector<std::pair<int32_t, int>> ChooseTreeIncarnations(
    const std::vector<TreeChain>& chains) {
  std::map<int32_t, std::pair<int, int>> best;  // tree -> (complete, any).
  for (const TreeChain& chain : chains) {
    auto it = best.emplace(chain.tree, std::make_pair(-1, -1)).first;
    if (chain.complete) {
      it->second.first = std::max(it->second.first, chain.incarnation);
    }
    it->second.second = std::max(it->second.second, chain.incarnation);
  }
  std::vector<std::pair<int32_t, int>> chosen;
  chosen.reserve(best.size());
  for (const auto& [tree, incs] : best) {
    chosen.emplace_back(tree, incs.first >= 0 ? incs.first : incs.second);
  }
  return chosen;
}

CriticalPath ExtractCriticalPath(
    const std::vector<TreeChain>& chains,
    const std::vector<std::pair<int32_t, int>>& chosen, double setup_seconds,
    double recovery_seconds, double reshard_seconds) {
  CriticalPath path;
  if (setup_seconds > 0.0) {
    CriticalPathSegment seg;
    seg.kind = "setup";
    seg.seconds = setup_seconds;
    seg.dominant = "setup";
    seg.dominant_seconds = setup_seconds;
    path.segments.push_back(seg);
  }
  // The tree sum accumulates from zero in tree order — the same operand
  // sequence as the anatomy's attributed_train_seconds — and the final
  // length applies the anatomy total's association order ((setup + trees) +
  // recovery) + reshard, so the <=-total / ==-at-W-1 invariants hold
  // bit-for-bit (addition is monotone, and at W = 1 every operand is
  // identical).
  double tree_sum = 0.0;
  for (const auto& [tree, incarnation] : chosen) {
    const TreeChain* heaviest = nullptr;
    double heaviest_seconds = 0.0;
    for (const TreeChain& chain : chains) {
      if (chain.tree != tree || chain.incarnation != incarnation) continue;
      const double seconds = chain.chain_seconds();
      if (heaviest == nullptr || seconds > heaviest_seconds) {
        heaviest = &chain;
        heaviest_seconds = seconds;
      }
    }
    if (heaviest == nullptr) continue;
    tree_sum += heaviest_seconds;
    CriticalPathSegment seg;
    seg.kind = "tree";
    seg.tree = tree;
    seg.rank = heaviest->rank;
    seg.incarnation = incarnation;
    seg.seconds = heaviest_seconds;
    const std::pair<const char*, double> parts[] = {
        {"gradient", heaviest->gradient},   {"hist", heaviest->hist},
        {"find_split", heaviest->find_split}, {"node_split", heaviest->node_split},
        {"other", heaviest->other},         {"comm", heaviest->comm}};
    seg.dominant = parts[0].first;
    seg.dominant_seconds = parts[0].second;
    for (const auto& [name, seconds] : parts) {
      if (seconds > seg.dominant_seconds) {
        seg.dominant = name;
        seg.dominant_seconds = seconds;
      }
    }
    path.segments.push_back(seg);
  }
  double length = setup_seconds + tree_sum;
  length += recovery_seconds;
  if (recovery_seconds > 0.0) {
    CriticalPathSegment seg;
    seg.kind = "recovery";
    seg.seconds = recovery_seconds;
    seg.dominant = "recovery";
    seg.dominant_seconds = recovery_seconds;
    path.segments.push_back(seg);
  }
  length += reshard_seconds;
  if (reshard_seconds > 0.0) {
    CriticalPathSegment seg;
    seg.kind = "reshard";
    seg.seconds = reshard_seconds;
    seg.dominant = "reshard";
    seg.dominant_seconds = reshard_seconds;
    path.segments.push_back(seg);
  }
  path.length_seconds = length;
  return path;
}

}  // namespace obs
}  // namespace vero
