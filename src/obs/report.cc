#include "obs/report.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/json_writer.h"

namespace vero {
namespace obs {

TraceBuffer* RunObserver::driver_buffer() {
  if (!trace_enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(driver_mu_);
  if (driver_buffer_ == nullptr) {
    driver_buffer_ = trace_.CreateBuffer(/*rank=*/-1);
  }
  return driver_buffer_;
}

MetricsShard* RunObserver::driver_shard() {
  std::lock_guard<std::mutex> lock(driver_mu_);
  if (driver_shard_ == nullptr) {
    driver_shard_ = metrics_.CreateShard();
  }
  return driver_shard_;
}

namespace {

void AppendMetrics(JsonWriter* w, const MetricsSnapshot& snapshot) {
  // MetricsRegistry::Merged() already yields name-sorted entries, but the
  // emission sorts again so reports diff stably even for hand-built
  // snapshots (checkers assume key order == sorted order).
  std::vector<const MetricsSnapshot::Entry*> entries;
  entries.reserve(snapshot.entries.size());
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    entries.push_back(&entry);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const MetricsSnapshot::Entry* a,
                      const MetricsSnapshot::Entry* b) {
                     return a->name < b->name;
                   });
  w->BeginObject();
  for (const MetricsSnapshot::Entry* entry_ptr : entries) {
    const MetricsSnapshot::Entry& entry = *entry_ptr;
    w->Key(entry.name);
    w->BeginObject();
    w->Key("kind");
    w->String(MetricKindToString(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        w->Key("value");
        w->UInt(entry.counter);
        break;
      case MetricKind::kGauge:
        w->Key("value");
        w->Double(entry.gauge);
        break;
      case MetricKind::kHistogram:
        w->Key("count");
        w->UInt(entry.count);
        w->Key("sum");
        w->Double(entry.sum);
        w->Key("min");
        w->Double(entry.min);
        w->Key("max");
        w->Double(entry.max);
        w->Key("p50");
        w->Double(entry.p50);
        w->Key("p99");
        w->Double(entry.p99);
        break;
    }
    w->EndObject();
  }
  w->EndObject();
}

}  // namespace

void RunReport::AppendJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String("vero.run_report.v1");
  w.Key("label");
  w.String(label);
  w.Key("quadrant");
  w.String(quadrant);
  w.Key("workers");
  w.Int(workers);
  w.Key("trees");
  w.UInt(trees);
  w.Key("model_digest");
  w.UInt(model_digest);
  w.Key("train_seconds");
  w.Double(train_seconds);
  w.Key("comp_seconds");
  w.Double(comp_seconds);
  w.Key("comm_seconds");
  w.Double(comm_seconds);
  w.Key("setup_seconds");
  w.Double(setup_seconds);
  w.Key("phases");
  w.BeginObject();
  w.Key("gradient");
  w.Double(phases.gradient);
  w.Key("hist");
  w.Double(phases.hist);
  w.Key("find_split");
  w.Double(phases.find_split);
  w.Key("node_split");
  w.Double(phases.node_split);
  w.Key("other");
  w.Double(phases.other);
  w.Key("comm");
  w.Double(phases.comm);
  w.EndObject();
  w.Key("train_bytes_sent");
  w.UInt(train_bytes_sent);
  w.Key("peak_histogram_bytes");
  w.UInt(peak_histogram_bytes);
  w.Key("data_bytes");
  w.UInt(data_bytes);
  w.Key("wasted_bytes");
  w.UInt(wasted_bytes);
  w.Key("wasted_seconds");
  w.Double(wasted_seconds);
  w.Key("recovery");
  w.BeginObject();
  w.Key("failures_observed");
  w.Int(recovery.failures_observed);
  w.Key("recovery_attempts");
  w.Int(recovery.recovery_attempts);
  w.Key("trees_recovered");
  w.UInt(recovery.trees_recovered);
  w.Key("trees_retrained");
  w.UInt(recovery.trees_retrained);
  w.Key("final_world_size");
  w.Int(recovery.final_world_size);
  w.Key("rejoined_workers");
  w.Int(recovery.rejoined_workers);
  w.Key("rendezvous_failures");
  w.Int(recovery.rendezvous_failures);
  w.Key("recovery_seconds");
  w.Double(recovery.recovery_seconds);
  w.Key("recovery_bytes");
  w.UInt(recovery.recovery_bytes);
  w.EndObject();
  w.Key("elasticity");
  w.BeginObject();
  w.Key("resizes");
  w.Int(elasticity.resizes);
  w.Key("admitted_workers");
  w.Int(elasticity.admitted_workers);
  w.Key("retired_workers");
  w.Int(elasticity.retired_workers);
  w.Key("reshard_bytes");
  w.UInt(elasticity.reshard_bytes);
  w.Key("reshard_seconds");
  w.Double(elasticity.reshard_seconds);
  w.EndObject();
  w.Key("integrity");
  w.BeginObject();
  w.Key("level");
  w.String(integrity.level);
  w.Key("checks");
  w.UInt(integrity.checks);
  w.Key("violations");
  w.UInt(integrity.violations);
  w.Key("recomputes");
  w.UInt(integrity.recomputes);
  w.Key("escalations");
  w.UInt(integrity.escalations);
  w.Key("rollbacks");
  w.Int(integrity.rollbacks);
  w.Key("last_blamed_rank");
  w.Int(integrity.last_blamed_rank);
  w.Key("wasted_bytes");
  w.UInt(integrity.wasted_bytes);
  w.Key("wasted_seconds");
  w.Double(integrity.wasted_seconds);
  w.EndObject();
  w.Key("metrics");
  AppendMetrics(&w, metrics);
  w.Key("trace_path");
  w.String(trace_path);
  w.EndObject();
}

std::string RunReport::ToJson() const {
  std::ostringstream os;
  AppendJson(os);
  return os.str();
}

}  // namespace obs
}  // namespace vero
