#ifndef VERO_OBS_ANATOMY_H_
#define VERO_OBS_ANATOMY_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace vero {
namespace obs {

/// The run-level totals the anatomy must account for, supplied by the layer
/// that owns the DistResult (plain values so vero_obs stays below the
/// quadrants layer). `train_seconds` is DistResult::TrainSeconds();
/// setup / recovery / reshard seconds come from the matching result fields.
struct AnatomyTotals {
  std::string label;
  std::string quadrant;
  int workers = 0;
  uint32_t trees = 0;
  double train_seconds = 0.0;
  double setup_seconds = 0.0;
  double recovery_seconds = 0.0;
  double reshard_seconds = 0.0;
  double wasted_seconds = 0.0;
  uint64_t train_bytes_sent = 0;
};

/// Exact cost anatomy of one run: every second of the run's simulated total
/// attributed to a category taxonomy, with the house invariant that the
/// attribution sums BIT-IDENTICALLY to the run's reported total.
///
/// The exact-sum carrier is the per-tree table, not the category totals:
/// each per-tree row takes the max across ranks per category (the same
/// plain `std::max` the trainer's InstrumentMax computes over the same
/// doubles) and sums them in the canonical TreeCost order; summing the row
/// totals left-to-right then reproduces DistResult::TrainSeconds() exactly,
/// and `total_seconds` = ((setup + train) + recovery) + reshard in that
/// association order. Category totals are display aggregates over the rows
/// (floating-point non-associativity makes a sum-of-category-totals check
/// meaningless; the per-row invariant is the one `check_anatomy.py` and
/// `anatomy_test` enforce).
///
/// Serialized with the stable "vero.anatomy.v1" JSON schema (documented in
/// docs/observability.md).
struct AnatomyReport {
  bool enabled = false;

  std::string label;
  std::string quadrant;
  int workers = 0;
  uint32_t trees = 0;
  int incarnations = 0;

  /// ((setup + train) + recovery) + reshard, in that order.
  double total_seconds = 0.0;
  double setup_seconds = 0.0;
  double train_seconds = 0.0;
  double recovery_seconds = 0.0;
  double reshard_seconds = 0.0;

  /// Sum of per-tree row totals, left-to-right from tree 0.
  double attributed_train_seconds = 0.0;
  /// attributed_train_seconds == train_seconds, as a plain bitwise
  /// double comparison (no epsilon).
  bool exact = false;

  double wasted_seconds = 0.0;
  uint64_t train_bytes_sent = 0;

  /// Display taxonomy: category name -> seconds, sorted by name. Names:
  /// compute.{gradient,hist_build,split_eval,partition,other,sketch,
  /// transform}, comm.total, setup, checkpoint, recovery, reshard,
  /// wait.{deadline_wait,straggler_absorb,injected_stall,barrier_skew},
  /// wasted. Wait categories are informational overlays: the delays they
  /// describe already land inside the comm windows, so they are NOT part of
  /// the exact sum.
  std::vector<std::pair<std::string, double>> categories;

  /// Per-CollectiveOp communication profile, from the comm.<Op>.sim_seconds
  /// latency histograms (sorted by op name).
  struct CommOp {
    std::string op;
    uint64_t ops = 0;
    double sim_seconds = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  std::vector<CommOp> comm_ops;

  /// One row per tree on its committing incarnation: per-category maxima
  /// across ranks, total in canonical TreeCost order, and the ranks blamed
  /// for the compute / comm maxima.
  struct TreeRow {
    int32_t tree = -1;
    int incarnation = 0;
    double gradient = 0.0;
    double hist = 0.0;
    double find_split = 0.0;
    double node_split = 0.0;
    double other = 0.0;
    double comm = 0.0;
    double total = 0.0;
    int blame_comp_rank = -1;
    int blame_comm_rank = -1;
  };
  std::vector<TreeRow> per_tree;

  /// Per-(incarnation, rank) skew row: that rank's summed phase CPU, summed
  /// collective sim deltas (display value), event count, and bytes sent.
  struct RankRow {
    int incarnation = 0;
    int rank = -1;
    double comp_seconds = 0.0;
    double comm_seconds = 0.0;
    uint64_t events = 0;
    uint64_t bytes = 0;
  };
  std::vector<RankRow> per_rank;

  CriticalPath critical_path;

  /// Stitching integrity stats for the causal DAG the analysis ran on.
  struct DagStats {
    uint64_t events = 0;
    uint64_t vertices = 0;
    uint64_t program_edges = 0;
    uint64_t collective_edges = 0;
    uint64_t incarnation_edges = 0;
    uint64_t collective_groups = 0;
    uint64_t weak_components = 0;
    bool acyclic = true;
  } dag;

  /// Number of critical-path segments the JSON export keeps (heaviest
  /// first); the in-memory `critical_path` always holds all of them.
  static constexpr size_t kTopSegments = 12;

  void AppendJson(std::ostream& os) const;
  std::string ToJson() const;
};

/// Builds the full anatomy from a merged event stream, a merged metric
/// snapshot, and the run totals. Deterministic for seeded runs.
AnatomyReport BuildAnatomyReport(std::vector<TraceEvent> events,
                                 const MetricsSnapshot& metrics,
                                 const AnatomyTotals& totals);

/// Convenience overload pulling the merged events / metrics from a quiescent
/// run's observer (call only after all worker threads have joined).
AnatomyReport BuildAnatomyReport(const RunObserver& observer,
                                 const AnatomyTotals& totals);

}  // namespace obs
}  // namespace vero

#endif  // VERO_OBS_ANATOMY_H_
