#include "cluster/communicator.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace vero {

/// Metric handles resolved once at AttachObserver time. Per-op counters are
/// indexed by the CollectiveOp value so the hot path is one array index and
/// one integer add per update.
struct WorkerContext::ObsHandles {
  obs::Counter* op_count[kNumCollectiveOps] = {};
  obs::Counter* op_bytes_sent[kNumCollectiveOps] = {};
  obs::Counter* op_bytes_received[kNumCollectiveOps] = {};
  /// Per-op simulated-latency distributions (comm.<Op>.sim_seconds): the
  /// run-report p50/p99 source for each collective flavor.
  obs::HistogramMetric* op_latency[kNumCollectiveOps] = {};
  obs::Counter* retries = nullptr;
  obs::Counter* retransmitted_bytes = nullptr;
  obs::Counter* watchdog_timeouts = nullptr;
  obs::Counter* rendezvous_broken = nullptr;
  obs::HistogramMetric* straggler_seconds = nullptr;
  obs::HistogramMetric* op_sim_seconds = nullptr;

  /// staleness.* / speculation.* handles, resolved lazily by the first
  /// mitigated collective so strict runs keep exactly the seed's metric
  /// name set (the bit-identical-to-seed contract covers reports too).
  obs::Counter* stale_deferred = nullptr;
  obs::Counter* stale_forced = nullptr;
  obs::HistogramMetric* stale_deferred_seconds = nullptr;
  obs::HistogramMetric* stale_deferred_mass = nullptr;
  obs::HistogramMetric* stale_deadline_wait = nullptr;
  obs::Counter* spec_launched = nullptr;
  obs::Counter* spec_wasted_bytes = nullptr;
  obs::HistogramMetric* spec_wasted_seconds = nullptr;
  obs::HistogramMetric* spec_absorbed_seconds = nullptr;

  /// comm.<Op>.raw_bytes / compressed_bytes + codec.* handles, resolved
  /// lazily by the first codec collective so compression-off runs keep
  /// exactly the seed's metric name set (the bit-identical-to-seed contract
  /// covers reports too).
  obs::Counter* codec_raw[kNumCollectiveOps] = {};
  obs::Counter* codec_wire[kNumCollectiveOps] = {};
  obs::Counter* codec_dense_blocks = nullptr;
  obs::Counter* codec_sparse_blocks = nullptr;
  obs::Counter* codec_quantized_blocks = nullptr;

  void EnsureCodecHandles(obs::MetricsShard* shard) {
    if (codec_dense_blocks != nullptr) return;
    for (int op = 0; op < kNumCollectiveOps; ++op) {
      std::string base = "comm.";
      base += CollectiveOpToString(static_cast<CollectiveOp>(op));
      codec_raw[op] = shard->counter(base + ".raw_bytes");
      codec_wire[op] = shard->counter(base + ".compressed_bytes");
    }
    codec_dense_blocks = shard->counter("codec.blocks_dense");
    codec_sparse_blocks = shard->counter("codec.blocks_sparse");
    codec_quantized_blocks = shard->counter("codec.blocks_quantized");
  }

  void EnsureMitigationHandles(obs::MetricsShard* shard) {
    if (stale_deferred != nullptr) return;
    stale_deferred = shard->counter("staleness.deferred_contributions");
    stale_forced = shard->counter("staleness.forced_syncs");
    stale_deferred_seconds = shard->histogram("staleness.deferred_seconds");
    stale_deferred_mass = shard->histogram("staleness.deferred_mass");
    stale_deadline_wait = shard->histogram("staleness.deadline_wait_seconds");
    spec_launched = shard->counter("speculation.launched");
    spec_wasted_bytes = shard->counter("speculation.wasted_bytes");
    spec_wasted_seconds = shard->histogram("speculation.wasted_seconds");
    spec_absorbed_seconds = shard->histogram("speculation.absorbed_seconds");
  }
};

WorkerContext::WorkerContext(Cluster* cluster, int rank)
    : cluster_(cluster), rank_(rank) {}

WorkerContext::~WorkerContext() = default;

Cluster::Cluster(int num_workers, NetworkModel model)
    : num_workers_(num_workers),
      model_(model),
      dead_flags_(num_workers, 0),
      barrier_(static_cast<size_t>(num_workers)),
      ptrs_(num_workers, nullptr),
      mutable_ptrs_(num_workers, nullptr),
      sizes_(num_workers, 0),
      instrument_slots_(num_workers, 0.0),
      delay_slots_(num_workers, 0.0),
      mit_class_(num_workers, RankClass::kOnTime),
      mit_backup_(num_workers, -1),
      stale_streaks_(num_workers, 0) {
  VERO_CHECK_GT(num_workers, 0);
  contexts_.reserve(num_workers);
  for (int r = 0; r < num_workers; ++r) {
    contexts_.emplace_back(new WorkerContext(this, r));
  }
}

void Cluster::InstallFaultPlan(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
  } else {
    injector_ = std::make_shared<FaultInjector>(plan, num_workers_);
  }
}

void Cluster::AdoptFaultInjector(std::shared_ptr<FaultInjector> injector) {
  if (injector != nullptr) {
    VERO_CHECK_GE(injector->num_workers(), num_workers_);
  }
  injector_ = std::move(injector);
}

void Cluster::AttachObserver(obs::RunObserver* observer) {
  if constexpr (!obs::kObsEnabled) return;
  observer_ = observer;
  if (observer == nullptr) return;
  // One attach = one cluster incarnation: recovery / resize rebuilds attach
  // the same observer again, and the bumped generation tags the new workers'
  // trace buffers so the anatomy analyzer can tell incarnations apart.
  observer->BeginIncarnation();
  for (auto& ctx : contexts_) ctx->AttachObs(observer);
}

void WorkerContext::AttachObs(obs::RunObserver* observer) {
  trace_ = observer->trace_enabled()
               ? observer->trace().CreateBuffer(rank_, observer->incarnation())
               : nullptr;
  metrics_ = observer->metrics().CreateShard();
  obs_handles_ = std::make_unique<ObsHandles>();
  op_seq_ = 0;  // Collective sequence numbers restart per incarnation.
  for (int op = 0; op < kNumCollectiveOps; ++op) {
    std::string base = "comm.";
    base += CollectiveOpToString(static_cast<CollectiveOp>(op));
    obs_handles_->op_count[op] = metrics_->counter(base + ".ops");
    obs_handles_->op_bytes_sent[op] = metrics_->counter(base + ".bytes_sent");
    obs_handles_->op_bytes_received[op] =
        metrics_->counter(base + ".bytes_received");
    obs_handles_->op_latency[op] = metrics_->histogram(base + ".sim_seconds");
  }
  obs_handles_->retries = metrics_->counter("comm.retries");
  obs_handles_->retransmitted_bytes =
      metrics_->counter("comm.retransmitted_bytes");
  obs_handles_->watchdog_timeouts = metrics_->counter("comm.watchdog_timeouts");
  obs_handles_->rendezvous_broken = metrics_->counter("comm.rendezvous_broken");
  obs_handles_->straggler_seconds =
      metrics_->histogram("comm.straggler_seconds");
  obs_handles_->op_sim_seconds = metrics_->histogram("comm.op_sim_seconds");
}

void Cluster::MarkDead(int rank) {
  std::lock_guard<std::mutex> lock(dead_mu_);
  dead_flags_[rank] = 1;
}

std::vector<int> Cluster::dead_ranks() const {
  std::lock_guard<std::mutex> lock(dead_mu_);
  std::vector<int> dead;
  for (int r = 0; r < num_workers_; ++r) {
    if (dead_flags_[r]) dead.push_back(r);
  }
  return dead;
}

std::vector<std::exception_ptr> Cluster::RunInternal(
    const std::function<void(WorkerContext&)>& fn) {
  std::vector<std::exception_ptr> errors(num_workers_);
  if (num_workers_ == 1) {
    try {
      ScopedLogRank log_rank(0);
      fn(*contexts_[0]);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    return errors;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers_);
  for (int r = 0; r < num_workers_; ++r) {
    threads.emplace_back([this, &fn, r, &errors] {
      ScopedLogRank log_rank(r);
      try {
        fn(*contexts_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
        // A worker that unwinds is gone for good: break the rendezvous group
        // so peers blocked on it fail fast instead of hitting the watchdog.
        barrier_.Break();
      }
    });
  }
  for (auto& t : threads) t.join();
  return errors;
}

void Cluster::Run(const std::function<void(WorkerContext&)>& fn) {
  std::vector<std::exception_ptr> errors = RunInternal(fn);
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<Status> Cluster::TryRun(
    const std::function<void(WorkerContext&)>& fn) {
  std::vector<std::exception_ptr> errors = RunInternal(fn);
  std::vector<Status> statuses(num_workers_);
  for (int r = 0; r < num_workers_; ++r) {
    if (!errors[r]) continue;
    try {
      std::rethrow_exception(errors[r]);
    } catch (const ClusterAbort& abort) {
      statuses[r] = abort.status();
    } catch (const std::exception& e) {
      statuses[r] = Status::Internal(e.what());
    } catch (...) {
      statuses[r] = Status::Internal("unknown exception in worker thread");
    }
  }
  return statuses;
}

const CommStats& Cluster::worker_stats(int rank) const {
  return contexts_[rank]->stats();
}

CommStats Cluster::TotalStats() const {
  CommStats total;
  for (const auto& ctx : contexts_) total += ctx->stats();
  return total;
}

double Cluster::MaxSimSeconds() const {
  double max_s = 0.0;
  for (const auto& ctx : contexts_) {
    max_s = std::max(max_s, ctx->stats().sim_seconds);
  }
  return max_s;
}

void Cluster::ResetStats() {
  for (auto& ctx : contexts_) ctx->stats_ = CommStats{};
}

int WorkerContext::world_size() const { return cluster_->num_workers_; }

void WorkerContext::Charge(CollectiveOp op, uint64_t sent, uint64_t received) {
  stats_.bytes_sent += sent;
  stats_.bytes_received += received;
  stats_.num_ops += 1;
  stats_.sim_seconds += cluster_->model_.OpSeconds(sent, received);
  if constexpr (obs::kObsEnabled) {
    if (obs_handles_ != nullptr) {
      const int i = static_cast<int>(op);
      obs_handles_->op_count[i]->Increment();
      obs_handles_->op_bytes_sent[i]->Add(sent);
      obs_handles_->op_bytes_received[i]->Add(received);
    }
  }
}

void WorkerContext::RecordCodec(CollectiveOp op, uint64_t raw_sent,
                                uint64_t raw_received, uint64_t wire_sent,
                                uint64_t wire_received,
                                const CodecStats& cstats) {
  stats_.codec_raw_bytes += raw_sent + raw_received;
  stats_.codec_wire_bytes += wire_sent + wire_received;
  if constexpr (obs::kObsEnabled) {
    if (obs_handles_ != nullptr) {
      obs_handles_->EnsureCodecHandles(metrics_);
      const int i = static_cast<int>(op);
      obs_handles_->codec_raw[i]->Add(raw_sent + raw_received);
      obs_handles_->codec_wire[i]->Add(wire_sent + wire_received);
      obs_handles_->codec_dense_blocks->Add(cstats.dense_blocks);
      obs_handles_->codec_sparse_blocks->Add(cstats.sparse_blocks);
      obs_handles_->codec_quantized_blocks->Add(cstats.quantized_blocks);
    }
  }
}

void WorkerContext::DebugCheckCodecSymmetry(uint64_t sent, uint64_t received) {
#ifdef NDEBUG
  (void)sent;
  (void)received;
#else
  const int w = world_size();
  if (w == 1) {
    VERO_CHECK_EQ(sent, received);
    return;
  }
  cluster_->instrument_slots_[rank_] =
      static_cast<double>(sent) - static_cast<double>(received);
  // Broken rendezvous group: the surrounding collective is about to fail
  // anyway, so skip the check instead of reading torn slots.
  if (!InstrumentRendezvous()) return;
  double sum = 0.0;
  for (int r = 0; r < w; ++r) sum += cluster_->instrument_slots_[r];
  VERO_CHECK_EQ(sum, 0.0)
      << "codec byte accounting asymmetric: cluster-wide sent != received";
  InstrumentRendezvous();
#endif
}

Status WorkerContext::Die(Status status) {
  dead_ = true;
  cluster_->MarkDead(rank_);
  cluster_->barrier_.Break();
  return status;
}

Status WorkerContext::FailWorker(Status status) { return Die(std::move(status)); }

PoisonDecision WorkerContext::ConsultComputeFault(ComputePoint point) {
  if (dead_ || cluster_->injector_ == nullptr) return PoisonDecision{};
  return cluster_->injector_->OnCompute(rank_, point, fault_phase_);
}

namespace {

/// xorshift64: deterministic element choice for silent corruption.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

void WorkerContext::MaybeSilentCorrupt(const FaultDecision& decision,
                                       std::span<double> received) {
  if (!decision.silent_corrupt || received.empty()) return;
  uint64_t state =
      decision.corrupt_seed ? decision.corrupt_seed : 0x9e3779b97f4a7c15ull;
  const size_t idx = NextRand(&state) % received.size();
  // Flip the second-highest exponent bit: a large but finite perturbation
  // for any normal-range value (never fabricates NaN/Inf), so only content
  // checks — not finiteness scans — can catch it.
  uint64_t bits;
  std::memcpy(&bits, &received[idx], sizeof(bits));
  bits ^= 1ull << 61;
  std::memcpy(&received[idx], &bits, sizeof(bits));
}

void WorkerContext::MaybeSilentCorrupt(
    const FaultDecision& decision,
    const std::vector<std::vector<uint8_t>*>& received) {
  if (!decision.silent_corrupt) return;
  uint64_t state =
      decision.corrupt_seed ? decision.corrupt_seed : 0x9e3779b97f4a7c15ull;
  std::vector<std::vector<uint8_t>*> candidates;
  for (auto* buf : received) {
    if (buf != nullptr && !buf->empty()) candidates.push_back(buf);
  }
  if (candidates.empty()) return;
  std::vector<uint8_t>& buf = *candidates[NextRand(&state) % candidates.size()];
  // Target the top bit of a word-aligned high byte: for payloads of packed
  // little-endian doubles that is a sign bit, giving a deterministic
  // large-magnitude change that end-to-end checksums must catch.
  size_t offset;
  if (buf.size() >= 8) {
    offset = (NextRand(&state) % (buf.size() / 8)) * 8 + 7;
  } else {
    offset = NextRand(&state) % buf.size();
  }
  buf[offset] ^= 0x80;
}

bool WorkerContext::AuditExchange(const std::vector<uint64_t>& mine,
                                  std::vector<std::vector<uint64_t>>* all) {
  const int w = world_size();
  all->assign(w, {});
  if (w == 1) {
    (*all)[0] = mine;
    return true;
  }
  cluster_->ptrs_[rank_] = &mine;
  if (!InstrumentRendezvous()) return false;
  for (int r = 0; r < w; ++r) {
    const auto* src =
        static_cast<const std::vector<uint64_t>*>(cluster_->ptrs_[r]);
    (*all)[r] = *src;
  }
  InstrumentRendezvous();
  return true;
}

Status WorkerContext::Prepare(CollectiveOp op, FaultDecision* decision) {
  if (dead_) {
    return Status::Unavailable("worker " + std::to_string(rank_) +
                               " has failed");
  }
  if constexpr (obs::kObsEnabled) {
    // Open the collective's span: ApplyFaults (the tail of every collective)
    // closes it. Reads only; the accounting below is untouched.
    op_sim_begin_ = stats_.sim_seconds;
    op_bytes_begin_ = stats_.bytes_sent;
    if (trace_ != nullptr) op_wall_begin_us_ = trace_->NowUs();
  }
  if (cluster_->injector_ != nullptr) {
    *decision = cluster_->injector_->OnCollective(rank_, op, fault_phase_);
    if (decision->crash) {
      return Die(Status::Unavailable(
          "worker " + std::to_string(rank_) + " crashed (injected) at " +
          std::string(CollectiveOpToString(op))));
    }
  }
  return Status::OK();
}

Status WorkerContext::Rendezvous(bool* serial) {
  *serial = false;
  switch (cluster_->barrier_.ArriveAndWaitFor(
      cluster_->collective_timeout_seconds_)) {
    case BarrierWait::kSerial:
      *serial = true;
      return Status::OK();
    case BarrierWait::kFollower:
      return Status::OK();
    case BarrierWait::kBroken:
      if (obs_handles_ != nullptr) obs_handles_->rendezvous_broken->Increment();
      return Status::Unavailable("worker " + std::to_string(rank_) +
                                 ": rendezvous group broken by a failed peer");
    case BarrierWait::kTimeout:
      if (obs_handles_ != nullptr) obs_handles_->watchdog_timeouts->Increment();
      return Status::DeadlineExceeded(
          "worker " + std::to_string(rank_) +
          ": collective watchdog expired waiting for peers");
  }
  return Status::Internal("unreachable");
}

bool WorkerContext::InstrumentRendezvous() {
  const BarrierWait result = cluster_->barrier_.ArriveAndWaitFor(
      cluster_->collective_timeout_seconds_);
  return result == BarrierWait::kSerial || result == BarrierWait::kFollower;
}

Status WorkerContext::ApplyFaults(CollectiveOp op,
                                  const FaultDecision& decision, uint64_t sent,
                                  uint64_t received) {
  if (decision.delay_seconds > 0.0) {
    // Straggler: only this worker loses time; the cluster-level critical
    // path (MaxSimSeconds / InstrumentMax of per-round costs) propagates the
    // stall to the round as a whole, exactly like a real slow link.
    stats_.sim_seconds += decision.delay_seconds;
    stats_.fault_delay_seconds += decision.delay_seconds;
    if (obs_handles_ != nullptr) {
      obs_handles_->straggler_seconds->Observe(decision.delay_seconds);
    }
  }
  Status status = Status::OK();
  if (decision.failed_attempts > 0) {
    const RetryPolicy& retry = cluster_->injector_->retry_policy();
    const int attempts = std::min(decision.failed_attempts,
                                  retry.max_attempts);
    double backoff = retry.backoff_seconds;
    for (int i = 0; i < attempts; ++i) {
      // A CRC/length-detected bad transfer costs a full retransmission of
      // the op's volume plus the backoff before the retry.
      stats_.bytes_sent += sent;
      stats_.bytes_received += received;
      stats_.retransmitted_bytes += sent > received ? sent : received;
      stats_.num_retries += 1;
      stats_.sim_seconds += backoff + cluster_->model_.OpSeconds(sent,
                                                                received);
      backoff *= retry.backoff_multiplier;
    }
    if (obs_handles_ != nullptr && attempts > 0) {
      const int i = static_cast<int>(op);
      const uint64_t n = static_cast<uint64_t>(attempts);
      obs_handles_->retries->Add(n);
      obs_handles_->retransmitted_bytes->Add(
          n * (sent > received ? sent : received));
      // Mirror the recharged volume into the per-op byte counters so the
      // registry's per-op sums keep adding up to stats().bytes_sent /
      // bytes_received exactly.
      obs_handles_->op_bytes_sent[i]->Add(n * sent);
      obs_handles_->op_bytes_received[i]->Add(n * received);
    }
    if (decision.failed_attempts > retry.max_attempts) {
      status = Die(Status::Unavailable(
          "worker " + std::to_string(rank_) + ": transfer still corrupt after " +
          std::to_string(retry.max_attempts) + " attempts"));
    }
  }
  // Every collective — including one that just killed this worker — ends
  // here, so this is the single place its span gets closed. It is also the
  // single place op_seq_ advances: the SPMD contract keeps the counter in
  // lockstep across ranks, so equal (incarnation, op_id) identifies the
  // same logical collective cluster-wide.
  if constexpr (obs::kObsEnabled) {
    if (obs_handles_ != nullptr) {
      const double op_seconds = stats_.sim_seconds - op_sim_begin_;
      obs_handles_->op_sim_seconds->Observe(op_seconds);
      obs_handles_->op_latency[static_cast<int>(op)]->Observe(op_seconds);
    }
    if (trace_ != nullptr) {
      obs::TraceEvent ev;
      ev.name = CollectiveOpToString(op);
      ev.category = "collective";
      ev.tree = trace_->tree();
      ev.layer = trace_->layer();
      ev.wall_begin_us = op_wall_begin_us_;
      ev.wall_end_us = trace_->NowUs();
      ev.sim_begin_s = op_sim_begin_;
      ev.sim_end_s = stats_.sim_seconds;
      ev.bytes = stats_.bytes_sent - op_bytes_begin_;
      ev.op_id = op_seq_;
      trace_->Record(ev);
    }
    ++op_seq_;
  }
  return status;
}

Status WorkerContext::Barrier() {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kBarrier, &decision));
  if (world_size() > 1) {
    bool serial = false;
    VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  }
  return ApplyFaults(CollectiveOp::kBarrier, decision, 0, 0);
}

double WorkerContext::InstrumentMax(double value) {
  const int w = world_size();
  if (w == 1) return value;
  cluster_->instrument_slots_[rank_] = value;
  if (!InstrumentRendezvous()) return value;
  double max_v = cluster_->instrument_slots_[0];
  for (int r = 1; r < w; ++r) {
    max_v = std::max(max_v, cluster_->instrument_slots_[r]);
  }
  InstrumentRendezvous();
  return max_v;
}

double WorkerContext::InstrumentSum(double value) {
  const int w = world_size();
  if (w == 1) return value;
  cluster_->instrument_slots_[rank_] = value;
  if (!InstrumentRendezvous()) return value;
  double sum = 0.0;
  for (int r = 0; r < w; ++r) sum += cluster_->instrument_slots_[r];
  InstrumentRendezvous();
  return sum;
}

size_t WorkerContext::SliceBegin(size_t n, int rank) const {
  const size_t w = cluster_->num_workers_;
  return n * rank / w;
}

size_t WorkerContext::SliceEnd(size_t n, int rank) const {
  const size_t w = cluster_->num_workers_;
  return n * (rank + 1) / w;
}

Status WorkerContext::AllReduceSum(std::span<double> data) {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllReduceSum, &decision));
  const int w = world_size();
  if (w == 1) return ApplyFaults(CollectiveOp::kAllReduceSum, decision, 0, 0);
  cluster_->mutable_ptrs_[rank_] = data.data();
  cluster_->sizes_[rank_] = data.size();
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) {
    // Serial participant: sum everyone into the shared buffer.
    const size_t n = cluster_->sizes_[0];
    for (int r = 1; r < w; ++r) VERO_CHECK_EQ(cluster_->sizes_[r], n);
    cluster_->reduce_buffer_.assign(n, 0.0);
    for (int r = 0; r < w; ++r) {
      const double* src = static_cast<const double*>(cluster_->mutable_ptrs_[r]);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += src[i];
    }
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  std::memcpy(data.data(), cluster_->reduce_buffer_.data(),
              data.size() * sizeof(double));
  // Silent corruption lands in this rank's copy of the aggregate, after the
  // transport (and its CRC/retry machinery) delivered it clean.
  MaybeSilentCorrupt(decision, data);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));

  // Ring all-reduce volume: each worker sends (and receives) the buffer
  // twice, minus its own 1/W share, in 2*(W-1) pipelined steps.
  const uint64_t bytes = data.size() * sizeof(double);
  const uint64_t wire = 2 * bytes * (w - 1) / w;
  Charge(CollectiveOp::kAllReduceSum, wire, wire);
  return ApplyFaults(CollectiveOp::kAllReduceSum, decision, wire, wire);
}

Status WorkerContext::ReduceScatterSum(std::span<double> data) {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kReduceScatterSum, &decision));
  const int w = world_size();
  if (w == 1) return ApplyFaults(CollectiveOp::kReduceScatterSum, decision, 0, 0);
  cluster_->mutable_ptrs_[rank_] = data.data();
  cluster_->sizes_[rank_] = data.size();
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) {
    const size_t n = cluster_->sizes_[0];
    for (int r = 1; r < w; ++r) VERO_CHECK_EQ(cluster_->sizes_[r], n);
    cluster_->reduce_buffer_.assign(n, 0.0);
    for (int r = 0; r < w; ++r) {
      const double* src = static_cast<const double*>(cluster_->mutable_ptrs_[r]);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += src[i];
    }
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const size_t begin = SliceBegin(data.size(), rank_);
  const size_t end = SliceEnd(data.size(), rank_);
  std::memcpy(data.data() + begin, cluster_->reduce_buffer_.data() + begin,
              (end - begin) * sizeof(double));
  MaybeSilentCorrupt(decision, data.subspan(begin, end - begin));
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));

  // Ring reduce-scatter volume: (W-1)/W of the buffer per worker.
  const uint64_t bytes = data.size() * sizeof(double);
  const uint64_t wire = bytes * (w - 1) / w;
  Charge(CollectiveOp::kReduceScatterSum, wire, wire);
  return ApplyFaults(CollectiveOp::kReduceScatterSum, decision, wire, wire);
}

Status WorkerContext::AllGather(const std::vector<uint8_t>& mine,
                                std::vector<std::vector<uint8_t>>* all) {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllGather, &decision));
  const int w = world_size();
  all->assign(w, {});
  if (w == 1) {
    (*all)[0] = mine;
    return ApplyFaults(CollectiveOp::kAllGather, decision, 0, 0);
  }
  cluster_->ptrs_[rank_] = &mine;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  uint64_t received = 0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src =
        static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
    (*all)[r] = *src;
    if (r != rank_) {
      received += src->size();
      remote.push_back(&(*all)[r]);
    }
  }
  MaybeSilentCorrupt(decision, remote);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const uint64_t sent = mine.size() * (w - 1);
  Charge(CollectiveOp::kAllGather, sent, received);
  return ApplyFaults(CollectiveOp::kAllGather, decision, sent, received);
}

Status WorkerContext::Broadcast(std::vector<uint8_t>* data, int root) {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kBroadcast, &decision));
  const int w = world_size();
  if (w == 1) return ApplyFaults(CollectiveOp::kBroadcast, decision, 0, 0);
  if (rank_ == root) cluster_->ptrs_[root] = data;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const auto* src =
      static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[root]);
  uint64_t sent = 0, received = 0;
  if (rank_ == root) {
    sent = src->size() * (w - 1);
  } else {
    *data = *src;
    received = src->size();
    MaybeSilentCorrupt(decision, {data});
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kBroadcast, sent, received);
  return ApplyFaults(CollectiveOp::kBroadcast, decision, sent, received);
}

Status WorkerContext::Gather(const std::vector<uint8_t>& mine, int root,
                             std::vector<std::vector<uint8_t>>* all) {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kGather, &decision));
  const int w = world_size();
  all->clear();
  if (w == 1) {
    all->push_back(mine);
    return ApplyFaults(CollectiveOp::kGather, decision, 0, 0);
  }
  cluster_->ptrs_[rank_] = &mine;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  uint64_t sent = 0, received = 0;
  if (rank_ == root) {
    all->resize(w);
    std::vector<std::vector<uint8_t>*> remote;
    for (int r = 0; r < w; ++r) {
      const auto* src =
          static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
      (*all)[r] = *src;
      if (r != rank_) {
        received += src->size();
        remote.push_back(&(*all)[r]);
      }
    }
    MaybeSilentCorrupt(decision, remote);
  } else {
    sent = mine.size();
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kGather, sent, received);
  return ApplyFaults(CollectiveOp::kGather, decision, sent, received);
}

Status WorkerContext::AllToAll(std::vector<std::vector<uint8_t>> to_each,
                               std::vector<std::vector<uint8_t>>* from_each) {
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllToAll, &decision));
  const int w = world_size();
  VERO_CHECK_EQ(static_cast<int>(to_each.size()), w);
  from_each->assign(w, {});
  if (w == 1) {
    (*from_each)[0] = std::move(to_each[0]);
    return ApplyFaults(CollectiveOp::kAllToAll, decision, 0, 0);
  }
  cluster_->ptrs_[rank_] = &to_each;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  uint64_t sent = 0, received = 0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[r]);
    (*from_each)[r] = (*src)[rank_];
    if (r != rank_) {
      received += (*src)[rank_].size();
      remote.push_back(&(*from_each)[r]);
    }
  }
  for (int r = 0; r < w; ++r) {
    if (r != rank_) sent += to_each[r].size();
  }
  MaybeSilentCorrupt(decision, remote);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kAllToAll, sent, received);
  return ApplyFaults(CollectiveOp::kAllToAll, decision, sent, received);
}

// ---- Straggler-mitigated collectives --------------------------------------

void Cluster::PlanMitigation(const MitigationOptions& opts) {
  ClassifyStragglers(opts, delay_slots_, stale_streaks_, &mit_class_,
                     &mit_backup_);
  for (int r = 0; r < num_workers_; ++r) {
    if (mit_class_[r] == RankClass::kDeferred) {
      ++stale_streaks_[r];
    } else {
      stale_streaks_[r] = 0;
    }
  }
}

WorkerContext::MitigatedCall WorkerContext::ReadMitigationPlan(
    MitigationOutcome* outcome) const {
  const int w = cluster_->num_workers_;
  MitigatedCall call;
  call.my = cluster_->mit_class_[rank_];
  int deferred = 0, speculated = 0;
  for (int r = 0; r < w; ++r) {
    if (cluster_->mit_class_[r] == RankClass::kDeferred) ++deferred;
    if (cluster_->mit_class_[r] == RankClass::kSpeculated) ++speculated;
    if (cluster_->mit_backup_[r] == rank_) call.serving_for = r;
  }
  // The deadline only gets paid when the round actually closed without
  // someone; a forced-sync or over-budget straggler makes the round strict
  // (its full delay subsumes the deadline on the critical path).
  call.any_late = deferred > 0;
  if (outcome != nullptr) {
    outcome->self_deferred = call.my == RankClass::kDeferred;
    outcome->self_forced = call.my == RankClass::kForced;
    outcome->self_speculated = call.my == RankClass::kSpeculated;
    outcome->deferred_ranks = deferred;
    outcome->speculated_ranks = speculated;
    outcome->contributed.assign(w, 1);
    for (int r = 0; r < w; ++r) {
      if (cluster_->mit_class_[r] == RankClass::kDeferred) {
        outcome->contributed[r] = 0;
      }
    }
  }
  return call;
}

Status WorkerContext::FinishMitigated(CollectiveOp op,
                                      const MitigationOptions& opts,
                                      FaultDecision decision,
                                      const MitigatedCall& call,
                                      uint64_t extra_sent,
                                      uint64_t extra_received, uint64_t sent,
                                      uint64_t received, double deferred_mass) {
  ObsHandles* oh = nullptr;
  if constexpr (obs::kObsEnabled) {
    if (obs_handles_ != nullptr) {
      obs_handles_->EnsureMitigationHandles(metrics_);
      oh = obs_handles_.get();
    }
  }
  switch (call.my) {
    case RankClass::kDeferred:
      // This rank's payload was dropped from the aggregate; its delay moves
      // off the critical path (the rank catches up during the next layer's
      // local compute, where its mass re-enters the rebuilt histograms).
      stats_.absorbed_delay_seconds += decision.delay_seconds;
      stats_.deferred_contributions += 1;
      if (oh != nullptr) {
        oh->stale_deferred->Increment();
        oh->stale_deferred_seconds->Observe(decision.delay_seconds);
        oh->stale_deferred_mass->Observe(deferred_mass);
      }
      decision.delay_seconds = 0.0;
      break;
    case RankClass::kSpeculated:
      // A backup re-served this rank's share; the delay is absorbed and the
      // result stays exact.
      stats_.absorbed_delay_seconds += decision.delay_seconds;
      if (oh != nullptr) {
        oh->spec_absorbed_seconds->Observe(decision.delay_seconds);
      }
      decision.delay_seconds = 0.0;
      break;
    case RankClass::kForced:
      // Deferral streak hit the staleness bound: contribute and pay the
      // delay in full (ApplyFaults below charges it).
      if (oh != nullptr) oh->stale_forced->Increment();
      break;
    case RankClass::kOnTime:
      if (opts.mode == MitigationMode::kBoundedStaleness && call.any_late) {
        // On-time ranks wait out the deadline before the round closes.
        stats_.sim_seconds += opts.deadline_seconds;
        stats_.deadline_wait_seconds += opts.deadline_seconds;
        if (oh != nullptr) {
          oh->stale_deadline_wait->Observe(opts.deadline_seconds);
        }
      }
      break;
  }
  if (call.serving_for >= 0) {
    // Speculative backup duty: re-serve the slow rank's transfer share. The
    // duplicated volume crossed the wire, so it lands in bytes_sent /
    // bytes_received (and the per-op counters, keeping the registry's per-op
    // sums exact) and is isolated as speculative waste.
    stats_.bytes_sent += extra_sent;
    stats_.bytes_received += extra_received;
    stats_.speculative_bytes +=
        extra_sent > extra_received ? extra_sent : extra_received;
    const double spec_seconds =
        cluster_->model_.OpSeconds(extra_sent, extra_received);
    stats_.sim_seconds += spec_seconds;
    stats_.speculative_seconds += spec_seconds;
    if (oh != nullptr) {
      oh->spec_launched->Increment();
      oh->spec_wasted_bytes->Add(extra_sent > extra_received ? extra_sent
                                                             : extra_received);
      oh->spec_wasted_seconds->Observe(spec_seconds);
      const int i = static_cast<int>(op);
      oh->op_bytes_sent[i]->Add(extra_sent);
      oh->op_bytes_received[i]->Add(extra_received);
    }
  }
  return ApplyFaults(op, decision, sent, received);
}

Status WorkerContext::AllReduceBoundedSum(std::span<double> data,
                                          const MitigationOptions& opts,
                                          MitigationOutcome* outcome) {
  const int w = world_size();
  if (outcome != nullptr) {
    *outcome = MitigationOutcome{};
    outcome->contributed.assign(w, 1);
  }
  if (!opts.enabled() || w == 1) return AllReduceSum(data);

  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllReduceSum, &decision));
  cluster_->mutable_ptrs_[rank_] = data.data();
  cluster_->sizes_[rank_] = data.size();
  cluster_->delay_slots_[rank_] = decision.delay_seconds;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) {
    cluster_->PlanMitigation(opts);
    const size_t n = cluster_->sizes_[0];
    for (int r = 1; r < w; ++r) VERO_CHECK_EQ(cluster_->sizes_[r], n);
    cluster_->reduce_buffer_.assign(n, 0.0);
    for (int r = 0; r < w; ++r) {
      if (cluster_->mit_class_[r] == RankClass::kDeferred) continue;
      const double* src = static_cast<const double*>(cluster_->mutable_ptrs_[r]);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += src[i];
    }
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const MitigatedCall call = ReadMitigationPlan(outcome);
  double deferred_mass = 0.0;
  if (call.my == RankClass::kDeferred) {
    // The dropped contribution, measured before the copy-out overwrites it.
    for (double v : data) deferred_mass += v;
  }
  std::memcpy(data.data(), cluster_->reduce_buffer_.data(),
              data.size() * sizeof(double));
  MaybeSilentCorrupt(decision, data);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));

  // Volume is charged exactly as in the strict collective: a late payload
  // still crosses the wire, it is just dropped on arrival.
  const uint64_t bytes = data.size() * sizeof(double);
  const uint64_t wire = 2 * bytes * (w - 1) / w;
  const uint64_t extra = call.serving_for >= 0 ? wire : 0;
  Charge(CollectiveOp::kAllReduceSum, wire, wire);
  return FinishMitigated(CollectiveOp::kAllReduceSum, opts, decision, call,
                         extra, extra, wire, wire, deferred_mass);
}

Status WorkerContext::AllGatherBounded(const std::vector<uint8_t>& mine,
                                       std::vector<std::vector<uint8_t>>* all,
                                       const MitigationOptions& opts,
                                       MitigationOutcome* outcome) {
  const int w = world_size();
  if (outcome != nullptr) {
    *outcome = MitigationOutcome{};
    outcome->contributed.assign(w, 1);
  }
  if (!opts.enabled() || w == 1) return AllGather(mine, all);

  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllGather, &decision));
  all->assign(w, {});
  cluster_->ptrs_[rank_] = &mine;
  cluster_->delay_slots_[rank_] = decision.delay_seconds;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) cluster_->PlanMitigation(opts);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const MitigatedCall call = ReadMitigationPlan(outcome);
  uint64_t received = 0;
  double deferred_mass = 0.0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src =
        static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
    if (r != rank_) received += src->size();
    if (cluster_->mit_class_[r] == RankClass::kDeferred) {
      if (r == rank_) deferred_mass = static_cast<double>(src->size());
      continue;  // dropped on arrival, on every rank — slot stays empty
    }
    (*all)[r] = *src;
    if (r != rank_) remote.push_back(&(*all)[r]);
  }
  MaybeSilentCorrupt(decision, remote);
  uint64_t extra_sent = 0;
  if (call.serving_for >= 0) {
    const auto* src = static_cast<const std::vector<uint8_t>*>(
        cluster_->ptrs_[call.serving_for]);
    extra_sent = src->size() * (w - 1);
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const uint64_t sent = mine.size() * (w - 1);
  Charge(CollectiveOp::kAllGather, sent, received);
  return FinishMitigated(CollectiveOp::kAllGather, opts, decision, call,
                         extra_sent, 0, sent, received, deferred_mass);
}

Status WorkerContext::AllToAllBounded(
    std::vector<std::vector<uint8_t>> to_each,
    std::vector<std::vector<uint8_t>>* from_each,
    const MitigationOptions& opts, MitigationOutcome* outcome) {
  const int w = world_size();
  if (outcome != nullptr) {
    *outcome = MitigationOutcome{};
    outcome->contributed.assign(w, 1);
  }
  if (!opts.enabled() || w == 1) return AllToAll(std::move(to_each), from_each);

  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllToAll, &decision));
  VERO_CHECK_EQ(static_cast<int>(to_each.size()), w);
  from_each->assign(w, {});
  cluster_->ptrs_[rank_] = &to_each;
  cluster_->delay_slots_[rank_] = decision.delay_seconds;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) cluster_->PlanMitigation(opts);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const MitigatedCall call = ReadMitigationPlan(outcome);
  uint64_t sent = 0, received = 0;
  double deferred_mass = 0.0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[r]);
    if (r != rank_) received += (*src)[rank_].size();
    // A deferred rank's buffers are dropped everywhere, self-slice included,
    // so receivers that skip non-contributors stay replicated-deterministic.
    if (cluster_->mit_class_[r] == RankClass::kDeferred) continue;
    (*from_each)[r] = (*src)[rank_];
    if (r != rank_) remote.push_back(&(*from_each)[r]);
  }
  MaybeSilentCorrupt(decision, remote);
  for (int r = 0; r < w; ++r) {
    if (r != rank_) sent += to_each[r].size();
  }
  if (call.my == RankClass::kDeferred) {
    for (const auto& buf : to_each) {
      deferred_mass += static_cast<double>(buf.size());
    }
  }
  uint64_t extra_sent = 0;
  if (call.serving_for >= 0) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[call.serving_for]);
    for (int r = 0; r < w; ++r) {
      if (r != call.serving_for) extra_sent += (*src)[r].size();
    }
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kAllToAll, sent, received);
  return FinishMitigated(CollectiveOp::kAllToAll, opts, decision, call,
                         extra_sent, 0, sent, received, deferred_mass);
}

// ---- Compressed (codec) collectives ---------------------------------------
//
// Same rendezvous structure and CollectiveOp stream as the uncompressed
// collectives — only the bytes that cross the (simulated) wire change. The
// serial reduction decodes rank frames in rank order 0..W-1, which for the
// lossless modes reproduces the dense summation order bit-for-bit.

Status WorkerContext::AllReduceSumCodec(std::span<double> data,
                                        const CodecSpec& codec) {
  if (!codec.enabled()) return AllReduceSum(data);
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllReduceSum, &decision));
  const int w = world_size();
  if (w == 1) return ApplyFaults(CollectiveOp::kAllReduceSum, decision, 0, 0);

  CodecStats cstats;
  std::vector<uint8_t> frame;
  CodecEncode(data, codec, &frame, &cstats);
  cluster_->ptrs_[rank_] = &frame;
  cluster_->sizes_[rank_] = frame.size();
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) {
    const size_t n = data.size();
    cluster_->reduce_buffer_.assign(n, 0.0);
    std::vector<double> decoded;
    for (int r = 0; r < w; ++r) {
      const auto* src =
          static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
      VERO_CHECK_OK(CodecDecode(*src, &decoded));
      VERO_CHECK_EQ(decoded.size(), n);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += decoded[i];
    }
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  std::memcpy(data.data(), cluster_->reduce_buffer_.data(),
              data.size() * sizeof(double));
  MaybeSilentCorrupt(decision, data);
  // All frame sizes were published before the first rendezvous, so this
  // read is race-free and identical on every rank.
  uint64_t total_encoded = 0;
  for (int r = 0; r < w; ++r) total_encoded += cluster_->sizes_[r];
  DebugCheckCodecSymmetry(total_encoded, total_encoded);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));

  // Ring all-reduce over encoded frames: the dense formula with the
  // per-rank buffer size replaced by the mean encoded frame size (the ring
  // moves everyone's data through everyone, so the mean is what each link
  // carries). Equal frames reduce exactly to the dense accounting.
  const uint64_t raw_bytes = data.size() * sizeof(double);
  const uint64_t raw_wire = 2 * raw_bytes * (w - 1) / w;
  const uint64_t wire = 2 * (total_encoded / w) * (w - 1) / w;
  Charge(CollectiveOp::kAllReduceSum, wire, wire);
  RecordCodec(CollectiveOp::kAllReduceSum, raw_wire, raw_wire, wire, wire,
              cstats);
  return ApplyFaults(CollectiveOp::kAllReduceSum, decision, wire, wire);
}

Status WorkerContext::AllGatherCodec(const std::vector<uint8_t>& mine,
                                     std::vector<std::vector<uint8_t>>* all,
                                     const CodecSpec& codec) {
  if (!codec.enabled()) return AllGather(mine, all);
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllGather, &decision));
  const int w = world_size();
  all->assign(w, {});
  if (w == 1) {
    (*all)[0] = mine;
    return ApplyFaults(CollectiveOp::kAllGather, decision, 0, 0);
  }
  CodecStats cstats;
  std::vector<uint8_t> frame;
  CodecEncodeBytes(mine, codec, &frame, &cstats);
  cluster_->ptrs_[rank_] = &frame;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  uint64_t sent = 0, received = 0, raw_received = 0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src =
        static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
    // Every rank decodes every frame — its own included — so a lossy
    // codec's reconstruction is replicated-deterministic cluster-wide.
    VERO_CHECK_OK(CodecDecodeBytes(*src, &(*all)[r]));
    if (r != rank_) {
      received += src->size();
      raw_received += (*all)[r].size();
      remote.push_back(&(*all)[r]);
    }
  }
  MaybeSilentCorrupt(decision, remote);
  sent = frame.size() * (w - 1);
  DebugCheckCodecSymmetry(sent, received);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kAllGather, sent, received);
  RecordCodec(CollectiveOp::kAllGather, mine.size() * (w - 1), raw_received,
              sent, received, cstats);
  return ApplyFaults(CollectiveOp::kAllGather, decision, sent, received);
}

Status WorkerContext::AllToAllCodec(std::vector<std::vector<uint8_t>> to_each,
                                    std::vector<std::vector<uint8_t>>* from_each,
                                    const CodecSpec& codec) {
  if (!codec.enabled()) return AllToAll(std::move(to_each), from_each);
  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllToAll, &decision));
  const int w = world_size();
  VERO_CHECK_EQ(static_cast<int>(to_each.size()), w);
  from_each->assign(w, {});
  if (w == 1) {
    (*from_each)[0] = std::move(to_each[0]);
    return ApplyFaults(CollectiveOp::kAllToAll, decision, 0, 0);
  }
  CodecStats cstats;
  std::vector<std::vector<uint8_t>> frames(w);
  for (int r = 0; r < w; ++r) {
    CodecEncodeBytes(to_each[r], codec, &frames[r], &cstats);
  }
  cluster_->ptrs_[rank_] = &frames;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  uint64_t sent = 0, received = 0, raw_sent = 0, raw_received = 0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[r]);
    VERO_CHECK_OK(CodecDecodeBytes((*src)[rank_], &(*from_each)[r]));
    if (r != rank_) {
      received += (*src)[rank_].size();
      raw_received += (*from_each)[r].size();
      remote.push_back(&(*from_each)[r]);
    }
  }
  for (int r = 0; r < w; ++r) {
    if (r != rank_) {
      sent += frames[r].size();
      raw_sent += to_each[r].size();
    }
  }
  MaybeSilentCorrupt(decision, remote);
  DebugCheckCodecSymmetry(sent, received);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kAllToAll, sent, received);
  RecordCodec(CollectiveOp::kAllToAll, raw_sent, raw_received, sent, received,
              cstats);
  return ApplyFaults(CollectiveOp::kAllToAll, decision, sent, received);
}

Status WorkerContext::AllReduceBoundedSumCodec(std::span<double> data,
                                               const CodecSpec& codec,
                                               const MitigationOptions& opts,
                                               MitigationOutcome* outcome) {
  if (!codec.enabled()) return AllReduceBoundedSum(data, opts, outcome);
  const int w = world_size();
  if (outcome != nullptr) {
    *outcome = MitigationOutcome{};
    outcome->contributed.assign(w, 1);
  }
  if (!opts.enabled() || w == 1) return AllReduceSumCodec(data, codec);

  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllReduceSum, &decision));
  CodecStats cstats;
  std::vector<uint8_t> frame;
  CodecEncode(data, codec, &frame, &cstats);
  cluster_->ptrs_[rank_] = &frame;
  cluster_->sizes_[rank_] = frame.size();
  cluster_->delay_slots_[rank_] = decision.delay_seconds;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) {
    cluster_->PlanMitigation(opts);
    const size_t n = data.size();
    cluster_->reduce_buffer_.assign(n, 0.0);
    std::vector<double> decoded;
    for (int r = 0; r < w; ++r) {
      if (cluster_->mit_class_[r] == RankClass::kDeferred) continue;
      const auto* src =
          static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
      VERO_CHECK_OK(CodecDecode(*src, &decoded));
      VERO_CHECK_EQ(decoded.size(), n);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += decoded[i];
    }
  }
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const MitigatedCall call = ReadMitigationPlan(outcome);
  double deferred_mass = 0.0;
  if (call.my == RankClass::kDeferred) {
    for (double v : data) deferred_mass += v;
  }
  std::memcpy(data.data(), cluster_->reduce_buffer_.data(),
              data.size() * sizeof(double));
  MaybeSilentCorrupt(decision, data);
  // A deferred rank's frame still crossed the wire (it is just dropped on
  // arrival), so every published frame counts toward the ring volume.
  uint64_t total_encoded = 0;
  for (int r = 0; r < w; ++r) total_encoded += cluster_->sizes_[r];
  DebugCheckCodecSymmetry(total_encoded, total_encoded);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));

  const uint64_t raw_bytes = data.size() * sizeof(double);
  const uint64_t raw_wire = 2 * raw_bytes * (w - 1) / w;
  const uint64_t wire = 2 * (total_encoded / w) * (w - 1) / w;
  const uint64_t extra = call.serving_for >= 0 ? wire : 0;
  Charge(CollectiveOp::kAllReduceSum, wire, wire);
  RecordCodec(CollectiveOp::kAllReduceSum, raw_wire, raw_wire, wire, wire,
              cstats);
  return FinishMitigated(CollectiveOp::kAllReduceSum, opts, decision, call,
                         extra, extra, wire, wire, deferred_mass);
}

Status WorkerContext::AllGatherBoundedCodec(
    const std::vector<uint8_t>& mine, std::vector<std::vector<uint8_t>>* all,
    const CodecSpec& codec, const MitigationOptions& opts,
    MitigationOutcome* outcome) {
  if (!codec.enabled()) return AllGatherBounded(mine, all, opts, outcome);
  const int w = world_size();
  if (outcome != nullptr) {
    *outcome = MitigationOutcome{};
    outcome->contributed.assign(w, 1);
  }
  if (!opts.enabled() || w == 1) return AllGatherCodec(mine, all, codec);

  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllGather, &decision));
  all->assign(w, {});
  CodecStats cstats;
  std::vector<uint8_t> frame;
  CodecEncodeBytes(mine, codec, &frame, &cstats);
  cluster_->ptrs_[rank_] = &frame;
  cluster_->delay_slots_[rank_] = decision.delay_seconds;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) cluster_->PlanMitigation(opts);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const MitigatedCall call = ReadMitigationPlan(outcome);
  uint64_t received = 0, raw_received = 0;
  double deferred_mass = 0.0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src =
        static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
    if (r != rank_) {
      received += src->size();
      // The deferred rank's frame crossed the wire too; its raw-equivalent
      // volume comes from the frame header (the payload is never decoded).
      uint64_t raw = 0;
      VERO_CHECK_OK(CodecFrameRawSize(*src, &raw));
      raw_received += raw;
    }
    if (cluster_->mit_class_[r] == RankClass::kDeferred) {
      if (r == rank_) deferred_mass = static_cast<double>(mine.size());
      continue;  // dropped on arrival, on every rank — slot stays empty
    }
    VERO_CHECK_OK(CodecDecodeBytes(*src, &(*all)[r]));
    if (r != rank_) remote.push_back(&(*all)[r]);
  }
  MaybeSilentCorrupt(decision, remote);
  uint64_t extra_sent = 0;
  if (call.serving_for >= 0) {
    const auto* src = static_cast<const std::vector<uint8_t>*>(
        cluster_->ptrs_[call.serving_for]);
    extra_sent = src->size() * (w - 1);
  }
  const uint64_t sent = frame.size() * (w - 1);
  DebugCheckCodecSymmetry(sent, received);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kAllGather, sent, received);
  RecordCodec(CollectiveOp::kAllGather, mine.size() * (w - 1), raw_received,
              sent, received, cstats);
  return FinishMitigated(CollectiveOp::kAllGather, opts, decision, call,
                         extra_sent, 0, sent, received, deferred_mass);
}

Status WorkerContext::AllToAllBoundedCodec(
    std::vector<std::vector<uint8_t>> to_each,
    std::vector<std::vector<uint8_t>>* from_each, const CodecSpec& codec,
    const MitigationOptions& opts, MitigationOutcome* outcome) {
  if (!codec.enabled()) {
    return AllToAllBounded(std::move(to_each), from_each, opts, outcome);
  }
  const int w = world_size();
  if (outcome != nullptr) {
    *outcome = MitigationOutcome{};
    outcome->contributed.assign(w, 1);
  }
  if (!opts.enabled() || w == 1) {
    return AllToAllCodec(std::move(to_each), from_each, codec);
  }

  FaultDecision decision;
  VERO_RETURN_IF_ERROR(Prepare(CollectiveOp::kAllToAll, &decision));
  VERO_CHECK_EQ(static_cast<int>(to_each.size()), w);
  from_each->assign(w, {});
  CodecStats cstats;
  std::vector<std::vector<uint8_t>> frames(w);
  for (int r = 0; r < w; ++r) {
    CodecEncodeBytes(to_each[r], codec, &frames[r], &cstats);
  }
  cluster_->ptrs_[rank_] = &frames;
  cluster_->delay_slots_[rank_] = decision.delay_seconds;
  bool serial = false;
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  if (serial) cluster_->PlanMitigation(opts);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  const MitigatedCall call = ReadMitigationPlan(outcome);
  uint64_t sent = 0, received = 0, raw_sent = 0, raw_received = 0;
  double deferred_mass = 0.0;
  std::vector<std::vector<uint8_t>*> remote;
  for (int r = 0; r < w; ++r) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[r]);
    if (r != rank_) {
      received += (*src)[rank_].size();
      uint64_t raw = 0;
      VERO_CHECK_OK(CodecFrameRawSize((*src)[rank_], &raw));
      raw_received += raw;
    }
    // A deferred rank's buffers are dropped everywhere, self-slice included,
    // so receivers that skip non-contributors stay replicated-deterministic.
    if (cluster_->mit_class_[r] == RankClass::kDeferred) continue;
    VERO_CHECK_OK(CodecDecodeBytes((*src)[rank_], &(*from_each)[r]));
    if (r != rank_) remote.push_back(&(*from_each)[r]);
  }
  MaybeSilentCorrupt(decision, remote);
  for (int r = 0; r < w; ++r) {
    if (r != rank_) {
      sent += frames[r].size();
      raw_sent += to_each[r].size();
    }
  }
  if (call.my == RankClass::kDeferred) {
    for (const auto& buf : to_each) {
      deferred_mass += static_cast<double>(buf.size());
    }
  }
  uint64_t extra_sent = 0;
  if (call.serving_for >= 0) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[call.serving_for]);
    for (int r = 0; r < w; ++r) {
      if (r != call.serving_for) extra_sent += (*src)[r].size();
    }
  }
  DebugCheckCodecSymmetry(sent, received);
  VERO_RETURN_IF_ERROR(Rendezvous(&serial));
  Charge(CollectiveOp::kAllToAll, sent, received);
  RecordCodec(CollectiveOp::kAllToAll, raw_sent, raw_received, sent, received,
              cstats);
  return FinishMitigated(CollectiveOp::kAllToAll, opts, decision, call,
                         extra_sent, 0, sent, received, deferred_mass);
}

}  // namespace vero
