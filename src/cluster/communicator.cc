#include "cluster/communicator.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace vero {

Cluster::Cluster(int num_workers, NetworkModel model)
    : num_workers_(num_workers),
      model_(model),
      barrier_(static_cast<size_t>(num_workers)),
      ptrs_(num_workers, nullptr),
      mutable_ptrs_(num_workers, nullptr),
      sizes_(num_workers, 0),
      instrument_slots_(num_workers, 0.0) {
  VERO_CHECK_GT(num_workers, 0);
  contexts_.reserve(num_workers);
  for (int r = 0; r < num_workers; ++r) {
    contexts_.emplace_back(new WorkerContext(this, r));
  }
}

void Cluster::Run(const std::function<void(WorkerContext&)>& fn) {
  if (num_workers_ == 1) {
    fn(*contexts_[0]);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers_);
  for (int r = 0; r < num_workers_; ++r) {
    threads.emplace_back([this, &fn, r] { fn(*contexts_[r]); });
  }
  for (auto& t : threads) t.join();
}

const CommStats& Cluster::worker_stats(int rank) const {
  return contexts_[rank]->stats();
}

CommStats Cluster::TotalStats() const {
  CommStats total;
  for (const auto& ctx : contexts_) total += ctx->stats();
  return total;
}

double Cluster::MaxSimSeconds() const {
  double max_s = 0.0;
  for (const auto& ctx : contexts_) {
    max_s = std::max(max_s, ctx->stats().sim_seconds);
  }
  return max_s;
}

void Cluster::ResetStats() {
  for (auto& ctx : contexts_) ctx->stats_ = CommStats{};
}

int WorkerContext::world_size() const { return cluster_->num_workers_; }

void WorkerContext::Charge(uint64_t sent, uint64_t received) {
  stats_.bytes_sent += sent;
  stats_.bytes_received += received;
  stats_.num_ops += 1;
  stats_.sim_seconds += cluster_->model_.OpSeconds(sent, received);
}

void WorkerContext::Barrier() { cluster_->barrier_.ArriveAndWait(); }

double WorkerContext::InstrumentMax(double value) {
  const int w = world_size();
  if (w == 1) return value;
  cluster_->instrument_slots_[rank_] = value;
  cluster_->barrier_.ArriveAndWait();
  double max_v = cluster_->instrument_slots_[0];
  for (int r = 1; r < w; ++r) {
    max_v = std::max(max_v, cluster_->instrument_slots_[r]);
  }
  cluster_->barrier_.ArriveAndWait();
  return max_v;
}

double WorkerContext::InstrumentSum(double value) {
  const int w = world_size();
  if (w == 1) return value;
  cluster_->instrument_slots_[rank_] = value;
  cluster_->barrier_.ArriveAndWait();
  double sum = 0.0;
  for (int r = 0; r < w; ++r) sum += cluster_->instrument_slots_[r];
  cluster_->barrier_.ArriveAndWait();
  return sum;
}

size_t WorkerContext::SliceBegin(size_t n, int rank) const {
  const size_t w = cluster_->num_workers_;
  return n * rank / w;
}

size_t WorkerContext::SliceEnd(size_t n, int rank) const {
  const size_t w = cluster_->num_workers_;
  return n * (rank + 1) / w;
}

void WorkerContext::AllReduceSum(std::span<double> data) {
  const int w = world_size();
  if (w == 1) return;
  cluster_->mutable_ptrs_[rank_] = data.data();
  cluster_->sizes_[rank_] = data.size();
  if (cluster_->barrier_.ArriveAndWait()) {
    // Serial participant: sum everyone into the shared buffer.
    const size_t n = cluster_->sizes_[0];
    for (int r = 1; r < w; ++r) VERO_CHECK_EQ(cluster_->sizes_[r], n);
    cluster_->reduce_buffer_.assign(n, 0.0);
    for (int r = 0; r < w; ++r) {
      const double* src = static_cast<const double*>(cluster_->mutable_ptrs_[r]);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += src[i];
    }
  }
  cluster_->barrier_.ArriveAndWait();
  std::memcpy(data.data(), cluster_->reduce_buffer_.data(),
              data.size() * sizeof(double));
  cluster_->barrier_.ArriveAndWait();

  // Ring all-reduce volume: each worker sends (and receives) the buffer
  // twice, minus its own 1/W share, in 2*(W-1) pipelined steps.
  const uint64_t bytes = data.size() * sizeof(double);
  const uint64_t wire = 2 * bytes * (w - 1) / w;
  Charge(wire, wire);
}

void WorkerContext::ReduceScatterSum(std::span<double> data) {
  const int w = world_size();
  if (w == 1) return;
  cluster_->mutable_ptrs_[rank_] = data.data();
  cluster_->sizes_[rank_] = data.size();
  if (cluster_->barrier_.ArriveAndWait()) {
    const size_t n = cluster_->sizes_[0];
    for (int r = 1; r < w; ++r) VERO_CHECK_EQ(cluster_->sizes_[r], n);
    cluster_->reduce_buffer_.assign(n, 0.0);
    for (int r = 0; r < w; ++r) {
      const double* src = static_cast<const double*>(cluster_->mutable_ptrs_[r]);
      for (size_t i = 0; i < n; ++i) cluster_->reduce_buffer_[i] += src[i];
    }
  }
  cluster_->barrier_.ArriveAndWait();
  const size_t begin = SliceBegin(data.size(), rank_);
  const size_t end = SliceEnd(data.size(), rank_);
  std::memcpy(data.data() + begin, cluster_->reduce_buffer_.data() + begin,
              (end - begin) * sizeof(double));
  cluster_->barrier_.ArriveAndWait();

  // Ring reduce-scatter volume: (W-1)/W of the buffer per worker.
  const uint64_t bytes = data.size() * sizeof(double);
  const uint64_t wire = bytes * (w - 1) / w;
  Charge(wire, wire);
}

void WorkerContext::AllGather(const std::vector<uint8_t>& mine,
                              std::vector<std::vector<uint8_t>>* all) {
  const int w = world_size();
  all->assign(w, {});
  if (w == 1) {
    (*all)[0] = mine;
    return;
  }
  cluster_->ptrs_[rank_] = &mine;
  cluster_->barrier_.ArriveAndWait();
  uint64_t received = 0;
  for (int r = 0; r < w; ++r) {
    const auto* src =
        static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
    (*all)[r] = *src;
    if (r != rank_) received += src->size();
  }
  cluster_->barrier_.ArriveAndWait();
  Charge(mine.size() * (w - 1), received);
}

void WorkerContext::Broadcast(std::vector<uint8_t>* data, int root) {
  const int w = world_size();
  if (w == 1) return;
  if (rank_ == root) cluster_->ptrs_[root] = data;
  cluster_->barrier_.ArriveAndWait();
  const auto* src =
      static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[root]);
  uint64_t sent = 0, received = 0;
  if (rank_ == root) {
    sent = src->size() * (w - 1);
  } else {
    *data = *src;
    received = src->size();
  }
  cluster_->barrier_.ArriveAndWait();
  Charge(sent, received);
}

void WorkerContext::Gather(const std::vector<uint8_t>& mine, int root,
                           std::vector<std::vector<uint8_t>>* all) {
  const int w = world_size();
  all->clear();
  if (w == 1) {
    all->push_back(mine);
    return;
  }
  cluster_->ptrs_[rank_] = &mine;
  cluster_->barrier_.ArriveAndWait();
  uint64_t sent = 0, received = 0;
  if (rank_ == root) {
    all->resize(w);
    for (int r = 0; r < w; ++r) {
      const auto* src =
          static_cast<const std::vector<uint8_t>*>(cluster_->ptrs_[r]);
      (*all)[r] = *src;
      if (r != rank_) received += src->size();
    }
  } else {
    sent = mine.size();
  }
  cluster_->barrier_.ArriveAndWait();
  Charge(sent, received);
}

void WorkerContext::AllToAll(std::vector<std::vector<uint8_t>> to_each,
                             std::vector<std::vector<uint8_t>>* from_each) {
  const int w = world_size();
  VERO_CHECK_EQ(static_cast<int>(to_each.size()), w);
  from_each->assign(w, {});
  if (w == 1) {
    (*from_each)[0] = std::move(to_each[0]);
    return;
  }
  cluster_->ptrs_[rank_] = &to_each;
  cluster_->barrier_.ArriveAndWait();
  uint64_t sent = 0, received = 0;
  for (int r = 0; r < w; ++r) {
    const auto* src = static_cast<const std::vector<std::vector<uint8_t>>*>(
        cluster_->ptrs_[r]);
    (*from_each)[r] = (*src)[rank_];
    if (r != rank_) received += (*src)[rank_].size();
  }
  for (int r = 0; r < w; ++r) {
    if (r != rank_) sent += to_each[r].size();
  }
  cluster_->barrier_.ArriveAndWait();
  Charge(sent, received);
}

}  // namespace vero
