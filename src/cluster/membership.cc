#include "cluster/membership.h"

#include <algorithm>

#include "common/logging.h"

namespace vero {

std::string Membership::ToString() const {
  std::string out = "world=" + std::to_string(world) + " map=[";
  for (int r = 0; r < world; ++r) {
    if (r > 0) out += ",";
    out += prev_rank[r] == kPrevNone ? std::string("new")
                                     : std::to_string(prev_rank[r]);
  }
  out += "]";
  if (!retired.empty()) {
    out += " retired=[";
    for (size_t i = 0; i < retired.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(retired[i]);
    }
    out += "]";
  }
  return out;
}

Membership InitialMembership(int world) {
  VERO_CHECK_GT(world, 0);
  Membership m;
  m.world = world;
  m.prev_rank.resize(world);
  for (int r = 0; r < world; ++r) m.prev_rank[r] = r;
  return m;
}

Membership NextMembership(const Membership& current,
                          const std::vector<int>& dead, bool elastic) {
  return NextMembership(current, dead, elastic, 0);
}

Membership NextMembership(const Membership& current,
                          const std::vector<int>& dead, bool elastic,
                          int resize_delta) {
  VERO_CHECK(std::is_sorted(dead.begin(), dead.end()));
  Membership next;
  if (resize_delta != 0) {
    // Resize transition: identity-preserving for the common ranks so no
    // surviving shard moves except through the explicit reshard plan.
    const int new_world = current.world + resize_delta;
    VERO_CHECK_GT(new_world, 0);
    next.world = new_world;
    next.prev_rank.resize(new_world);
    const int keep = std::min(current.world, new_world);
    for (int r = 0; r < keep; ++r) {
      if (std::binary_search(dead.begin(), dead.end(), r)) {
        next.prev_rank[r] = Membership::kPrevNone;
        next.rejoined.push_back(r);
      } else {
        next.prev_rank[r] = r;
      }
    }
    for (int r = keep; r < new_world; ++r) {
      next.prev_rank[r] = Membership::kPrevNone;
      next.admitted.push_back(r);
    }
    for (int r = keep; r < current.world; ++r) {
      if (!std::binary_search(dead.begin(), dead.end(), r)) {
        next.retired.push_back(r);
      }
    }
    VERO_CHECK_GT(next.world - static_cast<int>(next.rejoined.size()) -
                      static_cast<int>(next.admitted.size()),
                  0);
  } else if (elastic) {
    // Survivors keep their identity ranks; replacements take the dead
    // slots, so every shard assignment of the incarnation stays put.
    next.world = current.world;
    next.prev_rank.resize(current.world);
    for (int r = 0; r < current.world; ++r) {
      if (std::binary_search(dead.begin(), dead.end(), r)) {
        next.prev_rank[r] = Membership::kPrevNone;
        next.rejoined.push_back(r);
      } else {
        next.prev_rank[r] = r;
      }
    }
    VERO_CHECK_GT(next.world - static_cast<int>(next.rejoined.size()), 0);
  } else {
    // Degraded mode: survivors compact into the low ranks in rank order.
    for (int r = 0; r < current.world; ++r) {
      if (std::binary_search(dead.begin(), dead.end(), r)) continue;
      next.prev_rank.push_back(r);
    }
    next.world = static_cast<int>(next.prev_rank.size());
    VERO_CHECK_GT(next.world, 0);
  }
  return next;
}

std::vector<ShardMove> PlanReshard(uint32_t num_rows, int old_world,
                                   int new_world) {
  VERO_CHECK_GT(old_world, 0);
  VERO_CHECK_GT(new_world, 0);
  std::vector<ShardMove> moves;
  if (old_world == new_world || num_rows == 0) return moves;
  // Shard boundaries follow HorizontalRange: rank r owns
  // [n*r/w, n*(r+1)/w). Walking the merged boundary set of both partitions
  // yields their common refinement; each refined segment has exactly one
  // owner per side.
  const auto begin_of = [num_rows](int rank, int world) -> uint32_t {
    return static_cast<uint32_t>(static_cast<uint64_t>(num_rows) *
                                 static_cast<uint64_t>(rank) /
                                 static_cast<uint64_t>(world));
  };
  uint32_t pos = 0;
  int from = 0;
  int to = 0;
  while (pos < num_rows) {
    while (begin_of(from + 1, old_world) <= pos) ++from;
    while (begin_of(to + 1, new_world) <= pos) ++to;
    const uint32_t seg_end =
        std::min(begin_of(from + 1, old_world), begin_of(to + 1, new_world));
    if (from != to) {
      ShardMove move;
      move.row_begin = pos;
      move.row_end = seg_end;
      move.from_rank = from;
      move.to_rank = to;
      moves.push_back(move);
    }
    pos = seg_end;
  }
  return moves;
}

}  // namespace vero
