#include "cluster/membership.h"

#include <algorithm>

#include "common/logging.h"

namespace vero {

std::string Membership::ToString() const {
  std::string out = "world=" + std::to_string(world) + " map=[";
  for (int r = 0; r < world; ++r) {
    if (r > 0) out += ",";
    out += prev_rank[r] == kPrevNone ? std::string("new")
                                     : std::to_string(prev_rank[r]);
  }
  out += "]";
  return out;
}

Membership InitialMembership(int world) {
  VERO_CHECK_GT(world, 0);
  Membership m;
  m.world = world;
  m.prev_rank.resize(world);
  for (int r = 0; r < world; ++r) m.prev_rank[r] = r;
  return m;
}

Membership NextMembership(const Membership& current,
                          const std::vector<int>& dead, bool elastic) {
  VERO_CHECK(std::is_sorted(dead.begin(), dead.end()));
  Membership next;
  if (elastic) {
    // Survivors keep their identity ranks; replacements take the dead
    // slots, so every shard assignment of the incarnation stays put.
    next.world = current.world;
    next.prev_rank.resize(current.world);
    for (int r = 0; r < current.world; ++r) {
      if (std::binary_search(dead.begin(), dead.end(), r)) {
        next.prev_rank[r] = Membership::kPrevNone;
        next.rejoined.push_back(r);
      } else {
        next.prev_rank[r] = r;
      }
    }
    VERO_CHECK_GT(next.world - static_cast<int>(next.rejoined.size()), 0);
  } else {
    // Degraded mode: survivors compact into the low ranks in rank order.
    for (int r = 0; r < current.world; ++r) {
      if (std::binary_search(dead.begin(), dead.end(), r)) continue;
      next.prev_rank.push_back(r);
    }
    next.world = static_cast<int>(next.prev_rank.size());
    VERO_CHECK_GT(next.world, 0);
  }
  return next;
}

}  // namespace vero
