#ifndef VERO_CLUSTER_NETWORK_MODEL_H_
#define VERO_CLUSTER_NETWORK_MODEL_H_

#include <cstdint>

namespace vero {

/// Analytic cost model that converts counted bytes into simulated network
/// time. The simulated cluster moves real bytes through shared memory, so
/// communication *volume* is measured, not modeled; this class only supplies
/// the time per op:
///
///   time(op) = latency + max(bytes_sent, bytes_received) / bandwidth
///
/// per worker (full-duplex NIC, which is how the paper's per-node 1 Gbps
/// Ethernet behaves). Defaults follow §5.1's laboratory cluster; the
/// industrial benches switch to the 10 Gbps production profile of §6.
struct NetworkModel {
  /// Per-operation latency in seconds (switch + software stack).
  double latency_seconds = 2e-4;
  /// Per-node full-duplex bandwidth in bytes/second. 1 Gbps = 125 MB/s.
  double bandwidth_bytes_per_second = 125e6;

  /// The paper's laboratory cluster (§5.1): 1 Gbps Ethernet (LAN-grade
  /// ~0.2 ms per-op software + switch latency).
  static NetworkModel Lab1Gbps() { return NetworkModel{2e-4, 125e6}; }
  /// The paper's production cluster (§6): 10 Gbps Ethernet.
  static NetworkModel Production10Gbps() { return NetworkModel{1e-4, 1.25e9}; }

  double OpSeconds(uint64_t bytes_sent, uint64_t bytes_received) const {
    const uint64_t wire = bytes_sent > bytes_received ? bytes_sent
                                                      : bytes_received;
    return latency_seconds +
           static_cast<double>(wire) / bandwidth_bytes_per_second;
  }
};

/// Per-worker communication counters, accumulated across collective calls.
struct CommStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t num_ops = 0;
  /// Simulated network seconds under the cluster's NetworkModel.
  double sim_seconds = 0.0;
  /// Fault-injection accounting (all zero on a failure-free run): bytes
  /// re-sent because a transfer arrived corrupt/short, how many retries that
  /// took, and straggler seconds added by injected delays. Retried bytes are
  /// *also* counted in bytes_sent/bytes_received (they crossed the wire);
  /// these fields isolate the overhead.
  uint64_t retransmitted_bytes = 0;
  uint64_t num_retries = 0;
  double fault_delay_seconds = 0.0;
  /// Straggler-mitigation accounting (all zero in strict mode). A deferred
  /// or speculated rank's injected delay moves off the critical path into
  /// absorbed_delay_seconds instead of sim_seconds; on-time ranks of a
  /// bounded round pay the deadline into sim_seconds and mirror it here in
  /// deadline_wait_seconds; a speculative backup's duplicated transfer is
  /// *also* counted in bytes_sent/bytes_received (it crossed the wire) and
  /// isolated here as speculative_bytes / speculative_seconds (goodput
  /// waste). deferred_contributions counts calls whose payload this rank
  /// had dropped from the aggregate.
  double absorbed_delay_seconds = 0.0;
  double deadline_wait_seconds = 0.0;
  uint64_t deferred_contributions = 0;
  uint64_t speculative_bytes = 0;
  double speculative_seconds = 0.0;
  /// Histogram-compression accounting (all zero with compression off). For
  /// every codec collective, codec_raw_bytes counts the uncompressed payload
  /// volume this rank exchanged (what the strict path would have shipped)
  /// and codec_wire_bytes the encoded frames actually priced by the network
  /// model; the spread is the bytes the codec kept off the wire. Wire bytes
  /// are *also* counted in bytes_sent/bytes_received (they crossed the
  /// wire); these fields isolate the compression effect.
  uint64_t codec_raw_bytes = 0;
  uint64_t codec_wire_bytes = 0;

  CommStats& operator+=(const CommStats& other) {
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    num_ops += other.num_ops;
    sim_seconds += other.sim_seconds;
    retransmitted_bytes += other.retransmitted_bytes;
    num_retries += other.num_retries;
    fault_delay_seconds += other.fault_delay_seconds;
    absorbed_delay_seconds += other.absorbed_delay_seconds;
    deadline_wait_seconds += other.deadline_wait_seconds;
    deferred_contributions += other.deferred_contributions;
    speculative_bytes += other.speculative_bytes;
    speculative_seconds += other.speculative_seconds;
    codec_raw_bytes += other.codec_raw_bytes;
    codec_wire_bytes += other.codec_wire_bytes;
    return *this;
  }
  CommStats operator-(const CommStats& other) const {
    CommStats d;
    d.bytes_sent = bytes_sent - other.bytes_sent;
    d.bytes_received = bytes_received - other.bytes_received;
    d.num_ops = num_ops - other.num_ops;
    d.sim_seconds = sim_seconds - other.sim_seconds;
    d.retransmitted_bytes = retransmitted_bytes - other.retransmitted_bytes;
    d.num_retries = num_retries - other.num_retries;
    d.fault_delay_seconds = fault_delay_seconds - other.fault_delay_seconds;
    d.absorbed_delay_seconds =
        absorbed_delay_seconds - other.absorbed_delay_seconds;
    d.deadline_wait_seconds =
        deadline_wait_seconds - other.deadline_wait_seconds;
    d.deferred_contributions =
        deferred_contributions - other.deferred_contributions;
    d.speculative_bytes = speculative_bytes - other.speculative_bytes;
    d.speculative_seconds = speculative_seconds - other.speculative_seconds;
    d.codec_raw_bytes = codec_raw_bytes - other.codec_raw_bytes;
    d.codec_wire_bytes = codec_wire_bytes - other.codec_wire_bytes;
    return d;
  }
};

}  // namespace vero

#endif  // VERO_CLUSTER_NETWORK_MODEL_H_
