#include "cluster/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace vero {
namespace {

// Frame layout (see docs/wire_formats.md):
//   u8 magic (kCodecMagic)
//   u8 mode  (CollectiveCompression, 1..3)
//   varint total_values
//   varint block_values (the per-block split actually used)
//   per block: u8 tag + tag-specific body
//   u32 crc32 over everything above
constexpr uint8_t kCodecMagic = 0xC5;

// Per-block tags. Decode accepts any tag under any mode; encode only emits
// tags consistent with the mode, so the tag stream doubles as documentation
// of which path each block took.
constexpr uint8_t kTagDenseRaw = 0;    // block_len raw f64
constexpr uint8_t kTagSparseAbs = 1;   // nnz, absolute varint indices, raw f64
constexpr uint8_t kTagSparseDelta = 2;  // nnz, gap-coded indices, raw f64
constexpr uint8_t kTagDenseQuant = 3;  // offset, scale, block_len u16 codes
constexpr uint8_t kTagSparseQuant = 4;  // nnz, offset, scale, gaps, u16 codes

constexpr uint64_t kQuantLevels = 65535;  // u16 code range [0, 65535]

// Nonzero test on the bit pattern, not the value: -0.0 must be shipped (its
// pattern is not all-zero) and a skipped value must reconstruct as exactly
// +0.0, so lossless modes stay bit-exact for every input.
inline bool BitNonzero(double v) {
  return std::bit_cast<uint64_t>(v) != 0;
}

struct BlockScan {
  uint64_t nnz = 0;
  bool all_finite = true;
  double min = 0.0;
  double max = 0.0;
};

BlockScan ScanBlock(const double* v, uint64_t n) {
  BlockScan scan;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    if (BitNonzero(v[i])) ++scan.nnz;
    if (!std::isfinite(v[i])) {
      scan.all_finite = false;
      continue;
    }
    if (first) {
      scan.min = scan.max = v[i];
      first = false;
    } else {
      scan.min = std::min(scan.min, v[i]);
      scan.max = std::max(scan.max, v[i]);
    }
  }
  // Quantization codes every value (zeros included) in dense layout, so the
  // range must cover 0.0 when any value is zero.
  if (scan.nnz < n && !first) {
    scan.min = std::min(scan.min, 0.0);
    scan.max = std::max(scan.max, 0.0);
  }
  if (first) scan.min = scan.max = 0.0;
  return scan;
}

void WriteIndices(ByteWriter* w, const std::vector<uint64_t>& indices,
                  bool delta) {
  for (size_t k = 0; k < indices.size(); ++k) {
    if (!delta || k == 0) {
      w->WriteVarint64(indices[k]);
    } else {
      // Strictly increasing, so the gap is >= 1; store gap-1 to keep
      // adjacent nonzeros at one byte each.
      w->WriteVarint64(indices[k] - indices[k - 1] - 1);
    }
  }
}

Status ReadIndices(ByteReader* r, uint64_t nnz, uint64_t block_len, bool delta,
                   std::vector<uint64_t>* indices) {
  indices->clear();
  indices->reserve(nnz);
  uint64_t prev = 0;
  for (uint64_t k = 0; k < nnz; ++k) {
    uint64_t raw = 0;
    VERO_RETURN_IF_ERROR(r->ReadVarint64(&raw));
    uint64_t index;
    if (!delta || k == 0) {
      index = raw;
    } else {
      if (raw >= block_len || prev + raw + 1 < prev) {
        return Status::Corruption("codec frame: sparse index gap overflow");
      }
      index = prev + raw + 1;
    }
    if (index >= block_len || (k > 0 && index <= prev)) {
      return Status::Corruption("codec frame: sparse index out of order");
    }
    prev = index;
    indices->push_back(index);
  }
  return Status::OK();
}

uint16_t QuantizeValue(double v, double offset, double inv_scale) {
  const double code = std::nearbyint((v - offset) * inv_scale);
  if (code <= 0.0) return 0;
  if (code >= static_cast<double>(kQuantLevels)) {
    return static_cast<uint16_t>(kQuantLevels);
  }
  return static_cast<uint16_t>(code);
}

void EncodeBlock(const double* v, uint64_t n, const CodecSpec& spec,
                 ByteWriter* w, CodecStats* stats) {
  const BlockScan scan = ScanBlock(v, n);
  const bool sparse =
      static_cast<double>(scan.nnz) <=
      spec.density_threshold * static_cast<double>(n);

  if (spec.mode == CollectiveCompression::kQuantized && scan.all_finite) {
    const double offset = scan.min;
    const double scale =
        (scan.max - scan.min) / static_cast<double>(kQuantLevels);
    const double inv_scale = scale > 0.0 ? 1.0 / scale : 0.0;
    if (sparse) {
      w->WriteU8(kTagSparseQuant);
      w->WriteVarint64(scan.nnz);
      w->WriteF64(offset);
      w->WriteF64(scale);
      std::vector<uint64_t> indices;
      indices.reserve(scan.nnz);
      for (uint64_t i = 0; i < n; ++i) {
        if (BitNonzero(v[i])) indices.push_back(i);
      }
      WriteIndices(w, indices, /*delta=*/true);
      for (uint64_t i : indices) {
        w->WriteU16(QuantizeValue(v[i], offset, inv_scale));
      }
    } else {
      w->WriteU8(kTagDenseQuant);
      w->WriteF64(offset);
      w->WriteF64(scale);
      for (uint64_t i = 0; i < n; ++i) {
        w->WriteU16(QuantizeValue(v[i], offset, inv_scale));
      }
    }
    if (stats != nullptr) ++stats->quantized_blocks;
    return;
  }

  const bool delta = spec.mode != CollectiveCompression::kSparse;
  if (sparse && spec.mode != CollectiveCompression::kQuantized) {
    w->WriteU8(delta ? kTagSparseDelta : kTagSparseAbs);
    w->WriteVarint64(scan.nnz);
    std::vector<uint64_t> indices;
    indices.reserve(scan.nnz);
    for (uint64_t i = 0; i < n; ++i) {
      if (BitNonzero(v[i])) indices.push_back(i);
    }
    WriteIndices(w, indices, delta);
    for (uint64_t i : indices) w->WriteF64(v[i]);
    if (stats != nullptr) ++stats->sparse_blocks;
    return;
  }

  // Dense-raw: the dense side of the density switch for the lossless modes,
  // and the lossless fallback for quantized blocks holding non-finite
  // values (so NaN poison and Inf overflow propagate byte-exactly).
  w->WriteU8(kTagDenseRaw);
  w->WriteRaw(v, n * sizeof(double));
  if (stats != nullptr) ++stats->dense_blocks;
}

Status DecodeBlock(ByteReader* r, uint64_t block_len, double* out) {
  uint8_t tag = 0;
  VERO_RETURN_IF_ERROR(r->ReadU8(&tag));
  switch (tag) {
    case kTagDenseRaw:
      return r->ReadRaw(out, block_len * sizeof(double));
    case kTagSparseAbs:
    case kTagSparseDelta: {
      uint64_t nnz = 0;
      VERO_RETURN_IF_ERROR(r->ReadVarint64(&nnz));
      if (nnz > block_len) {
        return Status::Corruption("codec frame: nnz exceeds block length");
      }
      std::vector<uint64_t> indices;
      VERO_RETURN_IF_ERROR(ReadIndices(r, nnz, block_len,
                                       tag == kTagSparseDelta, &indices));
      std::memset(out, 0, block_len * sizeof(double));
      for (uint64_t index : indices) {
        VERO_RETURN_IF_ERROR(r->ReadF64(&out[index]));
      }
      return Status::OK();
    }
    case kTagDenseQuant: {
      double offset = 0.0, scale = 0.0;
      VERO_RETURN_IF_ERROR(r->ReadF64(&offset));
      VERO_RETURN_IF_ERROR(r->ReadF64(&scale));
      for (uint64_t i = 0; i < block_len; ++i) {
        uint16_t code = 0;
        VERO_RETURN_IF_ERROR(r->ReadU16(&code));
        out[i] = offset + static_cast<double>(code) * scale;
      }
      return Status::OK();
    }
    case kTagSparseQuant: {
      uint64_t nnz = 0;
      VERO_RETURN_IF_ERROR(r->ReadVarint64(&nnz));
      if (nnz > block_len) {
        return Status::Corruption("codec frame: nnz exceeds block length");
      }
      double offset = 0.0, scale = 0.0;
      VERO_RETURN_IF_ERROR(r->ReadF64(&offset));
      VERO_RETURN_IF_ERROR(r->ReadF64(&scale));
      std::vector<uint64_t> indices;
      VERO_RETURN_IF_ERROR(
          ReadIndices(r, nnz, block_len, /*delta=*/true, &indices));
      std::memset(out, 0, block_len * sizeof(double));
      for (uint64_t index : indices) {
        uint16_t code = 0;
        VERO_RETURN_IF_ERROR(r->ReadU16(&code));
        out[index] = offset + static_cast<double>(code) * scale;
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("codec frame: unknown block tag");
  }
}

}  // namespace

const char* CollectiveCompressionToString(CollectiveCompression mode) {
  switch (mode) {
    case CollectiveCompression::kOff:
      return "off";
    case CollectiveCompression::kSparse:
      return "sparse";
    case CollectiveCompression::kSparseDelta:
      return "sparse_delta";
    case CollectiveCompression::kQuantized:
      return "quantized";
  }
  return "unknown";
}

void CodecEncode(std::span<const double> values, const CodecSpec& spec,
                 std::vector<uint8_t>* frame, CodecStats* stats) {
  VERO_CHECK(spec.enabled()) << "CodecEncode called with compression off";
  const uint64_t total = values.size();
  uint64_t block = spec.block_values;
  if (block == 0 || block > total) block = std::max<uint64_t>(total, 1);

  ByteWriter w;
  w.Reserve(values.size() * sizeof(double) / 4 + 64);
  w.WriteU8(kCodecMagic);
  w.WriteU8(static_cast<uint8_t>(spec.mode));
  w.WriteVarint64(total);
  w.WriteVarint64(block);
  for (uint64_t start = 0; start < total; start += block) {
    const uint64_t n = std::min(block, total - start);
    EncodeBlock(values.data() + start, n, spec, &w, stats);
  }
  w.WriteU32(Crc32(w.data().data(), w.size()));
  *frame = w.TakeData();
  if (stats != nullptr) {
    stats->raw_bytes += total * sizeof(double);
    stats->encoded_bytes += frame->size();
  }
}

Status CodecDecode(std::span<const uint8_t> frame,
                   std::vector<double>* values) {
  if (frame.size() < sizeof(uint32_t) + 2) {
    return Status::Corruption("codec frame: too short");
  }
  const size_t body = frame.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, frame.data() + body, sizeof(stored_crc));
  if (Crc32(frame.data(), body) != stored_crc) {
    return Status::Corruption("codec frame: checksum mismatch");
  }

  ByteReader r(frame.data(), body);
  uint8_t magic = 0, mode = 0;
  VERO_RETURN_IF_ERROR(r.ReadU8(&magic));
  VERO_RETURN_IF_ERROR(r.ReadU8(&mode));
  if (magic != kCodecMagic) {
    return Status::Corruption("codec frame: bad magic");
  }
  if (mode < static_cast<uint8_t>(CollectiveCompression::kSparse) ||
      mode > static_cast<uint8_t>(CollectiveCompression::kQuantized)) {
    return Status::Corruption("codec frame: bad mode byte");
  }
  uint64_t total = 0, block = 0;
  VERO_RETURN_IF_ERROR(r.ReadVarint64(&total));
  VERO_RETURN_IF_ERROR(r.ReadVarint64(&block));
  if (block == 0 || (total > 0 && block > total)) {
    return Status::Corruption("codec frame: bad block length");
  }
  // An adversarial total can't over-allocate: each block must still consume
  // body bytes, and the cheapest possible block (all-zero sparse) is 2
  // bytes, so cap total by what the body could plausibly hold.
  if (total > 0 && (total - 1) / block + 1 > body) {
    return Status::Corruption("codec frame: value count exceeds frame");
  }
  values->assign(total, 0.0);
  for (uint64_t start = 0; start < total; start += block) {
    const uint64_t n = std::min(block, total - start);
    VERO_RETURN_IF_ERROR(DecodeBlock(&r, n, values->data() + start));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("codec frame: trailing bytes");
  }
  return Status::OK();
}

void CodecEncodeBytes(std::span<const uint8_t> payload, const CodecSpec& spec,
                      std::vector<uint8_t>* frame, CodecStats* stats) {
  VERO_CHECK_EQ(payload.size() % sizeof(double), 0u);
  std::vector<double> values(payload.size() / sizeof(double));
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  CodecEncode(values, spec, frame, stats);
}

Status CodecDecodeBytes(std::span<const uint8_t> frame,
                        std::vector<uint8_t>* payload) {
  std::vector<double> values;
  VERO_RETURN_IF_ERROR(CodecDecode(frame, &values));
  payload->resize(values.size() * sizeof(double));
  if (!values.empty()) {
    std::memcpy(payload->data(), values.data(), payload->size());
  }
  return Status::OK();
}

Status CodecFrameRawSize(std::span<const uint8_t> frame, uint64_t* raw_bytes) {
  ByteReader r(frame.data(), frame.size());
  uint8_t magic = 0, mode = 0;
  VERO_RETURN_IF_ERROR(r.ReadU8(&magic));
  VERO_RETURN_IF_ERROR(r.ReadU8(&mode));
  if (magic != kCodecMagic) {
    return Status::Corruption("codec frame: bad magic");
  }
  uint64_t total = 0;
  VERO_RETURN_IF_ERROR(r.ReadVarint64(&total));
  *raw_bytes = total * sizeof(double);
  return Status::OK();
}

std::vector<uint8_t> CodecRoundTripBytes(std::span<const uint8_t> payload,
                                         const CodecSpec& spec) {
  if (!spec.enabled()) {
    return std::vector<uint8_t>(payload.begin(), payload.end());
  }
  std::vector<uint8_t> frame;
  CodecEncodeBytes(payload, spec, &frame);
  std::vector<uint8_t> decoded;
  VERO_CHECK_OK(CodecDecodeBytes(frame, &decoded));
  return decoded;
}

}  // namespace vero
