#ifndef VERO_CLUSTER_FAULT_INJECTOR_H_
#define VERO_CLUSTER_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vero {

/// Collective operations a fault can be scheduled against. The values index
/// per-op occurrence counters; kAny matches every operation type.
enum class CollectiveOp {
  kAllReduceSum = 0,
  kReduceScatterSum = 1,
  kAllGather = 2,
  kBroadcast = 3,
  kGather = 4,
  kAllToAll = 5,
  kBarrier = 6,
  kAny = 7,
};

inline constexpr int kNumCollectiveOps = 7;
static_assert(kNumCollectiveOps == static_cast<int>(CollectiveOp::kAny),
              "kNumCollectiveOps must count every concrete op; update it "
              "when adding CollectiveOp values before kAny");

const char* CollectiveOpToString(CollectiveOp op);

/// What a scheduled fault does to the matched collective call.
enum class FaultKind {
  /// The worker dies before participating: it leaves the barrier group and
  /// every survivor's next rendezvous fails with kUnavailable.
  kCrash,
  /// The payload arrives CRC-damaged `attempts` times; each detected-bad
  /// transfer is retransmitted (bytes recharged) after exponential backoff.
  /// Exceeding RetryPolicy::max_attempts escalates to a crash.
  kCorrupt,
  /// The payload arrives short `attempts` times; handled like kCorrupt
  /// (length framing detects it, transfer is retried).
  kTruncate,
  /// Straggler: the worker's op is charged `delay_seconds` of extra
  /// simulated time before proceeding (data still correct).
  kDelay,
  /// The payload is bit-flipped *after* transport framing/CRC succeeded:
  /// the transfer looks clean to the retry machinery and the damage lands
  /// in the receiver's buffer. Only the IntegrityAuditor's algorithmic
  /// invariants can catch it. Flips are seeded (FaultEvent::seed) and
  /// deterministic.
  kSilentCorrupt,
  /// NaN/Inf written into a compute buffer (gradients or histograms) at a
  /// targeted compute point. Matches FaultInjector::OnCompute calls, never
  /// collectives.
  kPoison,
};

const char* FaultKindToString(FaultKind kind);

/// Compute-side injection points for FaultKind::kPoison. The values index
/// per-point occurrence counters, mirroring CollectiveOp for collectives.
enum class ComputePoint {
  /// Per-instance gradient buffer, right after ComputeGradients.
  kGradient = 0,
  /// A freshly built layer histogram, right after BuildLayerHistograms.
  kHistogram = 1,
};

inline constexpr int kNumComputePoints = 2;
static_assert(kNumComputePoints ==
                  static_cast<int>(ComputePoint::kHistogram) + 1,
              "kNumComputePoints must cover every ComputePoint value");

const char* ComputePointToString(ComputePoint point);

/// Training phase a fault can be restricted to. Workers announce their
/// current phase (WorkerContext::set_fault_phase); an event tagged with a
/// specific phase counts occurrences only among collectives issued while the
/// worker is in that phase. kAnyPhase preserves the original global
/// occurrence counting, so existing plans are unaffected.
enum class FaultPhase {
  kAnyPhase = 0,
  /// Attempt setup: sharding, sketch build, horizontal->vertical transform.
  kSetup = 1,
  /// The boosting round loop.
  kTrain = 2,
  /// Recovery/rejoin rendezvous collectives between attempts.
  kRecovery = 3,
};

inline constexpr int kNumFaultPhases = 4;
static_assert(kNumFaultPhases == static_cast<int>(FaultPhase::kRecovery) + 1,
              "kNumFaultPhases must cover every FaultPhase value");

const char* FaultPhaseToString(FaultPhase phase);

/// One scheduled fault: fires on `rank`'s `occurrence`-th call (0-based)
/// of collective type `op` (kAny counts calls of every type). When `phase`
/// is not kAnyPhase, only calls issued while the worker is in that phase
/// are counted toward `occurrence`.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int rank = 0;
  CollectiveOp op = CollectiveOp::kAny;
  /// 0-based index into the matching rank's sequence of matching calls.
  uint64_t occurrence = 0;
  /// kDelay: extra simulated seconds charged to the faulted worker.
  double delay_seconds = 0.0;
  /// kCorrupt/kTruncate: number of consecutive bad transfer attempts.
  int attempts = 1;
  /// Phase filter; kAnyPhase matches calls from every phase.
  FaultPhase phase = FaultPhase::kAnyPhase;
  /// kSilentCorrupt/kPoison: seeds the deterministic bit-flip / element
  /// choice so a plan replays the exact same damage.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// kPoison: which compute buffer the poison lands in.
  ComputePoint target = ComputePoint::kGradient;
  /// kPoison: write +Inf instead of NaN.
  bool poison_inf = false;
};

/// Retry behavior for detected-bad transfers (corruption/truncation).
struct RetryPolicy {
  /// Bad attempts tolerated before the op gives up and the worker is
  /// declared failed (kUnavailable).
  int max_attempts = 3;
  /// Backoff before retry i (0-based) is backoff_seconds * multiplier^i.
  double backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
};

/// Deterministic schedule of faults for one Cluster. Builder-style:
///
///   FaultPlan plan;
///   plan.Crash(/*rank=*/2, CollectiveOp::kAny, /*occurrence=*/40)
///       .Delay(1, CollectiveOp::kAllReduceSum, 0, /*seconds=*/0.5);
///   cluster.InstallFaultPlan(plan);
///
/// The schedule is positional, not random, so every failure test is exactly
/// reproducible.
class FaultPlan {
 public:
  FaultPlan& Crash(int rank, CollectiveOp op, uint64_t occurrence,
                   FaultPhase phase = FaultPhase::kAnyPhase) {
    events_.push_back(
        {FaultKind::kCrash, rank, op, occurrence, 0.0, 0, phase});
    return *this;
  }
  FaultPlan& Corrupt(int rank, CollectiveOp op, uint64_t occurrence,
                     int attempts = 1,
                     FaultPhase phase = FaultPhase::kAnyPhase) {
    events_.push_back(
        {FaultKind::kCorrupt, rank, op, occurrence, 0.0, attempts, phase});
    return *this;
  }
  FaultPlan& Truncate(int rank, CollectiveOp op, uint64_t occurrence,
                      int attempts = 1,
                      FaultPhase phase = FaultPhase::kAnyPhase) {
    events_.push_back(
        {FaultKind::kTruncate, rank, op, occurrence, 0.0, attempts, phase});
    return *this;
  }
  FaultPlan& Delay(int rank, CollectiveOp op, uint64_t occurrence,
                   double seconds,
                   FaultPhase phase = FaultPhase::kAnyPhase) {
    events_.push_back(
        {FaultKind::kDelay, rank, op, occurrence, seconds, 0, phase});
    return *this;
  }
  /// Bit-flips `rank`'s received payload on its `occurrence`-th matching
  /// call, after transport CRC succeeded (the retry machinery never sees
  /// it). `seed` picks which bytes/elements flip.
  FaultPlan& SilentCorrupt(int rank, CollectiveOp op, uint64_t occurrence,
                           uint64_t seed = 0x9e3779b97f4a7c15ull,
                           FaultPhase phase = FaultPhase::kAnyPhase) {
    FaultEvent e;
    e.kind = FaultKind::kSilentCorrupt;
    e.rank = rank;
    e.op = op;
    e.occurrence = occurrence;
    e.phase = phase;
    e.seed = seed;
    events_.push_back(e);
    return *this;
  }
  /// Writes NaN (or +Inf) into `rank`'s `target` compute buffer on its
  /// `occurrence`-th OnCompute consultation of that point.
  FaultPlan& Poison(int rank, ComputePoint target, uint64_t occurrence,
                    bool inf = false,
                    FaultPhase phase = FaultPhase::kAnyPhase,
                    uint64_t seed = 0x9e3779b97f4a7c15ull) {
    FaultEvent e;
    e.kind = FaultKind::kPoison;
    e.rank = rank;
    e.occurrence = occurrence;
    e.phase = phase;
    e.seed = seed;
    e.target = target;
    e.poison_inf = inf;
    events_.push_back(e);
    return *this;
  }

  FaultPlan& set_retry_policy(const RetryPolicy& policy) {
    retry_ = policy;
    return *this;
  }

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  std::vector<FaultEvent> events_;
  RetryPolicy retry_;
};

/// What the injector decided for one (rank, op) call.
struct FaultDecision {
  /// Worker dies before participating in this collective.
  bool crash = false;
  /// Number of detected-bad transfer attempts to simulate (each one
  /// recharges the op's bytes and adds backoff). If this exceeds the retry
  /// policy's max_attempts the op escalates to a failure.
  int failed_attempts = 0;
  /// Extra straggler seconds charged to this worker.
  double delay_seconds = 0.0;
  /// Bit-flip the received payload after the (clean) transfer completes.
  bool silent_corrupt = false;
  /// Seed for the deterministic flip when silent_corrupt is set.
  uint64_t corrupt_seed = 0;
};

/// What the injector decided for one (rank, compute point) consultation.
struct PoisonDecision {
  bool poison = false;
  /// +Inf instead of NaN.
  bool inf = false;
  /// Picks the poisoned element index.
  uint64_t seed = 0;
};

/// Matches FaultEvents against the per-rank stream of collective calls.
/// Occurrence counters are per (rank, op) plus a per-rank any-op counter, so
/// matching is deterministic and race-free: each worker thread only touches
/// its own counters. Phase-tagged events use a separate bank of counters
/// advanced only while the worker is in the matching phase, so a kSetup
/// occurrence index is stable regardless of how much training preceded it.
///
/// An injector may outlive the Cluster it was installed on: elastic
/// recovery shares one injector across successive cluster incarnations so
/// occurrence counters keep advancing and already-fired events never
/// re-fire (Cluster::AdoptFaultInjector).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan, int num_workers);

  /// Called by rank's thread at the top of every collective. Advances the
  /// rank's occurrence counters and returns the combined decision of every
  /// event that fires on this call. `phase` is the worker's announced
  /// current phase.
  FaultDecision OnCollective(int rank, CollectiveOp op,
                             FaultPhase phase = FaultPhase::kAnyPhase);

  /// Called by rank's thread at each compute-side injection point. Advances
  /// the rank's compute-point occurrence counters and returns the combined
  /// decision of every kPoison event that fires on this consultation
  /// (kPoison events never match collectives, and vice versa).
  PoisonDecision OnCompute(int rank, ComputePoint point,
                           FaultPhase phase = FaultPhase::kAnyPhase);

  const RetryPolicy& retry_policy() const { return plan_.retry_policy(); }

  int num_workers() const { return static_cast<int>(counters_.size()); }

  /// Grows the counter bank to at least `num_workers` ranks; new ranks start
  /// with fresh counters. Elastic scale-up admits ranks the original plan
  /// never indexed — events targeting them simply never fire. Must only be
  /// called while no worker threads are running (between incarnations).
  void EnsureWorkers(int num_workers) {
    if (num_workers > static_cast<int>(counters_.size())) {
      counters_.resize(static_cast<size_t>(num_workers));
    }
  }

 private:
  struct RankCounters {
    uint64_t per_op[kNumCollectiveOps] = {};
    uint64_t any = 0;
    /// Occurrence streams restricted to a single phase; [kAnyPhase] is
    /// unused (kAnyPhase events read the global counters above).
    uint64_t phase_per_op[kNumFaultPhases][kNumCollectiveOps] = {};
    uint64_t phase_any[kNumFaultPhases] = {};
    /// Compute-side streams for kPoison (OnCompute), one per ComputePoint,
    /// with the same global / per-phase split as the collective banks.
    uint64_t compute[kNumComputePoints] = {};
    uint64_t phase_compute[kNumFaultPhases][kNumComputePoints] = {};
  };

  FaultPlan plan_;
  std::vector<RankCounters> counters_;
};

}  // namespace vero

#endif  // VERO_CLUSTER_FAULT_INJECTOR_H_
