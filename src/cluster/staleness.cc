#include "cluster/staleness.h"

#include <algorithm>

namespace vero {

const char* MitigationModeToString(MitigationMode mode) {
  switch (mode) {
    case MitigationMode::kStrict:
      return "strict";
    case MitigationMode::kBoundedStaleness:
      return "bounded";
    case MitigationMode::kSpeculative:
      return "speculative";
  }
  return "unknown";
}

void ClassifyStragglers(const MitigationOptions& opts,
                        std::span<const double> delays,
                        std::span<const uint32_t> streaks,
                        std::vector<RankClass>* klass,
                        std::vector<int>* backup_of) {
  const int w = static_cast<int>(delays.size());
  klass->assign(static_cast<size_t>(w), RankClass::kOnTime);
  backup_of->assign(static_cast<size_t>(w), -1);
  if (!opts.enabled() || w <= 1) return;
  const bool speculative = opts.mode == MitigationMode::kSpeculative;
  const double threshold = speculative ? opts.speculation_threshold_seconds
                                       : opts.deadline_seconds;

  // Late candidates, worst delay first (ties broken by rank so the order is
  // total and identical everywhere).
  std::vector<int> late;
  for (int r = 0; r < w; ++r) {
    if (delays[r] > threshold) late.push_back(r);
  }
  std::sort(late.begin(), late.end(), [&](int a, int b) {
    if (delays[a] != delays[b]) return delays[a] > delays[b];
    return a < b;
  });

  // At least one rank must stay on time, and at most max_stale_ranks get
  // mitigated per call; candidates beyond the budget fall back to strict
  // behavior (they contribute and pay their delay in full).
  uint32_t budget = std::min<uint32_t>(opts.max_stale_ranks,
                                       static_cast<uint32_t>(w - 1));
  for (int r : late) {
    if (budget == 0) break;
    if (!speculative && streaks[r] + 1 > opts.staleness_bound) {
      // Another deferral would exceed the staleness bound: forced sync.
      (*klass)[r] = RankClass::kForced;
      continue;
    }
    (*klass)[r] = speculative ? RankClass::kSpeculated : RankClass::kDeferred;
    --budget;
  }
  if (!speculative) return;

  // Each speculated rank gets a distinct on-time backup, lowest ranks
  // first; if none remain the rank falls back to strict behavior.
  int next = 0;
  for (int r = 0; r < w; ++r) {
    if ((*klass)[r] != RankClass::kSpeculated) continue;
    while (next < w && (*klass)[next] != RankClass::kOnTime) ++next;
    if (next == w) {
      (*klass)[r] = RankClass::kOnTime;
      continue;
    }
    (*backup_of)[r] = next++;
  }
}

}  // namespace vero
