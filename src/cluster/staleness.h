#ifndef VERO_CLUSTER_STALENESS_H_
#define VERO_CLUSTER_STALENESS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace vero {

/// Straggler-mitigation policy of the bounded collectives
/// (WorkerContext::AllReduceBoundedSum / AllGatherBounded / AllToAllBounded).
/// See docs/straggler_mitigation.md for semantics and accuracy caveats.
enum class MitigationMode {
  /// Fully synchronous: the bounded collectives delegate to their strict
  /// counterparts and the accounting is bit-identical to seed.
  kStrict = 0,
  /// Return once W - max_stale_ranks ranks contribute within
  /// deadline_seconds; a late rank's contribution is dropped for the call
  /// (its gradient mass reappears in the next layer's rebuilt histograms)
  /// and its delay moves off the round's critical path.
  kBoundedStaleness = 1,
  /// A rank delayed beyond speculation_threshold_seconds has its share of
  /// the op re-served by a deterministically chosen on-time backup; results
  /// stay exact at the price of duplicated traffic (charged as waste).
  kSpeculative = 2,
};

const char* MitigationModeToString(MitigationMode mode);

/// Per-call knobs for a mitigated collective. Passed by the trainers,
/// derived from GbdtParams (see MitigationFromParams in dist_common.h).
struct MitigationOptions {
  MitigationMode mode = MitigationMode::kStrict;
  /// kBoundedStaleness: how long the on-time ranks wait before closing the
  /// aggregation without the stragglers.
  double deadline_seconds = 0.05;
  /// kSpeculative: delay above which a rank's block is re-executed.
  double speculation_threshold_seconds = 0.05;
  /// kBoundedStaleness: max *consecutive* deferrals of one rank. Hitting
  /// the bound forces a full (strict-priced) sync for that rank, so no
  /// contribution is ever more than staleness_bound mitigated calls stale.
  uint32_t staleness_bound = 2;
  /// Max ranks handled (deferred / speculated) per call — the k in "return
  /// once W-k ranks contribute". Late ranks beyond the budget fall back to
  /// strict behavior and pay their delay in full.
  uint32_t max_stale_ranks = 1;

  bool enabled() const { return mode != MitigationMode::kStrict; }
};

/// How one rank was handled in one mitigated collective call.
enum class RankClass : uint8_t {
  kOnTime = 0,
  /// kBoundedStaleness: contribution excluded from this call's result; the
  /// delay is absorbed off the critical path.
  kDeferred = 1,
  /// kBoundedStaleness: late, but its deferral streak hit staleness_bound —
  /// it contributes and pays the full delay (a forced sync).
  kForced = 2,
  /// kSpeculative: a backup re-serves this rank's share; data stays exact.
  kSpeculated = 3,
};

/// What a mitigated collective did, reported to the caller. In strict mode
/// (and for speculative calls) `contributed` is all-ones; in bounded mode a
/// deferred rank's entry is 0 on EVERY rank, so replicated merge logic that
/// skips non-contributors stays deterministic.
struct MitigationOutcome {
  bool self_deferred = false;
  bool self_forced = false;
  bool self_speculated = false;
  int deferred_ranks = 0;
  int speculated_ranks = 0;
  /// contributed[r] == 1 iff rank r's payload is reflected in the result.
  std::vector<uint8_t> contributed;
};

/// Pure, deterministic classification of one mitigated call: given every
/// rank's announced delay and current consecutive-deferral streak, decide
/// who is deferred / force-synced / speculated, and assign each speculated
/// rank a distinct on-time backup (backup_of[r] = serving rank, -1 none).
/// Identical inputs yield identical outputs on every rank, which is what
/// keeps the replicated split decisions consistent. Unit-tested directly.
void ClassifyStragglers(const MitigationOptions& opts,
                        std::span<const double> delays,
                        std::span<const uint32_t> streaks,
                        std::vector<RankClass>* klass,
                        std::vector<int>* backup_of);

}  // namespace vero

#endif  // VERO_CLUSTER_STALENESS_H_
