#ifndef VERO_CLUSTER_COMMUNICATOR_H_
#define VERO_CLUSTER_COMMUNICATOR_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cluster/codec.h"
#include "cluster/fault_injector.h"
#include "cluster/network_model.h"
#include "cluster/staleness.h"
#include "common/status.h"
#include "common/threading.h"

namespace vero {

namespace obs {
class MetricsShard;
class RunObserver;
class TraceBuffer;
}  // namespace obs

class Cluster;

/// Exception used to unwind an SPMD function when a collective fails.
/// Cluster::TryRun converts it back into the worker's Status; Cluster::Run
/// rethrows it on the caller thread. Thrown by the VERO_COMM_OK macro below.
class ClusterAbort : public std::exception {
 public:
  explicit ClusterAbort(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}
  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

/// Aborts the calling SPMD function by throwing ClusterAbort when a
/// collective returns a non-OK Status. Use at call sites inside trainers
/// where there is no sensible local recovery; the status surfaces through
/// Cluster::TryRun.
#define VERO_COMM_OK(expr)                                        \
  do {                                                            \
    ::vero::Status _vero_comm_status = (expr);                    \
    if (!_vero_comm_status.ok())                                  \
      throw ::vero::ClusterAbort(std::move(_vero_comm_status));   \
  } while (0)

/// Per-worker handle to the simulated cluster: rank, collectives, and
/// communication accounting. All collectives are SPMD — every worker of the
/// cluster must call the same operation in the same order (like MPI).
///
/// Byte accounting charges each worker the volume an efficient real
/// implementation would move (ring all-reduce / reduce-scatter, flat
/// broadcast/gather), and simulated time follows the cluster's NetworkModel;
/// the data itself moves through shared memory so results are exact.
///
/// Failure semantics: every collective returns a Status instead of
/// deadlocking. kUnavailable means a participant (possibly this worker, via
/// an injected fault) has failed and the cluster's rendezvous group is
/// permanently broken; kDeadlineExceeded means this worker's watchdog
/// expired waiting for a peer (SPMD violation or hung worker). After either,
/// all further collectives on this cluster fail fast.
class WorkerContext {
 public:
  // Out-of-line: the unique_ptr<ObsHandles> member needs the complete type.
  ~WorkerContext();

  int rank() const { return rank_; }
  int world_size() const;

  /// In-place element-wise sum across workers; everyone ends with the total.
  /// Accounting: ring all-reduce, 2 * bytes * (W-1)/W sent per worker.
  Status AllReduceSum(std::span<double> data);

  /// In-place reduce-scatter: after the call, worker r's slice
  /// [SliceBegin(n, r), SliceEnd(n, r)) of `data` holds the element-wise
  /// sum; the rest of the buffer is unspecified.
  /// Accounting: ring reduce-scatter, bytes * (W-1)/W sent per worker.
  Status ReduceScatterSum(std::span<double> data);

  /// Slice boundaries used by ReduceScatterSum (contiguous, near-equal).
  size_t SliceBegin(size_t n, int rank) const;
  size_t SliceEnd(size_t n, int rank) const;

  /// Every worker contributes `mine`; all receive all contributions indexed
  /// by rank. Accounting: each worker sends its buffer to W-1 peers.
  Status AllGather(const std::vector<uint8_t>& mine,
                   std::vector<std::vector<uint8_t>>* all);

  /// Root's `data` is copied to everyone. Accounting: root sends
  /// bytes * (W-1); others receive bytes.
  Status Broadcast(std::vector<uint8_t>* data, int root);

  /// Every worker sends `mine` to root; root receives all (indexed by rank),
  /// others get an empty vector.
  Status Gather(const std::vector<uint8_t>& mine, int root,
                std::vector<std::vector<uint8_t>>* all);

  /// Personalized all-to-all: `to_each[r]` goes to worker r; returns
  /// `from_each[s]` = buffer sent by worker s to this worker.
  /// to_each must have world_size entries (self-entry is delivered free).
  Status AllToAll(std::vector<std::vector<uint8_t>> to_each,
                  std::vector<std::vector<uint8_t>>* from_each);

  // ---- Straggler-mitigated collectives -----------------------------------
  // Each is a 1:1 replacement for its strict counterpart: it reports the
  // SAME CollectiveOp to the fault injector / metrics / traces, so one
  // FaultPlan replays with identical occurrence matching across strict,
  // bounded-staleness, and speculative runs. With opts.mode == kStrict they
  // delegate to the strict implementation (bit-identical to seed).
  // Semantics and accounting are documented in docs/straggler_mitigation.md.

  /// Bounded/speculative all-reduce. Bounded mode: ranks whose announced
  /// delay exceeds opts.deadline_seconds (at most opts.max_stale_ranks, and
  /// never past a rank's staleness_bound streak) are excluded from the sum
  /// on EVERY rank; their delay is absorbed off the critical path while the
  /// on-time ranks pay the deadline. Speculative mode: a backup re-serves
  /// the slow rank's share (duplicated volume charged as waste) and the
  /// result equals the strict sum exactly.
  Status AllReduceBoundedSum(std::span<double> data,
                             const MitigationOptions& opts,
                             MitigationOutcome* outcome = nullptr);

  /// Bounded/speculative all-gather. In bounded mode a deferred rank's slot
  /// in `all` stays empty on every rank (outcome->contributed marks it);
  /// speculative mode always delivers every payload.
  Status AllGatherBounded(const std::vector<uint8_t>& mine,
                          std::vector<std::vector<uint8_t>>* all,
                          const MitigationOptions& opts,
                          MitigationOutcome* outcome = nullptr);

  /// Bounded/speculative personalized all-to-all. In bounded mode every
  /// buffer sent BY a deferred rank is dropped cluster-wide (including its
  /// own self-slice), so receivers that skip non-contributors via
  /// outcome->contributed stay replicated-deterministic.
  Status AllToAllBounded(std::vector<std::vector<uint8_t>> to_each,
                         std::vector<std::vector<uint8_t>>* from_each,
                         const MitigationOptions& opts,
                         MitigationOutcome* outcome = nullptr);

  // ---- Compressed (codec) collectives ------------------------------------
  // Each is a 1:1 replacement for its uncompressed counterpart with a
  // CollectiveCompression codec layered underneath: payloads are encoded
  // (CodecEncode) before they cross the simulated wire and decoded on
  // arrival, and the network model prices the encoded frames. Every variant
  // reports the SAME CollectiveOp with the same rendezvous count, so one
  // FaultPlan and one CollectiveOp stream replays identically across modes
  // (op-id lockstep preserved). With codec.enabled() == false they delegate
  // to the uncompressed implementation — bit-identical to seed, including
  // the metric name set. Raw-vs-wire volume lands in CommStats
  // codec_raw_bytes / codec_wire_bytes and the comm.<Op>.raw_bytes /
  // comm.<Op>.compressed_bytes counters. See docs/wire_formats.md.

  /// Compressed all-reduce. Lossless modes produce bit-identical sums to
  /// AllReduceSum (frames decode to the exact bit patterns and the serial
  /// reduction visits ranks in the same order); kQuantized yields the same
  /// reconstructed aggregate on every rank. Accounting: ring all-reduce
  /// over the mean encoded frame, 2 * (total_encoded/W) * (W-1)/W.
  Status AllReduceSumCodec(std::span<double> data, const CodecSpec& codec);

  /// Compressed all-gather; every rank decodes every frame (its own
  /// included) so lossy reconstruction is replicated-deterministic.
  Status AllGatherCodec(const std::vector<uint8_t>& mine,
                        std::vector<std::vector<uint8_t>>* all,
                        const CodecSpec& codec);

  /// Compressed personalized all-to-all (per-destination frames; the self
  /// frame is decoded locally and charged nothing, like the strict op).
  Status AllToAllCodec(std::vector<std::vector<uint8_t>> to_each,
                       std::vector<std::vector<uint8_t>>* from_each,
                       const CodecSpec& codec);

  /// Codec + straggler mitigation composed: delegates to
  /// AllReduceBoundedSum when the codec is off and to AllReduceSumCodec
  /// when mitigation is off, and otherwise applies both layers (deferred
  /// frames still cross the wire and are charged at their encoded size).
  Status AllReduceBoundedSumCodec(std::span<double> data,
                                  const CodecSpec& codec,
                                  const MitigationOptions& opts,
                                  MitigationOutcome* outcome = nullptr);
  Status AllGatherBoundedCodec(const std::vector<uint8_t>& mine,
                               std::vector<std::vector<uint8_t>>* all,
                               const CodecSpec& codec,
                               const MitigationOptions& opts,
                               MitigationOutcome* outcome = nullptr);
  Status AllToAllBoundedCodec(std::vector<std::vector<uint8_t>> to_each,
                              std::vector<std::vector<uint8_t>>* from_each,
                              const CodecSpec& codec,
                              const MitigationOptions& opts,
                              MitigationOutcome* outcome = nullptr);

  /// Pure synchronization (no bytes charged).
  Status Barrier();

  /// Instrumentation-only reductions: rendezvous like a collective but
  /// charge no bytes or simulated time, and are invisible to the fault
  /// injector's occurrence counting. If the rendezvous group is broken they
  /// degrade to returning the local value instead of failing, so
  /// measurement code needs no error handling.
  double InstrumentMax(double value);
  double InstrumentSum(double value);

  /// Audit-channel exchange: every rank contributes a small word packet and
  /// receives all packets indexed by rank. Rides the instrument channel —
  /// no bytes or simulated time charged, invisible to the fault injector —
  /// modeling integrity digests piggybacked on existing collective frames.
  /// Packets may have different lengths per rank. Returns false when the
  /// rendezvous group is broken (the caller's collectives will fail anyway).
  bool AuditExchange(const std::vector<uint64_t>& mine,
                     std::vector<std::vector<uint64_t>>* all);

  /// Consults the fault injector's compute-side schedule (kPoison events) at
  /// one of the trainer's compute points. Returns an empty decision when no
  /// injector is installed. Advances only the compute-point occurrence
  /// streams — collective occurrence matching is unaffected.
  PoisonDecision ConsultComputeFault(ComputePoint point);

  /// Marks this worker failed with `status`, breaks the rendezvous group so
  /// peers fail fast, and returns `status` for the caller to throw. Public
  /// escalation path for integrity-audit blame (the retry-exhaustion
  /// counterpart lives inside ApplyFaults).
  Status FailWorker(Status status);

  /// Communication counters accumulated by this worker so far.
  const CommStats& stats() const { return stats_; }

  /// Observability handles, null unless an observer is attached to the
  /// cluster (and tracing enabled, for the buffer). Trainers record phase
  /// spans into the buffer and custom metrics into the shard; the
  /// communicator itself records per-collective spans and counters.
  obs::TraceBuffer* trace_buffer() const { return trace_; }
  obs::MetricsShard* metrics_shard() const { return metrics_; }

  /// True once this worker has failed (injected crash or retry exhaustion).
  /// All subsequent collectives return kUnavailable without rendezvousing.
  bool failed() const { return dead_; }

  /// Announces the phase this worker is in; phase-tagged FaultEvents count
  /// occurrences only among collectives issued under the matching phase.
  /// Purely a fault-injection label — no accounting effect.
  void set_fault_phase(FaultPhase phase) { fault_phase_ = phase; }
  FaultPhase fault_phase() const { return fault_phase_; }

 private:
  friend class Cluster;
  WorkerContext(Cluster* cluster, int rank);

  /// Connects this worker to the run's observer: creates its trace buffer /
  /// metrics shard and pre-resolves the per-collective-op counter handles so
  /// the hot path never does a name lookup.
  void AttachObs(obs::RunObserver* observer);

  void Charge(CollectiveOp op, uint64_t sent, uint64_t received);

  /// Codec accounting: raw (uncompressed-equivalent) vs wire (encoded)
  /// volume of one codec collective, plus the encoder's per-block tallies.
  /// Resolves the comm.<Op>.raw_bytes / compressed_bytes handles lazily so
  /// compression-off runs keep exactly the seed's metric name set.
  void RecordCodec(CollectiveOp op, uint64_t raw_sent, uint64_t raw_received,
                   uint64_t wire_sent, uint64_t wire_received,
                   const CodecStats& cstats);

  /// Debug-build cluster-wide invariant: the bytes every sender Charge()d
  /// equal the bytes receivers were charged for, i.e. sum over ranks of
  /// (sent - received) is exactly zero for this op. Rides the instrument
  /// channel (no bytes, invisible to the fault injector); compiled out
  /// under NDEBUG.
  void DebugCheckCodecSymmetry(uint64_t sent, uint64_t received);

  /// Consults the fault injector (if any) at the top of a collective.
  /// Returns non-OK if this worker is already dead or crashes now.
  Status Prepare(CollectiveOp op, FaultDecision* decision);

  /// One failure-aware barrier phase. On success sets *serial for exactly
  /// one participant per cycle; on breakage/timeout returns kUnavailable /
  /// kDeadlineExceeded.
  Status Rendezvous(bool* serial);

  /// Instrument-channel rendezvous: true on success, false when the group
  /// is broken (caller degrades to its local value).
  bool InstrumentRendezvous();

  /// Applies the post-transfer part of a fault decision: straggler delay and
  /// detected-bad-transfer retries (each retry recharges the op's bytes and
  /// backs off exponentially). Escalates to worker failure when the decision
  /// exceeds the plan's retry budget. Also closes the collective's trace
  /// span (every successful collective ends here).
  Status ApplyFaults(CollectiveOp op, const FaultDecision& decision,
                     uint64_t sent, uint64_t received);

  /// Marks this worker dead, records it with the cluster, and breaks the
  /// rendezvous group so peers fail fast instead of hanging.
  Status Die(Status status);

  /// Applies a kSilentCorrupt decision to doubles this rank just received
  /// from the transport (post-CRC): flips a high exponent bit of one
  /// deterministically chosen element. No-op unless the decision fired.
  void MaybeSilentCorrupt(const FaultDecision& decision,
                          std::span<double> received);
  /// Byte-buffer flavor: flips the sign/exponent-carrying top bit of one
  /// word-aligned byte across the given received buffers (buffers this rank
  /// did not author — its own slots must not be passed).
  void MaybeSilentCorrupt(const FaultDecision& decision,
                          const std::vector<std::vector<uint8_t>*>& received);

  /// This rank's view of the serial participant's mitigation plan, read
  /// from the cluster's shared plan state (valid between the rendezvous
  /// that follows PlanMitigation and the final one). Also fills *outcome.
  struct MitigatedCall {
    RankClass my = RankClass::kOnTime;
    /// Rank this worker re-serves as a speculative backup, -1 if none.
    int serving_for = -1;
    /// True when any rank was late this call (bounded mode charges the
    /// on-time ranks the deadline only in that case).
    bool any_late = false;
  };
  MitigatedCall ReadMitigationPlan(MitigationOutcome* outcome) const;

  /// Shared epilogue of the mitigated collectives: routes this rank's
  /// injected delay to sim_seconds or absorbed_delay_seconds per its
  /// RankClass, charges deadline waits and speculative duplicate volume
  /// (mirrored into the per-op byte counters so exact accounting holds),
  /// records the staleness.* / speculation.* metrics, then finishes via
  /// ApplyFaults with the possibly-neutralized decision.
  Status FinishMitigated(CollectiveOp op, const MitigationOptions& opts,
                         FaultDecision decision, const MitigatedCall& call,
                         uint64_t extra_sent, uint64_t extra_received,
                         uint64_t sent, uint64_t received,
                         double deferred_mass);

  Cluster* cluster_;
  int rank_;
  bool dead_ = false;
  FaultPhase fault_phase_ = FaultPhase::kAnyPhase;
  CommStats stats_;

  /// Pre-resolved metric handles (one lookup at attach time, plain adds on
  /// the hot path). Indexed by CollectiveOp value for the per-op counters.
  struct ObsHandles;
  obs::TraceBuffer* trace_ = nullptr;
  obs::MetricsShard* metrics_ = nullptr;
  std::unique_ptr<ObsHandles> obs_handles_;
  /// Span-in-flight state set by Prepare, consumed by ApplyFaults.
  double op_sim_begin_ = 0.0;
  int64_t op_wall_begin_us_ = 0;
  uint64_t op_bytes_begin_ = 0;
  /// Monotone per-rank collective sequence number within this cluster
  /// incarnation. The SPMD contract (same collectives, same order, on every
  /// rank) makes it a cross-rank join key: collective spans stamped with the
  /// same (incarnation, op_id) are the same logical operation, which is what
  /// the anatomy analyzer uses for happens-before edges. Incremented at the
  /// single point every collective — strict, mitigated, W==1 shortcut, or
  /// one that just killed this worker — closes its span (ApplyFaults).
  int64_t op_seq_ = 0;
};

/// Simulated W-worker cluster. Each Run() spawns one thread per worker and
/// executes the given SPMD function; collectives rendezvous through shared
/// state owned here.
///
/// A cluster whose rendezvous group has been broken by a failure cannot be
/// reused for further collectives; recovery paths build a fresh Cluster over
/// the surviving workers.
class Cluster {
 public:
  Cluster(int num_workers, NetworkModel model = NetworkModel::Lab1Gbps());

  int num_workers() const { return num_workers_; }
  const NetworkModel& network_model() const { return model_; }

  /// Runs fn(context) on every worker; blocks until all finish. Contexts
  /// (and their stats) persist across Run calls. An exception escaping a
  /// worker thread is captured and rethrown here on the caller thread (the
  /// first one in rank order; others are dropped).
  void Run(const std::function<void(WorkerContext&)>& fn);

  /// Like Run, but converts per-worker outcomes into Statuses instead of
  /// rethrowing: OK for a clean return, the carried Status for ClusterAbort,
  /// kInternal for any other exception. Never throws.
  std::vector<Status> TryRun(const std::function<void(WorkerContext&)>& fn);

  /// Installs a deterministic fault schedule consulted at every collective.
  /// An empty plan uninstalls (the fault hooks are then zero-cost and the
  /// byte/time accounting is bit-identical to a cluster without faults).
  void InstallFaultPlan(const FaultPlan& plan);

  /// Shares an existing injector (occurrence counters included) with this
  /// cluster. Elastic recovery uses this so a plan installed on the original
  /// cluster keeps matching — and never re-fires already-fired events —
  /// across the rebuilt cluster incarnations. The injector must have been
  /// created for at least this many workers. Null detaches.
  void AdoptFaultInjector(std::shared_ptr<FaultInjector> injector);

  /// The installed injector (counters and all), for handing to a successor
  /// cluster via AdoptFaultInjector. Null when no plan is installed.
  std::shared_ptr<FaultInjector> shared_fault_injector() const {
    return injector_;
  }

  /// Attaches a run observer: every worker gets a metrics shard (and, when
  /// the observer has tracing enabled, a trace buffer), and the collectives
  /// start recording per-op spans / counters. Must be called before Run;
  /// the observer must outlive the cluster. Recording never changes the
  /// byte / simulated-time accounting, and a cluster without an observer is
  /// bit-identical to one that never had the hooks. Compiled to a no-op
  /// under VERO_OBS_DISABLED.
  void AttachObserver(obs::RunObserver* observer);
  obs::RunObserver* observer() const { return observer_; }

  /// Watchdog for collective rendezvous: a worker waiting longer than this
  /// for its peers fails with kDeadlineExceeded (and breaks the group).
  /// <= 0 disables the watchdog. Default 60 simulated-wall seconds.
  void set_collective_timeout_seconds(double seconds) {
    collective_timeout_seconds_ = seconds;
  }
  double collective_timeout_seconds() const {
    return collective_timeout_seconds_;
  }

  /// Ranks that have failed (injected crash or retry exhaustion), in
  /// increasing order. Survivors = all other ranks.
  std::vector<int> dead_ranks() const;

  /// Stats of one worker / summed over workers.
  const CommStats& worker_stats(int rank) const;
  CommStats TotalStats() const;
  /// Maximum simulated comm seconds across workers (the cluster-level
  /// critical path used in time breakdowns).
  double MaxSimSeconds() const;

  void ResetStats();

 private:
  friend class WorkerContext;

  void MarkDead(int rank);
  std::vector<std::exception_ptr> RunInternal(
      const std::function<void(WorkerContext&)>& fn);

  /// Serial-section step of a mitigated collective: classifies stragglers
  /// from the delays published in delay_slots_ and updates the per-rank
  /// consecutive-deferral streaks. Must run with all ranks parked between
  /// two rendezvous (same exclusivity contract as reduce_buffer_).
  void PlanMitigation(const MitigationOptions& opts);

  const int num_workers_;
  const NetworkModel model_;
  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  std::shared_ptr<FaultInjector> injector_;
  obs::RunObserver* observer_ = nullptr;
  double collective_timeout_seconds_ = 60.0;

  mutable std::mutex dead_mu_;
  std::vector<uint8_t> dead_flags_;

  // Rendezvous state for collectives.
  Barrier barrier_;
  std::vector<const void*> ptrs_;
  std::vector<void*> mutable_ptrs_;
  std::vector<size_t> sizes_;
  std::vector<double> reduce_buffer_;
  std::vector<double> instrument_slots_;

  // Mitigated-collective plan state: each rank publishes its injected delay
  // into delay_slots_, the serial participant fills mit_class_ / mit_backup_
  // via PlanMitigation, everyone reads them back before the final
  // rendezvous. stale_streaks_ tracks consecutive deferrals per rank and is
  // only touched by mitigated calls (strict runs never see it).
  std::vector<double> delay_slots_;
  std::vector<RankClass> mit_class_;
  std::vector<int> mit_backup_;
  std::vector<uint32_t> stale_streaks_;
};

}  // namespace vero

#endif  // VERO_CLUSTER_COMMUNICATOR_H_
