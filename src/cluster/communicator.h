#ifndef VERO_CLUSTER_COMMUNICATOR_H_
#define VERO_CLUSTER_COMMUNICATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cluster/network_model.h"
#include "common/threading.h"

namespace vero {

class Cluster;

/// Per-worker handle to the simulated cluster: rank, collectives, and
/// communication accounting. All collectives are SPMD — every worker of the
/// cluster must call the same operation in the same order (like MPI).
///
/// Byte accounting charges each worker the volume an efficient real
/// implementation would move (ring all-reduce / reduce-scatter, flat
/// broadcast/gather), and simulated time follows the cluster's NetworkModel;
/// the data itself moves through shared memory so results are exact.
class WorkerContext {
 public:
  int rank() const { return rank_; }
  int world_size() const;

  /// In-place element-wise sum across workers; everyone ends with the total.
  /// Accounting: ring all-reduce, 2 * bytes * (W-1)/W sent per worker.
  void AllReduceSum(std::span<double> data);

  /// In-place reduce-scatter: after the call, worker r's slice
  /// [SliceBegin(n, r), SliceEnd(n, r)) of `data` holds the element-wise
  /// sum; the rest of the buffer is unspecified.
  /// Accounting: ring reduce-scatter, bytes * (W-1)/W sent per worker.
  void ReduceScatterSum(std::span<double> data);

  /// Slice boundaries used by ReduceScatterSum (contiguous, near-equal).
  size_t SliceBegin(size_t n, int rank) const;
  size_t SliceEnd(size_t n, int rank) const;

  /// Every worker contributes `mine`; all receive all contributions indexed
  /// by rank. Accounting: each worker sends its buffer to W-1 peers.
  void AllGather(const std::vector<uint8_t>& mine,
                 std::vector<std::vector<uint8_t>>* all);

  /// Root's `data` is copied to everyone. Accounting: root sends
  /// bytes * (W-1); others receive bytes.
  void Broadcast(std::vector<uint8_t>* data, int root);

  /// Every worker sends `mine` to root; root receives all (indexed by rank),
  /// others get an empty vector.
  void Gather(const std::vector<uint8_t>& mine, int root,
              std::vector<std::vector<uint8_t>>* all);

  /// Personalized all-to-all: `to_each[r]` goes to worker r; returns
  /// `from_each[s]` = buffer sent by worker s to this worker.
  /// to_each must have world_size entries (self-entry is delivered free).
  void AllToAll(std::vector<std::vector<uint8_t>> to_each,
                std::vector<std::vector<uint8_t>>* from_each);

  /// Pure synchronization (no bytes charged).
  void Barrier();

  /// Instrumentation-only reductions: rendezvous like a collective but
  /// charge no bytes or simulated time. Used to combine per-worker timing
  /// counters into cluster-level statistics without perturbing the
  /// experiment.
  double InstrumentMax(double value);
  double InstrumentSum(double value);

  /// Communication counters accumulated by this worker so far.
  const CommStats& stats() const { return stats_; }

 private:
  friend class Cluster;
  WorkerContext(Cluster* cluster, int rank) : cluster_(cluster), rank_(rank) {}

  void Charge(uint64_t sent, uint64_t received);

  Cluster* cluster_;
  int rank_;
  CommStats stats_;
};

/// Simulated W-worker cluster. Each Run() spawns one thread per worker and
/// executes the given SPMD function; collectives rendezvous through shared
/// state owned here.
class Cluster {
 public:
  Cluster(int num_workers, NetworkModel model = NetworkModel::Lab1Gbps());

  int num_workers() const { return num_workers_; }
  const NetworkModel& network_model() const { return model_; }

  /// Runs fn(context) on every worker; blocks until all finish. Contexts
  /// (and their stats) persist across Run calls.
  void Run(const std::function<void(WorkerContext&)>& fn);

  /// Stats of one worker / summed over workers.
  const CommStats& worker_stats(int rank) const;
  CommStats TotalStats() const;
  /// Maximum simulated comm seconds across workers (the cluster-level
  /// critical path used in time breakdowns).
  double MaxSimSeconds() const;

  void ResetStats();

 private:
  friend class WorkerContext;

  const int num_workers_;
  const NetworkModel model_;
  std::vector<std::unique_ptr<WorkerContext>> contexts_;

  // Rendezvous state for collectives.
  Barrier barrier_;
  std::vector<const void*> ptrs_;
  std::vector<void*> mutable_ptrs_;
  std::vector<size_t> sizes_;
  std::vector<double> reduce_buffer_;
  std::vector<double> instrument_slots_;
};

}  // namespace vero

#endif  // VERO_CLUSTER_COMMUNICATOR_H_
