#include "cluster/fault_injector.h"

#include "common/logging.h"

namespace vero {

const char* CollectiveOpToString(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kAllReduceSum:
      return "AllReduceSum";
    case CollectiveOp::kReduceScatterSum:
      return "ReduceScatterSum";
    case CollectiveOp::kAllGather:
      return "AllGather";
    case CollectiveOp::kBroadcast:
      return "Broadcast";
    case CollectiveOp::kGather:
      return "Gather";
    case CollectiveOp::kAllToAll:
      return "AllToAll";
    case CollectiveOp::kBarrier:
      return "Barrier";
    case CollectiveOp::kAny:
      return "Any";
  }
  VERO_CHECK(false);  // exhaustive switch above; unreachable
  return "";
}

// The switches below are default-free on purpose: adding a FaultKind /
// FaultPhase / ComputePoint without a string triggers -Wswitch instead of
// silently stringifying as "Unknown".
const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "Crash";
    case FaultKind::kCorrupt:
      return "Corrupt";
    case FaultKind::kTruncate:
      return "Truncate";
    case FaultKind::kDelay:
      return "Delay";
    case FaultKind::kSilentCorrupt:
      return "SilentCorrupt";
    case FaultKind::kPoison:
      return "Poison";
  }
  VERO_CHECK(false);
  return "";
}

const char* FaultPhaseToString(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::kAnyPhase:
      return "AnyPhase";
    case FaultPhase::kSetup:
      return "Setup";
    case FaultPhase::kTrain:
      return "Train";
    case FaultPhase::kRecovery:
      return "Recovery";
  }
  VERO_CHECK(false);
  return "";
}

const char* ComputePointToString(ComputePoint point) {
  switch (point) {
    case ComputePoint::kGradient:
      return "Gradient";
    case ComputePoint::kHistogram:
      return "Histogram";
  }
  VERO_CHECK(false);
  return "";
}

FaultInjector::FaultInjector(const FaultPlan& plan, int num_workers)
    : plan_(plan), counters_(num_workers) {
  for (const FaultEvent& e : plan_.events()) {
    VERO_CHECK(e.rank >= 0 && e.rank < num_workers);
    VERO_CHECK_GE(e.attempts, 0);
    VERO_CHECK_GE(e.delay_seconds, 0.0);
  }
}

FaultDecision FaultInjector::OnCollective(int rank, CollectiveOp op,
                                          FaultPhase phase) {
  RankCounters& c = counters_[rank];
  const int phase_index = static_cast<int>(phase);
  const uint64_t op_index = c.per_op[static_cast<int>(op)]++;
  const uint64_t any_index = c.any++;
  const uint64_t phase_op_index =
      c.phase_per_op[phase_index][static_cast<int>(op)]++;
  const uint64_t phase_any_index = c.phase_any[phase_index]++;
  FaultDecision decision;
  for (const FaultEvent& e : plan_.events()) {
    if (e.rank != rank) continue;
    // kPoison targets compute points, not collectives; it has its own
    // occurrence stream (OnCompute) and must not consume this one.
    if (e.kind == FaultKind::kPoison) continue;
    bool match;
    if (e.phase == FaultPhase::kAnyPhase) {
      match = (e.op == CollectiveOp::kAny && e.occurrence == any_index) ||
              (e.op == op && e.occurrence == op_index);
    } else if (e.phase == phase) {
      match = (e.op == CollectiveOp::kAny && e.occurrence == phase_any_index) ||
              (e.op == op && e.occurrence == phase_op_index);
    } else {
      match = false;
    }
    if (!match) continue;
    switch (e.kind) {
      case FaultKind::kCrash:
        decision.crash = true;
        break;
      case FaultKind::kCorrupt:
      case FaultKind::kTruncate:
        decision.failed_attempts += e.attempts;
        break;
      case FaultKind::kDelay:
        decision.delay_seconds += e.delay_seconds;
        break;
      case FaultKind::kSilentCorrupt:
        decision.silent_corrupt = true;
        decision.corrupt_seed ^= e.seed;
        break;
      case FaultKind::kPoison:
        break;  // filtered above
    }
  }
  return decision;
}

PoisonDecision FaultInjector::OnCompute(int rank, ComputePoint point,
                                        FaultPhase phase) {
  RankCounters& c = counters_[rank];
  const int phase_index = static_cast<int>(phase);
  const int point_index = static_cast<int>(point);
  const uint64_t global_index = c.compute[point_index]++;
  const uint64_t phase_index_count =
      c.phase_compute[phase_index][point_index]++;
  PoisonDecision decision;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kPoison) continue;
    if (e.rank != rank || e.target != point) continue;
    bool match;
    if (e.phase == FaultPhase::kAnyPhase) {
      match = e.occurrence == global_index;
    } else if (e.phase == phase) {
      match = e.occurrence == phase_index_count;
    } else {
      match = false;
    }
    if (!match) continue;
    decision.poison = true;
    decision.inf = decision.inf || e.poison_inf;
    decision.seed ^= e.seed;
  }
  return decision;
}

}  // namespace vero
