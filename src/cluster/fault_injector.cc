#include "cluster/fault_injector.h"

#include "common/logging.h"

namespace vero {

const char* CollectiveOpToString(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kAllReduceSum:
      return "AllReduceSum";
    case CollectiveOp::kReduceScatterSum:
      return "ReduceScatterSum";
    case CollectiveOp::kAllGather:
      return "AllGather";
    case CollectiveOp::kBroadcast:
      return "Broadcast";
    case CollectiveOp::kGather:
      return "Gather";
    case CollectiveOp::kAllToAll:
      return "AllToAll";
    case CollectiveOp::kBarrier:
      return "Barrier";
    case CollectiveOp::kAny:
      return "Any";
  }
  return "Unknown";
}

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "Crash";
    case FaultKind::kCorrupt:
      return "Corrupt";
    case FaultKind::kTruncate:
      return "Truncate";
    case FaultKind::kDelay:
      return "Delay";
  }
  return "Unknown";
}

const char* FaultPhaseToString(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::kAnyPhase:
      return "AnyPhase";
    case FaultPhase::kSetup:
      return "Setup";
    case FaultPhase::kTrain:
      return "Train";
    case FaultPhase::kRecovery:
      return "Recovery";
  }
  return "Unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, int num_workers)
    : plan_(plan), counters_(num_workers) {
  for (const FaultEvent& e : plan_.events()) {
    VERO_CHECK(e.rank >= 0 && e.rank < num_workers);
    VERO_CHECK_GE(e.attempts, 0);
    VERO_CHECK_GE(e.delay_seconds, 0.0);
  }
}

FaultDecision FaultInjector::OnCollective(int rank, CollectiveOp op,
                                          FaultPhase phase) {
  RankCounters& c = counters_[rank];
  const int phase_index = static_cast<int>(phase);
  const uint64_t op_index = c.per_op[static_cast<int>(op)]++;
  const uint64_t any_index = c.any++;
  const uint64_t phase_op_index =
      c.phase_per_op[phase_index][static_cast<int>(op)]++;
  const uint64_t phase_any_index = c.phase_any[phase_index]++;
  FaultDecision decision;
  for (const FaultEvent& e : plan_.events()) {
    if (e.rank != rank) continue;
    bool match;
    if (e.phase == FaultPhase::kAnyPhase) {
      match = (e.op == CollectiveOp::kAny && e.occurrence == any_index) ||
              (e.op == op && e.occurrence == op_index);
    } else if (e.phase == phase) {
      match = (e.op == CollectiveOp::kAny && e.occurrence == phase_any_index) ||
              (e.op == op && e.occurrence == phase_op_index);
    } else {
      match = false;
    }
    if (!match) continue;
    switch (e.kind) {
      case FaultKind::kCrash:
        decision.crash = true;
        break;
      case FaultKind::kCorrupt:
      case FaultKind::kTruncate:
        decision.failed_attempts += e.attempts;
        break;
      case FaultKind::kDelay:
        decision.delay_seconds += e.delay_seconds;
        break;
    }
  }
  return decision;
}

}  // namespace vero
