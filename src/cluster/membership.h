#ifndef VERO_CLUSTER_MEMBERSHIP_H_
#define VERO_CLUSTER_MEMBERSHIP_H_

#include <string>
#include <vector>

namespace vero {

/// Rank mapping for one cluster incarnation of the elastic recovery loop.
///
/// Each training attempt runs on its own Cluster whose ranks are dense
/// [0, world). The membership records, for every new rank, which rank of the
/// *previous* incarnation it continues (so survivors can keep their data
/// shard) or kPrevNone when the slot is filled by a re-joining replacement
/// worker that must be re-seeded from scratch (fresh shard + latest
/// checkpoint).
struct Membership {
  static constexpr int kPrevNone = -1;

  /// World size of this incarnation.
  int world = 0;
  /// prev_rank[r] = rank in the previous incarnation that new rank r
  /// continues, or kPrevNone for a replacement worker.
  std::vector<int> prev_rank;

  /// New ranks occupied by replacement workers (prev_rank == kPrevNone),
  /// increasing order.
  std::vector<int> rejoined;

  bool IsRejoin(int rank) const {
    return prev_rank[rank] == kPrevNone;
  }

  std::string ToString() const;
};

/// The identity membership for a fresh W-worker cluster: world = W,
/// prev_rank[r] = r, nothing rejoined.
Membership InitialMembership(int world);

/// Computes the next incarnation after `dead` ranks of `current` failed.
///
/// With `elastic` true the world stays at current.world: survivors keep
/// their identity ranks (so their data shards stay aligned and nothing is
/// reshipped to them) and replacement workers occupy exactly the dead slots
/// (they appear in `rejoined` and are re-seeded with that slot's shard plus
/// the latest checkpoint). With `elastic` false, survivors keep their
/// relative order and compact into the low ranks; the world shrinks to the
/// survivor count (PR 1 degraded mode). `dead` ranks index the *current*
/// incarnation and must be sorted ascending.
Membership NextMembership(const Membership& current,
                          const std::vector<int>& dead, bool elastic);

}  // namespace vero

#endif  // VERO_CLUSTER_MEMBERSHIP_H_
