#ifndef VERO_CLUSTER_MEMBERSHIP_H_
#define VERO_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vero {

/// Rank mapping for one cluster incarnation of the elastic recovery loop.
///
/// Each training attempt runs on its own Cluster whose ranks are dense
/// [0, world). The membership records, for every new rank, which rank of the
/// *previous* incarnation it continues (so survivors can keep their data
/// shard) or kPrevNone when the slot is filled by a re-joining replacement
/// worker that must be re-seeded from scratch (fresh shard + latest
/// checkpoint).
struct Membership {
  static constexpr int kPrevNone = -1;

  /// World size of this incarnation.
  int world = 0;
  /// prev_rank[r] = rank in the previous incarnation that new rank r
  /// continues, or kPrevNone for a replacement worker.
  std::vector<int> prev_rank;

  /// New ranks occupied by replacement workers (prev_rank == kPrevNone),
  /// increasing order. Replacements refill slots that existed in the
  /// previous incarnation; brand-new slots opened by a scale-up are listed
  /// in `admitted` instead.
  std::vector<int> rejoined;

  /// New ranks created by a scale-up (prev_rank == kPrevNone), increasing
  /// order. Like rejoined ranks they are seeded with a fresh shard and the
  /// latest checkpoint, but they extend the world rather than refilling it.
  std::vector<int> admitted;

  /// Ranks of the *previous* incarnation that were live but dropped by a
  /// scale-down (their shard rows are re-shipped to the surviving ranks),
  /// increasing order. Dead ranks are never listed here.
  std::vector<int> retired;

  bool IsRejoin(int rank) const {
    return prev_rank[rank] == kPrevNone;
  }

  std::string ToString() const;
};

/// The identity membership for a fresh W-worker cluster: world = W,
/// prev_rank[r] = r, nothing rejoined.
Membership InitialMembership(int world);

/// Computes the next incarnation after `dead` ranks of `current` failed.
///
/// With `elastic` true the world stays at current.world: survivors keep
/// their identity ranks (so their data shards stay aligned and nothing is
/// reshipped to them) and replacement workers occupy exactly the dead slots
/// (they appear in `rejoined` and are re-seeded with that slot's shard plus
/// the latest checkpoint). With `elastic` false, survivors keep their
/// relative order and compact into the low ranks; the world shrinks to the
/// survivor count (PR 1 degraded mode). `dead` ranks index the *current*
/// incarnation and must be sorted ascending.
Membership NextMembership(const Membership& current,
                          const std::vector<int>& dead, bool elastic);

/// Resizing overload: computes the next incarnation when the world also
/// changes by `resize_delta` workers (positive admits, negative retires).
/// With resize_delta == 0 this is exactly the two-argument form. A resize
/// always uses the identity-preserving mapping for the ranks common to both
/// incarnations (dead common ranks become rejoined replacements, live ones
/// keep their shard): scale-up appends `admitted` slots above the old
/// world, scale-down drops the top ranks into `retired`. The new world
/// (current.world + resize_delta) must keep at least one surviving worker.
Membership NextMembership(const Membership& current,
                          const std::vector<int>& dead, bool elastic,
                          int resize_delta);

/// One contiguous row range whose owner changes between the W-way and
/// W'-way HorizontalRange partitions of [0, num_rows).
struct ShardMove {
  uint32_t row_begin = 0;
  uint32_t row_end = 0;  ///< Exclusive.
  int from_rank = 0;     ///< Owner under the old partition.
  int to_rank = 0;       ///< Owner under the new partition.
};

/// Deterministic W -> W' re-sharding plan: the common refinement of the two
/// HorizontalRange partitions, listing only the segments whose owner
/// changes (rows a rank keeps are never shipped). Every rank computing this
/// from (num_rows, old_world, new_world) gets the identical plan; segments
/// are in increasing row order and disjoint, and together with the
/// unmoved rows they cover [0, num_rows) exactly once.
std::vector<ShardMove> PlanReshard(uint32_t num_rows, int old_world,
                                   int new_world);

}  // namespace vero

#endif  // VERO_CLUSTER_MEMBERSHIP_H_
