#ifndef VERO_CLUSTER_CODEC_H_
#define VERO_CLUSTER_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace vero {

/// Histogram-payload compression applied underneath the collectives (the
/// codec layer of WorkerContext::AllReduceSumCodec and friends). `kOff`
/// delegates to the uncompressed path and stays bit-identical to seed; the
/// two sparse modes are lossless (raw f64 bit patterns are preserved,
/// including -0.0, denormals, and NaN payloads); `kQuantized` trades a
/// documented per-block error bound for 16-bit values on the wire. See
/// docs/wire_formats.md for the frame layout.
enum class CollectiveCompression {
  kOff = 0,
  /// Per-block dense/sparse switch; sparse blocks store absolute bin
  /// indices as varints plus the raw nonzero doubles.
  kSparse = 1,
  /// Like kSparse, but bin indices are gap-encoded (first index, then
  /// successive deltas minus one) before varint packing, so clustered
  /// nonzeros cost ~1 byte of index each.
  kSparseDelta = 2,
  /// Delta-indexed sparse layout with 16-bit linear quantization of the
  /// values: per block offset/scale doubles plus one u16 code per value.
  /// Lossy; max abs error <= (max-min)/65535/2 per block. Blocks holding
  /// non-finite values fall back to lossless dense-raw so injected NaN
  /// poison still propagates byte-exactly.
  kQuantized = 3,
};

const char* CollectiveCompressionToString(CollectiveCompression mode);

/// Per-call codec policy, derived from GbdtParams by CodecFromParams (see
/// dist_common.h) and passed by the trainers to the codec collectives.
/// Mirrors the MitigationOptions pattern: `enabled() == false` routes to the
/// existing uncompressed collectives with bit-identical accounting.
struct CodecSpec {
  CollectiveCompression mode = CollectiveCompression::kOff;
  /// Values per independently-encoded block; the trainers pass one
  /// histogram feature's worth (q * dims * 2) so the dense/sparse switch
  /// tracks per-feature density. 0 = encode the whole payload as one block.
  uint64_t block_values = 0;
  /// A block is encoded sparse iff nnz / block_len <= density_threshold.
  double density_threshold = 0.5;

  bool enabled() const { return mode != CollectiveCompression::kOff; }
};

/// True when decode(encode(x)) may differ from x (currently only
/// kQuantized, and only for all-finite blocks).
inline bool CodecIsLossy(const CodecSpec& spec) {
  return spec.mode == CollectiveCompression::kQuantized;
}

/// Per-encode accounting, accumulated into the comm.<Op>.raw_bytes /
/// compressed_bytes metric counters by the communicator.
struct CodecStats {
  uint64_t raw_bytes = 0;      ///< sizeof(double) * values encoded
  uint64_t encoded_bytes = 0;  ///< frame bytes produced (what the wire sees)
  uint64_t dense_blocks = 0;
  uint64_t sparse_blocks = 0;
  uint64_t quantized_blocks = 0;
};

/// Encodes `values` into a self-describing CRC-framed byte frame. The spec
/// must be enabled. Deterministic: equal inputs yield equal frames on every
/// rank, which the op-id-lockstep replay tests rely on.
void CodecEncode(std::span<const double> values, const CodecSpec& spec,
                 std::vector<uint8_t>* frame, CodecStats* stats = nullptr);

/// Decodes a frame produced by CodecEncode. Rejects (kDataLoss /
/// kOutOfRange) truncated frames, bad magic/mode/tag bytes, out-of-order or
/// out-of-range sparse indices, trailing garbage, and CRC mismatches — a
/// corrupted frame never decodes to plausible data silently.
Status CodecDecode(std::span<const uint8_t> frame, std::vector<double>* values);

/// Byte-payload wrappers for collectives that ship packed-double buffers
/// (QD2's histogram exchange). payload.size() must be a multiple of 8.
void CodecEncodeBytes(std::span<const uint8_t> payload, const CodecSpec& spec,
                      std::vector<uint8_t>* frame, CodecStats* stats = nullptr);
Status CodecDecodeBytes(std::span<const uint8_t> frame,
                        std::vector<uint8_t>* payload);

/// Cheap header peek: the raw (decoded) payload size a frame represents,
/// without validating or decoding the body. Used to account the raw-byte
/// equivalent of frames whose payload is dropped (deferred ranks).
Status CodecFrameRawSize(std::span<const uint8_t> frame, uint64_t* raw_bytes);

/// decode(encode(payload)) under `spec` — what a receiver reconstructs.
/// Senders computing integrity digests over lossy payloads must digest the
/// round-tripped bytes so that sender and receiver hash identical data.
std::vector<uint8_t> CodecRoundTripBytes(std::span<const uint8_t> payload,
                                         const CodecSpec& spec);

}  // namespace vero

#endif  // VERO_CLUSTER_CODEC_H_
