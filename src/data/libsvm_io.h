#ifndef VERO_DATA_LIBSVM_IO_H_
#define VERO_DATA_LIBSVM_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace vero {

/// Options for reading LIBSVM-format text files
/// (`<label> <feature>:<value> ...` per line, 1-based or 0-based indices).
struct LibsvmReadOptions {
  Task task = Task::kBinary;
  /// Number of classes; inferred from labels when 0.
  uint32_t num_classes = 0;
  /// Number of features; inferred as (max index + 1) when 0.
  uint32_t num_features = 0;
  /// Subtract 1 from feature indices (common for 1-based LIBSVM files).
  bool one_based_indices = true;
  /// Map labels {-1, +1} to {0, 1} for binary tasks.
  bool map_negative_labels = true;
};

/// Parses a LIBSVM file into a Dataset.
StatusOr<Dataset> ReadLibsvmFile(const std::string& path,
                                 const LibsvmReadOptions& options);

/// Parses LIBSVM content from an in-memory string (used by tests).
StatusOr<Dataset> ParseLibsvm(const std::string& content,
                              const LibsvmReadOptions& options);

/// Writes a dataset in LIBSVM format (1-based indices).
Status WriteLibsvmFile(const Dataset& dataset, const std::string& path);

}  // namespace vero

#endif  // VERO_DATA_LIBSVM_IO_H_
