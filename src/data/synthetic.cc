#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace vero {

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  VERO_CHECK_GT(config.num_instances, 0u);
  VERO_CHECK_GT(config.num_features, 0u);
  VERO_CHECK_GE(config.num_classes, 1u);
  VERO_CHECK(config.density > 0.0 && config.density <= 1.0);

  const uint32_t n = config.num_instances;
  const uint32_t d = config.num_features;
  const uint32_t c = std::max(config.num_classes, 1u);
  Rng rng(config.seed);

  // Weight matrix: a shared informative support of p*D features, each class
  // with its own weights on that support.
  const uint32_t num_informative = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(config.informative_ratio * d)));
  const std::vector<uint32_t> support =
      rng.SampleWithoutReplacement(d, num_informative);
  std::vector<std::vector<float>> weights(c, std::vector<float>(d, 0.0f));
  for (uint32_t k = 0; k < c; ++k) {
    for (uint32_t f : support) {
      weights[k][f] = static_cast<float>(rng.NextGaussian());
    }
  }
  // Complement of the support, for biased row sampling.
  std::vector<uint32_t> complement;
  if (config.informative_draw_fraction > 0.0) {
    complement.reserve(d - support.size());
    std::vector<bool> in_support(d, false);
    for (uint32_t f : support) in_support[f] = true;
    for (uint32_t f = 0; f < d; ++f) {
      if (!in_support[f]) complement.push_back(f);
    }
  }

  const uint32_t nnz_per_row = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::lround(config.density * d)));

  CsrMatrix matrix;
  matrix.set_num_cols(d);
  std::vector<float> labels;
  labels.reserve(n);
  std::vector<double> scores(c);

  for (uint32_t i = 0; i < n; ++i) {
    matrix.StartRow();
    std::vector<uint32_t> feats;
    if (nnz_per_row != d) {
      if (config.informative_draw_fraction > 0.0) {
        // Biased sampling: part of the row comes from the informative
        // support, the rest from its complement; merge keeps ids sorted.
        uint32_t k_inf = std::min<uint32_t>(
            static_cast<uint32_t>(
                std::lround(config.informative_draw_fraction * nnz_per_row)),
            static_cast<uint32_t>(support.size()));
        const uint32_t k_rest = std::min<uint32_t>(
            nnz_per_row - k_inf, static_cast<uint32_t>(complement.size()));
        std::vector<uint32_t> inf_idx = rng.SampleWithoutReplacement(
            static_cast<uint32_t>(support.size()), k_inf);
        std::vector<uint32_t> rest_idx = rng.SampleWithoutReplacement(
            static_cast<uint32_t>(complement.size()), k_rest);
        feats.reserve(k_inf + k_rest);
        size_t a = 0, b = 0;
        while (a < inf_idx.size() || b < rest_idx.size()) {
          const uint32_t fa =
              a < inf_idx.size() ? support[inf_idx[a]] : 0xFFFFFFFFu;
          const uint32_t fb =
              b < rest_idx.size() ? complement[rest_idx[b]] : 0xFFFFFFFFu;
          if (fa < fb) {
            feats.push_back(fa);
            ++a;
          } else {
            feats.push_back(fb);
            ++b;
          }
        }
      } else {
        feats = rng.SampleWithoutReplacement(d, nnz_per_row);
      }
    }
    std::fill(scores.begin(), scores.end(), 0.0);
    auto push = [&](uint32_t f) {
      // Uniform values in [0, 1): mirrors the paper's sampled feature
      // vectors and keeps quantile bins informative. The score uses the
      // centered value so class balance does not hinge on the sign of
      // sum-of-weights (with raw positive values, the constant bias
      // E[v] * sum(w) would swamp the per-instance signal at high D).
      const float v = static_cast<float>(rng.NextDouble());
      matrix.PushEntry(f, v);
      for (uint32_t k = 0; k < c; ++k) {
        scores[k] += (static_cast<double>(v) - 0.5) * weights[k][f];
      }
    };
    if (nnz_per_row == d) {
      for (uint32_t f = 0; f < d; ++f) push(f);
    } else {
      for (uint32_t f : feats) push(f);
    }

    if (c == 1) {
      // Regression target.
      labels.push_back(static_cast<float>(
          scores[0] + config.label_noise * rng.NextGaussian()));
    } else {
      uint32_t best = 0;
      double best_score = -1e300;
      for (uint32_t k = 0; k < c; ++k) {
        const double s =
            scores[k] + config.label_noise * rng.NextGaussian();
        if (s > best_score) {
          best_score = s;
          best = k;
        }
      }
      labels.push_back(static_cast<float>(best));
    }
  }

  const Task task = (c == 1)   ? Task::kRegression
                    : (c == 2) ? Task::kBinary
                               : Task::kMultiClass;
  return Dataset(std::move(matrix), std::move(labels), task,
                 std::max(c, 2u));
}

const char* DatasetKindToString(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kLowDimDense:
      return "LD";
    case DatasetKind::kHighDimSparse:
      return "HS";
    case DatasetKind::kMultiClass:
      return "MC";
  }
  return "?";
}

const std::vector<DatasetProfile>& PublicDatasetProfiles() {
  // Scaled instance counts keep each dataset's place in the paper's ordering
  // (SUSY < Higgs < Criteo by N; Epsilon mid-D dense; RCV1/Synthesis
  // high-D sparse; -multi variants add classes). Densities approximate the
  // real datasets (LD sets are fully dense; RCV1 has ~75 nnz/row).
  static const std::vector<DatasetProfile>* kProfiles =
      new std::vector<DatasetProfile>{
          // LD stand-ins keep a paper-like N:D ratio (the quantity that
          // decides horizontal vs vertical on low-dim data) rather than
          // shrinking N alone.
          {"SUSY", DatasetKind::kLowDimDense, 5000000, 18, 2,  //
           200000, 18, 1.0, 101},
          {"Higgs", DatasetKind::kLowDimDense, 11000000, 28, 2,  //
           300000, 28, 1.0, 102},
          {"Criteo", DatasetKind::kLowDimDense, 45000000, 39, 2,  //
           400000, 39, 1.0, 103},
          {"Epsilon", DatasetKind::kLowDimDense, 500000, 2000, 2,  //
           75000, 500, 1.0, 104},
          {"RCV1", DatasetKind::kHighDimSparse, 697000, 47000, 2,  //
           20000, 12000, 75.0 / 12000.0, 105},
          {"Synthesis", DatasetKind::kHighDimSparse, 50000000, 100000, 2,  //
           50000, 20000, 50.0 / 20000.0, 106},
          // Multi-class stand-ins: vector-valued histograms cost
          // D x q x C cells per node on EVERY horizontal worker (the very
          // effect the paper studies), so a shared-memory host caps the
          // D x C product; classes are kept faithful and D absorbs the
          // shrink.
          {"RCV1-multi", DatasetKind::kMultiClass, 534000, 47000, 53,  //
           5000, 450, 50.0 / 450.0, 107},
          {"Synthesis-multi", DatasetKind::kMultiClass, 50000000, 25000, 10,
           30000, 2000, 50.0 / 2000.0, 108},
      };
  return *kProfiles;
}

const std::vector<DatasetProfile>& IndustrialDatasetProfiles() {
  static const std::vector<DatasetProfile>* kProfiles =
      new std::vector<DatasetProfile>{
          // Gender: huge N, binary -> N-dominant workload. The stand-in
          // keeps a paper-like N:D ratio (~370:1), which is what makes
          // horizontal partitioning competitive on the fast network.
          {"Gender", DatasetKind::kHighDimSparse, 122000000, 330000, 2,  //
           800000, 800, 16.0 / 800.0, 201},
          // Age: large N, high D, 9 classes -> the paper's flagship case
          // (D x C capped for shared-memory hosts, as above).
          {"Age", DatasetKind::kMultiClass, 48000000, 330000, 9,  //
           48000, 2500, 40.0 / 2500.0, 202},
          // Taste: modest N, low D, 100 classes.
          {"Taste", DatasetKind::kMultiClass, 10000000, 15000, 100,  //
           10000, 240, 30.0 / 240.0, 203},
      };
  return *kProfiles;
}

const DatasetProfile& FindProfile(const std::string& name) {
  for (const auto& p : PublicDatasetProfiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : IndustrialDatasetProfiles()) {
    if (p.name == name) return p;
  }
  VERO_LOG(Fatal) << "unknown dataset profile: " << name;
  __builtin_unreachable();
}

Dataset GenerateFromProfile(const DatasetProfile& profile,
                            double instance_scale) {
  SyntheticConfig config;
  config.num_instances = std::max<uint32_t>(
      500, static_cast<uint32_t>(
               std::lround(profile.scaled_instances * instance_scale)));
  config.num_features = profile.scaled_features;
  config.num_classes = profile.num_classes;
  config.density = profile.density;
  // Informative ratio: all features carry signal for dense sets; for sparse
  // sets keep the paper's 20%.
  config.informative_ratio =
      profile.kind == DatasetKind::kLowDimDense ? 1.0 : 0.2;
  // Sparse rows intersect few informative features, so the per-instance
  // signal is weak; bias a third of each row toward the informative support
  // (real sparse data concentrates signal on frequent features) and scale
  // the label noise down, keeping the task learnable within a bench-sized
  // tree budget.
  if (profile.kind != DatasetKind::kLowDimDense) {
    config.label_noise = 0.1;
    config.informative_draw_fraction = 0.35;
  }
  config.seed = profile.seed;
  return GenerateSynthetic(config);
}

}  // namespace vero
