#ifndef VERO_DATA_DATASET_H_
#define VERO_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/sparse_matrix.h"
#include "data/types.h"

namespace vero {

/// Learning task kinds supported by the library.
enum class Task {
  kRegression,       ///< square loss, 1-dim gradient
  kBinary,           ///< logistic loss, 1-dim gradient
  kMultiClass,       ///< softmax loss, C-dim gradient
};

const char* TaskToString(Task task);

/// A labeled sparse dataset (row-major master copy).
///
/// Labels are class indices in [0, num_classes) for classification tasks and
/// real targets for regression.
class Dataset {
 public:
  Dataset() = default;
  Dataset(CsrMatrix matrix, std::vector<float> labels, Task task,
          uint32_t num_classes);

  uint32_t num_instances() const { return matrix_.num_rows(); }
  uint32_t num_features() const { return matrix_.num_cols(); }
  uint64_t num_nonzeros() const { return matrix_.num_nonzeros(); }
  Task task() const { return task_; }
  /// 1 for regression/binary, C >= 3 for multi-class.
  uint32_t num_classes() const { return num_classes_; }
  /// Gradient dimensionality: 1 except multi-class where it is num_classes.
  uint32_t gradient_dim() const {
    return task_ == Task::kMultiClass ? num_classes_ : 1;
  }

  const CsrMatrix& matrix() const { return matrix_; }
  const std::vector<float>& labels() const { return labels_; }

  /// Average nonzeros per instance.
  double density() const {
    const double cells =
        static_cast<double>(num_instances()) * num_features();
    return cells > 0 ? static_cast<double>(num_nonzeros()) / cells : 0.0;
  }

  uint64_t MemoryBytes() const {
    return matrix_.MemoryBytes() + labels_.capacity() * sizeof(float);
  }

  /// Splits off the last `fraction` of instances as a validation set,
  /// returning (train, valid). Instances keep their relative order.
  std::pair<Dataset, Dataset> SplitTail(double fraction) const;

  /// Validates internal consistency (label range, feature bounds).
  Status Validate() const;

 private:
  CsrMatrix matrix_;
  std::vector<float> labels_;
  Task task_ = Task::kBinary;
  uint32_t num_classes_ = 2;
};

}  // namespace vero

#endif  // VERO_DATA_DATASET_H_
