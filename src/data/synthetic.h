#ifndef VERO_DATA_SYNTHETIC_H_
#define VERO_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace vero {

/// Configuration for the paper's synthetic data recipe (§5.2):
/// "generated from random linear regression models. Given dimensionality D,
/// informative ratio p, and number of classes C, we first randomly
/// initialize the weight matrix W with size D x C [with p*D nonzero values
/// per class], then for each instance the feature x is a randomly sampled
/// D-dimensional vector with density phi, and its label y is determined by
/// argmax x^T W." The paper sets p = phi = 20%.
struct SyntheticConfig {
  uint32_t num_instances = 10000;
  uint32_t num_features = 100;
  /// 1 => regression, 2 => binary, >=3 => multi-class.
  uint32_t num_classes = 2;
  /// Fraction of features that are nonzero in each instance (phi).
  double density = 0.2;
  /// Fraction of features with nonzero weight per class (p).
  double informative_ratio = 0.2;
  /// Fraction of each row's nonzeros drawn from the informative support
  /// (0 = uniform sampling over all features). Real sparse datasets
  /// concentrate signal on frequent features; setting this > 0 mirrors
  /// that, keeping high-dimensional stand-ins learnable.
  double informative_draw_fraction = 0.0;
  /// Stddev of Gaussian noise added to the class scores before argmax
  /// (keeps the task learnable but not perfectly separable, so convergence
  /// curves look like the paper's).
  double label_noise = 0.5;
  uint64_t seed = 42;
};

/// Generates a dataset per the paper's recipe. Deterministic in the seed.
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Kind of dataset in the paper's Table 2 taxonomy.
enum class DatasetKind {
  kLowDimDense,    ///< LD
  kHighDimSparse,  ///< HS
  kMultiClass,     ///< MC
};

const char* DatasetKindToString(DatasetKind kind);

/// A stand-in profile for one of the paper's evaluation datasets
/// (Table 2 public/synthetic sets plus the §6 industrial sets). The paper's
/// true sizes are kept for reference; `scaled_*` are the laptop-scale
/// defaults actually generated, preserving the shape class (N:D ratio,
/// sparsity, classes). Benches multiply scaled_instances by VERO_SCALE.
struct DatasetProfile {
  std::string name;
  DatasetKind kind;
  // Paper-scale shape (for documentation and the analytic model).
  uint64_t paper_instances;
  uint64_t paper_features;
  uint32_t num_classes;
  // Laptop-scale generation parameters.
  uint32_t scaled_instances;
  uint32_t scaled_features;
  double density;
  uint64_t seed;
};

/// Profiles mirroring Table 2: SUSY, Higgs, Criteo, Epsilon, RCV1,
/// Synthesis, RCV1-multi, Synthesis-multi.
const std::vector<DatasetProfile>& PublicDatasetProfiles();

/// Profiles mirroring §6: Gender, Age, Taste.
const std::vector<DatasetProfile>& IndustrialDatasetProfiles();

/// Looks up a profile by name across both lists; dies if absent.
const DatasetProfile& FindProfile(const std::string& name);

/// Generates the stand-in dataset for a profile. `instance_scale` multiplies
/// scaled_instances (feature count is left untouched so dimensionality-driven
/// effects survive scaling).
Dataset GenerateFromProfile(const DatasetProfile& profile,
                            double instance_scale = 1.0);

}  // namespace vero

#endif  // VERO_DATA_SYNTHETIC_H_
