#ifndef VERO_DATA_TYPES_H_
#define VERO_DATA_TYPES_H_

#include <cstdint>

namespace vero {

/// Index of a training instance (row). 32 bits covers the paper's largest
/// workload (Gender: 122M instances).
using InstanceId = uint32_t;

/// Index of a feature (column).
using FeatureId = uint32_t;

/// Index of a histogram bin / candidate split. The paper uses q = 20
/// candidate splits; 16 bits leaves ample headroom while keeping the binned
/// representation compact.
using BinId = uint16_t;

/// Sentinel for "no bin" (e.g. missing value).
inline constexpr BinId kInvalidBin = 0xFFFF;

/// Sentinel for "no feature".
inline constexpr FeatureId kInvalidFeature = 0xFFFFFFFFu;

/// Identifier of a node in a level-wise tree, numbered heap style:
/// root = 0, children of i are 2i+1 and 2i+2.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Heap-order helpers for level-wise trees.
inline NodeId LeftChild(NodeId n) { return 2 * n + 1; }
inline NodeId RightChild(NodeId n) { return 2 * n + 2; }
inline NodeId Parent(NodeId n) { return (n - 1) / 2; }
inline NodeId Sibling(NodeId n) { return ((n & 1) != 0) ? n + 1 : n - 1; }
inline bool IsLeftChild(NodeId n) { return (n & 1) != 0; }

/// One sparse entry of an instance row: (feature id, raw value).
struct Entry {
  FeatureId feature;
  float value;

  bool operator==(const Entry& other) const {
    return feature == other.feature && value == other.value;
  }
};

}  // namespace vero

#endif  // VERO_DATA_TYPES_H_
