#include "data/sparse_matrix.h"

#include <utility>

#include "common/logging.h"

namespace vero {

CsrMatrix::CsrMatrix(uint32_t num_cols, std::vector<uint64_t> row_ptr,
                     std::vector<FeatureId> features, std::vector<float> values)
    : num_cols_(num_cols),
      row_ptr_(std::move(row_ptr)),
      features_(std::move(features)),
      values_(std::move(values)) {
  VERO_CHECK_GE(row_ptr_.size(), 1u);
  VERO_CHECK_EQ(row_ptr_.back(), features_.size());
  VERO_CHECK_EQ(features_.size(), values_.size());
}

CscMatrix CsrMatrix::ToCsc() const {
  const uint32_t rows = num_rows();
  const uint32_t cols = num_cols_;
  std::vector<uint64_t> col_counts(cols + 1, 0);
  for (FeatureId f : features_) {
    VERO_DCHECK_LT(f, cols);
    ++col_counts[f + 1];
  }
  for (uint32_t c = 0; c < cols; ++c) col_counts[c + 1] += col_counts[c];

  std::vector<InstanceId> out_rows(features_.size());
  std::vector<float> out_values(features_.size());
  std::vector<uint64_t> cursor = col_counts;
  for (InstanceId i = 0; i < rows; ++i) {
    for (uint64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const uint64_t pos = cursor[features_[k]]++;
      out_rows[pos] = i;
      out_values[pos] = values_[k];
    }
  }
  return CscMatrix(rows, std::move(col_counts), std::move(out_rows),
                   std::move(out_values));
}

CsrMatrix CsrMatrix::SliceRows(InstanceId begin, InstanceId end) const {
  VERO_CHECK_LE(begin, end);
  VERO_CHECK_LE(end, num_rows());
  const uint64_t first = row_ptr_[begin];
  const uint64_t last = row_ptr_[end];
  std::vector<uint64_t> row_ptr(end - begin + 1);
  for (InstanceId i = begin; i <= end; ++i) {
    row_ptr[i - begin] = row_ptr_[i] - first;
  }
  std::vector<FeatureId> features(features_.begin() + first,
                                  features_.begin() + last);
  std::vector<float> values(values_.begin() + first, values_.begin() + last);
  return CsrMatrix(num_cols_, std::move(row_ptr), std::move(features),
                   std::move(values));
}

CsrMatrix CsrMatrix::FilterColumns(const std::vector<bool>& keep) const {
  VERO_CHECK_GE(keep.size(), num_cols_);
  CsrMatrix out;
  out.set_num_cols(num_cols_);
  for (InstanceId i = 0; i < num_rows(); ++i) {
    out.StartRow();
    for (uint64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (keep[features_[k]]) out.PushEntry(features_[k], values_[k]);
    }
  }
  return out;
}

CscMatrix::CscMatrix(uint32_t num_rows, std::vector<uint64_t> col_ptr,
                     std::vector<InstanceId> rows, std::vector<float> values)
    : num_rows_(num_rows),
      col_ptr_(std::move(col_ptr)),
      rows_(std::move(rows)),
      values_(std::move(values)) {
  VERO_CHECK_GE(col_ptr_.size(), 1u);
  VERO_CHECK_EQ(col_ptr_.back(), rows_.size());
  VERO_CHECK_EQ(rows_.size(), values_.size());
}

CsrMatrix CscMatrix::ToCsr() const {
  const uint32_t cols = num_cols();
  std::vector<uint64_t> row_counts(num_rows_ + 1, 0);
  for (InstanceId r : rows_) {
    VERO_DCHECK_LT(r, num_rows_);
    ++row_counts[r + 1];
  }
  for (uint32_t r = 0; r < num_rows_; ++r) row_counts[r + 1] += row_counts[r];

  std::vector<FeatureId> out_features(rows_.size());
  std::vector<float> out_values(rows_.size());
  std::vector<uint64_t> cursor = row_counts;
  for (FeatureId f = 0; f < cols; ++f) {
    for (uint64_t k = col_ptr_[f]; k < col_ptr_[f + 1]; ++k) {
      const uint64_t pos = cursor[rows_[k]]++;
      out_features[pos] = f;
      out_values[pos] = values_[k];
    }
  }
  return CsrMatrix(cols, std::move(row_counts), std::move(out_features),
                   std::move(out_values));
}

}  // namespace vero
