#include "data/dataset.h"

#include <cmath>
#include <span>
#include <string>

#include "common/logging.h"

namespace vero {

const char* TaskToString(Task task) {
  switch (task) {
    case Task::kRegression:
      return "regression";
    case Task::kBinary:
      return "binary";
    case Task::kMultiClass:
      return "multiclass";
  }
  return "unknown";
}

Dataset::Dataset(CsrMatrix matrix, std::vector<float> labels, Task task,
                 uint32_t num_classes)
    : matrix_(std::move(matrix)),
      labels_(std::move(labels)),
      task_(task),
      num_classes_(num_classes) {
  VERO_CHECK_EQ(matrix_.num_rows(), labels_.size());
  if (task_ == Task::kBinary) VERO_CHECK_EQ(num_classes_, 2u);
  if (task_ == Task::kMultiClass) VERO_CHECK_GE(num_classes_, 3u);
  if (task_ == Task::kRegression) num_classes_ = 1;
}

std::pair<Dataset, Dataset> Dataset::SplitTail(double fraction) const {
  VERO_CHECK(fraction > 0.0 && fraction < 1.0);
  const uint32_t n = num_instances();
  uint32_t n_valid = static_cast<uint32_t>(std::lround(n * fraction));
  if (n_valid == 0) n_valid = 1;
  if (n_valid >= n) n_valid = n - 1;
  const uint32_t n_train = n - n_valid;

  CsrMatrix train_m = matrix_.SliceRows(0, n_train);
  CsrMatrix valid_m = matrix_.SliceRows(n_train, n);
  std::vector<float> train_y(labels_.begin(), labels_.begin() + n_train);
  std::vector<float> valid_y(labels_.begin() + n_train, labels_.end());
  return {Dataset(std::move(train_m), std::move(train_y), task_, num_classes_),
          Dataset(std::move(valid_m), std::move(valid_y), task_,
                  num_classes_)};
}

Status Dataset::Validate() const {
  for (FeatureId f : matrix_.features()) {
    if (f >= matrix_.num_cols()) {
      return Status::Corruption("feature id out of range");
    }
  }
  if (task_ != Task::kRegression) {
    for (size_t i = 0; i < labels_.size(); ++i) {
      const double yi = static_cast<double>(labels_[i]);
      if (yi != std::floor(yi) || yi < 0 || yi >= num_classes_) {
        return Status::Corruption("label " + std::to_string(labels_[i]) +
                                  " at row " + std::to_string(i) +
                                  " not a class index in range");
      }
    }
  }
  // Walk the CSR rows (not the flat value array) so a rejection names the
  // exact cell: corruption reports are actionable only with coordinates.
  for (InstanceId i = 0; i < matrix_.num_rows(); ++i) {
    const std::span<const FeatureId> features = matrix_.RowFeatures(i);
    const std::span<const float> values = matrix_.RowValues(i);
    for (size_t k = 0; k < values.size(); ++k) {
      if (!std::isfinite(values[k])) {
        return Status::Corruption(
            "non-finite value " + std::to_string(values[k]) + " at row " +
            std::to_string(i) + ", feature " + std::to_string(features[k]));
      }
    }
  }
  return Status::OK();
}

}  // namespace vero
