#include "data/libsvm_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace vero {
namespace {

// Parses one "<feature>:<value>" token. Returns false on malformed input.
bool ParseEntry(const char* begin, const char* end, FeatureId* feature,
                float* value) {
  const char* colon = begin;
  while (colon != end && *colon != ':') ++colon;
  if (colon == begin || colon == end) return false;
  uint32_t f = 0;
  auto [fp, fec] = std::from_chars(begin, colon, f);
  if (fec != std::errc() || fp != colon) return false;
  // std::from_chars for float is available in libstdc++ >= 11.
  float v = 0.0f;
  auto [vp, vec] = std::from_chars(colon + 1, end, v);
  if (vec != std::errc() || vp != end) return false;
  *feature = f;
  *value = v;
  return true;
}

}  // namespace

StatusOr<Dataset> ParseLibsvm(const std::string& content,
                              const LibsvmReadOptions& options) {
  CsrMatrix matrix;
  std::vector<float> labels;
  FeatureId max_feature = 0;
  bool any_entry = false;

  size_t line_start = 0;
  size_t line_no = 0;
  while (line_start <= content.size()) {
    size_t line_end = content.find('\n', line_start);
    if (line_end == std::string::npos) line_end = content.size();
    ++line_no;
    const char* p = content.data() + line_start;
    const char* end = content.data() + line_end;
    line_start = line_end + 1;

    // Skip blank lines and comments.
    while (p != end && (*p == ' ' || *p == '\t')) ++p;
    if (p == end || *p == '#') {
      if (line_start > content.size()) break;
      continue;
    }

    // Label token.
    const char* tok_end = p;
    while (tok_end != end && *tok_end != ' ' && *tok_end != '\t') ++tok_end;
    float label = 0.0f;
    auto [lp, lec] = std::from_chars(p, tok_end, label);
    if (lec != std::errc() || lp != tok_end) {
      return Status::Corruption("bad label at line " + std::to_string(line_no));
    }
    if (options.task == Task::kBinary && options.map_negative_labels &&
        label < 0) {
      label = 0.0f;
    }
    labels.push_back(label);
    matrix.StartRow();

    p = tok_end;
    while (p != end) {
      while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p == end) break;
      tok_end = p;
      while (tok_end != end && *tok_end != ' ' && *tok_end != '\t' &&
             *tok_end != '\r') {
        ++tok_end;
      }
      FeatureId feature = 0;
      float value = 0.0f;
      if (!ParseEntry(p, tok_end, &feature, &value)) {
        return Status::Corruption("bad entry at line " +
                                  std::to_string(line_no));
      }
      if (options.one_based_indices) {
        if (feature == 0) {
          return Status::Corruption("feature index 0 in 1-based file, line " +
                                    std::to_string(line_no));
        }
        feature -= 1;
      }
      matrix.PushEntry(feature, value);
      max_feature = std::max(max_feature, feature);
      any_entry = true;
      p = tok_end;
    }
  }

  uint32_t num_features = options.num_features;
  if (num_features == 0) num_features = any_entry ? max_feature + 1 : 0;
  matrix.set_num_cols(num_features);

  uint32_t num_classes = options.num_classes;
  if (options.task == Task::kMultiClass && num_classes == 0) {
    float max_label = 0.0f;
    for (float y : labels) max_label = std::max(max_label, y);
    num_classes = static_cast<uint32_t>(max_label) + 1;
  }
  if (options.task == Task::kBinary) num_classes = 2;
  if (options.task == Task::kRegression) num_classes = 1;

  Dataset dataset(std::move(matrix), std::move(labels), options.task,
                  std::max(num_classes, options.task == Task::kRegression
                                            ? 1u
                                            : 2u));
  VERO_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

StatusOr<Dataset> ReadLibsvmFile(const std::string& path,
                                 const LibsvmReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseLibsvm(buffer.str(), options);
}

Status WriteLibsvmFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const CsrMatrix& m = dataset.matrix();
  for (InstanceId i = 0; i < dataset.num_instances(); ++i) {
    const float y = dataset.labels()[i];
    if (dataset.task() == Task::kRegression) {
      out << y;
    } else {
      out << static_cast<int64_t>(y);
    }
    auto features = m.RowFeatures(i);
    auto values = m.RowValues(i);
    for (size_t k = 0; k < features.size(); ++k) {
      out << ' ' << (features[k] + 1) << ':' << values[k];
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace vero
