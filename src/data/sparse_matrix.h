#ifndef VERO_DATA_SPARSE_MATRIX_H_
#define VERO_DATA_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/types.h"

namespace vero {

class CscMatrix;

/// Compressed Sparse Row matrix: each row is an instance stored as a run of
/// (feature, value) pairs. This is the "row-store" of the paper.
class CsrMatrix {
 public:
  CsrMatrix() : row_ptr_(1, 0) {}

  /// Constructs from prebuilt arrays. row_ptr must have num_rows + 1 entries,
  /// be non-decreasing, and end at features.size() == values.size().
  CsrMatrix(uint32_t num_cols, std::vector<uint64_t> row_ptr,
            std::vector<FeatureId> features, std::vector<float> values);

  uint32_t num_rows() const {
    return static_cast<uint32_t>(row_ptr_.size() - 1);
  }
  uint32_t num_cols() const { return num_cols_; }
  uint64_t num_nonzeros() const { return features_.size(); }

  /// Begins a new row; subsequent PushEntry calls append to it.
  void StartRow() { row_ptr_.push_back(row_ptr_.back()); }

  /// Appends an entry to the row opened by the latest StartRow().
  void PushEntry(FeatureId feature, float value) {
    features_.push_back(feature);
    values_.push_back(value);
    ++row_ptr_.back();
  }

  /// Grows the logical column count (features are allowed to be sparse in id
  /// space; callers set the bound explicitly).
  void set_num_cols(uint32_t num_cols) { num_cols_ = num_cols; }

  /// Feature ids of row i.
  std::span<const FeatureId> RowFeatures(InstanceId i) const {
    return {features_.data() + row_ptr_[i],
            static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  /// Values of row i, parallel to RowFeatures(i).
  std::span<const float> RowValues(InstanceId i) const {
    return {values_.data() + row_ptr_[i],
            static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  uint64_t RowLength(InstanceId i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<FeatureId>& features() const { return features_; }
  const std::vector<float>& values() const { return values_; }

  /// Bytes of heap memory held by this matrix (data-memory accounting).
  uint64_t MemoryBytes() const {
    return row_ptr_.capacity() * sizeof(uint64_t) +
           features_.capacity() * sizeof(FeatureId) +
           values_.capacity() * sizeof(float);
  }

  /// Transposes into column-major form.
  CscMatrix ToCsc() const;

  /// Returns the sub-matrix of rows [begin, end) (feature space unchanged).
  CsrMatrix SliceRows(InstanceId begin, InstanceId end) const;

  /// Returns the sub-matrix containing only features for which `keep` is
  /// true, with feature ids left unchanged.
  CsrMatrix FilterColumns(const std::vector<bool>& keep) const;

 private:
  uint32_t num_cols_ = 0;
  std::vector<uint64_t> row_ptr_;
  std::vector<FeatureId> features_;
  std::vector<float> values_;
};

/// Compressed Sparse Column matrix: each column is a feature stored as a run
/// of (instance, value) pairs. This is the "column-store" of the paper.
class CscMatrix {
 public:
  CscMatrix() : col_ptr_(1, 0) {}

  CscMatrix(uint32_t num_rows, std::vector<uint64_t> col_ptr,
            std::vector<InstanceId> rows, std::vector<float> values);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const {
    return static_cast<uint32_t>(col_ptr_.size() - 1);
  }
  uint64_t num_nonzeros() const { return rows_.size(); }

  void set_num_rows(uint32_t num_rows) { num_rows_ = num_rows; }
  void StartColumn() { col_ptr_.push_back(col_ptr_.back()); }
  void PushEntry(InstanceId row, float value) {
    rows_.push_back(row);
    values_.push_back(value);
    ++col_ptr_.back();
  }

  /// Instance ids in column f, sorted ascending.
  std::span<const InstanceId> ColumnRows(FeatureId f) const {
    return {rows_.data() + col_ptr_[f],
            static_cast<size_t>(col_ptr_[f + 1] - col_ptr_[f])};
  }
  std::span<const float> ColumnValues(FeatureId f) const {
    return {values_.data() + col_ptr_[f],
            static_cast<size_t>(col_ptr_[f + 1] - col_ptr_[f])};
  }
  uint64_t ColumnLength(FeatureId f) const {
    return col_ptr_[f + 1] - col_ptr_[f];
  }

  const std::vector<uint64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<InstanceId>& rows() const { return rows_; }
  const std::vector<float>& values() const { return values_; }

  uint64_t MemoryBytes() const {
    return col_ptr_.capacity() * sizeof(uint64_t) +
           rows_.capacity() * sizeof(InstanceId) +
           values_.capacity() * sizeof(float);
  }

  CsrMatrix ToCsr() const;

 private:
  uint32_t num_rows_ = 0;
  std::vector<uint64_t> col_ptr_;
  std::vector<InstanceId> rows_;
  std::vector<float> values_;
};

}  // namespace vero

#endif  // VERO_DATA_SPARSE_MATRIX_H_
