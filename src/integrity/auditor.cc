#include "integrity/auditor.h"

#include <bit>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vero {

uint64_t AuditDigestBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t AuditDigestDoubles(std::span<const double> values) {
  return AuditDigestBytes(values.data(), values.size() * sizeof(double));
}

uint64_t AuditDigestWords(std::span<const uint32_t> values) {
  return AuditDigestBytes(values.data(), values.size() * sizeof(uint32_t));
}

const char* IntegrityLevelToString(IntegrityLevel level) {
  switch (level) {
    case IntegrityLevel::kOff:
      return "off";
    case IntegrityLevel::kChecksum:
      return "checksum";
    case IntegrityLevel::kFull:
      return "full";
  }
  VERO_CHECK(false);  // exhaustive switch above; unreachable
  return "";
}

bool HasNonFinite(std::span<const double> values) {
  for (double v : values) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

IntegrityAuditor::IntegrityAuditor(WorkerContext& ctx, IntegrityLevel level,
                                   double tolerance)
    : ctx_(ctx), level_(level), tolerance_(tolerance) {}

void IntegrityAuditor::PushReplicated(const char* what, uint64_t word) {
  slots_.push_back(Slot{SlotKind::kReplicated, what, 1});
  words_.push_back(word);
}

void IntegrityAuditor::PushFlag(const char* what, bool violated) {
  slots_.push_back(Slot{SlotKind::kFlag, what, 1});
  words_.push_back(violated ? 1 : 0);
}

void IntegrityAuditor::PushPairwise(const char* what,
                                    std::span<const uint64_t> sent,
                                    std::span<const uint64_t> recv,
                                    bool exact) {
  const size_t w = static_cast<size_t>(ctx_.world_size());
  VERO_CHECK_EQ(sent.size(), w);
  VERO_CHECK_EQ(recv.size(), w);
  slots_.push_back(Slot{exact ? SlotKind::kPairExact : SlotKind::kPairMass,
                        what, static_cast<uint32_t>(2 * w)});
  words_.insert(words_.end(), sent.begin(), sent.end());
  words_.insert(words_.end(), recv.begin(), recv.end());
}

void IntegrityAuditor::RecordViolation(const Slot& slot, const char* point,
                                       int blamed, AuditVerdict* verdict) {
  ++stats_.violations;
  if (verdict->ok) {
    // The first violated slot carries the exchange's verdict (and blame);
    // later slots in the same exchange are usually downstream symptoms of
    // the same corruption and only add to the violation count.
    verdict->ok = false;
    verdict->blamed_rank = blamed;
    verdict->detail = std::string(slot.what) + "@" + point;
    stats_.last_blamed_rank = blamed;
    if (ctx_.rank() == 0) {
      if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
        shard->gauge("integrity.blamed_rank")
            ->Set(static_cast<double>(blamed));
      }
    }
  }
  if (ctx_.rank() == 0) {
    if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
      shard->counter("integrity.violations")->Increment();
    }
  }
}

void IntegrityAuditor::EvaluateReplicated(
    const Slot& slot, size_t base,
    const std::vector<std::vector<uint64_t>>& all, const char* point,
    AuditVerdict* verdict) {
  const int w = ctx_.world_size();
  // Majority value: the value held by the most ranks (ties broken toward
  // the smaller value, which is SPMD-deterministic).
  uint64_t majority = all[0][base];
  int majority_count = 0;
  for (int r = 0; r < w; ++r) {
    const uint64_t candidate = all[r][base];
    int count = 0;
    for (int s = 0; s < w; ++s) {
      if (all[s][base] == candidate) ++count;
    }
    if (count > majority_count ||
        (count == majority_count && candidate < majority)) {
      majority = candidate;
      majority_count = count;
    }
  }
  std::vector<int> dissenters;
  for (int r = 0; r < w; ++r) {
    if (all[r][base] != majority) dissenters.push_back(r);
  }
  if (dissenters.empty()) return;
  // A strict majority pins the blame on a unique dissenter; a 1-vs-1 split
  // (or an even split) is a detected but unattributed violation.
  const bool attributed =
      dissenters.size() == 1 && majority_count * 2 > w;
  RecordViolation(slot, point, attributed ? dissenters[0] : -1, verdict);
}

void IntegrityAuditor::EvaluateFlag(
    const Slot& slot, size_t base,
    const std::vector<std::vector<uint64_t>>& all, const char* point,
    AuditVerdict* verdict) {
  const int w = ctx_.world_size();
  std::vector<int> raised;
  for (int r = 0; r < w; ++r) {
    if (all[r][base] != 0) raised.push_back(r);
  }
  if (raised.empty()) return;
  RecordViolation(slot, point, raised.size() == 1 ? raised[0] : -1, verdict);
}

void IntegrityAuditor::EvaluatePairwise(
    const Slot& slot, size_t base,
    const std::vector<std::vector<uint64_t>>& all, const char* point,
    AuditVerdict* verdict) {
  const int w = ctx_.world_size();
  std::vector<int> blamed_receivers;
  for (int s = 0; s < w; ++s) {
    for (int d = 0; d < w; ++d) {
      if (s == d) continue;
      const uint64_t sent = all[s][base + d];
      const uint64_t recv = all[d][base + w + s];
      if (sent == kAuditSkip || recv == kAuditSkip) continue;
      bool mismatch;
      if (slot.kind == SlotKind::kPairExact) {
        mismatch = sent != recv;
      } else {
        const double a = std::bit_cast<double>(sent);
        const double b = std::bit_cast<double>(recv);
        mismatch = !std::isfinite(a) || !std::isfinite(b) ||
                   std::fabs(a - b) >
                       tolerance_ * (std::fabs(a) + std::fabs(b) + 1.0);
      }
      if (!mismatch) continue;
      // The receiver holds the copy that no longer matches what the sender
      // handed to the (CRC-clean) transport, so the corruption happened on
      // the receive side.
      if (blamed_receivers.empty() || blamed_receivers.back() != d) {
        blamed_receivers.push_back(d);
      }
    }
  }
  if (blamed_receivers.empty()) return;
  bool unique = true;
  for (int r : blamed_receivers) {
    if (r != blamed_receivers[0]) unique = false;
  }
  RecordViolation(slot, point, unique ? blamed_receivers[0] : -1, verdict);
}

AuditVerdict IntegrityAuditor::Exchange(const char* point) {
  VERO_CHECK(enabled());
  ++stats_.checks;
  if (ctx_.rank() == 0) {
    if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
      shard->counter("integrity.checks")->Increment();
    }
  }
  const std::vector<Slot> slots = std::move(slots_);
  const std::vector<uint64_t> words = std::move(words_);
  slots_.clear();
  words_.clear();

  std::vector<std::vector<uint64_t>> all;
  if (!ctx_.AuditExchange(words, &all)) {
    throw ClusterAbort(Status::Unavailable(
        std::string("integrity: audit exchange broken at ") + point));
  }

  AuditVerdict verdict;
  // A rank whose packet length diverges from the rest computed a different
  // audit schema — itself evidence of divergent control flow. Blame by
  // majority packet length; evaluation below needs uniform packets.
  const int w = ctx_.world_size();
  std::vector<int> odd_sized;
  for (int r = 0; r < w; ++r) {
    if (all[r].size() != words.size()) odd_sized.push_back(r);
  }
  if (!odd_sized.empty()) {
    int count_mine = w - static_cast<int>(odd_sized.size());
    const Slot schema{SlotKind::kReplicated, "audit-schema", 0};
    const bool attributed = odd_sized.size() == 1 && count_mine * 2 > w;
    RecordViolation(schema, point, attributed ? odd_sized[0] : -1, &verdict);
    return verdict;
  }

  size_t base = 0;
  for (const Slot& slot : slots) {
    switch (slot.kind) {
      case SlotKind::kReplicated:
        EvaluateReplicated(slot, base, all, point, &verdict);
        break;
      case SlotKind::kFlag:
        EvaluateFlag(slot, base, all, point, &verdict);
        break;
      case SlotKind::kPairExact:
      case SlotKind::kPairMass:
        EvaluatePairwise(slot, base, all, point, &verdict);
        break;
    }
    base += slot.width;
  }
  VERO_CHECK_EQ(base, words.size());
  return verdict;
}

void IntegrityAuditor::RecordRecompute(uint64_t bytes, double seconds) {
  ++stats_.recomputes;
  stats_.wasted_bytes += bytes;
  stats_.wasted_seconds += seconds;
  if (ctx_.rank() == 0) {
    if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
      shard->counter("integrity.recomputes")->Increment();
    }
  }
}

void IntegrityAuditor::Escalate(const AuditVerdict& verdict) {
  ++stats_.escalations;
  if (ctx_.rank() == 0) {
    if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
      shard->counter("integrity.escalations")->Increment();
    }
  }
  if (verdict.blamed_rank == ctx_.rank()) {
    // The evidence implicates this worker: fail it so the driver's
    // checkpoint-rollback / membership machine takes over on the survivors.
    throw ClusterAbort(ctx_.FailWorker(Status::Corruption(
        "integrity: " + verdict.detail + " blamed this rank")));
  }
  if (verdict.blamed_rank >= 0) {
    throw ClusterAbort(Status::Unavailable(
        "integrity: " + verdict.detail + " blamed rank " +
        std::to_string(verdict.blamed_rank)));
  }
  // Detected but unattributed: every rank unwinds without dying, which the
  // driver reports as an unrecoverable (but detected) corruption failure.
  throw ClusterAbort(Status::Corruption(
      "integrity: unattributed violation " + verdict.detail));
}

}  // namespace vero
