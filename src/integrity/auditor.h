#ifndef VERO_INTEGRITY_AUDITOR_H_
#define VERO_INTEGRITY_AUDITOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/communicator.h"
#include "core/gbdt_params.h"

namespace vero {

/// Sentinel for a pairwise audit slot entry with no transfer behind it
/// (e.g. an AllToAll pair that contributed nothing this layer). Pairs where
/// either side is the sentinel are not checked. The bit pattern is a
/// negative quiet NaN, so it can never collide with a finite bit-cast mass,
/// and colliding with a 64-bit FNV digest is a 2^-64 event per slot.
inline constexpr uint64_t kAuditSkip = ~0ull;

/// 64-bit FNV-1a over raw bytes. Digest agreement is exact: two replicas of
/// a post-collective buffer must match bit for bit, so a single flipped bit
/// anywhere in the payload changes the digest.
uint64_t AuditDigestBytes(const void* data, size_t size);
uint64_t AuditDigestDoubles(std::span<const double> values);
uint64_t AuditDigestWords(std::span<const uint32_t> values);

const char* IntegrityLevelToString(IntegrityLevel level);

/// True if any value in the span is NaN or infinite.
bool HasNonFinite(std::span<const double> values);

/// Per-worker integrity accounting, folded across workers and recovery
/// attempts by the driver into DistResult::integrity / the run report.
struct IntegrityStats {
  /// Audit exchanges evaluated (each covers every slot pushed since the
  /// previous exchange).
  uint64_t checks = 0;
  /// Violated slots observed across all exchanges.
  uint64_t violations = 0;
  /// Targeted recomputes performed in response to violations.
  uint64_t recomputes = 0;
  /// Violations that exhausted the recompute budget (or were not
  /// recomputable) and escalated to the rollback / membership machine.
  uint64_t escalations = 0;
  /// Rank blamed by the most recent violation; -1 if none or unattributed.
  int last_blamed_rank = -1;
  /// Discarded work charged to recomputes (traffic + simulated seconds of
  /// the corrupted exchange that had to be redone).
  uint64_t wasted_bytes = 0;
  double wasted_seconds = 0.0;
};

/// Outcome of one audit exchange.
struct AuditVerdict {
  bool ok = true;
  /// Rank the violated evidence uniquely implicates; -1 when the evidence
  /// is ambiguous (e.g. a 1-vs-1 digest split with no majority).
  int blamed_rank = -1;
  /// "<slot>@<point>" of the first violated slot, for status messages.
  std::string detail;
};

/// Cross-rank invariant auditor. Workers push locally computed evidence
/// (digests of replicated buffers, invariant-violation flags, pairwise
/// transfer digests) between collectives, then rendezvous in Exchange():
/// every rank sees every rank's packet and evaluates the same verdict, so
/// the blame decision is itself replicated. The exchange rides the
/// instrumentation channel — no bytes are charged and the fault injector
/// never sees it, so occurrence streams match across integrity levels and
/// the audited run's fault schedule lines up with the unaudited one.
///
/// The auditor is inert at IntegrityLevel::kOff: no slots, no exchanges, no
/// metric handles — callers must guard push/exchange sites on enabled().
class IntegrityAuditor {
 public:
  IntegrityAuditor(WorkerContext& ctx, IntegrityLevel level, double tolerance);

  bool enabled() const { return level_ != IntegrityLevel::kOff; }
  /// True at kFull: algorithmic invariants on top of kChecksum's digests.
  bool full() const { return level_ == IntegrityLevel::kFull; }
  double tolerance() const { return tolerance_; }

  /// A value that must be bit-identical on every rank (digest of a
  /// replicated post-collective buffer, a merged decision, node counts).
  /// Majority vote blames dissenters; a unique dissenter is the blamed rank.
  void PushReplicated(const char* what, uint64_t word);

  /// A locally evaluated invariant flag (nonzero = violated). Any nonzero
  /// rank is a violation; a unique nonzero rank is blamed.
  void PushFlag(const char* what, bool violated);

  /// Pairwise transfer evidence: `sent[d]` summarizes what this rank sent
  /// to rank d, `recv[s]` what it received from rank s (kAuditSkip for
  /// pairs with no transfer). Pair (s, d) is violated when s's sent summary
  /// disagrees with d's received summary; the receiver holds the corrupted
  /// copy, so d is blamed. With exact = false the words are bit-cast
  /// doubles compared within the relative tolerance instead of exactly.
  void PushPairwise(const char* what, std::span<const uint64_t> sent,
                    std::span<const uint64_t> recv, bool exact);

  /// Rendezvous: gathers every rank's pending packet, evaluates all slots
  /// identically on all ranks, clears the packet, and returns the verdict
  /// for the first violated slot (all violations are counted). `point`
  /// labels the exchange in verdict details ("gradient", "layer", "round").
  /// The packet schema (slot kinds and widths) must be SPMD-identical; a
  /// diverging packet is itself reported as a violation.
  AuditVerdict Exchange(const char* point);

  /// Charges discarded work from a violation-triggered recompute.
  void RecordRecompute(uint64_t bytes, double seconds);

  /// Terminal handling of a non-recomputable or recompute-exhausted
  /// violation. Self-blame fails this worker (the driver rolls the
  /// survivors back to the last checkpoint); peer blame unwinds with
  /// kUnavailable and lets the blamed rank's own escalation mark it dead;
  /// unattributed violations unwind everywhere with kCorruption, which the
  /// driver surfaces as an unrecoverable (but detected) run failure. All
  /// messages carry the "integrity:" prefix the driver keys rollback
  /// attribution on.
  [[noreturn]] void Escalate(const AuditVerdict& verdict);

  const IntegrityStats& stats() const { return stats_; }

 private:
  enum class SlotKind : uint8_t { kReplicated, kFlag, kPairExact, kPairMass };
  struct Slot {
    SlotKind kind;
    const char* what;
    uint32_t width;  // words this slot occupies in the packet
  };

  void EvaluateReplicated(const Slot& slot, size_t base,
                          const std::vector<std::vector<uint64_t>>& all,
                          const char* point, AuditVerdict* verdict);
  void EvaluateFlag(const Slot& slot, size_t base,
                    const std::vector<std::vector<uint64_t>>& all,
                    const char* point, AuditVerdict* verdict);
  void EvaluatePairwise(const Slot& slot, size_t base,
                        const std::vector<std::vector<uint64_t>>& all,
                        const char* point, AuditVerdict* verdict);
  void RecordViolation(const Slot& slot, const char* point, int blamed,
                       AuditVerdict* verdict);

  WorkerContext& ctx_;
  IntegrityLevel level_;
  double tolerance_;
  IntegrityStats stats_;
  std::vector<Slot> slots_;
  std::vector<uint64_t> words_;
};

}  // namespace vero

#endif  // VERO_INTEGRITY_AUDITOR_H_
