#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vero {
namespace {

std::atomic<int> g_min_level{-1};  // -1 means "not initialized yet".

thread_local int t_log_rank = -1;

int InitialLevel() {
  const char* env = std::getenv("VERO_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() {
  int v = g_min_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitialLevel();
    g_min_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetThreadLogRank(int rank) { t_log_rank = rank; }

int ThreadLogRank() { return t_log_rank; }

namespace internal {

std::string FormatLogPrefix(LogLevel level, const char* file, int line,
                            int rank) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::string prefix = "[";
  prefix += LevelName(level);
  if (rank >= 0) {
    prefix += " rk";
    prefix += std::to_string(rank);
  }
  prefix += " ";
  prefix += base;
  prefix += ":";
  prefix += std::to_string(line);
  prefix += "] ";
  return prefix;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << FormatLogPrefix(level, file, line, t_log_rank);
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    // One fwrite per line: stdio locks the stream internally, so concurrent
    // worker threads cannot interleave partial lines the way two
    // `stream << text << '\n'` sequences can.
    std::string line = stream_.str();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace vero
