#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace vero {
namespace {

std::atomic<int> g_min_level{-1};  // -1 means "not initialized yet".

int InitialLevel() {
  const char* env = std::getenv("VERO_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return v;
  }
  return static_cast<int>(LogLevel::kInfo);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel MinLogLevel() {
  int v = g_min_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitialLevel();
    g_min_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace vero
