#ifndef VERO_COMMON_TIMER_H_
#define VERO_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace vero {

/// Wall-clock stopwatch with start/stop accumulation.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the accumulated time and starts counting.
  void Restart() {
    accumulated_ns_ = 0;
    running_ = true;
    start_ = Clock::now();
  }

  /// Pauses counting, adding the elapsed segment to the accumulator.
  void Stop() {
    if (!running_) return;
    accumulated_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - start_)
                           .count();
    running_ = false;
  }

  /// Resumes counting after a Stop().
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  /// Accumulated seconds (includes the in-flight segment if running).
  double Seconds() const {
    int64_t ns = accumulated_ns_;
    if (running_) {
      ns += std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start_)
                .count();
    }
    return static_cast<double>(ns) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  int64_t accumulated_ns_ = 0;
  bool running_ = false;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// The simulated cluster runs workers as threads that may timeshare a single
/// core; thread CPU time isolates each worker's *compute* cost from scheduler
/// interleaving and from time spent blocked in collectives, which is what the
/// paper's computation-time breakdown measures.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { Restart(); }

  void Restart() {
    accumulated_ns_ = 0;
    running_ = true;
    start_ns_ = NowNs();
  }

  void Stop() {
    if (!running_) return;
    accumulated_ns_ += NowNs() - start_ns_;
    running_ = false;
  }

  void Resume() {
    if (running_) return;
    running_ = true;
    start_ns_ = NowNs();
  }

  double Seconds() const {
    int64_t ns = accumulated_ns_;
    if (running_) ns += NowNs() - start_ns_;
    return static_cast<double>(ns) * 1e-9;
  }

 private:
  static int64_t NowNs() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
  }

  int64_t start_ns_ = 0;
  int64_t accumulated_ns_ = 0;
  bool running_ = false;
};

}  // namespace vero

#endif  // VERO_COMMON_TIMER_H_
