#include "common/bitmap.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace vero {

size_t Bitmap::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

void Bitmap::Reset() {
  std::fill(words_.begin(), words_.end(), uint64_t{0});
}

void Bitmap::SerializeTo(std::vector<uint8_t>* out) const {
  const size_t nbytes = SerializedBytes();
  const size_t offset = out->size();
  out->resize(offset + nbytes);
  for (size_t b = 0; b < nbytes; ++b) {
    (*out)[offset + b] =
        static_cast<uint8_t>(words_[b >> 3] >> ((b & 7) * 8));
  }
}

bool Bitmap::Deserialize(const uint8_t* bytes, size_t num_bytes,
                         size_t num_bits, Bitmap* out) {
  const size_t needed = (num_bits + 7) / 8;
  if (num_bytes < needed) return false;
  *out = Bitmap(num_bits);
  for (size_t b = 0; b < needed; ++b) {
    out->words_[b >> 3] |= static_cast<uint64_t>(bytes[b]) << ((b & 7) * 8);
  }
  // Mask out any garbage above num_bits in the final byte.
  const size_t tail = num_bits & 63;
  if (tail != 0 && !out->words_.empty()) {
    out->words_.back() &= (uint64_t{1} << tail) - 1;
  }
  return true;
}

}  // namespace vero
