#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vero {
namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  VERO_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  VERO_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected insertions, result sorted at the end.
  std::vector<uint32_t> result;
  result.reserve(k);
  std::vector<bool> chosen;
  // For small k relative to n, use a sorted vector membership test to avoid
  // allocating an n-bit set for huge n with tiny k.
  if (k * 64ULL >= n) {
    chosen.assign(n, false);
    for (uint32_t j = n - k; j < n; ++j) {
      uint32_t t = static_cast<uint32_t>(Uniform(j + 1));
      if (chosen[t]) t = j;
      chosen[t] = true;
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (chosen[i]) result.push_back(i);
    }
    return result;
  }
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(Uniform(j + 1));
    bool dup = false;
    for (uint32_t v : result) {
      if (v == t) {
        dup = true;
        break;
      }
    }
    result.push_back(dup ? j : t);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace vero
