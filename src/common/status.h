#ifndef VERO_COMMON_STATUS_H_
#define VERO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace vero {

/// Error categories used across the library. Mirrors the usual
/// database-system status taxonomy (RocksDB/Arrow style): fallible paths
/// return a Status (or StatusOr<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  /// An operation did not complete before its deadline (e.g. a collective
  /// timed out waiting for a straggling or dead peer).
  kDeadlineExceeded = 9,
  /// A required participant or service is gone (e.g. a crashed worker);
  /// retrying on the same cluster will not help.
  kUnavailable = 10,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (OK carries
/// no allocation). Typical use:
///
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr is a fatal error (CHECK failure semantics).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work, mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok() || !value_.has_value()) {
    internal::DieBadStatusAccess(status_);
  }
}

/// Propagates a non-OK status to the caller.
#define VERO_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::vero::Status _vero_status = (expr);      \
    if (!_vero_status.ok()) return _vero_status; \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define VERO_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto VERO_CONCAT_(_vero_sor_, __LINE__) = (expr);       \
  if (!VERO_CONCAT_(_vero_sor_, __LINE__).ok())           \
    return VERO_CONCAT_(_vero_sor_, __LINE__).status();   \
  lhs = std::move(VERO_CONCAT_(_vero_sor_, __LINE__)).value()

#define VERO_CONCAT_IMPL_(a, b) a##b
#define VERO_CONCAT_(a, b) VERO_CONCAT_IMPL_(a, b)

}  // namespace vero

#endif  // VERO_COMMON_STATUS_H_
