#ifndef VERO_COMMON_BITMAP_H_
#define VERO_COMMON_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vero {

/// Dense bitset used to encode instance placement (left/right child) after a
/// node split. A bitmap over n instances serializes to ceil(n/8) bytes —
/// the 32x reduction over 4-byte-per-instance encoding that §4.2.2 of the
/// paper relies on.
class Bitmap {
 public:
  Bitmap() = default;
  /// All bits initialized to zero.
  explicit Bitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Number of bytes in the wire representation.
  size_t SerializedBytes() const { return (num_bits_ + 7) / 8; }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// Number of set bits.
  size_t Count() const;

  /// Sets all bits to zero without changing size.
  void Reset();

  /// Appends the packed little-endian byte representation to `out`.
  void SerializeTo(std::vector<uint8_t>* out) const;

  /// Reconstructs a bitmap of `num_bits` bits from `bytes`; returns false if
  /// `num_bytes` is too small.
  static bool Deserialize(const uint8_t* bytes, size_t num_bytes,
                          size_t num_bits, Bitmap* out);

  bool operator==(const Bitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace vero

#endif  // VERO_COMMON_BITMAP_H_
