#include "common/threading.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace vero {

ThreadPool::ThreadPool(size_t num_threads) {
  VERO_CHECK_GT(num_threads, 0u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VERO_CHECK(!shutdown_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown_ and no work left.
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace vero
