#ifndef VERO_COMMON_CRC32_H_
#define VERO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vero {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the same checksum
/// used by zlib/gzip. Model files and training checkpoints append it as an
/// integrity trailer so that bit flips and truncation are detected as
/// kCorruption instead of being silently deserialized.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: pass the previous return value as `seed` to extend a
/// running checksum (Crc32(data, n) == Crc32Extend(0, data, n)).
uint32_t Crc32Extend(uint32_t seed, const void* data, size_t size);

}  // namespace vero

#endif  // VERO_COMMON_CRC32_H_
