#ifndef VERO_COMMON_RANDOM_H_
#define VERO_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vero {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Used everywhere instead of std::mt19937 so that synthetic datasets and
/// experiment sweeps are reproducible across platforms and standard-library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p);

  /// k distinct values sampled uniformly from [0, n), in increasing order.
  /// Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace vero

#endif  // VERO_COMMON_RANDOM_H_
