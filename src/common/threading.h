#ifndef VERO_COMMON_THREADING_H_
#define VERO_COMMON_THREADING_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vero {

/// Outcome of a timed barrier wait.
enum class BarrierWait {
  /// All participants arrived; this caller is the one serial participant of
  /// the cycle (may run a one-shot reduction step).
  kSerial,
  /// All participants arrived; some other caller is the serial participant.
  kFollower,
  /// The barrier was broken (a participant died or an earlier wait timed
  /// out); no rendezvous happened and none ever will.
  kBroken,
  /// This caller's wait expired before everyone arrived. The barrier is now
  /// broken for all participants (watchdog semantics).
  kTimeout,
};

/// Reusable cyclic barrier for a fixed number of participants.
///
/// Collectives in the simulated cluster rendezvous on this: a phase counter
/// makes the barrier safe for immediate reuse by the same group. The barrier
/// can be *broken* — by Break() (a participant declares itself dead) or by a
/// timed wait expiring — after which every current and future wait returns
/// immediately with kBroken instead of deadlocking on the missing peer.
class Barrier {
 public:
  explicit Barrier(size_t num_participants)
      : num_participants_(num_participants), waiting_(0), phase_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants have arrived. Returns true for exactly one
  /// caller per cycle (the "serial" participant), which can run a one-shot
  /// reduction step. Waits forever and ignores breakage; only safe when no
  /// failure source exists (legacy callers, tests).
  bool ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t my_phase = phase_;
    if (++waiting_ == num_participants_) {
      waiting_ = 0;
      ++phase_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return phase_ != my_phase; });
    return false;
  }

  /// Like ArriveAndWait, but failure-aware: returns kBroken immediately if
  /// the barrier is already broken, and kTimeout (breaking the barrier for
  /// everyone) if all participants fail to arrive within `timeout_seconds`.
  /// A timeout of <= 0 waits forever (but still observes Break()).
  BarrierWait ArriveAndWaitFor(double timeout_seconds) {
    std::unique_lock<std::mutex> lock(mu_);
    if (broken_) return BarrierWait::kBroken;
    const uint64_t my_phase = phase_;
    if (++waiting_ == num_participants_) {
      waiting_ = 0;
      ++phase_;
      cv_.notify_all();
      return BarrierWait::kSerial;
    }
    const auto pred = [&] { return phase_ != my_phase || broken_; };
    if (timeout_seconds > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(timeout_seconds);
      if (!cv_.wait_until(lock, deadline, pred)) {
        // Watchdog fired: a peer never showed up. Break the barrier so every
        // other waiter (current and future) unblocks too.
        broken_ = true;
        --waiting_;
        cv_.notify_all();
        return BarrierWait::kTimeout;
      }
    } else {
      cv_.wait(lock, pred);
    }
    if (phase_ != my_phase) return BarrierWait::kFollower;
    // Woken by breakage within the same phase: withdraw our arrival.
    --waiting_;
    return BarrierWait::kBroken;
  }

  /// Permanently breaks the barrier: every blocked and future wait returns
  /// kBroken. Called by a participant that exits the group (crash).
  void Break() {
    std::lock_guard<std::mutex> lock(mu_);
    broken_ = true;
    cv_.notify_all();
  }

  bool broken() const {
    std::lock_guard<std::mutex> lock(mu_);
    return broken_;
  }

  size_t num_participants() const { return num_participants_; }

 private:
  const size_t num_participants_;
  size_t waiting_;
  uint64_t phase_;
  bool broken_ = false;
  mutable std::mutex mu_;
  std::condition_variable cv_;
};

/// Minimal fixed-size thread pool (used by tests and data generation; the
/// cluster substrate manages its own worker threads).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) across up to `num_threads` threads and joins.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace vero

#endif  // VERO_COMMON_THREADING_H_
