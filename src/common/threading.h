#ifndef VERO_COMMON_THREADING_H_
#define VERO_COMMON_THREADING_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vero {

/// Reusable cyclic barrier for a fixed number of participants.
///
/// Collectives in the simulated cluster rendezvous on this: a phase counter
/// makes the barrier safe for immediate reuse by the same group.
class Barrier {
 public:
  explicit Barrier(size_t num_participants)
      : num_participants_(num_participants), waiting_(0), phase_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants have arrived. Returns true for exactly one
  /// caller per cycle (the "serial" participant), which can run a one-shot
  /// reduction step.
  bool ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t my_phase = phase_;
    if (++waiting_ == num_participants_) {
      waiting_ = 0;
      ++phase_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return phase_ != my_phase; });
    return false;
  }

  size_t num_participants() const { return num_participants_; }

 private:
  const size_t num_participants_;
  size_t waiting_;
  uint64_t phase_;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Minimal fixed-size thread pool (used by tests and data generation; the
/// cluster substrate manages its own worker threads).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) across up to `num_threads` threads and joins.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace vero

#endif  // VERO_COMMON_THREADING_H_
