#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace vero {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

namespace internal {

void DieBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace vero
