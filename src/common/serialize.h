#ifndef VERO_COMMON_SERIALIZE_H_
#define VERO_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace vero {

/// A varint64 never needs more than ceil(64 / 7) = 10 bytes.
inline constexpr size_t kMaxVarint64Bytes = 10;

/// Encodes `v` as a base-128 LEB128 varint (7 payload bits per byte, MSB set
/// on all but the last byte) into `dst`, which must hold at least
/// kMaxVarint64Bytes. Returns the number of bytes written (1-10). Small
/// values dominate histogram bin-index streams, so most encodings are a
/// single byte.
inline size_t PutVarint64(uint8_t* dst, uint64_t v) {
  size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  dst[n++] = static_cast<uint8_t>(v);
  return n;
}

/// Decodes a varint written by PutVarint64 from `src[0..size)`. On success
/// stores the value in `*v` and the encoded length in `*consumed`. Fails on
/// truncation and on encodings longer than 10 bytes (which cannot come from
/// PutVarint64 and would silently drop bits).
inline Status GetVarint64(const uint8_t* src, size_t size, uint64_t* v,
                          size_t* consumed) {
  uint64_t result = 0;
  for (size_t n = 0; n < size && n < kMaxVarint64Bytes; ++n) {
    const uint64_t byte = src[n];
    result |= (byte & 0x7f) << (7 * n);
    if ((byte & 0x80) == 0) {
      // The 10th byte carries bits 63.. only; more than one payload bit
      // there means the encoding overflows 64 bits.
      if (n == kMaxVarint64Bytes - 1 && byte > 1) {
        return Status::OutOfRange("varint64 overflow");
      }
      *v = result;
      *consumed = n + 1;
      return Status::OK();
    }
  }
  if (size >= kMaxVarint64Bytes) {
    return Status::OutOfRange("varint64 overflow");
  }
  return Status::OutOfRange("byte buffer truncated");
}

/// ZigZag maps signed integers to unsigned so that values of small magnitude
/// (either sign) get short varint encodings: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Append-only little-endian byte buffer used to encode messages exchanged
/// through the simulated cluster. The byte counts produced here are exactly
/// what the network cost model charges, so encoders should be as compact as
/// the real system would be (e.g. bitmaps, dlog(q)-byte bin indices).
class ByteWriter {
 public:
  ByteWriter() = default;

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t> TakeData() { return std::move(data_); }
  size_t size() const { return data_.size(); }
  void Reserve(size_t n) { data_.reserve(n); }

  void WriteU8(uint8_t v) { data_.push_back(v); }
  void WriteU16(uint16_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteF32(float v) { AppendRaw(&v, sizeof(v)); }
  void WriteF64(double v) { AppendRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// Length-prefixed string.
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    AppendRaw(s.data(), s.size());
  }

  /// Length-prefixed vector of a trivially copyable element type.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes with no length prefix (caller manages framing).
  void WriteRaw(const void* src, size_t n) { AppendRaw(src, n); }

  /// LEB128 varint (1-10 bytes); see PutVarint64 below.
  void WriteVarint64(uint64_t v) {
    uint8_t buf[kMaxVarint64Bytes];
    AppendRaw(buf, PutVarint64(buf, v));
  }

 private:
  void AppendRaw(const void* src, size_t n) {
    const size_t offset = data_.size();
    data_.resize(offset + n);
    if (n > 0) std::memcpy(data_.data() + offset, src, n);
  }

  std::vector<uint8_t> data_;
};

/// Sequential reader over a byte span written by ByteWriter. All reads are
/// bounds-checked and return Status on truncation.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU16(uint16_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF32(float* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadBool(bool* v) {
    uint8_t b = 0;
    VERO_RETURN_IF_ERROR(ReadU8(&b));
    *v = (b != 0);
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    uint32_t n = 0;
    VERO_RETURN_IF_ERROR(ReadU32(&n));
    if (n > remaining()) return Truncated();
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    VERO_RETURN_IF_ERROR(ReadU64(&n));
    // Divide instead of multiplying: n * sizeof(T) can wrap for adversarial
    // length prefixes, which would pass the check and then over-allocate.
    if (n > remaining() / sizeof(T)) return Truncated();
    v->resize(n);
    if (n > 0) {
      std::memcpy(v->data(), data_ + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return Status::OK();
  }

  Status ReadRaw(void* dst, size_t n) {
    if (n > remaining()) return Truncated();
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// LEB128 varint written by ByteWriter::WriteVarint64 / PutVarint64.
  Status ReadVarint64(uint64_t* v) {
    size_t consumed = 0;
    VERO_RETURN_IF_ERROR(GetVarint64(data_ + pos_, remaining(), v, &consumed));
    pos_ += consumed;
    return Status::OK();
  }

  /// Advances past n bytes without copying.
  Status Skip(size_t n) {
    if (n > remaining()) return Truncated();
    pos_ += n;
    return Status::OK();
  }

  /// Pointer to the current position (valid for `remaining()` bytes).
  const uint8_t* current() const { return data_ + pos_; }

 private:
  static Status Truncated() {
    return Status::OutOfRange("byte buffer truncated");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace vero

#endif  // VERO_COMMON_SERIALIZE_H_
