#ifndef VERO_COMMON_LOGGING_H_
#define VERO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vero {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; override with the VERO_LOG_LEVEL env var (0-4) or
/// SetMinLogLevel().
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Worker-rank prefix for log lines emitted from cluster worker threads.
/// Cluster::Run tags each worker thread with its rank; every VERO_LOG line
/// from that thread then carries an "rk<rank>" marker so interleaved
/// multi-worker output stays attributable. -1 (the default) means "no rank".
void SetThreadLogRank(int rank);
int ThreadLogRank();

/// Sets the calling thread's log rank for the current scope and restores
/// the previous value on destruction.
class ScopedLogRank {
 public:
  explicit ScopedLogRank(int rank) : previous_(ThreadLogRank()) {
    SetThreadLogRank(rank);
  }
  ~ScopedLogRank() { SetThreadLogRank(previous_); }

  ScopedLogRank(const ScopedLogRank&) = delete;
  ScopedLogRank& operator=(const ScopedLogRank&) = delete;

 private:
  int previous_;
};

namespace internal {

/// Builds the "[<level> rk<rank> <file>:<line>] " line prefix (rank segment
/// omitted when the thread has no rank). Exposed for tests.
std::string FormatLogPrefix(LogLevel level, const char* file, int line,
                            int rank);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace vero

#define VERO_LOG(level)                                                   \
  ::vero::internal::LogMessage(::vero::LogLevel::k##level, __FILE__, \
                               __LINE__)                                  \
      .stream()

/// Fatal unless `condition` holds; streams extra context.
#define VERO_CHECK(condition)                                  \
  if (!(condition))                                            \
  ::vero::internal::LogMessage(::vero::LogLevel::kFatal,       \
                               __FILE__, __LINE__)             \
          .stream()                                            \
      << "Check failed: " #condition " "

#define VERO_CHECK_OP(op, a, b)                                        \
  if (!((a)op(b)))                                                     \
  ::vero::internal::LogMessage(::vero::LogLevel::kFatal, __FILE__,     \
                               __LINE__)                               \
          .stream()                                                    \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b) \
      << ") "

#define VERO_CHECK_EQ(a, b) VERO_CHECK_OP(==, a, b)
#define VERO_CHECK_NE(a, b) VERO_CHECK_OP(!=, a, b)
#define VERO_CHECK_LT(a, b) VERO_CHECK_OP(<, a, b)
#define VERO_CHECK_LE(a, b) VERO_CHECK_OP(<=, a, b)
#define VERO_CHECK_GT(a, b) VERO_CHECK_OP(>, a, b)
#define VERO_CHECK_GE(a, b) VERO_CHECK_OP(>=, a, b)

/// Checks a vero::Status-valued expression is OK.
#define VERO_CHECK_OK(expr)                                         \
  do {                                                              \
    const ::vero::Status _vero_chk_status = (expr);                 \
    VERO_CHECK(_vero_chk_status.ok()) << _vero_chk_status.ToString(); \
  } while (0)

#ifdef NDEBUG
#define VERO_DCHECK(condition) \
  while (false) VERO_CHECK(condition)
#define VERO_DCHECK_EQ(a, b) \
  while (false) VERO_CHECK_EQ(a, b)
#define VERO_DCHECK_LT(a, b) \
  while (false) VERO_CHECK_LT(a, b)
#define VERO_DCHECK_LE(a, b) \
  while (false) VERO_CHECK_LE(a, b)
#else
#define VERO_DCHECK(condition) VERO_CHECK(condition)
#define VERO_DCHECK_EQ(a, b) VERO_CHECK_EQ(a, b)
#define VERO_DCHECK_LT(a, b) VERO_CHECK_LT(a, b)
#define VERO_DCHECK_LE(a, b) VERO_CHECK_LE(a, b)
#endif

#endif  // VERO_COMMON_LOGGING_H_
