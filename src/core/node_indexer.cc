#include "core/node_indexer.h"

#include <numeric>

#include "common/logging.h"

namespace vero {

void RowPartition::Init(uint32_t num_instances, uint32_t max_layers) {
  order_.resize(num_instances);
  std::iota(order_.begin(), order_.end(), InstanceId{0});
  scratch_.resize(num_instances);
  ranges_.assign((size_t{1} << max_layers) - 1, Range{});
  if (!ranges_.empty()) {
    ranges_[0] = Range{0, num_instances, true};
  }
}

void RowPartition::InitSubset(std::vector<InstanceId> subset,
                              uint32_t max_layers) {
  const uint32_t n = static_cast<uint32_t>(subset.size());
  order_ = std::move(subset);
  scratch_.resize(n);
  ranges_.assign((size_t{1} << max_layers) - 1, Range{});
  if (!ranges_.empty()) {
    ranges_[0] = Range{0, n, true};
  }
}

void RowPartition::Split(NodeId node, const Bitmap& go_left) {
  VERO_CHECK(Has(node));
  const Range range = ranges_[node];
  const uint64_t n = range.end - range.begin;
  VERO_CHECK_EQ(go_left.size(), n);

  // Stable two-way partition through the scratch buffer: left children keep
  // their order at the front, right children at the back.
  uint64_t left_count = 0;
  for (uint64_t j = 0; j < n; ++j) {
    if (go_left.Get(j)) {
      order_[range.begin + left_count] = order_[range.begin + j];
      ++left_count;
    } else {
      // Stash right-going instances in scratch in order.
      scratch_[j - left_count] = order_[range.begin + j];
    }
  }
  // Every slot written by the left compaction was already visited (the write
  // cursor trails j), so right-going instances are safely parked in scratch_.
  const uint64_t right_count = n - left_count;
  for (uint64_t j = 0; j < right_count; ++j) {
    order_[range.begin + left_count + j] = scratch_[j];
  }

  const NodeId left = LeftChild(node);
  const NodeId right = RightChild(node);
  VERO_CHECK_LT(static_cast<size_t>(right), ranges_.size())
      << "split exceeds tree capacity";
  ranges_[left] = Range{range.begin, range.begin + left_count, true};
  ranges_[right] = Range{range.begin + left_count, range.end, true};
  ranges_[node].valid = false;
}

uint32_t InstanceToNode::Count(NodeId node) const {
  uint32_t count = 0;
  for (NodeId n : node_of_) {
    if (n == node) ++count;
  }
  return count;
}

}  // namespace vero
