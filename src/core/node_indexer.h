#ifndef VERO_CORE_NODE_INDEXER_H_
#define VERO_CORE_NODE_INDEXER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitmap.h"
#include "data/types.h"

namespace vero {

/// Node-to-instance index (§3.2.1): maps each live tree node to the
/// contiguous list of instances currently classified onto it.
///
/// Implementation: a permutation of instance ids plus per-node ranges (the
/// LightGBM "data partition"). Splitting a node stably partitions its range
/// according to a go-left bitmap whose bit j refers to the j-th instance in
/// the node's current ordering — the same bitmap the split owner broadcasts
/// in vertical partitioning, so every worker ends up with an identical
/// permutation.
class RowPartition {
 public:
  RowPartition() = default;

  /// Places instances [0, n) on the root node in id order.
  void Init(uint32_t num_instances, uint32_t max_layers);

  /// Places only `subset` (ascending instance ids) on the root — row
  /// subsampling. Counts and bitmaps then refer to the subset.
  void InitSubset(std::vector<InstanceId> subset, uint32_t max_layers);

  uint32_t num_instances() const {
    return static_cast<uint32_t>(order_.size());
  }

  bool Has(NodeId node) const {
    return node >= 0 && static_cast<size_t>(node) < ranges_.size() &&
           ranges_[node].valid;
  }
  uint32_t Count(NodeId node) const {
    return static_cast<uint32_t>(ranges_[node].end - ranges_[node].begin);
  }
  std::span<const InstanceId> Instances(NodeId node) const {
    return {order_.data() + ranges_[node].begin,
            ranges_[node].end - ranges_[node].begin};
  }

  /// Splits `node`: instances with go_left bit set move to LeftChild(node),
  /// the rest to RightChild(node); relative order is preserved on both
  /// sides. The bitmap has Count(node) bits.
  void Split(NodeId node, const Bitmap& go_left);

  /// Heap bytes held (index-memory accounting).
  uint64_t MemoryBytes() const {
    return order_.capacity() * sizeof(InstanceId) +
           scratch_.capacity() * sizeof(InstanceId) +
           ranges_.capacity() * sizeof(Range);
  }

 private:
  struct Range {
    uint64_t begin = 0;
    uint64_t end = 0;
    bool valid = false;
  };

  std::vector<InstanceId> order_;
  std::vector<InstanceId> scratch_;
  std::vector<Range> ranges_;  // heap-indexed by NodeId.
};

/// Instance-to-node index (§3.2.1): maps each instance to its current tree
/// node, as used by XGBoost-style column scanning (QD1).
class InstanceToNode {
 public:
  InstanceToNode() = default;

  /// All instances start on the root (node 0).
  void Init(uint32_t num_instances) { node_of_.assign(num_instances, 0); }

  uint32_t num_instances() const {
    return static_cast<uint32_t>(node_of_.size());
  }

  NodeId Get(InstanceId i) const { return node_of_[i]; }
  void Set(InstanceId i, NodeId node) { node_of_[i] = node; }

  /// Number of instances currently on `node` (O(N) scan; used by tests).
  uint32_t Count(NodeId node) const;

  uint64_t MemoryBytes() const {
    return node_of_.capacity() * sizeof(NodeId);
  }

 private:
  std::vector<NodeId> node_of_;
};

}  // namespace vero

#endif  // VERO_CORE_NODE_INDEXER_H_
