#include "core/binned.h"

#include <algorithm>

#include "common/logging.h"

namespace vero {

BinnedRowStore BinnedRowStore::FromCsr(const CsrMatrix& matrix,
                                       const CandidateSplits& splits) {
  BinnedRowStore store;
  store.set_num_features(matrix.num_cols());
  store.row_ptr_.reserve(matrix.num_rows() + 1);
  store.features_.reserve(matrix.num_nonzeros());
  store.bins_.reserve(matrix.num_nonzeros());
  for (InstanceId i = 0; i < matrix.num_rows(); ++i) {
    store.StartRow();
    auto features = matrix.RowFeatures(i);
    auto values = matrix.RowValues(i);
    for (size_t k = 0; k < features.size(); ++k) {
      const FeatureId f = features[k];
      const BinId bin = (splits.NumBins(f) == 0)
                            ? BinId{0}
                            : splits.BinForValue(f, values[k]);
      store.PushEntry(f, bin);
    }
  }
  return store;
}

std::optional<BinId> BinnedRowStore::FindBin(InstanceId i,
                                             FeatureId feature) const {
  auto features = RowFeatures(i);
  const auto it = std::lower_bound(features.begin(), features.end(), feature);
  if (it == features.end() || *it != feature) return std::nullopt;
  return bins_[row_ptr_[i] + (it - features.begin())];
}

void BinnedRowStore::FillGoLeft(std::span<const InstanceId> instances,
                                FeatureId feature, BinId split_bin,
                                bool default_left, Bitmap* go_left) const {
  const FeatureId* base = features_.data();
  for (size_t j = 0; j < instances.size(); ++j) {
    const uint64_t begin = row_ptr_[instances[j]];
    const FeatureId* lo = base + begin;
    const FeatureId* hi = base + row_ptr_[instances[j] + 1];
    const FeatureId* it = std::lower_bound(lo, hi, feature);
    const bool left = (it != hi && *it == feature)
                          ? bins_[begin + (it - lo)] <= split_bin
                          : default_left;
    go_left->Assign(j, left);
  }
}

BinnedColumnStore BinnedColumnStore::FromCsr(const CsrMatrix& matrix,
                                             const CandidateSplits& splits) {
  BinnedColumnStore store;
  store.set_num_rows(matrix.num_rows());
  const uint32_t cols = matrix.num_cols();

  std::vector<uint64_t> counts(cols + 1, 0);
  for (FeatureId f : matrix.features()) ++counts[f + 1];
  for (uint32_t c = 0; c < cols; ++c) counts[c + 1] += counts[c];

  store.col_ptr_ = counts;
  store.rows_.resize(matrix.num_nonzeros());
  store.bins_.resize(matrix.num_nonzeros());
  std::vector<uint64_t> cursor = counts;
  const auto& features = matrix.features();
  const auto& values = matrix.values();
  const auto& row_ptr = matrix.row_ptr();
  for (InstanceId i = 0; i < matrix.num_rows(); ++i) {
    for (uint64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const FeatureId f = features[k];
      const uint64_t pos = cursor[f]++;
      store.rows_[pos] = i;
      store.bins_[pos] = (splits.NumBins(f) == 0)
                             ? BinId{0}
                             : splits.BinForValue(f, values[k]);
    }
  }
  return store;
}

std::optional<BinId> BinnedColumnStore::FindBin(FeatureId f,
                                                InstanceId instance) const {
  auto rows = ColumnRows(f);
  const auto it = std::lower_bound(rows.begin(), rows.end(), instance);
  if (it == rows.end() || *it != instance) return std::nullopt;
  return bins_[col_ptr_[f] + (it - rows.begin())];
}

}  // namespace vero
