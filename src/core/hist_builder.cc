#include "core/hist_builder.h"

#include <cmath>

namespace vero {

ThreadPool* HistogramBuilder::EnsurePool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_ - 1);
  }
  return pool_.get();
}

void HistogramBuilder::BuildColumnStoreSweep(
    const BinnedColumnStore& store, const GradientBuffer& grads,
    const InstanceToNode& node_of, std::span<Histogram* const> hist_of_node) {
  // Whole columns are the parallel unit: column f only ever touches
  // histogram column f, so blocks write disjoint cells and the per-cell
  // entry order stays the serial column order.
  RunBlocks(store.num_features(), [&](size_t f) {
    const auto rows = store.ColumnRows(static_cast<FeatureId>(f));
    const auto bins = store.ColumnBins(static_cast<FeatureId>(f));
    for (size_t k = 0; k < rows.size(); ++k) {
      Histogram* hist = hist_of_node[node_of.Get(rows[k])];
      if (hist == nullptr) continue;  // Instance rests on a finished leaf.
      hist->Add(static_cast<uint32_t>(f), bins[k], grads.row(rows[k]));
    }
  });
}

void HistogramBuilder::BuildColumnStoreLayer(
    const BinnedColumnStore& store, const GradientBuffer& grads,
    const InstanceToNode& node_of, const RowPartition& partition,
    std::span<const NodeId> build_nodes,
    std::span<Histogram* const> hist_of_node, ColumnScan policy) {
  uint64_t build_instances = 0;
  for (const NodeId node : build_nodes) {
    build_instances += partition.Count(node);
  }
  RunBlocks(store.num_features(), [&](size_t fi) {
    const auto f = static_cast<FeatureId>(fi);
    const uint64_t nnz = store.ColumnLength(f);
    if (nnz == 0) return;
    // Per column: either one linear scan that serves every build node via
    // the instance-to-node index, or per-node binary searches via the
    // node-to-instance index — whichever touches less data (§5.2.2).
    const double cost_linear = static_cast<double>(nnz);
    const double cost_binary = static_cast<double>(build_instances) *
                               std::log2(static_cast<double>(nnz) + 2.0);
    const bool linear =
        policy == ColumnScan::kLinear ||
        (policy == ColumnScan::kAuto && cost_linear <= cost_binary);
    if (linear) {
      const auto rows = store.ColumnRows(f);
      const auto bins = store.ColumnBins(f);
      for (size_t k = 0; k < rows.size(); ++k) {
        Histogram* hist = hist_of_node[node_of.Get(rows[k])];
        if (hist == nullptr) continue;
        hist->Add(f, bins[k], grads.row(rows[k]));
      }
    } else {
      for (const NodeId node : build_nodes) {
        Histogram* hist = hist_of_node[node];
        for (const InstanceId i : partition.Instances(node)) {
          const auto bin = store.FindBin(f, i);
          if (bin.has_value()) hist->Add(f, *bin, grads.row(i));
        }
      }
    }
  });
}

void HistogramBuilder::AccumulateEntries(Histogram* hist,
                                         std::span<const FeatureId> features,
                                         std::span<const BinId> bins,
                                         const GradPair* grad_row) {
  if (hist->num_dims() == 1) {
    double* data = hist->raw_data();
    const size_t q = hist->num_bins();
    const double g = grad_row->g;
    const double h = grad_row->h;
    for (size_t k = 0; k < features.size(); ++k) {
      const size_t cell = 2 * (static_cast<size_t>(features[k]) * q + bins[k]);
      data[cell] += g;
      data[cell + 1] += h;
    }
  } else {
    for (size_t k = 0; k < features.size(); ++k) {
      hist->Add(features[k], bins[k], grad_row);
    }
  }
}

}  // namespace vero
