#include "core/histogram.h"

#include <algorithm>

#include "common/logging.h"

namespace vero {
namespace histkernel {

void AddInto(double* dst, const double* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void SetDifference(double* dst, const double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}

void Zero(double* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = 0.0;
}

}  // namespace histkernel

Histogram::Histogram(uint32_t num_features, uint32_t num_bins,
                     uint32_t num_dims)
    : num_features_(num_features),
      num_bins_(num_bins),
      num_dims_(num_dims),
      data_(static_cast<size_t>(num_features) * num_bins * num_dims) {}

void Histogram::Clear() { histkernel::Zero(raw_data(), raw_size()); }

void Histogram::AddHistogram(const Histogram& other) {
  VERO_DCHECK_EQ(data_.size(), other.data_.size());
  histkernel::AddInto(raw_data(), other.raw_data(), raw_size());
}

void Histogram::SetToDifference(const Histogram& parent,
                                const Histogram& child) {
  VERO_DCHECK_EQ(data_.size(), parent.data_.size());
  VERO_DCHECK_EQ(data_.size(), child.data_.size());
  histkernel::SetDifference(raw_data(), parent.raw_data(), child.raw_data(),
                            raw_size());
}

GradStats Histogram::FeatureTotal(uint32_t feature) const {
  GradStats total(num_dims_);
  for (uint32_t b = 0; b < num_bins_; ++b) {
    const GradPair* cell = data_.data() + Index(feature, b, 0);
    for (uint32_t k = 0; k < num_dims_; ++k) total[k] += cell[k];
  }
  return total;
}

Histogram* HistogramPool::Acquire(NodeId node, uint32_t num_features,
                                  uint32_t num_bins, uint32_t num_dims) {
  VERO_CHECK(live_.find(node) == live_.end())
      << "node " << node << " already has a histogram";
  Histogram hist;
  // Reuse a freelist buffer of the same shape if possible, preferring the
  // one with the most capacity so over-sized allocations keep circulating.
  // Removal is a swap-with-back pop: Acquire sits in the per-layer training
  // loop and must not pay vector::erase's O(n) shift.
  size_t best = freelist_.size();
  for (size_t i = 0; i < freelist_.size(); ++i) {
    if (freelist_[i].num_features() == num_features &&
        freelist_[i].num_bins() == num_bins &&
        freelist_[i].num_dims() == num_dims &&
        (best == freelist_.size() ||
         freelist_[i].MemoryBytes() > freelist_[best].MemoryBytes())) {
      best = i;
    }
  }
  if (best != freelist_.size()) {
    hist = std::move(freelist_[best]);
    if (best + 1 != freelist_.size()) {
      freelist_[best] = std::move(freelist_.back());
    }
    freelist_.pop_back();
    hist.Clear();
  }
  if (hist.empty()) {
    // Construct even when the worker owns zero features: the shape metadata
    // (bins, dims) must stay meaningful for downstream split finding.
    hist = Histogram(num_features, num_bins, num_dims);
  }
  current_bytes_ += hist.MemoryBytes();
  peak_bytes_ = std::max(peak_bytes_, current_bytes_);
  auto [it, inserted] = live_.emplace(node, std::move(hist));
  VERO_DCHECK(inserted);
  return &it->second;
}

Histogram* HistogramPool::Get(NodeId node) {
  auto it = live_.find(node);
  return it == live_.end() ? nullptr : &it->second;
}

const Histogram* HistogramPool::Get(NodeId node) const {
  auto it = live_.find(node);
  return it == live_.end() ? nullptr : &it->second;
}

void HistogramPool::Release(NodeId node) {
  auto it = live_.find(node);
  if (it == live_.end()) return;
  current_bytes_ -= it->second.MemoryBytes();
  freelist_.push_back(std::move(it->second));
  live_.erase(it);
}

void HistogramPool::Clear() {
  live_.clear();
  freelist_.clear();
  current_bytes_ = 0;
}

}  // namespace vero
