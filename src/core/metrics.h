#ifndef VERO_CORE_METRICS_H_
#define VERO_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree.h"
#include "data/dataset.h"

namespace vero {

/// Area under the ROC curve for binary labels {0,1} and arbitrary real
/// scores (higher = more positive). Ties contribute half. Returns 0.5 when
/// one class is absent.
double Auc(const std::vector<float>& labels, const std::vector<double>& scores);

/// Fraction of instances whose argmax margin equals the label.
/// `margins` is row-major N x C (C >= 2); for binary pass C = 1 margins and
/// threshold at 0.
double Accuracy(const std::vector<float>& labels,
                const std::vector<double>& margins, uint32_t num_dims);

/// Root-mean-square error for regression margins.
double Rmse(const std::vector<float>& labels,
            const std::vector<double>& margins);

/// Mean logistic / softmax cross-entropy (delegates to the task loss).
double LogLoss(Task task, uint32_t num_classes,
               const std::vector<float>& labels,
               const std::vector<double>& margins);

/// The paper's headline validation metric for a task: AUC (binary),
/// accuracy (multi-class), RMSE (regression).
struct MetricValue {
  std::string name;
  double value = 0.0;
  /// True when larger values are better (AUC/accuracy).
  bool higher_is_better = true;
};

/// Evaluates a model on a dataset with the task's headline metric.
MetricValue EvaluateModel(const GbdtModel& model, const Dataset& dataset);

/// Headline metric computed from precomputed margins.
MetricValue EvaluateMargins(Task task, uint32_t num_classes,
                            const std::vector<float>& labels,
                            const std::vector<double>& margins);

}  // namespace vero

#endif  // VERO_CORE_METRICS_H_
