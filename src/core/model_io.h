#ifndef VERO_CORE_MODEL_IO_H_
#define VERO_CORE_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/tree.h"

namespace vero {

/// Writes a model to a binary file (magic + version framed ByteWriter
/// payload).
Status SaveModel(const GbdtModel& model, const std::string& path);

/// Reads a model written by SaveModel.
StatusOr<GbdtModel> LoadModel(const std::string& path);

/// Human-readable dump of the forest (one line per node), for debugging and
/// golden tests.
std::string ModelToText(const GbdtModel& model);

}  // namespace vero

#endif  // VERO_CORE_MODEL_IO_H_
