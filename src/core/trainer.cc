#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <utility>

#include "common/bitmap.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/binned.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/loss.h"
#include "core/node_indexer.h"
#include "core/split.h"
#include "obs/trace.h"
#include "sketch/candidate_splits.h"

namespace vero {
namespace {

// Depth (root = 0) of a heap-numbered node.
uint32_t NodeDepth(NodeId id) {
  uint32_t depth = 0;
  while (id > 0) {
    id = Parent(id);
    ++depth;
  }
  return depth;
}

// Everything one boosting round needs; groups the per-tree growing logic so
// the level-wise and leaf-wise policies share the histogram / split / apply
// machinery.
class TreeGrower {
 public:
  TreeGrower(const GbdtParams& params, const BinnedRowStore& store,
             const CandidateSplits& splits,
             const std::vector<FeatureId>& all_features,
             const GradientBuffer& grads, const std::vector<bool>* mask,
             HistogramBuilder* builder, HistogramPool* pool,
             RowPartition* partition, TrainReport* report)
      : params_(params),
        store_(store),
        splits_(splits),
        all_features_(all_features),
        grads_(grads),
        mask_(mask),
        finder_(params.reg_lambda, params.reg_gamma, params.min_split_gain),
        builder_(builder),
        pool_(pool),
        partition_(partition),
        report_(report),
        dims_(grads.num_dims()) {}

  Tree Grow(const GradStats& root_stats) {
    Tree tree(params_.num_layers, dims_);
    node_stats_.assign(tree.max_nodes(), GradStats{});
    node_stats_[0] = root_stats;
    if (params_.growth == GrowthPolicy::kLevelWise) {
      GrowLevelWise(&tree);
    } else {
      GrowLeafWise(&tree);
    }
    // Every node still holding instances is a leaf; finalize its weights
    // and drop any leftover histograms.
    for (NodeId id = 0; id < static_cast<NodeId>(tree.max_nodes()); ++id) {
      if (partition_->Has(id)) {
        tree.SetLeaf(id, finder_.LeafWeights(node_stats_[id]));
      }
      pool_->Release(id);
    }
    return tree;
  }

 private:
  HistogramBuilder::NodeRows AcquireTask(NodeId node) {
    return {pool_->Acquire(node, store_.num_features(),
                           params_.num_candidate_splits, dims_),
            partition_->Instances(node)};
  }

  void BuildRootHistogram() {
    ThreadCpuTimer timer;
    const HistogramBuilder::NodeRows task = AcquireTask(0);
    builder_->BuildRowStoreLayer(store_, grads_,
                                 std::span<const HistogramBuilder::NodeRows>(
                                     &task, 1),
                                 0, store_.num_features(),
                                 store_.num_features());
    timer.Stop();
    report_->histogram_seconds += timer.Seconds();
  }

  // Builds every pair's histograms in one layer pass (only the smaller
  // sibling of each pair is scanned; the other comes from subtraction
  // against the parent), then releases the parents.
  void BuildLayerHistograms(const std::vector<std::pair<NodeId, NodeId>>& pairs) {
    ThreadCpuTimer timer;
    std::vector<HistogramBuilder::NodeRows> tasks;
    std::vector<NodeId> scanned;
    tasks.reserve(2 * pairs.size());
    for (const auto& [left, right] : pairs) {
      if (params_.histogram_subtraction) {
        const NodeId smaller =
            partition_->Count(left) <= partition_->Count(right) ? left
                                                                : right;
        tasks.push_back(AcquireTask(smaller));
        scanned.push_back(smaller);
      } else {
        tasks.push_back(AcquireTask(left));
        tasks.push_back(AcquireTask(right));
      }
    }
    builder_->BuildRowStoreLayer(
        store_, grads_, std::span<const HistogramBuilder::NodeRows>(tasks), 0,
        store_.num_features(), store_.num_features());
    for (const NodeId smaller : scanned) {
      Histogram* large_hist =
          pool_->Acquire(Sibling(smaller), store_.num_features(),
                         params_.num_candidate_splits, dims_);
      const Histogram* parent = pool_->Get(Parent(smaller));
      VERO_CHECK(parent != nullptr);
      large_hist->SetToDifference(*parent, *pool_->Get(smaller));
    }
    for (const auto& [left, right] : pairs) pool_->Release(Parent(left));
    timer.Stop();
    report_->histogram_seconds += timer.Seconds();
  }

  SplitCandidate FindSplit(NodeId node) {
    ThreadCpuTimer timer;
    const Histogram* hist = pool_->Get(node);
    VERO_CHECK(hist != nullptr);
    SplitCandidate best = finder_.FindBest(*hist, node_stats_[node],
                                           all_features_, splits_, mask_);
    if (best.valid &&
        partition_->Count(node) < 2 * params_.min_child_instances) {
      best.valid = false;
    }
    timer.Stop();
    report_->split_find_seconds += timer.Seconds();
    return best;
  }

  // Applies a decided split: tree structure, instance movement, child stats.
  void ApplySplit(Tree* tree, NodeId node, const SplitCandidate& s) {
    ThreadCpuTimer timer;
    tree->SetSplit(node, s.feature, s.split_value, s.split_bin,
                   s.default_left, s.gain);
    auto instances = partition_->Instances(node);
    Bitmap go_left(instances.size());
    store_.FillGoLeft(instances, s.feature, s.split_bin, s.default_left,
                      &go_left);
    partition_->Split(node, go_left);
    node_stats_[LeftChild(node)] = s.left_stats;
    node_stats_[RightChild(node)] = s.right_stats;
    timer.Stop();
    report_->node_split_seconds += timer.Seconds();
  }

  void GrowLevelWise(Tree* tree) {
    std::vector<NodeId> frontier = {0};
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (uint32_t depth = 0;
         depth < params_.num_layers && !frontier.empty(); ++depth) {
      const bool last_layer = (depth + 1 == params_.num_layers);
      // Histograms (skipped on the last layer, whose nodes must be leaves).
      if (!last_layer) {
        if (depth == 0) {
          BuildRootHistogram();
        } else {
          BuildLayerHistograms(pairs);
        }
      }
      // Split finding + node splitting.
      pairs.clear();
      std::vector<NodeId> next_frontier;
      for (NodeId node : frontier) {
        SplitCandidate best;
        if (!last_layer) best = FindSplit(node);
        if (!best.valid) continue;  // Finalized as a leaf by Grow().
        ApplySplit(tree, node, best);
        pairs.emplace_back(LeftChild(node), RightChild(node));
        next_frontier.push_back(LeftChild(node));
        next_frontier.push_back(RightChild(node));
      }
      frontier = std::move(next_frontier);
    }
  }

  void GrowLeafWise(Tree* tree) {
    struct Entry {
      NodeId node;
      SplitCandidate split;
    };
    // Ordered worst-first so top() is the best split (std::priority_queue
    // keeps the largest element on top under "less-than").
    auto worse = [](const Entry& a, const Entry& b) {
      return b.split.IsBetterThan(a.split);
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(
        worse);

    BuildRootHistogram();
    if (params_.num_layers >= 2) {
      SplitCandidate best = FindSplit(0);
      if (best.valid) heap.push({0, std::move(best)});
    }

    uint32_t leaves = 1;
    const uint32_t max_leaves = params_.EffectiveMaxLeaves();
    while (leaves < max_leaves && !heap.empty()) {
      const Entry top = heap.top();
      heap.pop();
      ApplySplit(tree, top.node, top.split);
      ++leaves;

      const NodeId left = LeftChild(top.node);
      const NodeId right = RightChild(top.node);
      // Children at depth L-1 are at the depth cap and stay leaves.
      if (NodeDepth(left) + 1 < params_.num_layers) {
        BuildLayerHistograms({{left, right}});
        for (NodeId child : {left, right}) {
          SplitCandidate best = FindSplit(child);
          if (best.valid) {
            heap.push({child, std::move(best)});
          } else {
            pool_->Release(child);
          }
        }
      } else {
        pool_->Release(Parent(left));
      }
    }
  }

  const GbdtParams& params_;
  const BinnedRowStore& store_;
  const CandidateSplits& splits_;
  const std::vector<FeatureId>& all_features_;
  const GradientBuffer& grads_;
  const std::vector<bool>* mask_;
  SplitFinder finder_;
  HistogramBuilder* builder_;
  HistogramPool* pool_;
  RowPartition* partition_;
  TrainReport* report_;
  uint32_t dims_;
  std::vector<GradStats> node_stats_;
};

}  // namespace

StatusOr<GbdtModel> Trainer::Train(const Dataset& train, const Dataset* valid,
                                   IterationCallback callback) {
  VERO_RETURN_IF_ERROR(params_.Validate());
  if (train.num_instances() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (params_.early_stopping_rounds > 0 && valid == nullptr) {
    return Status::InvalidArgument(
        "early stopping requires a validation set");
  }
  report_ = TrainReport{};
  WallTimer total_timer;

  const uint32_t n = train.num_instances();
  const uint32_t dims = train.gradient_dim();
  const uint32_t d = train.num_features();
  const auto loss = MakeLossForTask(train.task(), train.num_classes());
  Rng rng(params_.seed);

  const CandidateSplits splits = ProposeCandidateSplits(
      train, params_.num_candidate_splits, params_.sketch_entries);
  const BinnedRowStore store = BinnedRowStore::FromCsr(train.matrix(), splits);
  report_.data_bytes = store.MemoryBytes();

  std::vector<FeatureId> all_features(d);
  std::iota(all_features.begin(), all_features.end(), FeatureId{0});

  GbdtModel model(train.task(), train.num_classes(), params_.learning_rate);
  std::vector<double> margins(static_cast<size_t>(n) * dims, 0.0);
  std::vector<double> valid_margins;
  if (valid != nullptr) {
    valid_margins.assign(
        static_cast<size_t>(valid->num_instances()) * dims, 0.0);
  }
  GradientBuffer grads(n, dims);
  HistogramBuilder builder(params_.num_threads);
  HistogramPool pool;
  RowPartition partition;
  const SplitFinder finder(params_.reg_lambda, params_.reg_gamma,
                           params_.min_split_gain);

  const bool row_sampling = params_.row_subsample < 1.0;
  const bool col_sampling = params_.column_subsample < 1.0;
  double best_metric = 0.0;
  bool best_metric_set = false;
  bool maximize_metric = true;
  uint32_t rounds_since_best = 0;

  for (uint32_t t = 0; t < params_.num_trees; ++t) {
    if (trace_ != nullptr) trace_->SetContext(static_cast<int32_t>(t), -1);
    {
      obs::PhaseSpan span(trace_, "gradient");
      ComputeGradientsParallel(*loss, train.labels(), margins, n,
                               params_.num_threads, &grads);
    }

    // ---- Sampling ------------------------------------------------------
    if (row_sampling) {
      const uint32_t k = std::max<uint32_t>(
          2, static_cast<uint32_t>(std::lround(n * params_.row_subsample)));
      partition.InitSubset(rng.SampleWithoutReplacement(n, std::min(k, n)),
                           params_.num_layers);
    } else {
      partition.Init(n, params_.num_layers);
    }
    std::vector<bool> mask;
    if (col_sampling) {
      const uint32_t k = std::max<uint32_t>(
          1,
          static_cast<uint32_t>(std::lround(d * params_.column_subsample)));
      mask.assign(d, false);
      for (uint32_t f : rng.SampleWithoutReplacement(d, std::min(k, d))) {
        mask[f] = true;
      }
    }

    GradStats root_stats(dims);
    for (InstanceId i : partition.Instances(0)) {
      const GradPair* g = grads.row(i);
      for (uint32_t k = 0; k < dims; ++k) root_stats[k] += g[k];
    }

    // ---- Grow one tree ---------------------------------------------------
    TreeGrower grower(params_, store, splits, all_features, grads,
                      col_sampling ? &mask : nullptr, &builder, &pool,
                      &partition, &report_);
    obs::PhaseSpan grow_span(trace_, "grow-tree");
    Tree tree = grower.Grow(root_stats);
    grow_span.Close();

    // ---- Update margins --------------------------------------------------
    obs::PhaseSpan margin_span(trace_, "margin-update");
    if (row_sampling) {
      // Out-of-sample rows must be routed through the finished tree.
      const CsrMatrix& m = train.matrix();
      for (InstanceId i = 0; i < n; ++i) {
        tree.PredictInto(m.RowFeatures(i), m.RowValues(i),
                         params_.learning_rate,
                         margins.data() + static_cast<size_t>(i) * dims);
      }
    } else {
      for (NodeId node = 0; node < static_cast<NodeId>(tree.max_nodes());
           ++node) {
        if (!partition.Has(node)) continue;
        const std::vector<float>& w = tree.node(node).leaf_values;
        for (InstanceId i : partition.Instances(node)) {
          for (uint32_t k = 0; k < dims; ++k) {
            margins[static_cast<size_t>(i) * dims + k] +=
                params_.learning_rate * w[k];
          }
        }
      }
    }
    margin_span.Close();
    model.AddTree(std::move(tree));

    // ---- Reporting / early stopping --------------------------------------
    double valid_metric = 0.0;
    bool has_valid = false;
    if (valid != nullptr) {
      const Tree& last = model.tree(model.num_trees() - 1);
      const CsrMatrix& vm = valid->matrix();
      for (InstanceId i = 0; i < valid->num_instances(); ++i) {
        last.PredictInto(vm.RowFeatures(i), vm.RowValues(i),
                         params_.learning_rate,
                         valid_margins.data() +
                             static_cast<size_t>(i) * dims);
      }
      const MetricValue metric =
          EvaluateMargins(valid->task(), valid->num_classes(),
                          valid->labels(), valid_margins);
      valid_metric = metric.value;
      maximize_metric = metric.higher_is_better;
      has_valid = true;
    }
    if (callback) {
      IterationStats stats;
      stats.tree_index = t;
      stats.train_loss = loss->ComputeLoss(train.labels(), margins, 0, n);
      stats.elapsed_seconds = total_timer.Seconds();
      stats.valid_metric = valid_metric;
      stats.has_valid_metric = has_valid;
      callback(stats);
    }
    if (has_valid) {
      const bool improved =
          !best_metric_set || (maximize_metric ? valid_metric > best_metric
                                               : valid_metric < best_metric);
      if (improved) {
        best_metric = valid_metric;
        best_metric_set = true;
        report_.best_iteration = t;
        rounds_since_best = 0;
      } else if (params_.early_stopping_rounds > 0 &&
                 ++rounds_since_best >= params_.early_stopping_rounds) {
        break;
      }
    }
  }

  if (trace_ != nullptr) trace_->SetContext(-1, -1);
  report_.total_seconds = total_timer.Seconds();
  report_.peak_histogram_bytes = pool.PeakBytes();
  return model;
}

}  // namespace vero
