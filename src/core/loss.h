#ifndef VERO_CORE_LOSS_H_
#define VERO_CORE_LOSS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/gradients.h"
#include "data/dataset.h"

namespace vero {

/// Differentiable training objective: maps (label, margin) to first- and
/// second-order gradients (the LogitBoost expansion of §2.1.1) and to a loss
/// value for reporting.
///
/// Margins are raw additive tree outputs: one per instance for regression /
/// binary, C per instance for multi-class (softmax over margins).
class Loss {
 public:
  virtual ~Loss() = default;

  /// Gradient dimension C (1 except multi-class).
  virtual uint32_t num_dims() const = 0;

  /// Fills grad pairs for instance range [begin, end).
  /// `margins` is the flat N x C margin buffer.
  virtual void ComputeGradients(const std::vector<float>& labels,
                                const std::vector<double>& margins,
                                uint32_t begin, uint32_t end,
                                GradientBuffer* out) const = 0;

  /// Mean loss over instances [begin, end).
  virtual double ComputeLoss(const std::vector<float>& labels,
                             const std::vector<double>& margins,
                             uint32_t begin, uint32_t end) const = 0;

  virtual std::string name() const = 0;
};

/// Square loss: l = (y - m)^2 / 2; g = m - y; h = 1.
class SquareLoss final : public Loss {
 public:
  uint32_t num_dims() const override { return 1; }
  void ComputeGradients(const std::vector<float>& labels,
                        const std::vector<double>& margins, uint32_t begin,
                        uint32_t end, GradientBuffer* out) const override;
  double ComputeLoss(const std::vector<float>& labels,
                     const std::vector<double>& margins, uint32_t begin,
                     uint32_t end) const override;
  std::string name() const override { return "square"; }
};

/// Logistic loss for binary classification with labels in {0, 1}:
/// p = sigmoid(m); g = p - y; h = p(1-p).
class LogisticLoss final : public Loss {
 public:
  uint32_t num_dims() const override { return 1; }
  void ComputeGradients(const std::vector<float>& labels,
                        const std::vector<double>& margins, uint32_t begin,
                        uint32_t end, GradientBuffer* out) const override;
  double ComputeLoss(const std::vector<float>& labels,
                     const std::vector<double>& margins, uint32_t begin,
                     uint32_t end) const override;
  std::string name() const override { return "logistic"; }
};

/// Softmax cross-entropy for C >= 3 classes: p = softmax(margins);
/// g_k = p_k - 1{y=k}; h_k = 2 p_k (1 - p_k) (the standard GBDT
/// second-order surrogate).
class SoftmaxLoss final : public Loss {
 public:
  explicit SoftmaxLoss(uint32_t num_classes) : num_classes_(num_classes) {}
  uint32_t num_dims() const override { return num_classes_; }
  void ComputeGradients(const std::vector<float>& labels,
                        const std::vector<double>& margins, uint32_t begin,
                        uint32_t end, GradientBuffer* out) const override;
  double ComputeLoss(const std::vector<float>& labels,
                     const std::vector<double>& margins, uint32_t begin,
                     uint32_t end) const override;
  std::string name() const override { return "softmax"; }

 private:
  uint32_t num_classes_;
};

/// Creates the canonical loss for a task (square / logistic / softmax).
std::unique_ptr<Loss> MakeLossForTask(Task task, uint32_t num_classes);

/// Fills gradients for instances [0, n) fanning disjoint row ranges across
/// up to `num_threads` threads. Each instance's pair is a pure function of
/// its own (label, margin), so the result is identical to the serial call;
/// num_threads <= 1 IS the serial call.
void ComputeGradientsParallel(const Loss& loss,
                              const std::vector<float>& labels,
                              const std::vector<double>& margins, uint32_t n,
                              uint32_t num_threads, GradientBuffer* out);

/// Numerically stable sigmoid.
double Sigmoid(double x);

/// In-place softmax over `dims` consecutive doubles.
void SoftmaxInPlace(double* p, uint32_t dims);

}  // namespace vero

#endif  // VERO_CORE_LOSS_H_
