#include "core/cross_validation.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "core/trainer.h"

namespace vero {
namespace {

// Copies the rows listed in `ids` into a new dataset (feature space kept).
Dataset GatherRows(const Dataset& dataset, const std::vector<uint32_t>& ids) {
  const CsrMatrix& m = dataset.matrix();
  CsrMatrix out;
  out.set_num_cols(m.num_cols());
  std::vector<float> labels;
  labels.reserve(ids.size());
  for (uint32_t i : ids) {
    out.StartRow();
    auto features = m.RowFeatures(i);
    auto values = m.RowValues(i);
    for (size_t k = 0; k < features.size(); ++k) {
      out.PushEntry(features[k], values[k]);
    }
    labels.push_back(dataset.labels()[i]);
  }
  return Dataset(std::move(out), std::move(labels), dataset.task(),
                 dataset.num_classes());
}

}  // namespace

std::pair<Dataset, Dataset> MakeFold(const Dataset& dataset,
                                     const std::vector<uint32_t>& order,
                                     uint32_t fold, uint32_t num_folds) {
  VERO_CHECK_EQ(order.size(), dataset.num_instances());
  VERO_CHECK_LT(fold, num_folds);
  const uint64_t n = order.size();
  const uint64_t begin = n * fold / num_folds;
  const uint64_t end = n * (fold + 1) / num_folds;
  std::vector<uint32_t> train_ids, valid_ids;
  train_ids.reserve(n - (end - begin));
  valid_ids.reserve(end - begin);
  for (uint64_t i = 0; i < n; ++i) {
    (i >= begin && i < end ? valid_ids : train_ids).push_back(order[i]);
  }
  return {GatherRows(dataset, train_ids), GatherRows(dataset, valid_ids)};
}

StatusOr<CrossValidationResult> CrossValidate(
    const Dataset& dataset, const GbdtParams& params,
    const CrossValidationOptions& options) {
  VERO_RETURN_IF_ERROR(params.Validate());
  if (options.num_folds < 2) {
    return Status::InvalidArgument("num_folds must be >= 2");
  }
  if (dataset.num_instances() < options.num_folds) {
    return Status::InvalidArgument("fewer instances than folds");
  }

  std::vector<uint32_t> order(dataset.num_instances());
  std::iota(order.begin(), order.end(), 0u);
  if (options.shuffle) {
    Rng rng(options.seed);
    rng.Shuffle(&order);
  }

  CrossValidationResult result;
  for (uint32_t fold = 0; fold < options.num_folds; ++fold) {
    auto [train, valid] = MakeFold(dataset, order, fold, options.num_folds);
    Trainer trainer(params);
    VERO_ASSIGN_OR_RETURN(const GbdtModel model, trainer.Train(train));
    const MetricValue metric = EvaluateModel(model, valid);
    result.fold_metrics.push_back(metric.value);
    result.metric_name = metric.name;
    result.higher_is_better = metric.higher_is_better;
  }

  const double n = static_cast<double>(result.fold_metrics.size());
  for (double m : result.fold_metrics) result.mean += m;
  result.mean /= n;
  if (result.fold_metrics.size() > 1) {
    double var = 0.0;
    for (double m : result.fold_metrics) {
      var += (m - result.mean) * (m - result.mean);
    }
    result.stddev = std::sqrt(var / (n - 1));
  }
  return result;
}

}  // namespace vero
