#ifndef VERO_CORE_CROSS_VALIDATION_H_
#define VERO_CORE_CROSS_VALIDATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gbdt_params.h"
#include "core/metrics.h"
#include "data/dataset.h"

namespace vero {

/// Result of a k-fold cross validation run.
struct CrossValidationResult {
  /// Headline metric (AUC / accuracy / RMSE) per fold.
  std::vector<double> fold_metrics;
  std::string metric_name;
  bool higher_is_better = true;
  double mean = 0.0;
  /// Sample standard deviation across folds (0 for a single fold).
  double stddev = 0.0;
};

/// Options for cross validation.
struct CrossValidationOptions {
  uint32_t num_folds = 5;
  /// Shuffle instances before folding (deterministic in `seed`).
  bool shuffle = true;
  uint64_t seed = 42;
};

/// Runs k-fold cross validation of the reference trainer: trains k models,
/// each holding out one fold, and evaluates the headline metric on the
/// held-out fold. Fold boundaries split the (optionally shuffled) instance
/// list into k near-equal contiguous ranges.
StatusOr<CrossValidationResult> CrossValidate(
    const Dataset& dataset, const GbdtParams& params,
    const CrossValidationOptions& options = CrossValidationOptions());

/// Builds the (train, valid) pair for one fold; exposed for tests and for
/// callers that want to parallelize folds themselves. `order` is the
/// instance visitation order (size N).
std::pair<Dataset, Dataset> MakeFold(const Dataset& dataset,
                                     const std::vector<uint32_t>& order,
                                     uint32_t fold, uint32_t num_folds);

}  // namespace vero

#endif  // VERO_CORE_CROSS_VALIDATION_H_
