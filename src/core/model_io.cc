#include "core/model_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/serialize.h"

namespace vero {
namespace {

constexpr uint32_t kMagic = 0x5645524fu;  // "VERO"
// Version 2 appends a CRC-32 trailer over everything before it; version 1
// (no trailer) is still readable.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kLegacyVersion = 1;

}  // namespace

Status SaveModel(const GbdtModel& model, const std::string& path) {
  ByteWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  model.SerializeTo(&writer);
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<GbdtModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  ByteReader reader(reinterpret_cast<const uint8_t*>(content.data()),
                    content.size());
  uint32_t magic = 0, version = 0;
  if (!reader.ReadU32(&magic).ok() || !reader.ReadU32(&version).ok()) {
    return Status::Corruption("model file too short: " + path);
  }
  if (magic != kMagic) return Status::Corruption("bad magic in " + path);
  if (version != kVersion && version != kLegacyVersion) {
    return Status::Corruption("unsupported model version");
  }
  size_t payload_end = content.size();
  if (version == kVersion) {
    if (content.size() < 12) {
      return Status::Corruption("model file too short for CRC trailer");
    }
    payload_end = content.size() - sizeof(uint32_t);
    ByteReader trailer(
        reinterpret_cast<const uint8_t*>(content.data()) + payload_end,
        sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(content.data(), payload_end) != stored_crc) {
      return Status::Corruption("CRC mismatch in " + path);
    }
  }
  GbdtModel model;
  Status s = GbdtModel::Deserialize(&reader, &model);
  if (!s.ok()) {
    // A short read means the file lied about its own length: corruption,
    // not a range error.
    if (s.code() == StatusCode::kOutOfRange) {
      return Status::Corruption("truncated model file " + path);
    }
    return s;
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in model file " + path);
  }
  return model;
}

std::string ModelToText(const GbdtModel& model) {
  std::ostringstream out;
  out << "task=" << TaskToString(model.task())
      << " classes=" << model.num_classes()
      << " learning_rate=" << model.learning_rate()
      << " trees=" << model.num_trees() << "\n";
  for (size_t t = 0; t < model.num_trees(); ++t) {
    const Tree& tree = model.tree(t);
    out << "tree " << t << " (leaves=" << tree.NumLeaves() << ")\n";
    for (NodeId id = 0; id < static_cast<NodeId>(tree.max_nodes()); ++id) {
      if (!tree.Exists(id)) continue;
      const TreeNode& n = tree.node(id);
      out << "  node " << id << ": ";
      if (n.state == TreeNode::State::kInternal) {
        out << "split f" << n.feature << " <= " << n.split_value << " (bin "
            << n.split_bin << ", default "
            << (n.default_left ? "left" : "right") << ", gain " << n.gain
            << ")";
      } else {
        out << "leaf [";
        for (size_t k = 0; k < n.leaf_values.size(); ++k) {
          if (k > 0) out << ", ";
          out << n.leaf_values[k];
        }
        out << "]";
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace vero
