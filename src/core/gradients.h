#ifndef VERO_CORE_GRADIENTS_H_
#define VERO_CORE_GRADIENTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vero {

/// First- and second-order gradient of the loss for one instance and class
/// (g_i, h_i of §2.1.1).
struct GradPair {
  double g = 0.0;
  double h = 0.0;

  GradPair& operator+=(const GradPair& other) {
    g += other.g;
    h += other.h;
    return *this;
  }
  GradPair& operator-=(const GradPair& other) {
    g -= other.g;
    h -= other.h;
    return *this;
  }
  friend GradPair operator+(GradPair a, const GradPair& b) { return a += b; }
  friend GradPair operator-(GradPair a, const GradPair& b) { return a -= b; }
  bool operator==(const GradPair& other) const {
    return g == other.g && h == other.h;
  }
};

/// Per-class gradient sums of a tree node (the G and H of Equations 1-2).
/// Size is the gradient dimension C (1 except multi-class).
using GradStats = std::vector<GradPair>;

/// Sum of squared-gradient objective over classes: sum_k G_k^2 / (H_k + λ).
/// This is the building block of the split gain (Equation 2) generalized to
/// vector-valued gradients.
inline double GainTerm(const GradStats& stats, double reg_lambda) {
  double total = 0.0;
  for (const GradPair& s : stats) {
    total += (s.g * s.g) / (s.h + reg_lambda);
  }
  return total;
}

/// Flat gradient buffer for N instances with C classes:
/// entry (i, k) lives at [i * C + k]. Contiguous so that horizontal workers
/// can compute shard gradients in one pass and histograms can be accumulated
/// with simple pointer arithmetic.
class GradientBuffer {
 public:
  GradientBuffer() = default;
  GradientBuffer(uint32_t num_instances, uint32_t num_dims)
      : num_dims_(num_dims),
        data_(static_cast<size_t>(num_instances) * num_dims) {}

  uint32_t num_instances() const {
    return num_dims_ == 0
               ? 0
               : static_cast<uint32_t>(data_.size() / num_dims_);
  }
  uint32_t num_dims() const { return num_dims_; }

  GradPair& at(uint32_t instance, uint32_t dim) {
    return data_[static_cast<size_t>(instance) * num_dims_ + dim];
  }
  const GradPair& at(uint32_t instance, uint32_t dim) const {
    return data_[static_cast<size_t>(instance) * num_dims_ + dim];
  }
  /// Pointer to the C consecutive pairs of one instance.
  const GradPair* row(uint32_t instance) const {
    return data_.data() + static_cast<size_t>(instance) * num_dims_;
  }

  /// Per-class totals over all instances.
  GradStats Total() const {
    GradStats total(num_dims_);
    const uint32_t n = num_instances();
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t k = 0; k < num_dims_; ++k) total[k] += at(i, k);
    }
    return total;
  }

  uint64_t MemoryBytes() const { return data_.capacity() * sizeof(GradPair); }

 private:
  uint32_t num_dims_ = 0;
  std::vector<GradPair> data_;
};

}  // namespace vero

#endif  // VERO_CORE_GRADIENTS_H_
