#include "core/split.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vero {
namespace {

// A side must carry some hessian mass to be a meaningful child.
constexpr double kMinSideHessian = 1e-10;

double SideHessian(const GradStats& stats) {
  double h = 0.0;
  for (const GradPair& s : stats) h += s.h;
  return h;
}

}  // namespace

bool SplitCandidate::IsBetterThan(const SplitCandidate& other,
                                  double tol) const {
  if (!valid) return false;
  if (!other.valid) return true;
  if (gain > other.gain + tol) return true;
  if (other.gain > gain + tol) return false;
  if (feature != other.feature) return feature < other.feature;
  if (split_bin != other.split_bin) return split_bin < other.split_bin;
  return !default_left && other.default_left;
}

void SplitCandidate::SerializeTo(ByteWriter* writer) const {
  writer->WriteBool(valid);
  writer->WriteU32(feature);
  writer->WriteU16(split_bin);
  writer->WriteF32(split_value);
  writer->WriteBool(default_left);
  writer->WriteF64(gain);
  auto write_stats = [writer](const GradStats& stats) {
    writer->WriteU32(static_cast<uint32_t>(stats.size()));
    for (const GradPair& s : stats) {
      writer->WriteF64(s.g);
      writer->WriteF64(s.h);
    }
  };
  write_stats(left_stats);
  write_stats(right_stats);
}

Status SplitCandidate::Deserialize(ByteReader* reader, SplitCandidate* out) {
  VERO_RETURN_IF_ERROR(reader->ReadBool(&out->valid));
  VERO_RETURN_IF_ERROR(reader->ReadU32(&out->feature));
  VERO_RETURN_IF_ERROR(reader->ReadU16(&out->split_bin));
  VERO_RETURN_IF_ERROR(reader->ReadF32(&out->split_value));
  VERO_RETURN_IF_ERROR(reader->ReadBool(&out->default_left));
  VERO_RETURN_IF_ERROR(reader->ReadF64(&out->gain));
  auto read_stats = [reader](GradStats* stats) -> Status {
    uint32_t n = 0;
    VERO_RETURN_IF_ERROR(reader->ReadU32(&n));
    stats->resize(n);
    for (GradPair& s : *stats) {
      VERO_RETURN_IF_ERROR(reader->ReadF64(&s.g));
      VERO_RETURN_IF_ERROR(reader->ReadF64(&s.h));
    }
    return Status::OK();
  };
  VERO_RETURN_IF_ERROR(read_stats(&out->left_stats));
  VERO_RETURN_IF_ERROR(read_stats(&out->right_stats));
  return Status::OK();
}

SplitCandidate SplitFinder::FindBest(const Histogram& hist,
                                     const GradStats& node_stats,
                                     const std::vector<FeatureId>& global_ids,
                                     const CandidateSplits& splits,
                                     const std::vector<bool>* feature_mask)
    const {
  VERO_CHECK_EQ(global_ids.size(), hist.num_features());
  const uint32_t dims = hist.num_dims();
  VERO_CHECK_EQ(node_stats.size(), dims);

  SplitCandidate best;
  const double parent_term = GainTerm(node_stats, reg_lambda_);

  GradStats left(dims), right(dims), prefix(dims), missing(dims);
  for (uint32_t f = 0; f < hist.num_features(); ++f) {
    const FeatureId global_f = global_ids[f];
    if (feature_mask != nullptr && !(*feature_mask)[global_f]) continue;
    const uint32_t nbins = splits.NumBins(global_f);
    if (nbins < 2) continue;  // Constant or unseen feature: unsplittable.

    // Missing-value bucket: node total minus the mass present in this
    // feature's bins.
    GradStats present = hist.FeatureTotal(f);
    for (uint32_t k = 0; k < dims; ++k) {
      missing[k] = node_stats[k] - present[k];
    }

    std::fill(prefix.begin(), prefix.end(), GradPair{});
    // Splitting at the last bin sends everything (present) left, which is
    // only meaningful when missing mass exists; enumerate bins
    // [0, nbins - 2] like standard histogram algorithms.
    for (uint32_t b = 0; b + 1 < nbins; ++b) {
      for (uint32_t k = 0; k < dims; ++k) prefix[k] += hist.at(f, b, k);

      for (int missing_left = 0; missing_left <= 1; ++missing_left) {
        for (uint32_t k = 0; k < dims; ++k) {
          left[k] = prefix[k];
          if (missing_left != 0) left[k] += missing[k];
          right[k] = node_stats[k] - left[k];
        }
        if (SideHessian(left) < kMinSideHessian ||
            SideHessian(right) < kMinSideHessian) {
          continue;
        }
        const double gain =
            0.5 * (GainTerm(left, reg_lambda_) + GainTerm(right, reg_lambda_) -
                   parent_term) -
            reg_gamma_;
        if (gain < min_split_gain_) continue;
        SplitCandidate candidate;
        candidate.valid = true;
        candidate.feature = global_f;
        candidate.split_bin = static_cast<BinId>(b);
        candidate.split_value = splits.SplitValue(global_f, b);
        candidate.default_left = (missing_left != 0);
        candidate.gain = gain;
        if (candidate.IsBetterThan(best)) {
          candidate.left_stats = left;
          candidate.right_stats = right;
          best = candidate;
        }
      }
    }
  }
  return best;
}

std::vector<float> SplitFinder::LeafWeights(const GradStats& node_stats) const {
  std::vector<float> weights(node_stats.size());
  for (size_t k = 0; k < node_stats.size(); ++k) {
    weights[k] = static_cast<float>(-node_stats[k].g /
                                    (node_stats[k].h + reg_lambda_));
  }
  return weights;
}

}  // namespace vero
