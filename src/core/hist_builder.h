#ifndef VERO_CORE_HIST_BUILDER_H_
#define VERO_CORE_HIST_BUILDER_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/threading.h"
#include "common/timer.h"
#include "core/binned.h"
#include "core/gradients.h"
#include "core/histogram.h"
#include "core/node_indexer.h"
#include "data/types.h"

namespace vero {

/// Shared histogram-construction subsystem (§2.1.2): one-sweep multi-node
/// layer builds over a row store or column store, with optional intra-worker
/// parallelism.
///
/// Determinism contract: parallelism partitions the OUTPUT (histogram
/// feature columns for row stores, whole columns for column stores), never
/// the input rows. Every histogram cell therefore has exactly one writer
/// that visits its contributions in the same order as the serial scan, so
/// the result is bit-identical to the serial build — and to the pre-builder
/// scalar loops — for any thread count (see docs/performance.md).
class HistogramBuilder {
 public:
  HistogramBuilder() = default;
  explicit HistogramBuilder(uint32_t num_threads)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {}

  uint32_t num_threads() const { return num_threads_; }

  /// Wall seconds and thread count of the most recent Build* call.
  double last_build_seconds() const { return last_build_seconds_; }
  uint32_t last_threads_used() const { return last_threads_used_; }

  /// One frontier node's histogram-construction assignment: scan `rows` into
  /// `hist`. All tasks of a layer build are accumulated in a single pass.
  struct NodeRows {
    Histogram* hist = nullptr;
    std::span<const InstanceId> rows;
  };

  /// Per-column scan strategy for column-store layer builds (QD3, §5.2.2).
  enum class ColumnScan {
    kLinear,        ///< One pass over the column via the instance-to-node map.
    kBinarySearch,  ///< Per build node, FindBin for each of its instances.
    kAuto,          ///< Per column, whichever the cost model says is cheaper.
  };

  /// Builds every task's histogram by scanning its rows of a row store
  /// (BinnedRowStore or ColumnGroup: anything with RowFeatures/RowBins).
  /// Row entries must be sorted by feature id. Only features in
  /// [feature_begin, feature_end) are accumulated, into histogram column
  /// f - feature_begin (the feature-parallel slice convention; pass 0 / D
  /// for a full-width store). `store_num_features` is the number of feature
  /// ids that can appear in the store — it gates the no-bounds-check fast
  /// path when the window covers the whole store.
  template <typename Store>
  void BuildRowStoreLayer(const Store& store, const GradientBuffer& grads,
                          std::span<const NodeRows> tasks,
                          uint32_t feature_begin, uint32_t feature_end,
                          uint32_t store_num_features);

  /// One sweep over all columns builds every frontier node at once, driven
  /// by the instance-to-node index (the XGBoost layer pass; QD1).
  /// `hist_of_node` maps NodeId -> histogram, nullptr for finished leaves.
  void BuildColumnStoreSweep(const BinnedColumnStore& store,
                             const GradientBuffer& grads,
                             const InstanceToNode& node_of,
                             std::span<Histogram* const> hist_of_node);

  /// Column-store layer build with a per-column scan-strategy choice (QD3):
  /// kAuto compares one linear pass (cost = nnz) against per-node binary
  /// searches (cost = build_instances * log2(nnz + 2)).
  void BuildColumnStoreLayer(const BinnedColumnStore& store,
                             const GradientBuffer& grads,
                             const InstanceToNode& node_of,
                             const RowPartition& partition,
                             std::span<const NodeId> build_nodes,
                             std::span<Histogram* const> hist_of_node,
                             ColumnScan policy);

  /// Serial accumulation of pre-materialized (feature, bin) entries that all
  /// share one gradient row (advisor calibration, tests).
  static void AccumulateEntries(Histogram* hist,
                                std::span<const FeatureId> features,
                                std::span<const BinId> bins,
                                const GradPair* grad_row);

 private:
  /// Runs fn(b) for b in [0, num_blocks) on min(num_threads, num_blocks)
  /// threads. Blocks are claimed dynamically — legal because every block
  /// writes a disjoint set of histogram cells, so the schedule cannot change
  /// the result. Records last_build_seconds / last_threads_used.
  template <typename Fn>
  void RunBlocks(size_t num_blocks, const Fn& fn) {
    WallTimer timer;
    const size_t threads =
        std::max<size_t>(1, std::min<size_t>(num_threads_, num_blocks));
    last_threads_used_ = static_cast<uint32_t>(threads);
    if (threads == 1) {
      for (size_t b = 0; b < num_blocks; ++b) fn(b);
    } else {
      std::atomic<size_t> next{0};
      ThreadPool* pool = EnsurePool();
      for (size_t t = 1; t < threads; ++t) {
        pool->Submit([&next, num_blocks, &fn] {
          for (;;) {
            const size_t b = next.fetch_add(1, std::memory_order_relaxed);
            if (b >= num_blocks) return;
            fn(b);
          }
        });
      }
      // The calling thread is worker 0.
      for (;;) {
        const size_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= num_blocks) break;
        fn(b);
      }
      pool->Wait();
    }
    timer.Stop();
    last_build_seconds_ = timer.Seconds();
  }

  ThreadPool* EnsurePool();

  uint32_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // Lazily created, num_threads - 1 workers.
  double last_build_seconds_ = 0.0;
  uint32_t last_threads_used_ = 1;
};

namespace histdetail {

/// Row scan with no feature-window checks: every entry of every row lands in
/// the histogram. dims==1 hoists (g, h) out of the entry loop and addresses
/// the flat double buffer directly.
template <typename Store>
void AccumulateRowsFull(const Store& store, const GradientBuffer& grads,
                        Histogram* hist, std::span<const InstanceId> rows) {
  if (hist->num_dims() == 1) {
    double* data = hist->raw_data();
    const size_t q = hist->num_bins();
    for (const InstanceId i : rows) {
      const auto features = store.RowFeatures(i);
      const auto bins = store.RowBins(i);
      const GradPair* grad = grads.row(i);
      const double g = grad->g;
      const double h = grad->h;
      for (size_t k = 0; k < features.size(); ++k) {
        const size_t cell =
            2 * (static_cast<size_t>(features[k]) * q + bins[k]);
        data[cell] += g;
        data[cell + 1] += h;
      }
    }
  } else {
    for (const InstanceId i : rows) {
      const auto features = store.RowFeatures(i);
      const auto bins = store.RowBins(i);
      const GradPair* grad = grads.row(i);
      for (size_t k = 0; k < features.size(); ++k) {
        hist->Add(features[k], bins[k], grad);
      }
    }
  }
}

/// Row scan restricted to features in [fb, fe), accumulated into histogram
/// column f - origin. Row entries are sorted by feature id, so each row
/// jumps to the window start and stops at its end; within the window the
/// entry order — hence the floating-point accumulation order — matches the
/// full serial scan.
template <typename Store>
void AccumulateRowsWindow(const Store& store, const GradientBuffer& grads,
                          Histogram* hist, std::span<const InstanceId> rows,
                          uint32_t origin, uint32_t fb, uint32_t fe) {
  const bool one_dim = hist->num_dims() == 1;
  double* data = hist->raw_data();
  const size_t q = hist->num_bins();
  for (const InstanceId i : rows) {
    const auto features = store.RowFeatures(i);
    const auto bins = store.RowBins(i);
    const GradPair* grad = grads.row(i);
    size_t k = 0;
    if (fb != 0) {
      k = static_cast<size_t>(
          std::lower_bound(features.begin(), features.end(), fb) -
          features.begin());
    }
    if (one_dim) {
      const double g = grad->g;
      const double h = grad->h;
      for (; k < features.size() && features[k] < fe; ++k) {
        const size_t cell =
            2 * ((static_cast<size_t>(features[k]) - origin) * q + bins[k]);
        data[cell] += g;
        data[cell + 1] += h;
      }
    } else {
      for (; k < features.size() && features[k] < fe; ++k) {
        hist->Add(features[k] - origin, bins[k], grad);
      }
    }
  }
}

}  // namespace histdetail

template <typename Store>
void HistogramBuilder::BuildRowStoreLayer(const Store& store,
                                          const GradientBuffer& grads,
                                          std::span<const NodeRows> tasks,
                                          uint32_t feature_begin,
                                          uint32_t feature_end,
                                          uint32_t store_num_features) {
  if (tasks.empty() || feature_end <= feature_begin) {
    last_build_seconds_ = 0.0;
    last_threads_used_ = 1;
    return;
  }
  // Blocks form a task x feature-range grid. The node axis is free
  // parallelism (each task's rows are scanned exactly once, as in the
  // serial build); the feature axis costs a per-row lower_bound and a
  // redundant traversal of the row entries outside the window, so it is
  // only split when there are fewer tasks than threads (e.g. the root
  // build). f_blocks = ceil(T / tasks) keeps every thread busy while
  // bounding the redundant-scan factor at that ratio.
  const uint32_t width = feature_end - feature_begin;
  const size_t f_blocks = std::min<size_t>(
      width, (num_threads_ + tasks.size() - 1) / tasks.size());
  const size_t num_blocks = tasks.size() * f_blocks;
  RunBlocks(num_blocks, [&](size_t block) {
    const NodeRows& task = tasks[block / f_blocks];
    const size_t fr = block % f_blocks;
    const uint32_t fb =
        feature_begin + static_cast<uint32_t>(width * fr / f_blocks);
    const uint32_t fe =
        feature_begin + static_cast<uint32_t>(width * (fr + 1) / f_blocks);
    if (fb == 0 && fe >= store_num_features) {
      histdetail::AccumulateRowsFull(store, grads, task.hist, task.rows);
    } else {
      histdetail::AccumulateRowsWindow(store, grads, task.hist, task.rows,
                                       feature_begin, fb, fe);
    }
  });
}

}  // namespace vero

#endif  // VERO_CORE_HIST_BUILDER_H_
