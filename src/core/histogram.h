#ifndef VERO_CORE_HISTOGRAM_H_
#define VERO_CORE_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/gradients.h"
#include "data/types.h"

namespace vero {

/// Flat raw-double kernels behind Histogram's bulk operations. Operating on
/// contiguous double arrays (2 doubles per GradPair cell) keeps the loops
/// trivially auto-vectorizable; HistogramBuilder reuses them for block-wise
/// accumulation.
namespace histkernel {

/// dst[i] += src[i] for i in [0, n).
void AddInto(double* dst, const double* src, size_t n);

/// dst[i] = a[i] - b[i] for i in [0, n).
void SetDifference(double* dst, const double* a, const double* b, size_t n);

/// dst[i] = 0 for i in [0, n).
void Zero(double* dst, size_t n);

}  // namespace histkernel

/// Gradient histogram for one tree node over a set of features
/// (Figure 3 of the paper). Bin (f, b) accumulates the per-class (g, h)
/// sums of instances whose f-th feature falls in bin b.
///
/// Layout: data[(f * num_bins + b) * num_dims + k], one GradPair per class,
/// so the buffer doubles as a flat double array for all-reduce /
/// reduce-scatter (2 doubles per GradPair). Total size is
/// 2 * F * q * C * 8 bytes — exactly the paper's Sizehist for F features.
class Histogram {
 public:
  Histogram() = default;
  Histogram(uint32_t num_features, uint32_t num_bins, uint32_t num_dims);

  uint32_t num_features() const { return num_features_; }
  uint32_t num_bins() const { return num_bins_; }
  uint32_t num_dims() const { return num_dims_; }
  bool empty() const { return data_.empty(); }

  /// Zeroes all bins, keeping the shape.
  void Clear();

  GradPair& at(uint32_t feature, uint32_t bin, uint32_t dim) {
    return data_[Index(feature, bin, dim)];
  }
  const GradPair& at(uint32_t feature, uint32_t bin, uint32_t dim) const {
    return data_[Index(feature, bin, dim)];
  }

  /// Adds the C-dim gradient row `grads` into bin (feature, bin); the hot
  /// inner loop of histogram construction.
  void Add(uint32_t feature, uint32_t bin, const GradPair* grads) {
    GradPair* cell = data_.data() + Index(feature, bin, 0);
    for (uint32_t k = 0; k < num_dims_; ++k) cell[k] += grads[k];
  }

  /// Element-wise accumulation of an identically shaped histogram.
  void AddHistogram(const Histogram& other);

  /// Sets this histogram to parent - child (the histogram subtraction
  /// technique of §2.1.2). Shapes must match.
  void SetToDifference(const Histogram& parent, const Histogram& child);

  /// Per-class totals over the bins of one feature (the "present" mass;
  /// node totals minus this gives the missing-value bucket).
  GradStats FeatureTotal(uint32_t feature) const;

  /// Raw buffer as doubles (2 * num cells), for collective reductions.
  double* raw_data() { return reinterpret_cast<double*>(data_.data()); }
  const double* raw_data() const {
    return reinterpret_cast<const double*>(data_.data());
  }
  size_t raw_size() const { return data_.size() * 2; }

  /// Heap bytes held (the paper's histogram-memory metric).
  uint64_t MemoryBytes() const { return data_.capacity() * sizeof(GradPair); }

 private:
  size_t Index(uint32_t feature, uint32_t bin, uint32_t dim) const {
    return (static_cast<size_t>(feature) * num_bins_ + bin) * num_dims_ + dim;
  }

  uint32_t num_features_ = 0;
  uint32_t num_bins_ = 0;
  uint32_t num_dims_ = 0;
  std::vector<GradPair> data_;
};

/// Node-keyed histogram storage with peak-memory accounting.
///
/// Training keeps parent histograms alive until both children are resolved
/// (subtraction), so the pool's peak tracks the paper's
/// Sizehist * 2^(L-2) memory analysis. Released buffers are recycled to
/// avoid allocator churn in the training loop.
class HistogramPool {
 public:
  HistogramPool() = default;

  /// Returns a cleared histogram for `node`, reusing a released buffer of
  /// the same shape when available. Dies if `node` already has one.
  Histogram* Acquire(NodeId node, uint32_t num_features, uint32_t num_bins,
                     uint32_t num_dims);

  /// Histogram of `node`, or nullptr.
  Histogram* Get(NodeId node);
  const Histogram* Get(NodeId node) const;

  /// Releases `node`'s histogram back to the freelist (no-op if absent).
  void Release(NodeId node);

  /// Releases everything including the freelist.
  void Clear();

  /// Current live bytes (excludes freelist) and high-water mark.
  uint64_t CurrentBytes() const { return current_bytes_; }
  uint64_t PeakBytes() const { return peak_bytes_; }
  void ResetPeak() { peak_bytes_ = current_bytes_; }

 private:
  std::unordered_map<NodeId, Histogram> live_;
  std::vector<Histogram> freelist_;
  uint64_t current_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
};

}  // namespace vero

#endif  // VERO_CORE_HISTOGRAM_H_
