#include "core/tree.h"

#include <algorithm>

#include "common/logging.h"
#include "core/loss.h"

namespace vero {

Tree::Tree(uint32_t max_layers, uint32_t num_dims)
    : max_layers_(max_layers), num_dims_(num_dims) {
  VERO_CHECK_GE(max_layers, 1u);
  VERO_CHECK_LE(max_layers, 24u);
  nodes_.resize((size_t{1} << max_layers) - 1);
  // Root starts as a (zero-weight) leaf; training overwrites it.
  nodes_[0].state = TreeNode::State::kLeaf;
  nodes_[0].leaf_values.assign(num_dims_, 0.0f);
}

void Tree::SetSplit(NodeId id, FeatureId feature, float split_value, BinId bin,
                    bool default_left, double gain) {
  VERO_CHECK(Exists(id));
  VERO_CHECK_LT(static_cast<uint32_t>(RightChild(id)), max_nodes())
      << "split would exceed tree depth";
  TreeNode& n = nodes_[id];
  n.state = TreeNode::State::kInternal;
  n.feature = feature;
  n.split_value = split_value;
  n.split_bin = bin;
  n.default_left = default_left;
  n.gain = gain;
  n.leaf_values.clear();
  // Children materialize as placeholder leaves.
  for (NodeId child : {LeftChild(id), RightChild(id)}) {
    nodes_[child].state = TreeNode::State::kLeaf;
    nodes_[child].leaf_values.assign(num_dims_, 0.0f);
  }
}

void Tree::SetLeaf(NodeId id, std::vector<float> weights) {
  VERO_CHECK_GE(id, 0);
  VERO_CHECK_LT(static_cast<uint32_t>(id), max_nodes());
  VERO_CHECK_EQ(weights.size(), num_dims_);
  TreeNode& n = nodes_[id];
  n.state = TreeNode::State::kLeaf;
  n.feature = kInvalidFeature;
  n.leaf_values = std::move(weights);
}

uint32_t Tree::NumLeaves() const {
  uint32_t count = 0;
  for (const TreeNode& n : nodes_) {
    if (n.state == TreeNode::State::kLeaf) ++count;
  }
  return count;
}

uint32_t Tree::NumNodes() const {
  uint32_t count = 0;
  for (const TreeNode& n : nodes_) {
    if (n.state != TreeNode::State::kUnused) ++count;
  }
  return count;
}

NodeId Tree::Route(std::span<const FeatureId> features,
                   std::span<const float> values) const {
  VERO_CHECK(!nodes_.empty()) << "Route on an empty tree";
  NodeId id = 0;
  while (nodes_[id].state == TreeNode::State::kInternal) {
    const TreeNode& n = nodes_[id];
    // A malformed tree (e.g. deserialized from damaged bytes) can mark a
    // last-layer node internal; descending would index past the node array.
    VERO_CHECK_LT(static_cast<uint32_t>(RightChild(id)), max_nodes())
        << "malformed tree: internal node " << id
        << " walks off the node array";
    const auto it =
        std::lower_bound(features.begin(), features.end(), n.feature);
    bool go_left;
    if (it == features.end() || *it != n.feature) {
      go_left = n.default_left;  // Missing value.
    } else {
      const float v = values[it - features.begin()];
      go_left = (v <= n.split_value);
    }
    id = go_left ? LeftChild(id) : RightChild(id);
  }
  VERO_CHECK(nodes_[id].state == TreeNode::State::kLeaf)
      << "malformed tree: route ended on unused node " << id;
  return id;
}

void Tree::PredictInto(std::span<const FeatureId> features,
                       std::span<const float> values, double scale,
                       double* margins) const {
  const NodeId leaf = Route(features, values);
  const std::vector<float>& w = nodes_[leaf].leaf_values;
  for (uint32_t k = 0; k < num_dims_; ++k) {
    margins[k] += scale * w[k];
  }
}

void Tree::SerializeTo(ByteWriter* writer) const {
  writer->WriteU32(max_layers_);
  writer->WriteU32(num_dims_);
  uint32_t used = 0;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state != TreeNode::State::kUnused) ++used;
  }
  writer->WriteU32(used);
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    if (n.state == TreeNode::State::kUnused) continue;
    writer->WriteU32(i);
    writer->WriteU8(static_cast<uint8_t>(n.state));
    writer->WriteU32(n.feature);
    writer->WriteF32(n.split_value);
    writer->WriteU16(n.split_bin);
    writer->WriteBool(n.default_left);
    writer->WriteF64(n.gain);
    writer->WriteVector(n.leaf_values);
  }
}

Status Tree::Deserialize(ByteReader* reader, Tree* out) {
  uint32_t max_layers = 0, num_dims = 0, used = 0;
  VERO_RETURN_IF_ERROR(reader->ReadU32(&max_layers));
  VERO_RETURN_IF_ERROR(reader->ReadU32(&num_dims));
  if (max_layers < 1 || max_layers > 24 || num_dims == 0) {
    return Status::Corruption("bad tree header");
  }
  *out = Tree(max_layers, num_dims);
  out->nodes_[0].state = TreeNode::State::kUnused;  // Rebuilt from stream.
  out->nodes_[0].leaf_values.clear();
  VERO_RETURN_IF_ERROR(reader->ReadU32(&used));
  for (uint32_t k = 0; k < used; ++k) {
    uint32_t id = 0;
    VERO_RETURN_IF_ERROR(reader->ReadU32(&id));
    if (id >= out->nodes_.size()) return Status::Corruption("bad node id");
    TreeNode& n = out->nodes_[id];
    uint8_t state = 0;
    VERO_RETURN_IF_ERROR(reader->ReadU8(&state));
    if (state == 0 || state > 2) return Status::Corruption("bad node state");
    n.state = static_cast<TreeNode::State>(state);
    VERO_RETURN_IF_ERROR(reader->ReadU32(&n.feature));
    VERO_RETURN_IF_ERROR(reader->ReadF32(&n.split_value));
    VERO_RETURN_IF_ERROR(reader->ReadU16(&n.split_bin));
    VERO_RETURN_IF_ERROR(reader->ReadBool(&n.default_left));
    VERO_RETURN_IF_ERROR(reader->ReadF64(&n.gain));
    VERO_RETURN_IF_ERROR(reader->ReadVector(&n.leaf_values));
  }
  return Status::OK();
}

bool Tree::operator==(const Tree& other) const {
  if (max_layers_ != other.max_layers_ || num_dims_ != other.num_dims_) {
    return false;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& a = nodes_[i];
    const TreeNode& b = other.nodes_[i];
    if (a.state != b.state) return false;
    if (a.state == TreeNode::State::kUnused) continue;
    if (a.state == TreeNode::State::kInternal) {
      if (a.feature != b.feature || a.split_bin != b.split_bin ||
          a.split_value != b.split_value || a.default_left != b.default_left) {
        return false;
      }
    } else if (a.leaf_values != b.leaf_values) {
      return false;
    }
  }
  return true;
}

void GbdtModel::PredictMargins(std::span<const FeatureId> features,
                               std::span<const float> values,
                               double* margins) const {
  const uint32_t dims = margin_dims();
  std::fill(margins, margins + dims, 0.0);
  for (const Tree& tree : trees_) {
    tree.PredictInto(features, values, learning_rate_, margins);
  }
}

std::vector<double> GbdtModel::PredictDatasetMargins(
    const Dataset& dataset) const {
  const uint32_t dims = margin_dims();
  const CsrMatrix& m = dataset.matrix();
  std::vector<double> margins(static_cast<size_t>(dataset.num_instances()) *
                              dims);
  for (InstanceId i = 0; i < dataset.num_instances(); ++i) {
    PredictMargins(m.RowFeatures(i), m.RowValues(i),
                   margins.data() + static_cast<size_t>(i) * dims);
  }
  return margins;
}

void GbdtModel::PredictProba(std::span<const FeatureId> features,
                             std::span<const float> values,
                             double* proba) const {
  const uint32_t dims = margin_dims();
  PredictMargins(features, values, proba);
  if (task_ == Task::kBinary) {
    proba[0] = Sigmoid(proba[0]);
  } else if (task_ == Task::kMultiClass) {
    SoftmaxInPlace(proba, dims);
  }
}

void GbdtModel::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(task_));
  writer->WriteU32(num_classes_);
  writer->WriteF64(learning_rate_);
  writer->WriteU32(static_cast<uint32_t>(trees_.size()));
  for (const Tree& tree : trees_) tree.SerializeTo(writer);
}

std::vector<double> GbdtModel::FeatureImportance(uint32_t num_features,
                                                 ImportanceType type) const {
  std::vector<double> importance(num_features, 0.0);
  for (const Tree& tree : trees_) {
    for (NodeId id = 0; id < static_cast<NodeId>(tree.max_nodes()); ++id) {
      if (!tree.Exists(id)) continue;
      const TreeNode& n = tree.node(id);
      if (n.state != TreeNode::State::kInternal) continue;
      VERO_DCHECK_LT(n.feature, num_features);
      importance[n.feature] +=
          type == ImportanceType::kGain ? n.gain : 1.0;
    }
  }
  return importance;
}

Status GbdtModel::Deserialize(ByteReader* reader, GbdtModel* out) {
  uint8_t task = 0;
  VERO_RETURN_IF_ERROR(reader->ReadU8(&task));
  if (task > 2) return Status::Corruption("bad task");
  out->task_ = static_cast<Task>(task);
  VERO_RETURN_IF_ERROR(reader->ReadU32(&out->num_classes_));
  VERO_RETURN_IF_ERROR(reader->ReadF64(&out->learning_rate_));
  uint32_t num_trees = 0;
  VERO_RETURN_IF_ERROR(reader->ReadU32(&num_trees));
  // Each serialized tree needs at least a header; an adversarial count
  // larger than that bound cannot be honest, so reject before allocating.
  if (num_trees > reader->remaining() / 12) {
    return Status::Corruption("tree count exceeds payload");
  }
  out->trees_.clear();
  out->trees_.reserve(num_trees);
  for (uint32_t t = 0; t < num_trees; ++t) {
    Tree tree;
    VERO_RETURN_IF_ERROR(Tree::Deserialize(reader, &tree));
    out->trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

}  // namespace vero
