#include "core/loss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/threading.h"

namespace vero {
namespace {

// Floor on hessians to keep leaf weights bounded.
constexpr double kMinHessian = 1e-16;
// Floor on probabilities inside log() for loss reporting.
constexpr double kMinProb = 1e-15;

}  // namespace

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

void SoftmaxInPlace(double* p, uint32_t dims) {
  double max_v = p[0];
  for (uint32_t k = 1; k < dims; ++k) max_v = std::max(max_v, p[k]);
  double sum = 0.0;
  for (uint32_t k = 0; k < dims; ++k) {
    p[k] = std::exp(p[k] - max_v);
    sum += p[k];
  }
  for (uint32_t k = 0; k < dims; ++k) p[k] /= sum;
}

void SquareLoss::ComputeGradients(const std::vector<float>& labels,
                                  const std::vector<double>& margins,
                                  uint32_t begin, uint32_t end,
                                  GradientBuffer* out) const {
  for (uint32_t i = begin; i < end; ++i) {
    GradPair& gp = out->at(i - begin, 0);
    gp.g = margins[i] - labels[i];
    gp.h = 1.0;
  }
}

double SquareLoss::ComputeLoss(const std::vector<float>& labels,
                               const std::vector<double>& margins,
                               uint32_t begin, uint32_t end) const {
  double total = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    const double d = margins[i] - labels[i];
    total += 0.5 * d * d;
  }
  return (end > begin) ? total / (end - begin) : 0.0;
}

void LogisticLoss::ComputeGradients(const std::vector<float>& labels,
                                    const std::vector<double>& margins,
                                    uint32_t begin, uint32_t end,
                                    GradientBuffer* out) const {
  for (uint32_t i = begin; i < end; ++i) {
    const double p = Sigmoid(margins[i]);
    GradPair& gp = out->at(i - begin, 0);
    gp.g = p - labels[i];
    gp.h = std::max(p * (1.0 - p), kMinHessian);
  }
}

double LogisticLoss::ComputeLoss(const std::vector<float>& labels,
                                 const std::vector<double>& margins,
                                 uint32_t begin, uint32_t end) const {
  double total = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    const double p = Sigmoid(margins[i]);
    const double y = labels[i];
    total -= y * std::log(std::max(p, kMinProb)) +
             (1.0 - y) * std::log(std::max(1.0 - p, kMinProb));
  }
  return (end > begin) ? total / (end - begin) : 0.0;
}

void SoftmaxLoss::ComputeGradients(const std::vector<float>& labels,
                                   const std::vector<double>& margins,
                                   uint32_t begin, uint32_t end,
                                   GradientBuffer* out) const {
  const uint32_t c = num_classes_;
  std::vector<double> p(c);
  for (uint32_t i = begin; i < end; ++i) {
    for (uint32_t k = 0; k < c; ++k) {
      p[k] = margins[static_cast<size_t>(i) * c + k];
    }
    SoftmaxInPlace(p.data(), c);
    const uint32_t y = static_cast<uint32_t>(labels[i]);
    VERO_DCHECK_LT(y, c);
    for (uint32_t k = 0; k < c; ++k) {
      GradPair& gp = out->at(i - begin, k);
      gp.g = p[k] - (k == y ? 1.0 : 0.0);
      gp.h = std::max(2.0 * p[k] * (1.0 - p[k]), kMinHessian);
    }
  }
}

double SoftmaxLoss::ComputeLoss(const std::vector<float>& labels,
                                const std::vector<double>& margins,
                                uint32_t begin, uint32_t end) const {
  const uint32_t c = num_classes_;
  std::vector<double> p(c);
  double total = 0.0;
  for (uint32_t i = begin; i < end; ++i) {
    for (uint32_t k = 0; k < c; ++k) {
      p[k] = margins[static_cast<size_t>(i) * c + k];
    }
    SoftmaxInPlace(p.data(), c);
    const uint32_t y = static_cast<uint32_t>(labels[i]);
    total -= std::log(std::max(p[y], kMinProb));
  }
  return (end > begin) ? total / (end - begin) : 0.0;
}

std::unique_ptr<Loss> MakeLossForTask(Task task, uint32_t num_classes) {
  switch (task) {
    case Task::kRegression:
      return std::make_unique<SquareLoss>();
    case Task::kBinary:
      return std::make_unique<LogisticLoss>();
    case Task::kMultiClass:
      VERO_CHECK_GE(num_classes, 3u);
      return std::make_unique<SoftmaxLoss>(num_classes);
  }
  VERO_LOG(Fatal) << "unknown task";
  return nullptr;
}

void ComputeGradientsParallel(const Loss& loss,
                              const std::vector<float>& labels,
                              const std::vector<double>& margins, uint32_t n,
                              uint32_t num_threads, GradientBuffer* out) {
  const uint32_t chunks = std::min(num_threads, n);
  if (chunks <= 1) {
    loss.ComputeGradients(labels, margins, 0, n, out);
    return;
  }
  ParallelFor(chunks, chunks, [&](size_t c) {
    const auto begin = static_cast<uint32_t>(uint64_t{n} * c / chunks);
    const auto end = static_cast<uint32_t>(uint64_t{n} * (c + 1) / chunks);
    // ComputeGradients writes rows relative to `begin`; stage each chunk in
    // its own buffer and copy into place (bit-exact — plain assignment).
    const uint32_t dims = out->num_dims();
    GradientBuffer chunk(end - begin, dims);
    loss.ComputeGradients(labels, margins, begin, end, &chunk);
    for (uint32_t i = begin; i < end; ++i) {
      for (uint32_t k = 0; k < dims; ++k) {
        out->at(i, k) = chunk.at(i - begin, k);
      }
    }
  });
}

}  // namespace vero
