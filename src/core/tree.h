#ifndef VERO_CORE_TREE_H_
#define VERO_CORE_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/types.h"

namespace vero {

/// One node of a decision tree (heap layout: root 0, children 2i+1/2i+2).
struct TreeNode {
  enum class State : uint8_t { kUnused = 0, kInternal = 1, kLeaf = 2 };

  State state = State::kUnused;
  FeatureId feature = kInvalidFeature;  ///< Split feature (internal only).
  float split_value = 0.0f;             ///< Go left iff value <= split_value.
  BinId split_bin = 0;                  ///< Same test in bin space.
  bool default_left = false;            ///< Direction for missing values.
  double gain = 0.0;                    ///< Split gain (internal only).
  std::vector<float> leaf_values;       ///< C leaf weights (leaf only).
};

/// A single decision tree with vector-valued leaves (dimension C; C == 1 for
/// regression and binary tasks).
class Tree {
 public:
  Tree() = default;
  /// `max_layers` is L: depth capacity including the root layer.
  Tree(uint32_t max_layers, uint32_t num_dims);

  uint32_t max_layers() const { return max_layers_; }
  uint32_t num_dims() const { return num_dims_; }
  uint32_t max_nodes() const { return (1u << max_layers_) - 1; }

  TreeNode& node(NodeId id) { return nodes_[id]; }
  const TreeNode& node(NodeId id) const { return nodes_[id]; }
  /// Whole node array in heap order (serving compilers iterate this).
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool Exists(NodeId id) const {
    return id >= 0 && static_cast<uint32_t>(id) < nodes_.size() &&
           nodes_[id].state != TreeNode::State::kUnused;
  }

  /// Converts `id` into an internal node splitting on (feature, bin).
  void SetSplit(NodeId id, FeatureId feature, float split_value, BinId bin,
                bool default_left, double gain);

  /// Converts `id` into a leaf with the given C-dim weights.
  void SetLeaf(NodeId id, std::vector<float> weights);

  /// Number of leaves currently in the tree.
  uint32_t NumLeaves() const;
  /// Number of nodes (internal + leaf).
  uint32_t NumNodes() const;

  /// Walks the tree for one instance given its sorted sparse row; returns
  /// the leaf reached. `features` must be sorted ascending.
  NodeId Route(std::span<const FeatureId> features,
               std::span<const float> values) const;

  /// Adds `scale` x leaf weights of the routed leaf into `margins` (C dims).
  void PredictInto(std::span<const FeatureId> features,
                   std::span<const float> values, double scale,
                   double* margins) const;

  void SerializeTo(ByteWriter* writer) const;
  static Status Deserialize(ByteReader* reader, Tree* out);

  bool operator==(const Tree& other) const;

 private:
  uint32_t max_layers_ = 0;
  uint32_t num_dims_ = 1;
  std::vector<TreeNode> nodes_;
};

/// A trained GBDT model: an ordered forest plus the task metadata needed to
/// turn margins into predictions.
class GbdtModel {
 public:
  GbdtModel() = default;
  GbdtModel(Task task, uint32_t num_classes, double learning_rate)
      : task_(task), num_classes_(num_classes), learning_rate_(learning_rate) {}

  Task task() const { return task_; }
  uint32_t num_classes() const { return num_classes_; }
  uint32_t margin_dims() const {
    return task_ == Task::kMultiClass ? num_classes_ : 1;
  }
  double learning_rate() const { return learning_rate_; }

  void AddTree(Tree tree) { trees_.push_back(std::move(tree)); }
  size_t num_trees() const { return trees_.size(); }
  const Tree& tree(size_t t) const { return trees_[t]; }
  const std::vector<Tree>& trees() const { return trees_; }

  /// Raw margins (sum of learning_rate x leaf values) for one instance.
  void PredictMargins(std::span<const FeatureId> features,
                      std::span<const float> values, double* margins) const;

  /// Margins for every instance of a dataset, row-major N x margin_dims.
  std::vector<double> PredictDatasetMargins(const Dataset& dataset) const;

  /// Class probabilities (binary: P(y=1) single value; multi-class: C
  /// values) for one instance.
  void PredictProba(std::span<const FeatureId> features,
                    std::span<const float> values, double* proba) const;

  void SerializeTo(ByteWriter* writer) const;
  static Status Deserialize(ByteReader* reader, GbdtModel* out);

  /// How feature importance is scored.
  enum class ImportanceType {
    kGain,        ///< Sum of split gains where the feature is used.
    kSplitCount,  ///< Number of splits using the feature.
  };

  /// Per-feature importance over `num_features` features (features never
  /// used score 0).
  std::vector<double> FeatureImportance(uint32_t num_features,
                                        ImportanceType type) const;

 private:
  Task task_ = Task::kBinary;
  uint32_t num_classes_ = 2;
  double learning_rate_ = 0.1;
  std::vector<Tree> trees_;
};

}  // namespace vero

#endif  // VERO_CORE_TREE_H_
