#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "core/loss.h"

namespace vero {

double Auc(const std::vector<float>& labels,
           const std::vector<double>& scores) {
  VERO_CHECK_EQ(labels.size(), scores.size());
  const size_t n = labels.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });

  // Sum ranks of positives (average ranks across score ties), then apply the
  // Mann-Whitney identity.
  double positive_rank_sum = 0.0;
  uint64_t num_positive = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) + j);
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        positive_rank_sum += avg_rank;
        ++num_positive;
      }
    }
    i = j;
  }
  const uint64_t num_negative = n - num_positive;
  if (num_positive == 0 || num_negative == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) * (num_positive + 1) / 2;
  return u / (static_cast<double>(num_positive) * num_negative);
}

double Accuracy(const std::vector<float>& labels,
                const std::vector<double>& margins, uint32_t num_dims) {
  const size_t n = labels.size();
  VERO_CHECK_EQ(margins.size(), n * num_dims);
  if (n == 0) return 0.0;
  uint64_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t pred;
    if (num_dims == 1) {
      pred = margins[i] > 0.0 ? 1 : 0;
    } else {
      pred = 0;
      double best = margins[i * num_dims];
      for (uint32_t k = 1; k < num_dims; ++k) {
        if (margins[i * num_dims + k] > best) {
          best = margins[i * num_dims + k];
          pred = k;
        }
      }
    }
    if (pred == static_cast<uint32_t>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / n;
}

double Rmse(const std::vector<float>& labels,
            const std::vector<double>& margins) {
  VERO_CHECK_EQ(labels.size(), margins.size());
  if (labels.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double d = margins[i] - labels[i];
    total += d * d;
  }
  return std::sqrt(total / labels.size());
}

double LogLoss(Task task, uint32_t num_classes,
               const std::vector<float>& labels,
               const std::vector<double>& margins) {
  const auto loss = MakeLossForTask(task, num_classes);
  return loss->ComputeLoss(labels, margins, 0,
                           static_cast<uint32_t>(labels.size()));
}

MetricValue EvaluateMargins(Task task, uint32_t num_classes,
                            const std::vector<float>& labels,
                            const std::vector<double>& margins) {
  switch (task) {
    case Task::kBinary:
      return {"auc", Auc(labels, margins), true};
    case Task::kMultiClass:
      return {"accuracy", Accuracy(labels, margins, num_classes), true};
    case Task::kRegression:
      return {"rmse", Rmse(labels, margins), false};
  }
  VERO_LOG(Fatal) << "unknown task";
  return {};
}

MetricValue EvaluateModel(const GbdtModel& model, const Dataset& dataset) {
  const std::vector<double> margins = model.PredictDatasetMargins(dataset);
  return EvaluateMargins(dataset.task(), dataset.num_classes(),
                         dataset.labels(), margins);
}

}  // namespace vero
