#ifndef VERO_CORE_GBDT_PARAMS_H_
#define VERO_CORE_GBDT_PARAMS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vero {

/// How trees grow.
enum class GrowthPolicy {
  /// Layer by layer to L layers (the paper's protocol; all quadrants).
  kLevelWise,
  /// Best-first: always split the leaf with the highest gain, up to
  /// max_leaves (LightGBM-style; reference trainer only).
  kLeafWise,
};

/// Hyper-parameters for GBDT training, matching the paper's notation
/// (§3: T trees of L layers, q candidate splits; §2.1.1: eta, lambda, gamma).
struct GbdtParams {
  /// T: number of boosting rounds. Each round trains one tree (with C-dim
  /// leaf vectors in the multi-class case).
  uint32_t num_trees = 100;
  /// L: number of tree layers including the root (an L-layer tree has at
  /// most 2^(L-1) leaves). The paper's default is 8.
  uint32_t num_layers = 8;
  /// q: number of candidate splits (histogram bins) per feature.
  uint32_t num_candidate_splits = 20;
  /// eta: learning rate / shrinkage.
  double learning_rate = 0.1;
  /// lambda: L2 regularization on leaf weights.
  double reg_lambda = 1.0;
  /// gamma: complexity penalty per leaf.
  double reg_gamma = 0.0;
  /// Minimum gain required to split a node.
  double min_split_gain = 0.0;
  /// Minimum number of instances on each child of a split.
  uint32_t min_child_instances = 1;
  /// Retained entries per quantile sketch (split-proposal accuracy knob).
  uint32_t sketch_entries = 256;
  /// Enables the histogram subtraction technique (§2.1.2). Exposed so the
  /// ablation bench can quantify its effect.
  bool histogram_subtraction = true;
  /// Intra-worker threads for histogram builds and the gradient pass.
  /// 1 = fully serial (the default). Any value yields bit-identical models:
  /// HistogramBuilder partitions output cells, not input rows, so every
  /// accumulation order matches the serial build (docs/performance.md).
  uint32_t num_threads = 1;

  // ---- Extensions beyond the paper's protocol (reference trainer) -------

  /// Tree growth policy. Distributed quadrants always grow level-wise.
  GrowthPolicy growth = GrowthPolicy::kLevelWise;
  /// Leaf budget for leaf-wise growth; 0 means 2^(L-1) (the level-wise
  /// equivalent).
  uint32_t max_leaves = 0;
  /// Fraction of instances sampled (without replacement) per tree.
  double row_subsample = 1.0;
  /// Fraction of features eligible for splits per tree.
  double column_subsample = 1.0;
  /// Stop when the validation metric has not improved for this many rounds
  /// (0 disables; requires a validation set).
  uint32_t early_stopping_rounds = 0;
  /// Seed for subsampling.
  uint64_t seed = 42;

  /// Validates ranges; returns InvalidArgument with a reason on failure.
  Status Validate() const {
    if (num_trees == 0) return Status::InvalidArgument("num_trees == 0");
    if (num_layers < 2) return Status::InvalidArgument("num_layers < 2");
    if (num_layers > 24) return Status::InvalidArgument("num_layers > 24");
    if (num_candidate_splits == 0 || num_candidate_splits > 4096) {
      return Status::InvalidArgument("num_candidate_splits out of range");
    }
    if (learning_rate <= 0.0) {
      return Status::InvalidArgument("learning_rate <= 0");
    }
    if (reg_lambda < 0.0) return Status::InvalidArgument("reg_lambda < 0");
    if (reg_gamma < 0.0) return Status::InvalidArgument("reg_gamma < 0");
    if (row_subsample <= 0.0 || row_subsample > 1.0) {
      return Status::InvalidArgument("row_subsample not in (0, 1]");
    }
    if (column_subsample <= 0.0 || column_subsample > 1.0) {
      return Status::InvalidArgument("column_subsample not in (0, 1]");
    }
    if (max_leaves == 1) {
      return Status::InvalidArgument("max_leaves must be 0 or >= 2");
    }
    if (num_threads == 0 || num_threads > 256) {
      return Status::InvalidArgument("num_threads not in [1, 256]");
    }
    return Status::OK();
  }

  /// Effective leaf budget for leaf-wise growth.
  uint32_t EffectiveMaxLeaves() const {
    return max_leaves != 0 ? max_leaves : (1u << (num_layers - 1));
  }
};

}  // namespace vero

#endif  // VERO_CORE_GBDT_PARAMS_H_
