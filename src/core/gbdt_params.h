#ifndef VERO_CORE_GBDT_PARAMS_H_
#define VERO_CORE_GBDT_PARAMS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vero {

/// How trees grow.
enum class GrowthPolicy {
  /// Layer by layer to L layers (the paper's protocol; all quadrants).
  kLevelWise,
  /// Best-first: always split the leaf with the highest gain, up to
  /// max_leaves (LightGBM-style; reference trainer only).
  kLeafWise,
};

/// Straggler handling of the distributed trainers' aggregation collectives.
/// Mirrors cluster-level MitigationMode without depending on src/cluster/
/// (core stays collective-free); dist_common's MitigationFromParams maps it.
enum class StragglerMitigation {
  /// Fully synchronous aggregation (the paper's protocol; the default, and
  /// bit-identical to builds that predate mitigation).
  kStrict,
  /// Bounded-staleness aggregation: close each aggregation once the on-time
  /// ranks have contributed within staleness_deadline_seconds; a late
  /// rank's histogram is dropped for the layer (its gradient mass re-enters
  /// the next layer's rebuilt histograms) and never deferred more than
  /// staleness_bound consecutive aggregations. Trades bounded accuracy
  /// deviation for straggler immunity (docs/straggler_mitigation.md).
  kBoundedStaleness,
  /// Speculative re-execution: a rank delayed beyond
  /// speculation_threshold_seconds has its block re-served by an idle
  /// backup; models stay bit-identical to strict at the price of duplicated
  /// traffic (surfaced as wasted_bytes / wasted_seconds).
  kSpeculative,
};

/// End-to-end integrity auditing of the distributed trainers. Mirrors the
/// cluster-level auditor modes without depending on src/integrity/ (core
/// stays collective-free); dist_common wires the auditor from it.
enum class IntegrityLevel {
  /// No auditing: zero extra collectives, metrics, or spans — bit-identical
  /// to builds that predate the auditor (the default).
  kOff,
  /// End-to-end content checks above the transport CRC: cross-rank digest
  /// agreement over replicated post-collective buffers and mass checksums
  /// over scattered aggregations, with majority-vote blame. Catches silent
  /// transport corruption (FaultKind::kSilentCorrupt).
  kChecksum,
  /// kChecksum plus algorithmic invariants: non-finite scans of gradients,
  /// histograms, split gains, and margins; hessian-mass identities against
  /// the all-reduced gradient sums; and the parent == left + right
  /// subtraction cross-check. Also catches compute-born poison
  /// (FaultKind::kPoison) and triggers targeted layer recompute before
  /// escalating to checkpoint rollback (docs/fault_tolerance.md).
  kFull,
};

/// Histogram-payload compression of the distributed trainers' aggregation
/// collectives. Mirrors the cluster-level CollectiveCompression codec modes
/// without depending on src/cluster/ (core stays collective-free);
/// dist_common's CodecFromParams maps it. See docs/wire_formats.md for the
/// frame layout and docs/cost_model.md for the pricing.
enum class HistogramCompression {
  /// Dense raw doubles on the wire — bit-identical to builds that predate
  /// the codec (the default).
  kOff,
  /// Lossless per-feature dense/sparse switch: blocks at or below the
  /// density threshold ship varint bin indices + raw nonzero doubles.
  kSparse,
  /// kSparse with gap-coded (delta + varint) bin indices — strictly no
  /// larger than kSparse on the wire, still lossless.
  kSparseDelta,
  /// 16-bit linear quantization with per-block scale/offset. Lossy (max abs
  /// error <= range/65535/2 per block, deterministic reconstruction on
  /// every rank); non-finite blocks fall back to lossless.
  kQuantized,
};

/// Hyper-parameters for GBDT training, matching the paper's notation
/// (§3: T trees of L layers, q candidate splits; §2.1.1: eta, lambda, gamma).
struct GbdtParams {
  /// T: number of boosting rounds. Each round trains one tree (with C-dim
  /// leaf vectors in the multi-class case).
  uint32_t num_trees = 100;
  /// L: number of tree layers including the root (an L-layer tree has at
  /// most 2^(L-1) leaves). The paper's default is 8.
  uint32_t num_layers = 8;
  /// q: number of candidate splits (histogram bins) per feature.
  uint32_t num_candidate_splits = 20;
  /// eta: learning rate / shrinkage.
  double learning_rate = 0.1;
  /// lambda: L2 regularization on leaf weights.
  double reg_lambda = 1.0;
  /// gamma: complexity penalty per leaf.
  double reg_gamma = 0.0;
  /// Minimum gain required to split a node.
  double min_split_gain = 0.0;
  /// Minimum number of instances on each child of a split.
  uint32_t min_child_instances = 1;
  /// Retained entries per quantile sketch (split-proposal accuracy knob).
  uint32_t sketch_entries = 256;
  /// Enables the histogram subtraction technique (§2.1.2). Exposed so the
  /// ablation bench can quantify its effect.
  bool histogram_subtraction = true;
  /// Intra-worker threads for histogram builds and the gradient pass.
  /// 1 = fully serial (the default). Any value yields bit-identical models:
  /// HistogramBuilder partitions output cells, not input rows, so every
  /// accumulation order matches the serial build (docs/performance.md).
  uint32_t num_threads = 1;

  // ---- Extensions beyond the paper's protocol (reference trainer) -------

  /// Tree growth policy. Distributed quadrants always grow level-wise.
  GrowthPolicy growth = GrowthPolicy::kLevelWise;
  /// Leaf budget for leaf-wise growth; 0 means 2^(L-1) (the level-wise
  /// equivalent).
  uint32_t max_leaves = 0;
  /// Fraction of instances sampled (without replacement) per tree.
  double row_subsample = 1.0;
  /// Fraction of features eligible for splits per tree.
  double column_subsample = 1.0;
  /// Stop when the validation metric has not improved for this many rounds
  /// (0 disables; requires a validation set).
  uint32_t early_stopping_rounds = 0;
  /// Seed for subsampling.
  uint64_t seed = 42;

  // ---- Straggler mitigation (distributed trainers only) -----------------

  /// Aggregation-straggler policy; kStrict leaves training bit-identical to
  /// seed behavior.
  StragglerMitigation straggler_mitigation = StragglerMitigation::kStrict;
  /// kBoundedStaleness: how long on-time ranks wait before closing an
  /// aggregation without its stragglers (simulated seconds).
  double staleness_deadline_seconds = 0.05;
  /// kBoundedStaleness: max consecutive deferrals of one rank before a
  /// forced full sync.
  uint32_t staleness_bound = 2;
  /// Max ranks deferred/speculated per aggregation (the k in "return once
  /// W-k ranks contribute").
  uint32_t staleness_max_stale_ranks = 1;
  /// kSpeculative: delay above which a rank's block is re-executed
  /// (simulated seconds).
  double speculation_threshold_seconds = 0.05;

  // ---- Integrity auditing (distributed trainers only) -------------------

  /// Corruption-detection level; kOff leaves training bit-identical to seed
  /// behavior (no extra collectives, metric handles, or trace spans).
  IntegrityLevel integrity = IntegrityLevel::kOff;
  /// Relative tolerance for the auditor's floating-point mass identities
  /// (digest agreement is exact and does not use it).
  double integrity_tolerance = 1e-6;
  /// Targeted layer/gradient recomputes attempted per detected violation
  /// before escalating to the checkpoint-rollback state machine.
  uint32_t integrity_max_recomputes = 1;

  // ---- Histogram compression (distributed trainers only) ----------------

  /// Codec applied to histogram payloads of the aggregation collectives;
  /// kOff leaves training bit-identical to seed behavior (no extra metric
  /// handles, identical bytes on the wire).
  HistogramCompression compression = HistogramCompression::kOff;
  /// A per-feature histogram block is encoded sparse iff its nonzero
  /// density is at or below this threshold; above it the block ships dense.
  double compression_density_threshold = 0.5;

  // ---- Elasticity (distributed trainers only) ---------------------------

  /// Operator-requested resize: after this many completed trees the driver
  /// pauses training at a checkpoint boundary, resizes the cluster by
  /// `elastic_resize_delta` workers at a rendezvous (re-sharding the data
  /// onto the new width), and finishes the run there. 0 disables resizing.
  uint32_t elastic_resize_after_trees = 0;
  /// Worker-count change applied at the scheduled resize: positive admits
  /// that many new workers, negative retires surplus ones. Must be nonzero
  /// when a resize is scheduled (a "resize by zero" request is rejected);
  /// shrinking below one worker is rejected by TrainDistributed, which
  /// knows the cluster width.
  int32_t elastic_resize_delta = 0;

  /// Validates ranges; returns InvalidArgument with a reason on failure.
  Status Validate() const {
    if (num_trees == 0) return Status::InvalidArgument("num_trees == 0");
    if (num_layers < 2) return Status::InvalidArgument("num_layers < 2");
    if (num_layers > 24) return Status::InvalidArgument("num_layers > 24");
    if (num_candidate_splits == 0 || num_candidate_splits > 4096) {
      return Status::InvalidArgument("num_candidate_splits out of range");
    }
    if (learning_rate <= 0.0) {
      return Status::InvalidArgument("learning_rate <= 0");
    }
    if (reg_lambda < 0.0) return Status::InvalidArgument("reg_lambda < 0");
    if (reg_gamma < 0.0) return Status::InvalidArgument("reg_gamma < 0");
    if (row_subsample <= 0.0 || row_subsample > 1.0) {
      return Status::InvalidArgument("row_subsample not in (0, 1]");
    }
    if (column_subsample <= 0.0 || column_subsample > 1.0) {
      return Status::InvalidArgument("column_subsample not in (0, 1]");
    }
    if (max_leaves == 1) {
      return Status::InvalidArgument("max_leaves must be 0 or >= 2");
    }
    if (num_threads == 0 || num_threads > 256) {
      return Status::InvalidArgument("num_threads not in [1, 256]");
    }
    if (staleness_deadline_seconds <= 0.0) {
      return Status::InvalidArgument("staleness_deadline_seconds <= 0");
    }
    if (speculation_threshold_seconds <= 0.0) {
      return Status::InvalidArgument("speculation_threshold_seconds <= 0");
    }
    if (staleness_bound == 0) {
      return Status::InvalidArgument("staleness_bound == 0");
    }
    if (staleness_max_stale_ranks == 0) {
      return Status::InvalidArgument("staleness_max_stale_ranks == 0");
    }
    if (!(integrity_tolerance > 0.0) || integrity_tolerance > 1.0) {
      return Status::InvalidArgument("integrity_tolerance not in (0, 1]");
    }
    if (!(compression_density_threshold > 0.0) ||
        compression_density_threshold > 1.0) {
      return Status::InvalidArgument(
          "compression_density_threshold not in (0, 1]");
    }
    if (integrity != IntegrityLevel::kOff && integrity_max_recomputes > 16) {
      return Status::InvalidArgument("integrity_max_recomputes > 16");
    }
    if (elastic_resize_after_trees > 0) {
      if (elastic_resize_delta == 0) {
        return Status::InvalidArgument(
            "elastic_resize_delta == 0 with a scheduled resize");
      }
      if (elastic_resize_after_trees >= num_trees) {
        return Status::InvalidArgument(
            "elastic_resize_after_trees >= num_trees");
      }
    } else if (elastic_resize_delta != 0) {
      return Status::InvalidArgument(
          "elastic_resize_delta set without elastic_resize_after_trees");
    }
    return Status::OK();
  }

  /// Effective leaf budget for leaf-wise growth.
  uint32_t EffectiveMaxLeaves() const {
    return max_leaves != 0 ? max_leaves : (1u << (num_layers - 1));
  }
};

}  // namespace vero

#endif  // VERO_CORE_GBDT_PARAMS_H_
