#ifndef VERO_CORE_SPLIT_H_
#define VERO_CORE_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "core/gradients.h"
#include "core/histogram.h"
#include "data/types.h"
#include "sketch/candidate_splits.h"

namespace vero {

/// A candidate node split: test "value(feature) <= split_value" (equivalently
/// bin <= split_bin) sends an instance left; instances missing the feature
/// follow `default_left`.
struct SplitCandidate {
  bool valid = false;
  FeatureId feature = kInvalidFeature;  ///< Global feature id.
  BinId split_bin = 0;
  float split_value = 0.0f;
  bool default_left = false;
  double gain = 0.0;
  GradStats left_stats;
  GradStats right_stats;

  /// Deterministic total order used to pick the global best split: higher
  /// gain wins; near-ties (within `tol`) break toward the lower feature id,
  /// then the lower bin, so every quadrant and worker agrees on one winner.
  bool IsBetterThan(const SplitCandidate& other, double tol = 1e-10) const;

  void SerializeTo(ByteWriter* writer) const;
  static Status Deserialize(ByteReader* reader, SplitCandidate* out);
};

/// Finds the best split of one node from its gradient histogram
/// (Equation 2 with the missing-value bucket tried on both sides).
class SplitFinder {
 public:
  SplitFinder(double reg_lambda, double reg_gamma, double min_split_gain)
      : reg_lambda_(reg_lambda),
        reg_gamma_(reg_gamma),
        min_split_gain_(min_split_gain) {}

  /// Scans histogram features [0, hist.num_features()) where local feature f
  /// corresponds to global feature `global_ids[f]` with
  /// splits.NumBins(global_ids[f]) meaningful bins. `node_stats` is the
  /// node's per-class gradient total (so missing mass = node - present).
  /// `feature_mask` (optional, indexed by global id) restricts the search to
  /// masked-in features (column subsampling).
  SplitCandidate FindBest(const Histogram& hist, const GradStats& node_stats,
                          const std::vector<FeatureId>& global_ids,
                          const CandidateSplits& splits,
                          const std::vector<bool>* feature_mask = nullptr)
      const;

  /// Optimal leaf weight vector -G/(H + lambda) for a node (Equation 1).
  std::vector<float> LeafWeights(const GradStats& node_stats) const;

  double reg_lambda() const { return reg_lambda_; }
  double reg_gamma() const { return reg_gamma_; }

 private:
  double reg_lambda_;
  double reg_gamma_;
  double min_split_gain_;
};

}  // namespace vero

#endif  // VERO_CORE_SPLIT_H_
