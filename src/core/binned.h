#ifndef VERO_CORE_BINNED_H_
#define VERO_CORE_BINNED_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bitmap.h"
#include "data/sparse_matrix.h"
#include "data/types.h"
#include "sketch/candidate_splits.h"

namespace vero {

/// Row-store of quantized feature values: each instance is a run of
/// (feature id, bin id) pairs sorted by feature id. This is the
/// "row-store" data layout of QD2 (and, with local feature ids, QD4).
class BinnedRowStore {
 public:
  BinnedRowStore() : row_ptr_(1, 0) {}

  /// Quantizes a CSR matrix against candidate splits. Row entry order is
  /// preserved (rows must be sorted by feature id).
  static BinnedRowStore FromCsr(const CsrMatrix& matrix,
                                const CandidateSplits& splits);

  uint32_t num_rows() const {
    return static_cast<uint32_t>(row_ptr_.size() - 1);
  }
  uint32_t num_features() const { return num_features_; }
  uint64_t num_entries() const { return features_.size(); }

  void set_num_features(uint32_t n) { num_features_ = n; }
  void StartRow() { row_ptr_.push_back(row_ptr_.back()); }
  void PushEntry(FeatureId feature, BinId bin) {
    features_.push_back(feature);
    bins_.push_back(bin);
    ++row_ptr_.back();
  }

  std::span<const FeatureId> RowFeatures(InstanceId i) const {
    return {features_.data() + row_ptr_[i],
            static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  std::span<const BinId> RowBins(InstanceId i) const {
    return {bins_.data() + row_ptr_[i],
            static_cast<size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }

  /// Bin of (instance, feature) via binary search within the row, or nullopt
  /// if the instance misses the feature.
  std::optional<BinId> FindBin(InstanceId i, FeatureId feature) const;

  /// Batched split placement: bit j of `go_left` (sized instances.size())
  /// becomes bin(instances[j], feature) <= split_bin, or default_left when
  /// the instance misses the feature. One call per split replaces a
  /// FindBin — span construction, optional, bounds re-derivation — per row.
  void FillGoLeft(std::span<const InstanceId> instances, FeatureId feature,
                  BinId split_bin, bool default_left, Bitmap* go_left) const;

  uint64_t MemoryBytes() const {
    return row_ptr_.capacity() * sizeof(uint64_t) +
           features_.capacity() * sizeof(FeatureId) +
           bins_.capacity() * sizeof(BinId);
  }

 private:
  uint32_t num_features_ = 0;
  std::vector<uint64_t> row_ptr_;
  std::vector<FeatureId> features_;
  std::vector<BinId> bins_;
};

/// Column-store of quantized feature values: each feature is a run of
/// (instance id, bin id) pairs sorted by instance id. This is the
/// "column-store" layout of QD1 and QD3.
class BinnedColumnStore {
 public:
  BinnedColumnStore() : col_ptr_(1, 0) {}

  static BinnedColumnStore FromCsr(const CsrMatrix& matrix,
                                   const CandidateSplits& splits);

  uint32_t num_rows() const { return num_rows_; }
  uint32_t num_features() const {
    return static_cast<uint32_t>(col_ptr_.size() - 1);
  }
  uint64_t num_entries() const { return rows_.size(); }

  void set_num_rows(uint32_t n) { num_rows_ = n; }
  void StartColumn() { col_ptr_.push_back(col_ptr_.back()); }
  void PushEntry(InstanceId row, BinId bin) {
    rows_.push_back(row);
    bins_.push_back(bin);
    ++col_ptr_.back();
  }

  std::span<const InstanceId> ColumnRows(FeatureId f) const {
    return {rows_.data() + col_ptr_[f],
            static_cast<size_t>(col_ptr_[f + 1] - col_ptr_[f])};
  }
  std::span<const BinId> ColumnBins(FeatureId f) const {
    return {bins_.data() + col_ptr_[f],
            static_cast<size_t>(col_ptr_[f + 1] - col_ptr_[f])};
  }
  uint64_t ColumnLength(FeatureId f) const {
    return col_ptr_[f + 1] - col_ptr_[f];
  }

  /// Bin of (feature, instance) via binary search within the column — the
  /// log(N) lookup that §3.2.3 charges against column-store with a
  /// node-to-instance index.
  std::optional<BinId> FindBin(FeatureId f, InstanceId instance) const;

  uint64_t MemoryBytes() const {
    return col_ptr_.capacity() * sizeof(uint64_t) +
           rows_.capacity() * sizeof(InstanceId) +
           bins_.capacity() * sizeof(BinId);
  }

 private:
  uint32_t num_rows_ = 0;
  std::vector<uint64_t> col_ptr_;
  std::vector<InstanceId> rows_;
  std::vector<BinId> bins_;
};

}  // namespace vero

#endif  // VERO_CORE_BINNED_H_
