#ifndef VERO_CORE_TRAINER_H_
#define VERO_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "core/gbdt_params.h"
#include "core/metrics.h"
#include "core/tree.h"
#include "data/dataset.h"

namespace vero {

namespace obs {
class TraceBuffer;
}  // namespace obs

/// Per-boosting-round progress, fed to the iteration callback (this is what
/// the convergence-curve benches record, mirroring Figure 11/12).
struct IterationStats {
  uint32_t tree_index = 0;
  double train_loss = 0.0;
  /// Headline metric on the validation set; NaN when no validation set.
  double valid_metric = 0.0;
  bool has_valid_metric = false;
  /// Wall seconds since training started.
  double elapsed_seconds = 0.0;
};

using IterationCallback = std::function<void(const IterationStats&)>;

/// Aggregate cost counters for one training run.
struct TrainReport {
  double total_seconds = 0.0;
  double histogram_seconds = 0.0;
  double split_find_seconds = 0.0;
  double node_split_seconds = 0.0;
  uint64_t peak_histogram_bytes = 0;
  uint64_t data_bytes = 0;
  /// Round with the best validation metric (0 when no validation set).
  uint32_t best_iteration = 0;
};

/// Single-process reference GBDT trainer (histogram algorithm of §2.1.2 with
/// histogram subtraction, sparsity-aware split finding, level-wise growth).
///
/// The distributed quadrant trainers are specializations of this loop over
/// partitioned data; with identical parameters they produce identical trees,
/// which the integration tests assert.
class Trainer {
 public:
  explicit Trainer(GbdtParams params) : params_(std::move(params)) {}

  /// Trains a model on `train`. When `valid` is non-null, evaluates the
  /// headline metric each round. The callback (if any) runs after every
  /// round.
  StatusOr<GbdtModel> Train(const Dataset& train, const Dataset* valid,
                            IterationCallback callback = nullptr);

  /// Convenience overload without validation.
  StatusOr<GbdtModel> Train(const Dataset& train) {
    return Train(train, nullptr, nullptr);
  }

  /// Cost counters of the most recent Train call.
  const TrainReport& report() const { return report_; }

  /// Optional: record per-round trace spans (gradient / grow-tree /
  /// margin-update) into `buffer`. The buffer must outlive Train; null (the
  /// default) records nothing.
  void set_trace_buffer(obs::TraceBuffer* buffer) { trace_ = buffer; }

 private:
  GbdtParams params_;
  TrainReport report_;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace vero

#endif  // VERO_CORE_TRAINER_H_
