#ifndef VERO_SERVE_FLAT_FOREST_H_
#define VERO_SERVE_FLAT_FOREST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/tree.h"
#include "data/types.h"

namespace vero {
namespace serve {

/// A trained forest compiled into contiguous structure-of-arrays node
/// storage for serving (the LightGBM predictor layout).
///
/// Training trees live in heap layout (root 0, children 2i+1/2i+2) with one
/// TreeNode struct — including a heap-allocated leaf vector — per slot, most
/// of them unused. Serving walks millions of rows through the same few
/// thousand nodes, so prediction throughput is bounded by memory layout, not
/// FLOPs (paper §3.1). FromModel compacts every reachable node of every tree
/// into four parallel arrays (split feature, threshold, default-missing
/// direction, child links) plus one pooled leaf-weight array, in per-tree
/// breadth-first order so the hot upper levels of a tree share cache lines.
///
/// Child links are signed: a non-negative link is the forest-wide index of an
/// internal node; a negative link `r` addresses leaf `~r` in the leaf pool
/// (C = num_dims() weights per leaf). Tree roots use the same encoding, so a
/// single-leaf tree is just a negative root.
///
/// FromModel validates the forest structurally and returns Status errors —
/// never crashes — on malformed input (models deserialized from damaged
/// bytes): missing roots, internal nodes with absent children or children
/// beyond the node array, invalid split features, and leaf vectors of the
/// wrong dimension are all rejected as Corruption.
class FlatForest {
 public:
  FlatForest() = default;

  /// Compiles `model` into flat serving form. The model is not retained;
  /// the result is self-contained and immutable.
  static StatusOr<FlatForest> FromModel(const GbdtModel& model);

  Task task() const { return task_; }
  uint32_t num_trees() const { return static_cast<uint32_t>(roots_.size()); }
  /// C: leaf-vector dimensionality (matches GbdtModel::margin_dims()).
  uint32_t num_dims() const { return num_dims_; }
  double learning_rate() const { return learning_rate_; }
  uint32_t num_internal_nodes() const {
    return static_cast<uint32_t>(feature_.size());
  }
  uint32_t num_leaves() const {
    return static_cast<uint32_t>(leaf_values_.size() / num_dims_);
  }
  /// Largest split feature id used anywhere in the forest; 0 for a forest
  /// with no internal nodes. Sizes the batch predictor's scatter scratch.
  FeatureId max_feature() const { return max_feature_; }

  // Raw layout accessors (the batch predictor's hot loops index these).
  std::span<const FeatureId> feature() const { return feature_; }
  std::span<const float> threshold() const { return threshold_; }
  std::span<const uint8_t> default_left() const { return default_left_; }
  std::span<const int32_t> left() const { return left_; }
  std::span<const int32_t> right() const { return right_; }
  std::span<const int32_t> roots() const { return roots_; }
  std::span<const float> leaf_values() const { return leaf_values_; }

  /// Adds the margins of one sorted sparse row into `margins` (C dims,
  /// caller-zeroed) — the serial flat reference path, bit-identical to
  /// GbdtModel::PredictMargins. `features` must be sorted ascending.
  void PredictRowMargins(std::span<const FeatureId> features,
                         std::span<const float> values,
                         double* margins) const;

 private:
  Task task_ = Task::kBinary;
  uint32_t num_dims_ = 1;
  double learning_rate_ = 0.1;
  FeatureId max_feature_ = 0;

  // Internal nodes, forest-wide, per-tree BFS order.
  std::vector<FeatureId> feature_;
  std::vector<float> threshold_;
  std::vector<uint8_t> default_left_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  // Per tree: root link (negative = single-leaf tree).
  std::vector<int32_t> roots_;
  // Leaf pool: num_leaves x num_dims weights.
  std::vector<float> leaf_values_;
};

}  // namespace serve
}  // namespace vero

#endif  // VERO_SERVE_FLAT_FOREST_H_
