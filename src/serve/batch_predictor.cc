#include "serve/batch_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/threading.h"
#include "core/loss.h"

namespace vero {
namespace serve {
namespace {

// Largest feature space the scatter scratch will allocate (floats + epoch
// stamps per thread). Beyond it the sparse path binary-searches rows
// instead; dense input never needs scratch.
constexpr FeatureId kScratchFeatureCap = 1u << 22;

}  // namespace

BatchPredictor::BatchPredictor(const FlatForest* forest, ServeOptions options)
    : forest_(forest), options_(options) {
  VERO_CHECK(forest != nullptr);
  VERO_CHECK_OK(options_.Validate());
  use_scratch_ = forest_->num_internal_nodes() == 0 ||
                 forest_->max_feature() < kScratchFeatureCap;
}

void BatchPredictor::ScoreCsrRange(const CsrMatrix& matrix, InstanceId begin,
                                   InstanceId end, double* out) const {
  const uint32_t dims = forest_->num_dims();
  const double lr = forest_->learning_rate();
  const auto feature = forest_->feature();
  const auto threshold = forest_->threshold();
  const auto default_left = forest_->default_left();
  const auto left = forest_->left();
  const auto right = forest_->right();
  const auto roots = forest_->roots();
  const auto leaves = forest_->leaf_values();
  const uint32_t num_trees = forest_->num_trees();

  // Scatter scratch: value + epoch stamp per feature id. A row is "present"
  // at feature f iff stamp[f] carries the row's epoch, so clearing between
  // rows is one counter increment, not a sweep.
  std::vector<float> value;
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;
  if (use_scratch_ && forest_->num_internal_nodes() > 0) {
    value.resize(static_cast<size_t>(forest_->max_feature()) + 1);
    stamp.resize(static_cast<size_t>(forest_->max_feature()) + 1, 0);
  }

  for (InstanceId tile = begin; tile < end;
       tile += options_.row_block) {
    const InstanceId tile_end =
        std::min<InstanceId>(tile + options_.row_block, end);
    std::fill(out + static_cast<size_t>(tile - begin) * dims,
              out + static_cast<size_t>(tile_end - begin) * dims, 0.0);
    for (uint32_t t0 = 0; t0 < num_trees; t0 += options_.tree_block) {
      const uint32_t t1 = std::min(t0 + options_.tree_block, num_trees);
      for (InstanceId i = tile; i < tile_end; ++i) {
        const auto row_features = matrix.RowFeatures(i);
        const auto row_values = matrix.RowValues(i);
        double* margins = out + static_cast<size_t>(i - begin) * dims;
        if (use_scratch_) {
          if (++epoch == 0) {  // Stamp wraparound: drop all stale epochs.
            std::fill(stamp.begin(), stamp.end(), 0u);
            epoch = 1;
          }
          for (size_t k = 0; k < row_features.size(); ++k) {
            const FeatureId f = row_features[k];
            if (f < value.size()) {
              value[f] = row_values[k];
              stamp[f] = epoch;
            }
          }
          for (uint32_t t = t0; t < t1; ++t) {
            int32_t ref = roots[t];
            while (ref >= 0) {
              const FeatureId f = feature[ref];
              // Branch-free select: the split direction is data-dependent
              // (~50% mispredict if branchy), so compute both the compare
              // and the missing-value default and pick with arithmetic.
              // value[f] is always a valid read; stale contents are masked
              // out by `present`.
              const bool present = stamp[f] == epoch;
              const bool cmp = value[f] <= threshold[ref];
              const bool dl = default_left[ref] != 0;
              const bool go_left = (present & cmp) | (!present & dl);
              const int32_t l = left[ref];
              const int32_t r = right[ref];
              ref = go_left ? l : r;
            }
            const float* w =
                leaves.data() + static_cast<size_t>(~ref) * dims;
            for (uint32_t k = 0; k < dims; ++k) margins[k] += lr * w[k];
          }
        } else {
          const FeatureId* fbegin = row_features.data();
          const FeatureId* fend = fbegin + row_features.size();
          for (uint32_t t = t0; t < t1; ++t) {
            int32_t ref = roots[t];
            while (ref >= 0) {
              const FeatureId f = feature[ref];
              const FeatureId* it = std::lower_bound(fbegin, fend, f);
              bool go_left;
              if (it == fend || *it != f) {
                go_left = default_left[ref] != 0;
              } else {
                go_left = row_values[it - fbegin] <= threshold[ref];
              }
              ref = go_left ? left[ref] : right[ref];
            }
            const float* w =
                leaves.data() + static_cast<size_t>(~ref) * dims;
            for (uint32_t k = 0; k < dims; ++k) margins[k] += lr * w[k];
          }
        }
      }
    }
  }
}

void BatchPredictor::ScoreDenseRange(const float* rows, uint32_t num_cols,
                                     uint32_t begin, uint32_t end,
                                     double* out) const {
  const uint32_t dims = forest_->num_dims();
  const double lr = forest_->learning_rate();
  const auto feature = forest_->feature();
  const auto threshold = forest_->threshold();
  const auto default_left = forest_->default_left();
  const auto left = forest_->left();
  const auto right = forest_->right();
  const auto roots = forest_->roots();
  const auto leaves = forest_->leaf_values();
  const uint32_t num_trees = forest_->num_trees();

  for (uint32_t tile = begin; tile < end; tile += options_.row_block) {
    const uint32_t tile_end =
        std::min(tile + options_.row_block, end);
    std::fill(out + static_cast<size_t>(tile - begin) * dims,
              out + static_cast<size_t>(tile_end - begin) * dims, 0.0);
    for (uint32_t t0 = 0; t0 < num_trees; t0 += options_.tree_block) {
      const uint32_t t1 = std::min(t0 + options_.tree_block, num_trees);
      for (uint32_t i = tile; i < tile_end; ++i) {
        const float* row = rows + static_cast<size_t>(i) * num_cols;
        double* margins = out + static_cast<size_t>(i - begin) * dims;
        for (uint32_t t = t0; t < t1; ++t) {
          int32_t ref = roots[t];
          while (ref >= 0) {
            const FeatureId f = feature[ref];
            const float v = f < num_cols ? row[f] : NAN;
            bool go_left;
            if (std::isnan(v)) {
              go_left = default_left[ref] != 0;  // Missing value.
            } else {
              go_left = v <= threshold[ref];
            }
            ref = go_left ? left[ref] : right[ref];
          }
          const float* w = leaves.data() + static_cast<size_t>(~ref) * dims;
          for (uint32_t k = 0; k < dims; ++k) margins[k] += lr * w[k];
        }
      }
    }
  }
}

void BatchPredictor::PredictCsrMargins(const CsrMatrix& matrix,
                                       InstanceId begin, InstanceId end,
                                       double* out) const {
  VERO_CHECK_LE(begin, end);
  VERO_CHECK_LE(end, matrix.num_rows());
  const uint32_t n = end - begin;
  const uint32_t dims = forest_->num_dims();
  if (n == 0) return;
  const uint32_t threads =
      std::min<uint32_t>(options_.num_threads, std::max(1u, n));
  if (threads <= 1) {
    ScoreCsrRange(matrix, begin, end, out);
    return;
  }
  // Output-partitioned contiguous row ranges: thread t owns rows
  // [begin + t*n/threads, begin + (t+1)*n/threads) and only its slice of
  // `out`, so any thread count produces bit-identical results.
  ParallelFor(threads, threads, [&](size_t t) {
    const uint32_t lo = begin + static_cast<uint32_t>(
                                    static_cast<uint64_t>(n) * t / threads);
    const uint32_t hi = begin + static_cast<uint32_t>(
                                    static_cast<uint64_t>(n) * (t + 1) /
                                    threads);
    if (lo < hi) {
      ScoreCsrRange(matrix, lo, hi,
                    out + static_cast<size_t>(lo - begin) * dims);
    }
  });
}

void BatchPredictor::PredictCsrMargins(const CsrMatrix& matrix,
                                       double* out) const {
  PredictCsrMargins(matrix, 0, matrix.num_rows(), out);
}

void BatchPredictor::PredictDenseMargins(const float* rows, uint32_t num_rows,
                                         uint32_t num_cols,
                                         double* out) const {
  const uint32_t dims = forest_->num_dims();
  if (num_rows == 0) return;
  const uint32_t threads = std::min(options_.num_threads, num_rows);
  if (threads <= 1) {
    ScoreDenseRange(rows, num_cols, 0, num_rows, out);
    return;
  }
  ParallelFor(threads, threads, [&](size_t t) {
    const uint32_t lo = static_cast<uint32_t>(
        static_cast<uint64_t>(num_rows) * t / threads);
    const uint32_t hi = static_cast<uint32_t>(
        static_cast<uint64_t>(num_rows) * (t + 1) / threads);
    if (lo < hi) {
      ScoreDenseRange(rows, num_cols, lo, hi,
                      out + static_cast<size_t>(lo) * dims);
    }
  });
}

void BatchPredictor::PredictCsrProba(const CsrMatrix& matrix, InstanceId begin,
                                     InstanceId end, double* out) const {
  PredictCsrMargins(matrix, begin, end, out);
  const uint32_t dims = forest_->num_dims();
  for (InstanceId i = begin; i < end; ++i) {
    double* row = out + static_cast<size_t>(i - begin) * dims;
    if (forest_->task() == Task::kBinary) {
      row[0] = Sigmoid(row[0]);
    } else if (forest_->task() == Task::kMultiClass) {
      SoftmaxInPlace(row, dims);
    }
  }
}

}  // namespace serve
}  // namespace vero
