#ifndef VERO_SERVE_BATCH_PREDICTOR_H_
#define VERO_SERVE_BATCH_PREDICTOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/sparse_matrix.h"
#include "serve/flat_forest.h"

namespace vero {
namespace serve {

/// Knobs of the batched scoring path. Defaults suit a few-hundred-node
/// forest on one core; see docs/serving.md for how the tiles interact.
struct ServeOptions {
  /// Scoring threads. Rows are partitioned into `num_threads` contiguous
  /// output ranges (one per thread), so results are bit-identical to serial
  /// at any thread count — the HistogramBuilder determinism discipline.
  uint32_t num_threads = 1;
  /// Rows per cache tile: margins and scattered feature values of one tile
  /// stay resident while tree tiles sweep over it.
  uint32_t row_block = 256;
  /// Trees per pass over a row tile. Forests larger than this are swept in
  /// ascending chunks, keeping each chunk's node arrays cache-resident;
  /// per-row accumulation order stays t = 0..T-1 regardless.
  uint32_t tree_block = 64;

  Status Validate() const {
    if (num_threads == 0 || num_threads > 256) {
      return Status::InvalidArgument("num_threads not in [1, 256]");
    }
    if (row_block == 0) return Status::InvalidArgument("row_block == 0");
    if (tree_block == 0) return Status::InvalidArgument("tree_block == 0");
    return Status::OK();
  }
};

/// Scores row blocks against a FlatForest with cache tiling (rows x trees
/// blocking) and deterministic multi-threading.
///
/// The contract, enforced bitwise by tests/serve_test.cc: for every input,
/// batch size, tile shape, and thread count, margins are byte-identical to
/// routing each row through Tree::PredictInto tree by tree. Sparse rows are
/// scattered once per (row, tree-tile) into a dense per-thread scratch with
/// epoch stamps, turning each node probe into one array load instead of a
/// binary search over the row; forests whose feature space is too large to
/// scratch (> 2^22) fall back to per-node binary search, still batched and
/// still bit-identical.
///
/// Dense input uses NaN as the missing-value marker (absent sparse entries
/// and features beyond the block's column count route via default_left,
/// exactly like missing sparse features).
class BatchPredictor {
 public:
  /// `forest` must outlive the predictor. Options are validated with CHECK
  /// semantics (serving configuration is a programming error, not data).
  explicit BatchPredictor(const FlatForest* forest, ServeOptions options = {});

  const ServeOptions& options() const { return options_; }

  /// Margins for rows [begin, end) of a sorted-sparse matrix into `out`
  /// (row-major (end - begin) x num_dims, overwritten).
  void PredictCsrMargins(const CsrMatrix& matrix, InstanceId begin,
                         InstanceId end, double* out) const;
  /// Whole-matrix convenience overload.
  void PredictCsrMargins(const CsrMatrix& matrix, double* out) const;

  /// Margins for a dense row-major block (`num_rows` x `num_cols` floats,
  /// NaN = missing) into `out` (row-major num_rows x num_dims, overwritten).
  void PredictDenseMargins(const float* rows, uint32_t num_rows,
                           uint32_t num_cols, double* out) const;

  /// Probabilities with the same link functions as GbdtModel::PredictProba
  /// (sigmoid for binary, softmax for multi-class, raw margin otherwise).
  void PredictCsrProba(const CsrMatrix& matrix, InstanceId begin,
                       InstanceId end, double* out) const;

 private:
  /// Scores rows [begin, end) serially (one thread's contiguous range).
  void ScoreCsrRange(const CsrMatrix& matrix, InstanceId begin,
                     InstanceId end, double* out) const;
  void ScoreDenseRange(const float* rows, uint32_t num_cols, uint32_t begin,
                       uint32_t end, double* out) const;

  const FlatForest* forest_;
  ServeOptions options_;
  bool use_scratch_;  // Dense scatter scratch vs per-node binary search.
};

}  // namespace serve
}  // namespace vero

#endif  // VERO_SERVE_BATCH_PREDICTOR_H_
