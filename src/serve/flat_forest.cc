#include "serve/flat_forest.h"

#include <algorithm>
#include <deque>
#include <string>

namespace vero {
namespace serve {
namespace {

// Forest-wide internal-node count must stay addressable by int32 links
// (negative values are leaf references, so only 31 bits carry node ids).
constexpr size_t kMaxInternalNodes = (size_t{1} << 30);

}  // namespace

StatusOr<FlatForest> FlatForest::FromModel(const GbdtModel& model) {
  FlatForest out;
  out.task_ = model.task();
  out.num_dims_ = model.margin_dims();
  out.learning_rate_ = model.learning_rate();
  if (out.num_dims_ == 0) {
    return Status::Corruption("model has zero margin dimensions");
  }

  for (size_t t = 0; t < model.num_trees(); ++t) {
    const Tree& tree = model.tree(t);
    const std::string where = "tree " + std::to_string(t);
    if (tree.num_dims() != out.num_dims_) {
      return Status::Corruption(where + ": leaf dimension " +
                                std::to_string(tree.num_dims()) +
                                " != model margin dimension " +
                                std::to_string(out.num_dims_));
    }
    if (!tree.Exists(0)) {
      return Status::Corruption(where + ": no root node");
    }

    // Classifies heap node `id`, reserving its flat slot: internal nodes are
    // appended to the SoA arrays (filled when popped from the queue), leaves
    // are copied into the pool immediately.
    std::deque<std::pair<NodeId, int32_t>> queue;  // (heap id, flat index)
    Status error = Status::OK();
    auto classify = [&](NodeId id) -> int32_t {
      const TreeNode& n = tree.node(id);
      if (n.state == TreeNode::State::kLeaf) {
        if (n.leaf_values.size() != out.num_dims_) {
          error = Status::Corruption(
              where + ": leaf " + std::to_string(id) + " has " +
              std::to_string(n.leaf_values.size()) + " weights, want " +
              std::to_string(out.num_dims_));
          return 0;
        }
        const int32_t leaf = static_cast<int32_t>(out.leaf_values_.size() /
                                                  out.num_dims_);
        out.leaf_values_.insert(out.leaf_values_.end(), n.leaf_values.begin(),
                                n.leaf_values.end());
        return ~leaf;
      }
      // Internal: children must fit inside the node array and exist.
      if (static_cast<uint32_t>(RightChild(id)) >= tree.max_nodes()) {
        error = Status::Corruption(where + ": internal node " +
                                   std::to_string(id) +
                                   " has children beyond the node array");
        return 0;
      }
      if (!tree.Exists(LeftChild(id)) || !tree.Exists(RightChild(id))) {
        error = Status::Corruption(where + ": internal node " +
                                   std::to_string(id) + " has missing children");
        return 0;
      }
      if (n.feature == kInvalidFeature) {
        error = Status::Corruption(where + ": internal node " +
                                   std::to_string(id) +
                                   " splits on an invalid feature");
        return 0;
      }
      if (out.feature_.size() >= kMaxInternalNodes) {
        error = Status::Corruption("forest exceeds internal node capacity");
        return 0;
      }
      const int32_t idx = static_cast<int32_t>(out.feature_.size());
      out.feature_.push_back(n.feature);
      out.threshold_.push_back(n.split_value);
      out.default_left_.push_back(n.default_left ? 1 : 0);
      out.left_.push_back(0);
      out.right_.push_back(0);
      out.max_feature_ = std::max(out.max_feature_, n.feature);
      queue.emplace_back(id, idx);
      return idx;
    };

    out.roots_.push_back(classify(0));
    while (!queue.empty() && error.ok()) {
      const auto [id, idx] = queue.front();
      queue.pop_front();
      // Child heap ids are strictly larger and bounded by max_nodes, so the
      // walk terminates even on adversarial structures.
      const int32_t l = classify(LeftChild(id));
      const int32_t r = error.ok() ? classify(RightChild(id)) : 0;
      out.left_[idx] = l;
      out.right_[idx] = r;
    }
    if (!error.ok()) return error;
  }
  return out;
}

void FlatForest::PredictRowMargins(std::span<const FeatureId> features,
                                   std::span<const float> values,
                                   double* margins) const {
  const FeatureId* fbegin = features.data();
  const FeatureId* fend = fbegin + features.size();
  for (const int32_t root : roots_) {
    int32_t ref = root;
    while (ref >= 0) {
      const FeatureId f = feature_[ref];
      const FeatureId* it = std::lower_bound(fbegin, fend, f);
      bool go_left;
      if (it == fend || *it != f) {
        go_left = default_left_[ref] != 0;  // Missing value.
      } else {
        go_left = values[it - fbegin] <= threshold_[ref];
      }
      ref = go_left ? left_[ref] : right_[ref];
    }
    const float* w = leaf_values_.data() + static_cast<size_t>(~ref) * num_dims_;
    for (uint32_t k = 0; k < num_dims_; ++k) {
      margins[k] += learning_rate_ * w[k];
    }
  }
}

}  // namespace serve
}  // namespace vero
