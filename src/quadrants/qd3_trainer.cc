#include "quadrants/qd3_trainer.h"

#include <cmath>

#include "common/logging.h"

namespace vero {

const char* Qd3IndexPolicyToString(Qd3IndexPolicy policy) {
  switch (policy) {
    case Qd3IndexPolicy::kLinearScanOnly:
      return "linear-scan";
    case Qd3IndexPolicy::kBinarySearchOnly:
      return "binary-search";
    case Qd3IndexPolicy::kMixed:
      return "mixed";
  }
  return "?";
}

Qd3Trainer::Qd3Trainer(WorkerContext& ctx, const DistTrainOptions& options,
                       Task task, uint32_t num_classes,
                       const VerticalShard& shard, Qd3IndexPolicy policy)
    : VerticalTrainerBase(ctx, options, task, num_classes, shard),
      policy_(policy) {
  // Pivot the row-stored column group into per-feature columns
  // (instance ids ascend naturally because rows are visited in order).
  const uint32_t num_local = HistFeatureCount();
  std::vector<uint64_t> counts(num_local, 0);
  for (InstanceId i = 0; i < shard.num_instances; ++i) {
    for (uint32_t f : shard.data.RowFeatures(i)) ++counts[f];
  }
  store_.set_num_rows(shard.num_instances);
  // Build incrementally column-by-column would need column-major input;
  // instead allocate via a second pass with cursors.
  {
    std::vector<uint64_t> col_ptr(num_local + 1, 0);
    for (uint32_t f = 0; f < num_local; ++f) {
      col_ptr[f + 1] = col_ptr[f] + counts[f];
    }
    std::vector<InstanceId> rows(col_ptr[num_local]);
    std::vector<BinId> bins(col_ptr[num_local]);
    std::vector<uint64_t> cursor = col_ptr;
    for (InstanceId i = 0; i < shard.num_instances; ++i) {
      auto features = shard.data.RowFeatures(i);
      auto row_bins = shard.data.RowBins(i);
      for (size_t k = 0; k < features.size(); ++k) {
        const uint64_t pos = cursor[features[k]]++;
        rows[pos] = i;
        bins[pos] = row_bins[k];
      }
    }
    BinnedColumnStore store;
    store.set_num_rows(shard.num_instances);
    for (uint32_t f = 0; f < num_local; ++f) {
      store.StartColumn();
      for (uint64_t k = col_ptr[f]; k < col_ptr[f + 1]; ++k) {
        store.PushEntry(rows[k], bins[k]);
      }
    }
    store_ = std::move(store);
  }
}

uint64_t Qd3Trainer::DataBytes() const {
  return store_.MemoryBytes() + labels_.capacity() * sizeof(float);
}

void Qd3Trainer::InitTreeIndexes() {
  VerticalTrainerBase::InitTreeIndexes();
  node_of_.Init(shard_.num_instances);
}

void Qd3Trainer::BuildLayerHistograms(const std::vector<BuildTask>& tasks) {
  const uint32_t q = options_.params.num_candidate_splits;
  const uint32_t num_local = HistFeatureCount();

  std::vector<NodeId> build_nodes;
  for (const BuildTask& task : tasks) {
    build_nodes.push_back(task.build_node);
  }
  std::vector<Histogram*> hists(
      (size_t{1} << options_.params.num_layers) - 1, nullptr);
  for (NodeId node : build_nodes) {
    hists[node] = pool_.Acquire(node, num_local, q, dims_);
  }

  // The builder picks per column between one linear scan (instance-to-node
  // index) and per-node binary searches (node-to-instance index) under
  // kAuto; the fixed policies force one or the other (§5.2.2).
  HistogramBuilder::ColumnScan scan = HistogramBuilder::ColumnScan::kAuto;
  if (policy_ == Qd3IndexPolicy::kLinearScanOnly) {
    scan = HistogramBuilder::ColumnScan::kLinear;
  } else if (policy_ == Qd3IndexPolicy::kBinarySearchOnly) {
    scan = HistogramBuilder::ColumnScan::kBinarySearch;
  }
  builder_.BuildColumnStoreLayer(store_, grads_, node_of_, partition_,
                                 build_nodes, hists, scan);

  // Siblings come from subtraction against the retained parents.
  ApplySubtractions(tasks);
}

bool Qd3Trainer::PlaceInstance(InstanceId instance, uint32_t local_feature,
                               const SplitCandidate& split) const {
  // Column-store lookup: binary search the feature's column by instance id.
  const auto bin = store_.FindBin(local_feature, instance);
  return bin.has_value() ? (*bin <= split.split_bin) : split.default_left;
}

void Qd3Trainer::OnNodeSplit(NodeId node) {
  // Keep the instance-to-node index in sync for linear column scans.
  for (NodeId child : {LeftChild(node), RightChild(node)}) {
    for (InstanceId i : partition_.Instances(child)) {
      node_of_.Set(i, child);
    }
  }
}

}  // namespace vero
