#include "quadrants/qd4_vero.h"

#include "common/logging.h"

namespace vero {

Qd4VeroTrainer::Qd4VeroTrainer(WorkerContext& ctx,
                               const DistTrainOptions& options, Task task,
                               uint32_t num_classes,
                               const VerticalShard& shard)
    : VerticalTrainerBase(ctx, options, task, num_classes, shard) {}

uint64_t Qd4VeroTrainer::DataBytes() const {
  return shard_.data.MemoryBytes() + labels_.capacity() * sizeof(float);
}

void Qd4VeroTrainer::BuildNodeHistogram(NodeId node, Histogram* hist) {
  // Row scan over the blockified column group: the node-to-instance index
  // yields the node's rows; each row is already (local feature, bin) pairs.
  for (InstanceId i : partition_.Instances(node)) {
    auto features = shard_.data.RowFeatures(i);
    auto bins = shard_.data.RowBins(i);
    const GradPair* g = grads_.row(i);
    for (size_t k = 0; k < features.size(); ++k) {
      hist->Add(features[k], bins[k], g);
    }
  }
}

void Qd4VeroTrainer::BuildLayerHistograms(const std::vector<BuildTask>& tasks) {
  const uint32_t q = options_.params.num_candidate_splits;
  for (const BuildTask& task : tasks) {
    Histogram* hist =
        pool_.Acquire(task.build_node, HistFeatureCount(), q, dims_);
    BuildNodeHistogram(task.build_node, hist);
    if (task.subtract_node != kInvalidNode) {
      Histogram* sibling =
          pool_.Acquire(task.subtract_node, HistFeatureCount(), q, dims_);
      const Histogram* parent = pool_.Get(task.parent);
      VERO_CHECK(parent != nullptr);
      sibling->SetToDifference(*parent, *hist);
    }
  }
}

bool Qd4VeroTrainer::PlaceInstance(InstanceId instance, uint32_t local_feature,
                                   const SplitCandidate& split) const {
  // Row-store lookup: binary search inside the instance's row.
  const auto bin = shard_.data.FindBin(instance, local_feature);
  return bin.has_value() ? (*bin <= split.split_bin) : split.default_left;
}

}  // namespace vero
