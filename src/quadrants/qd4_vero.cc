#include "quadrants/qd4_vero.h"

#include "common/logging.h"

namespace vero {

Qd4VeroTrainer::Qd4VeroTrainer(WorkerContext& ctx,
                               const DistTrainOptions& options, Task task,
                               uint32_t num_classes,
                               const VerticalShard& shard)
    : VerticalTrainerBase(ctx, options, task, num_classes, shard) {}

uint64_t Qd4VeroTrainer::DataBytes() const {
  return shard_.data.MemoryBytes() + labels_.capacity() * sizeof(float);
}

void Qd4VeroTrainer::BuildLayerHistograms(const std::vector<BuildTask>& tasks) {
  // Row scans over the blockified column group: the node-to-instance index
  // yields each build node's rows; each row is already (local feature, bin)
  // pairs, so the shared row-store layer build applies directly.
  BuildRowLayer(shard_.data, partition_, tasks, 0, HistFeatureCount(),
                HistFeatureCount());
}

bool Qd4VeroTrainer::PlaceInstance(InstanceId instance, uint32_t local_feature,
                                   const SplitCandidate& split) const {
  // Row-store lookup: binary search inside the instance's row.
  const auto bin = shard_.data.FindBin(instance, local_feature);
  return bin.has_value() ? (*bin <= split.split_bin) : split.default_left;
}

}  // namespace vero
