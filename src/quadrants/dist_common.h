#ifndef VERO_QUADRANTS_DIST_COMMON_H_
#define VERO_QUADRANTS_DIST_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/communicator.h"
#include "common/status.h"
#include "common/logging.h"
#include "core/gbdt_params.h"
#include "core/gradients.h"
#include "core/hist_builder.h"
#include "core/histogram.h"
#include "core/loss.h"
#include "core/node_indexer.h"
#include "core/split.h"
#include "core/trainer.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "integrity/auditor.h"
#include "obs/anatomy.h"
#include "obs/report.h"
#include "partition/transform.h"
#include "quadrants/quadrant.h"
#include "sketch/candidate_splits.h"

namespace vero {

/// Maps GbdtParams' straggler-mitigation knobs onto the collective-level
/// MitigationOptions consumed by the bounded collectives.
MitigationOptions MitigationFromParams(const GbdtParams& params);

/// Maps GbdtParams' histogram-compression knobs onto the collective-level
/// CodecSpec consumed by the codec collectives. `dims` is the leaf-vector
/// width: the per-block granularity is one feature's histogram
/// (q * dims * 2 doubles), so the dense/sparse switch tracks per-feature
/// nonzero density.
CodecSpec CodecFromParams(const GbdtParams& params, uint32_t dims);

/// Per-round checkpoint policy for TrainDistributed.
struct CheckpointOptions {
  /// Checkpoint after every `interval` completed trees; 0 disables
  /// checkpointing (a failure then restarts training from scratch on the
  /// surviving workers).
  uint32_t interval = 0;
  /// Optional directory for on-disk checkpoints (empty keeps the latest
  /// checkpoint in memory only). Files are written as a rotated
  /// <dir>/ckpt-NNNNNN.vckp chain plus a <dir>/latest.vckp alias and a
  /// CRC-framed <dir>/MANIFEST.vckm index.
  std::string dir;
  /// Write checkpoints on a background thread: the round loop only snapshots
  /// the model (a copy), keeping serialization and file IO off the per-round
  /// critical path. Under backpressure intermediate snapshots are dropped
  /// (newest wins) — the durable state is always some completed round.
  bool async = false;
  /// On-disk rotation: keep the newest `keep_last_n` chain files, GC older
  /// ones (0 means keep everything). In-memory state is always just latest.
  uint32_t keep_last_n = 3;
  /// Delta chains: each commit carries only the trees appended since the
  /// previous manifest entry (shrinking the submit copy and the bytes
  /// written), with every `full_every`-th commit a self-contained full
  /// checkpoint. Reconstruction walks the chain; see docs/wire_formats.md.
  bool delta = false;
  /// Delta mode: cadence of forced full commits (1 = every commit full,
  /// 0 = never force a periodic full).
  uint32_t full_every = 8;
};

/// Options for a distributed training run.
struct DistTrainOptions {
  GbdtParams params;
  /// Transform settings (vertical quadrants; horizontal quadrants use only
  /// the sketch fields through the shared candidate-split pipeline).
  TransformOptions transform;
  /// Checkpoint/recovery policy (used by TrainDistributed when the cluster
  /// has a fault plan or real failures occur).
  CheckpointOptions checkpoint;
  /// How many times TrainDistributed rebuilds a cluster and retries after
  /// worker failures before giving up (0 = fail immediately). Each attempt
  /// tolerates further failures — including failures during the recovery
  /// rendezvous itself — as long as the budget lasts.
  int max_recovery_attempts = 1;
  /// Elastic recovery: replace crashed workers with re-joining replacements
  /// so every rebuilt cluster runs at the original world size W (replacement
  /// ranks are re-seeded with a fresh shard and the latest checkpoint at a
  /// rendezvous barrier). False preserves the degrade-to-survivors behavior.
  bool elastic_rejoin = false;
};

/// Cluster-level cost of one boosting round: compute phases are the maximum
/// thread-CPU seconds across workers (the straggler defines the round), comm
/// is the maximum simulated network time across workers.
struct TreeCost {
  double gradient_seconds = 0.0;
  double hist_seconds = 0.0;
  double find_split_seconds = 0.0;
  double node_split_seconds = 0.0;
  double other_seconds = 0.0;
  double comm_seconds = 0.0;
  /// Cluster-wide bytes sent during the round (sum across workers).
  uint64_t bytes_sent = 0;

  double comp_seconds() const {
    return gradient_seconds + hist_seconds + find_split_seconds +
           node_split_seconds + other_seconds;
  }
  double total_seconds() const { return comp_seconds() + comm_seconds; }

  TreeCost& operator+=(const TreeCost& o) {
    gradient_seconds += o.gradient_seconds;
    hist_seconds += o.hist_seconds;
    find_split_seconds += o.find_split_seconds;
    node_split_seconds += o.node_split_seconds;
    other_seconds += o.other_seconds;
    comm_seconds += o.comm_seconds;
    bytes_sent += o.bytes_sent;
    return *this;
  }
};

/// Mean and sample standard deviation of per-tree costs.
struct TreeCostSummary {
  TreeCost mean;
  double comp_std = 0.0;
  double comm_std = 0.0;
};

TreeCostSummary SummarizeTreeCosts(const std::vector<TreeCost>& costs);

/// What failure handling cost a training run (all zero when failure-free).
struct RecoveryStats {
  /// Worker failures observed (injected crashes + retry exhaustions).
  int failures_observed = 0;
  /// Recovery rounds performed (cluster rebuilds).
  int recovery_attempts = 0;
  /// Trees restored from the last checkpoint instead of being retrained.
  uint32_t trees_recovered = 0;
  /// Trees trained (or retrained) after the first failure.
  uint32_t trees_retrained = 0;
  /// Workers in the final (surviving) cluster.
  int final_world_size = 0;
  /// Replacement workers that re-joined across all recovery attempts
  /// (elastic_rejoin only).
  int rejoined_workers = 0;
  /// Recovery rendezvous rounds that themselves failed (a crash during the
  /// rejoin/redistribution phase) and had to be retried.
  int rendezvous_failures = 0;
  /// Simulated seconds spent on recovery: state redistribution to the
  /// survivors plus the recovery cluster's setup phase.
  double recovery_seconds = 0.0;
  /// Bytes moved to redistribute state (checkpoint, margins or raw shards)
  /// onto the surviving workers.
  uint64_t recovery_bytes = 0;
};

/// What operator-requested resizes cost a training run (all zero when no
/// resize was scheduled). Crash recovery costs stay in RecoveryStats; this
/// block only covers planned W -> W +- k transitions.
struct ElasticityStats {
  /// Completed resize transitions (scheduled resizes that reached the new
  /// width's first round).
  int resizes = 0;
  /// Brand-new workers admitted by scale-ups.
  int admitted_workers = 0;
  /// Live workers retired by scale-downs.
  int retired_workers = 0;
  /// Bytes moved by the re-sharding plans (rows whose owner changed,
  /// checkpoint broadcast excluded — that lands in recovery_bytes-style
  /// rendezvous accounting within reshard_seconds' transition).
  uint64_t reshard_bytes = 0;
  /// Simulated seconds of the resize rendezvous (re-shard traffic plus the
  /// checkpoint broadcast to the new incarnation).
  double reshard_seconds = 0.0;
};

/// Result of a distributed training run.
struct DistResult {
  /// OK if training produced the full forest (possibly after recovery);
  /// otherwise the first worker failure that could not be recovered from.
  Status status;
  /// Cost of surviving failures; all zero (except final_world_size) on a
  /// failure-free run.
  RecoveryStats recovery;
  /// Cost of planned resizes; all zero when none was scheduled.
  ElasticityStats elasticity;
  /// Integrity auditing outcome, folded across workers and recovery
  /// attempts; all zero at IntegrityLevel::kOff. `rollbacks` counts
  /// recovery attempts whose triggering failure carried the auditor's
  /// "integrity:" blame (driver-attributed).
  IntegrityStats integrity;
  /// Recovery attempts triggered by an integrity escalation (a subset of
  /// recovery.recovery_attempts).
  int integrity_rollbacks = 0;
  GbdtModel model;
  std::vector<TreeCost> tree_costs;
  /// Max across workers of the peak histogram-pool bytes.
  uint64_t peak_histogram_bytes = 0;
  /// Max across workers of the stored (binned) data bytes.
  uint64_t data_bytes = 0;
  /// Total bytes sent cluster-wide during training (excludes transform).
  uint64_t train_bytes_sent = 0;
  /// Simulated seconds of preprocessing (transform / sketch pipeline):
  /// max worker compute + comm.
  double setup_seconds = 0.0;
  /// Transform cost detail (vertical quadrants).
  TransformStats transform_stats;
  /// Per-iteration curve recorded on rank 0 (elapsed uses simulated time).
  std::vector<IterationStats> curve;
  /// Goodput accounting: communication bytes and modeled seconds spent on
  /// attempts whose work was later discarded (trees lost to a failure that
  /// a checkpoint did not cover, plus the wasted setup of failed attempts).
  /// Zero on failure-free runs.
  uint64_t wasted_bytes = 0;
  double wasted_seconds = 0.0;
  /// Machine-readable run summary (filled when an observer was attached;
  /// `report.enabled` is false otherwise). See obs::RunReport.
  obs::RunReport report;
  /// Exact cost anatomy stitched from the run's trace (filled when the
  /// attached observer had tracing enabled; `anatomy.enabled` is false
  /// otherwise). See obs::AnatomyReport.
  obs::AnatomyReport anatomy;

  /// Sum over trees of max-comp + max-comm: the modeled training time.
  double TrainSeconds() const {
    double total = 0.0;
    for (const TreeCost& c : tree_costs) total += c.total_seconds();
    return total;
  }
  double TotalCompSeconds() const {
    double total = 0.0;
    for (const TreeCost& c : tree_costs) total += c.comp_seconds();
    return total;
  }
  double TotalCommSeconds() const {
    double total = 0.0;
    for (const TreeCost& c : tree_costs) total += c.comm_seconds;
    return total;
  }
};

/// Base class for the per-worker SPMD training loops of QD1-QD4.
///
/// The boosting skeleton (gradients -> per-layer histogram / split find /
/// node split -> leaf weights -> margin update) lives here; subclasses
/// supply the quadrant-specific storage, histogram construction,
/// split-finding communication pattern, and placement mechanics.
class DistTrainerBase {
 public:
  DistTrainerBase(WorkerContext& ctx, const DistTrainOptions& options,
                  Task task, uint32_t num_classes);
  virtual ~DistTrainerBase() = default;

  /// Runs all boosting rounds. `valid` (optional) is evaluated on rank 0
  /// after each round. Fills per-tree costs (identical on all ranks).
  /// After InitFromCheckpoint the loop starts at the restored tree count
  /// and only appends the missing trees.
  void Train(const Dataset* valid, std::vector<TreeCost>* tree_costs,
             std::vector<IterationStats>* curve, double setup_sim_seconds);

  /// Arms per-round checkpointing: after every `interval` completed trees,
  /// rank 0 invokes `sink` with the model-so-far. The sink must not run
  /// collectives (only rank 0 calls it). `span_name` labels the sink's trace
  /// span (must outlive the trainer): async sinks use "checkpoint-snapshot"
  /// so the span honestly covers only the in-loop copy, not the write.
  void EnableCheckpoints(
      uint32_t interval,
      std::function<void(const GbdtModel&, uint32_t trees_done)> sink,
      const char* span_name = "checkpoint") {
    checkpoint_interval_ = interval;
    checkpoint_sink_ = std::move(sink);
    checkpoint_span_name_ = span_name;
  }

  /// Forces the checkpoint sink to also fire after the FINAL tree of this
  /// run even when the interval does not divide it (or is 0). The driver
  /// arms this on attempts clamped to a resize boundary, so the rendezvous
  /// that follows always has a checkpoint at exactly the boundary tree.
  void set_checkpoint_final(bool checkpoint_final) {
    checkpoint_final_ = checkpoint_final;
  }

  /// Seeds the trainer with an already-trained prefix: `model`'s trees are
  /// adopted and `margins` replaces this worker's margin state (shard rows
  /// for horizontal quadrants, all rows for vertical ones). Must be called
  /// before Train.
  void InitFromCheckpoint(const GbdtModel& model,
                          std::span<const double> margins);

  const GbdtModel& model() const { return model_; }
  /// Integrity-audit accounting of this worker (all zero at kOff). Valid
  /// even after Train unwinds via ClusterAbort — the driver salvages it to
  /// attribute the failure.
  const IntegrityStats& integrity_stats() const { return auditor_.stats(); }
  uint64_t peak_histogram_bytes() const { return pool_.PeakBytes(); }
  /// Bytes of the worker's stored training data (subclass-computed).
  virtual uint64_t DataBytes() const = 0;

 protected:
  /// One node's histogram-construction assignment for a layer.
  struct BuildTask {
    NodeId build_node = kInvalidNode;      ///< Built by scanning data.
    NodeId subtract_node = kInvalidNode;   ///< Derived as parent - sibling.
    NodeId parent = kInvalidNode;          ///< Released after both children.
  };

  // ---- Quadrant-specific hooks -------------------------------------------

  /// Whether this quadrant's index supports the histogram subtraction
  /// technique (QD1's instance-to-node index cannot, per §3.2.3).
  virtual bool UsesSubtraction() const { return true; }

  /// True for vertical quadrants, where every worker holds all labels /
  /// margins; false for horizontal ones, which own a row shard.
  virtual bool OwnsAllRows() const = 0;

  /// Number of features covered by this worker's histograms (D for
  /// horizontal quadrants, |owned| for vertical ones).
  virtual uint32_t HistFeatureCount() const = 0;
  /// Global feature ids corresponding to local histogram columns.
  virtual const std::vector<FeatureId>& HistGlobalIds() const = 0;

  /// Resets per-tree instance indexes (row partition / instance-to-node).
  virtual void InitTreeIndexes() = 0;

  /// Computes gradients into grads_ for the rows this worker owns and
  /// returns the GLOBAL root gradient stats (identical on every worker).
  virtual GradStats ComputeGradients() = 0;

  /// Builds (and, for horizontal quadrants, aggregates) histograms for the
  /// layer. `tasks` encodes the subtraction schema; when subtraction is
  /// disabled both children appear as build_node entries.
  virtual void BuildLayerHistograms(const std::vector<BuildTask>& tasks) = 0;

  /// Returns the GLOBAL best split of every frontier node (same result on
  /// every worker; involves the quadrant's split-exchange pattern).
  virtual std::vector<SplitCandidate> FindLayerSplits(
      const std::vector<NodeId>& frontier) = 0;

  /// Applies the decided splits: updates instance indexes (broadcasting
  /// placement bitmaps for vertical quadrants) and fills `child_counts`
  /// with the GLOBAL instance count of each child, ordered
  /// [left0, right0, left1, right1, ...].
  virtual void ApplyLayerSplits(const std::vector<NodeId>& nodes,
                                const std::vector<SplitCandidate>& splits,
                                std::vector<uint32_t>* child_counts) = 0;

  /// Adds learning_rate * leaf weights into the margins of the rows this
  /// worker owns, using the final instance placement of `tree`.
  virtual void UpdateMargins(const Tree& tree) = 0;

  // ---- Shared histogram-construction helpers ------------------------------

  /// Derives every subtraction task's sibling histogram from the retained
  /// parent (build nodes' histograms must already exist in pool_).
  void ApplySubtractions(const std::vector<BuildTask>& tasks) {
    const uint32_t q = options_.params.num_candidate_splits;
    for (const BuildTask& task : tasks) {
      if (task.subtract_node == kInvalidNode) continue;
      Histogram* sibling =
          pool_.Acquire(task.subtract_node, HistFeatureCount(), q, dims_);
      const Histogram* parent = pool_.Get(task.parent);
      VERO_CHECK(parent != nullptr);
      sibling->SetToDifference(*parent, *pool_.Get(task.build_node));
    }
  }

  /// Standard row-store layer build (QD2 / QD4 / feature-parallel): acquire
  /// each build node's histogram, accumulate all of them in one builder
  /// pass over features [feature_begin, feature_end), then fill the
  /// subtraction siblings. `store_num_features` is the store's feature-id
  /// range (see HistogramBuilder::BuildRowStoreLayer).
  template <typename Store>
  void BuildRowLayer(const Store& store, const RowPartition& partition,
                     const std::vector<BuildTask>& tasks,
                     uint32_t feature_begin, uint32_t feature_end,
                     uint32_t store_num_features) {
    const uint32_t q = options_.params.num_candidate_splits;
    std::vector<HistogramBuilder::NodeRows> build;
    build.reserve(tasks.size());
    for (const BuildTask& task : tasks) {
      build.push_back(
          {pool_.Acquire(task.build_node, HistFeatureCount(), q, dims_),
           partition.Instances(task.build_node)});
    }
    builder_.BuildRowStoreLayer(
        store, grads_, std::span<const HistogramBuilder::NodeRows>(build),
        feature_begin, feature_end, store_num_features);
    ApplySubtractions(tasks);
  }

  // ---- Integrity auditing (see docs/fault_tolerance.md) -------------------

  /// Consults the fault injector's compute-poison stream and, when armed,
  /// writes a NaN/Inf into this worker's gradient buffer. Always active
  /// when an injector is installed (independent of the audit level), so a
  /// poisoned unaudited run demonstrably produces a non-finite model.
  void ApplyGradientPoison();
  /// Same for a freshly built layer histogram (pre-aggregation).
  void ApplyHistogramPoison(const std::vector<BuildTask>& tasks);

  /// True if any freshly BUILT histogram cell of the layer is non-finite.
  /// Evaluated before aggregation mixes ranks' contributions, so the flag
  /// pins compute-born poison on the rank that produced it.
  bool ScanBuiltHistograms(const std::vector<BuildTask>& tasks) const;
  /// kFull mass invariant: for every frontier node and local feature, the
  /// per-class present hessian mass must lie within [0, node hessian] up to
  /// the relative tolerance (h >= 0 for the supported losses), and be
  /// finite. Catches sign-flip corruption that digests on other channels
  /// miss and any non-finite aggregated cell.
  bool HistMassViolated(const std::vector<NodeId>& frontier) const;
  /// True if any gradient/hessian of this worker's rows is non-finite.
  bool GradsNonFinite() const;
  /// True if any decided split has a non-finite gain / stat component.
  static bool SplitsNonFinite(const std::vector<SplitCandidate>& splits);

  /// Audit + recompute loop around the gradient pass. On a retryable
  /// violation recomputes gradients (and the root all-reduce) up to
  /// params.integrity_max_recomputes times before escalating.
  void AuditGradients(GradStats* root_stats);
  /// Audit + recompute loop around a layer's decided splits: pushes the
  /// layer evidence (decision digest, frontier counts, kFull invariant
  /// flags) on top of the quadrant's own transport digests, exchanges, and
  /// on violation rebuilds every frontier histogram from local data (no
  /// subtraction) and re-runs FindLayerSplits before escalating.
  void AuditLayer(const std::vector<NodeId>& frontier,
                  std::vector<SplitCandidate>* best);
  /// Audits the freshly all-reduced / gathered child counts right after
  /// ApplyLayerSplits, before the frontier derived from them can diverge
  /// the next layer's collective shapes. Not recomputable (the placement
  /// they came from is already committed): violations escalate directly.
  void AuditChildCounts(const std::vector<uint32_t>& child_counts);
  /// Round-end audit after the margin update: full node-count digest plus
  /// (kFull) a margin non-finite flag. Placement corruption is not
  /// recomputable, so any violation escalates directly.
  void AuditRound();
  /// Discards and rebuilds every frontier histogram from local data.
  void RecomputeLayer(const std::vector<NodeId>& frontier);
  /// Digest over the global instance counts of `nodes`.
  uint64_t CountsDigest(const std::vector<NodeId>& nodes) const;

  // ---- Shared state -------------------------------------------------------

  WorkerContext& ctx_;
  DistTrainOptions options_;
  Task task_;
  uint32_t num_classes_;
  uint32_t dims_;
  std::unique_ptr<Loss> loss_;
  SplitFinder finder_;

  /// Straggler policy for the quadrant's aggregation collectives, derived
  /// from options_.params (strict by default — bit-identical to seed).
  MitigationOptions mitigation_;

  /// Histogram-compression codec for the quadrant's histogram collectives,
  /// derived from options_.params (off by default — bit-identical to seed).
  CodecSpec codec_;

  /// Cross-rank invariant auditor (inert at params.integrity == kOff:
  /// quadrant push sites and the audit points above all guard on
  /// auditor_.enabled(), keeping the off path bit-identical to seed).
  IntegrityAuditor auditor_;
  /// kFull: non-finite flag of the layer's freshly built histograms,
  /// captured pre-aggregation in the hist-build phase and pushed with the
  /// layer audit.
  bool layer_hist_nonfinite_ = false;

  GbdtModel model_;
  GradientBuffer grads_;
  /// Shared histogram-construction engine (params.num_threads intra-worker
  /// threads; see docs/performance.md for the W x T interaction).
  HistogramBuilder builder_;
  HistogramPool pool_;
  /// Per-node gradient stats and global instance counts (replicated).
  std::vector<GradStats> node_stats_;
  std::vector<uint32_t> node_counts_;

  /// Margins for the rows this worker owns (shard rows for horizontal,
  /// all rows for vertical), row-major x dims_.
  std::vector<double> margins_;
  /// Labels for the rows this worker owns.
  std::vector<float> labels_;
  /// Global instance count N; subclasses must set this during construction.
  uint32_t num_global_instances_ = 0;

  /// Checkpoint hook state (see EnableCheckpoints / set_checkpoint_final).
  uint32_t checkpoint_interval_ = 0;
  std::function<void(const GbdtModel&, uint32_t)> checkpoint_sink_;
  const char* checkpoint_span_name_ = "checkpoint";
  bool checkpoint_final_ = false;
};

/// Serialization helpers shared by the quadrant split exchanges.
std::vector<uint8_t> SerializeSplits(const std::vector<SplitCandidate>& splits);
std::vector<SplitCandidate> DeserializeSplits(const std::vector<uint8_t>& data);

/// Element-wise "keep the better" merge used to reduce per-node local bests.
void MergeBestSplits(const std::vector<SplitCandidate>& candidates,
                     std::vector<SplitCandidate>* best);

}  // namespace vero

#endif  // VERO_QUADRANTS_DIST_COMMON_H_
