#ifndef VERO_QUADRANTS_VERTICAL_COMMON_H_
#define VERO_QUADRANTS_VERTICAL_COMMON_H_

#include <vector>

#include "common/bitmap.h"
#include "core/node_indexer.h"
#include "quadrants/dist_common.h"

namespace vero {

/// Shared machinery of the vertical quadrants (QD3 / QD4): every worker
/// holds ALL instances restricted to its feature subset, computes gradients
/// for all instances (labels were broadcast by the transform), finds local
/// best splits on its own features only, and after a split the owning
/// worker broadcasts the instance placement as a bitmap (§2.2.1, §4.2.2).
class VerticalTrainerBase : public DistTrainerBase {
 public:
  VerticalTrainerBase(WorkerContext& ctx, const DistTrainOptions& options,
                      Task task, uint32_t num_classes,
                      const VerticalShard& shard);

 protected:
  bool OwnsAllRows() const override { return true; }
  uint32_t HistFeatureCount() const override {
    return static_cast<uint32_t>(shard_.owned_features.size());
  }
  const std::vector<FeatureId>& HistGlobalIds() const override {
    return shard_.owned_features;
  }
  void InitTreeIndexes() override;
  GradStats ComputeGradients() override;
  std::vector<SplitCandidate> FindLayerSplits(
      const std::vector<NodeId>& frontier) override;
  void ApplyLayerSplits(const std::vector<NodeId>& nodes,
                        const std::vector<SplitCandidate>& splits,
                        std::vector<uint32_t>* child_counts) override;
  void UpdateMargins(const Tree& tree) override;

  /// Computes per-node local best splits over the owned features
  /// (histograms must exist in pool_).
  std::vector<SplitCandidate> LocalBestSplits(
      const std::vector<NodeId>& frontier);

  /// Placement of one instance under a split this worker owns: goes left?
  /// Implemented against the quadrant's storage (row vs column lookup).
  virtual bool PlaceInstance(InstanceId instance, uint32_t local_feature,
                             const SplitCandidate& split) const = 0;

  /// Hook for extra index maintenance after partition_.Split (QD3 keeps an
  /// instance-to-node index as well).
  virtual void OnNodeSplit(NodeId node) { (void)node; }

  /// When true, split exchange goes through the master (gather + broadcast,
  /// Vero's flow); otherwise all-gather (Yggdrasil's flow).
  virtual bool MasterCoordinatesSplits() const = 0;

  const VerticalShard& shard_;
  RowPartition partition_;
  /// local feature id of each global feature this worker owns
  /// (kInvalidFeature-marked entries are owned by other workers).
  std::vector<uint32_t> local_id_of_;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_VERTICAL_COMMON_H_
