#ifndef VERO_QUADRANTS_TRAIN_DISTRIBUTED_H_
#define VERO_QUADRANTS_TRAIN_DISTRIBUTED_H_

#include "cluster/communicator.h"
#include "data/dataset.h"
#include "quadrants/dist_common.h"
#include "quadrants/qd3_trainer.h"
#include "quadrants/quadrant.h"

namespace vero {

/// Runs one full distributed training job on the simulated cluster:
/// shards `train` horizontally by rank order, executes the quadrant's SPMD
/// pipeline (including the horizontal-to-vertical transform for QD3/QD4 and
/// the distributed candidate-split pipeline for QD1/QD2), and aggregates
/// the cluster-level cost model.
///
/// `valid` (optional) is evaluated on rank 0 after every round so the
/// convergence curve in the result mirrors Figure 11.
DistResult TrainDistributed(Cluster& cluster, const Dataset& train,
                            Quadrant quadrant,
                            const DistTrainOptions& options,
                            const Dataset* valid = nullptr,
                            Qd3IndexPolicy qd3_policy = Qd3IndexPolicy::kMixed);

}  // namespace vero

#endif  // VERO_QUADRANTS_TRAIN_DISTRIBUTED_H_
