#ifndef VERO_QUADRANTS_QD1_TRAINER_H_
#define VERO_QUADRANTS_QD1_TRAINER_H_

#include <vector>

#include "core/binned.h"
#include "core/node_indexer.h"
#include "quadrants/dist_common.h"

namespace vero {

/// QD1: horizontal partitioning + column-store (the XGBoost design). Each
/// worker holds a row shard stored column-wise, maintains an
/// instance-to-node index (no histogram subtraction — §3.2.3), builds the
/// whole layer's histograms in one column sweep, and all-reduces them so
/// every worker can enumerate all features for the best split.
class Qd1Trainer : public DistTrainerBase {
 public:
  Qd1Trainer(WorkerContext& ctx, const DistTrainOptions& options,
             const Dataset& shard, const CandidateSplits& splits,
             uint32_t num_global_instances);

  uint64_t DataBytes() const override;

 protected:
  bool UsesSubtraction() const override { return false; }
  bool OwnsAllRows() const override { return false; }
  uint32_t HistFeatureCount() const override;
  const std::vector<FeatureId>& HistGlobalIds() const override {
    return all_features_;
  }
  void InitTreeIndexes() override;
  GradStats ComputeGradients() override;
  void BuildLayerHistograms(const std::vector<BuildTask>& tasks) override;
  std::vector<SplitCandidate> FindLayerSplits(
      const std::vector<NodeId>& frontier) override;
  void ApplyLayerSplits(const std::vector<NodeId>& nodes,
                        const std::vector<SplitCandidate>& splits,
                        std::vector<uint32_t>* child_counts) override;
  void UpdateMargins(const Tree& tree) override;

 private:
  const CandidateSplits& splits_;
  BinnedColumnStore store_;
  InstanceToNode node_of_;
  std::vector<FeatureId> all_features_;
  uint32_t num_local_rows_ = 0;
  /// Maps a live node id to its slot in the current layer (-1 otherwise).
  std::vector<int32_t> slot_of_node_;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_QD1_TRAINER_H_
