#ifndef VERO_QUADRANTS_QD3_TRAINER_H_
#define VERO_QUADRANTS_QD3_TRAINER_H_

#include <vector>

#include "core/binned.h"
#include "quadrants/vertical_common.h"

namespace vero {

/// Policy for building histograms from columns in QD3 (Appendix C studies
/// these; the mixed policy is the paper's optimized representative).
enum class Qd3IndexPolicy {
  /// Always scan whole columns with the instance-to-node index (cannot use
  /// histogram subtraction) — Yggdrasil-with-instance-to-node behavior.
  kLinearScanOnly,
  /// Always binary-search per node instance with subtraction.
  kBinarySearchOnly,
  /// Per column, pick whichever is cheaper (the paper's QD3).
  kMixed,
};

const char* Qd3IndexPolicyToString(Qd3IndexPolicy policy);

/// QD3: vertical partitioning + column-store (the Yggdrasil family). Each
/// worker stores its feature subset as columns over all instances and
/// combines an instance-to-node index (for linear column scans) with the
/// node-to-instance index (for per-node binary searches + subtraction),
/// choosing per column (§5.2.2 "Index plan").
class Qd3Trainer : public VerticalTrainerBase {
 public:
  Qd3Trainer(WorkerContext& ctx, const DistTrainOptions& options, Task task,
             uint32_t num_classes, const VerticalShard& shard,
             Qd3IndexPolicy policy = Qd3IndexPolicy::kMixed);

  uint64_t DataBytes() const override;

 protected:
  void InitTreeIndexes() override;
  void BuildLayerHistograms(const std::vector<BuildTask>& tasks) override;
  bool PlaceInstance(InstanceId instance, uint32_t local_feature,
                     const SplitCandidate& split) const override;
  void OnNodeSplit(NodeId node) override;
  bool MasterCoordinatesSplits() const override { return false; }

 private:
  BinnedColumnStore store_;  ///< Columns indexed by local feature id.
  InstanceToNode node_of_;
  Qd3IndexPolicy policy_;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_QD3_TRAINER_H_
