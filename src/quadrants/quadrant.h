#ifndef VERO_QUADRANTS_QUADRANT_H_
#define VERO_QUADRANTS_QUADRANT_H_

namespace vero {

/// The four data-management quadrants of Figure 1, plus the
/// feature-parallel (replicated-dataset) baseline of Appendix D.
enum class Quadrant {
  /// Horizontal partitioning + column-store (XGBoost).
  kQD1,
  /// Horizontal partitioning + row-store (LightGBM / DimBoost).
  kQD2,
  /// Vertical partitioning + column-store (Yggdrasil).
  kQD3,
  /// Vertical partitioning + row-store (Vero — this paper).
  kQD4,
  /// Feature-parallel: no partitioning, full dataset on every worker
  /// (LightGBM feature-parallel mode).
  kFeatureParallel,
};

inline const char* QuadrantToString(Quadrant q) {
  switch (q) {
    case Quadrant::kQD1:
      return "QD1(Horizontal+Column)";
    case Quadrant::kQD2:
      return "QD2(Horizontal+Row)";
    case Quadrant::kQD3:
      return "QD3(Vertical+Column)";
    case Quadrant::kQD4:
      return "QD4(Vertical+Row/Vero)";
    case Quadrant::kFeatureParallel:
      return "FeatureParallel";
  }
  return "?";
}

inline bool IsVertical(Quadrant q) {
  return q == Quadrant::kQD3 || q == Quadrant::kQD4;
}

}  // namespace vero

#endif  // VERO_QUADRANTS_QUADRANT_H_
