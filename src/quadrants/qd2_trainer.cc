#include "quadrants/qd2_trainer.h"

#include <bit>
#include <cstring>
#include <numeric>

#include "common/bitmap.h"
#include "common/logging.h"

namespace vero {

Qd2Trainer::Qd2Trainer(WorkerContext& ctx, const DistTrainOptions& options,
                       const Dataset& shard, const CandidateSplits& splits,
                       uint32_t num_global_instances)
    : DistTrainerBase(ctx, options, shard.task(), shard.num_classes()),
      splits_(splits),
      store_(BinnedRowStore::FromCsr(shard.matrix(), splits)),
      num_local_rows_(shard.num_instances()) {
  num_global_instances_ = num_global_instances;
  labels_ = shard.labels();
  margins_.assign(static_cast<size_t>(num_local_rows_) * dims_, 0.0);
  grads_ = GradientBuffer(num_local_rows_, dims_);
  all_features_.resize(shard.num_features());
  std::iota(all_features_.begin(), all_features_.end(), FeatureId{0});
}

uint64_t Qd2Trainer::DataBytes() const {
  return store_.MemoryBytes() + labels_.capacity() * sizeof(float);
}

uint32_t Qd2Trainer::HistFeatureCount() const {
  return static_cast<uint32_t>(all_features_.size());
}

void Qd2Trainer::InitTreeIndexes() {
  partition_.Init(num_local_rows_, options_.params.num_layers);
}

GradStats Qd2Trainer::ComputeGradients() {
  ComputeGradientsParallel(*loss_, labels_, margins_, num_local_rows_,
                           options_.params.num_threads, &grads_);
  GradStats local = grads_.Total();
  // Tiny all-reduce of the 2C root sums.
  std::vector<double> raw(2 * dims_);
  for (uint32_t k = 0; k < dims_; ++k) {
    raw[2 * k] = local[k].g;
    raw[2 * k + 1] = local[k].h;
  }
  VERO_COMM_OK(ctx_.AllReduceSum(raw));
  for (uint32_t k = 0; k < dims_; ++k) {
    local[k].g = raw[2 * k];
    local[k].h = raw[2 * k + 1];
  }
  return local;
}

void Qd2Trainer::BuildLayerHistograms(const std::vector<BuildTask>& tasks) {
  BuildRowLayer(store_, partition_, tasks, 0, HistFeatureCount(),
                HistFeatureCount());
}

std::vector<SplitCandidate> Qd2Trainer::FindLayerSplits(
    const std::vector<NodeId>& frontier) {
  const int w = ctx_.world_size();
  const int rank = ctx_.rank();
  const uint32_t d = HistFeatureCount();
  const uint32_t q = options_.params.num_candidate_splits;
  // Doubles per feature in the flat histogram layout.
  const size_t per_feature = static_cast<size_t>(q) * dims_ * 2;

  // Feature-sliced reduce-scatter, realized as a personalized all-to-all:
  // worker g receives (and sums) the [fbegin(g), fend(g)) feature rows of
  // every frontier node's local histogram.
  std::vector<std::vector<uint8_t>> to_dest(w);
  for (int g = 0; g < w; ++g) {
    const size_t fb = ctx_.SliceBegin(d, g);
    const size_t fe = ctx_.SliceEnd(d, g);
    std::vector<uint8_t>& buf = to_dest[g];
    buf.resize(frontier.size() * (fe - fb) * per_feature * sizeof(double));
    uint8_t* out = buf.data();
    for (NodeId node : frontier) {
      const Histogram* hist = pool_.Get(node);
      VERO_CHECK(hist != nullptr);
      const double* src = hist->raw_data() + fb * per_feature;
      const size_t bytes = (fe - fb) * per_feature * sizeof(double);
      std::memcpy(out, src, bytes);
      out += bytes;
    }
  }
  // Pairwise audit evidence: what this rank handed to the transport for
  // every destination (digest + hessian-free byte mass), captured before
  // the buffers are moved into the exchange.
  std::vector<uint64_t> sent_digest, sent_mass;
  if (auditor_.enabled()) {
    sent_digest.assign(w, kAuditSkip);
    // With a lossy codec the receiver reconstructs decode(encode(payload)),
    // so the sender must digest the same round-tripped bytes — otherwise a
    // clean quantized exchange would trip the pairwise digest check.
    const bool lossy = CodecIsLossy(codec_) && codec_.enabled();
    std::vector<std::vector<uint8_t>> round_tripped;
    if (lossy) {
      round_tripped.resize(w);
      for (int g = 0; g < w; ++g) {
        round_tripped[g] = CodecRoundTripBytes(to_dest[g], codec_);
      }
    }
    const std::vector<std::vector<uint8_t>>& seen =
        lossy ? round_tripped : to_dest;
    for (int g = 0; g < w; ++g) {
      sent_digest[g] = AuditDigestBytes(seen[g].data(), seen[g].size());
    }
    if (auditor_.full()) {
      sent_mass.assign(w, kAuditSkip);
      for (int g = 0; g < w; ++g) {
        const double* vals =
            reinterpret_cast<const double*>(seen[g].data());
        const size_t n = seen[g].size() / sizeof(double);
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) sum += vals[i];
        sent_mass[g] = std::bit_cast<uint64_t>(sum);
      }
    }
  }
  std::vector<std::vector<uint8_t>> from_src;
  MitigationOutcome exchange_outcome;
  VERO_COMM_OK(ctx_.AllToAllBoundedCodec(std::move(to_dest), &from_src, codec_,
                                         mitigation_, &exchange_outcome));
  if (auditor_.enabled()) {
    // Matching receive-side evidence; pairs whose slice was deferred by
    // straggler mitigation carry the skip sentinel on the receive side.
    std::vector<uint64_t> recv_digest(w, kAuditSkip);
    std::vector<uint64_t> recv_mass(w, kAuditSkip);
    for (int src = 0; src < w; ++src) {
      if (!exchange_outcome.contributed[src]) continue;
      recv_digest[src] =
          AuditDigestBytes(from_src[src].data(), from_src[src].size());
      if (auditor_.full()) {
        const double* vals =
            reinterpret_cast<const double*>(from_src[src].data());
        const size_t n = from_src[src].size() / sizeof(double);
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) sum += vals[i];
        recv_mass[src] = std::bit_cast<uint64_t>(sum);
      }
    }
    auditor_.PushPairwise("qd2-hist-exchange", sent_digest, recv_digest,
                          /*exact=*/true);
    if (auditor_.full()) {
      auditor_.PushPairwise("qd2-hist-mass", sent_mass, recv_mass,
                            /*exact=*/false);
    }
  }

  const size_t my_fb = ctx_.SliceBegin(d, rank);
  const size_t my_fe = ctx_.SliceEnd(d, rank);
  const size_t my_features = my_fe - my_fb;
  const size_t doubles_per_node = my_features * per_feature;
  std::vector<double> agg(frontier.size() * doubles_per_node, 0.0);
  for (int src = 0; src < w; ++src) {
    // A deferred straggler's slice was dropped cluster-wide; its mass
    // re-enters the rebuilt histograms of the next layer.
    if (!exchange_outcome.contributed[src]) continue;
    VERO_CHECK_EQ(from_src[src].size(), agg.size() * sizeof(double));
    const double* in = reinterpret_cast<const double*>(from_src[src].data());
    for (size_t i = 0; i < agg.size(); ++i) agg[i] += in[i];
  }

  // Local best per node over the owned feature slice.
  std::vector<FeatureId> slice_ids(my_features);
  std::iota(slice_ids.begin(), slice_ids.end(),
            static_cast<FeatureId>(my_fb));
  std::vector<SplitCandidate> local_best(frontier.size());
  Histogram slice(static_cast<uint32_t>(my_features), q, dims_);
  for (size_t i = 0; i < frontier.size(); ++i) {
    std::memcpy(slice.raw_data(), agg.data() + i * doubles_per_node,
                doubles_per_node * sizeof(double));
    // The missing-value bucket needs the node totals minus the mass present
    // in this slice's feature bins; FindBest computes it per feature from
    // the full node stats, which works on any feature subset.
    local_best[i] = finder_.FindBest(slice, node_stats_[frontier[i]],
                                     slice_ids, splits_);
  }

  // Exchange local bests; everyone deterministically merges (skipping any
  // rank whose bests were deferred past the deadline — identically so on
  // every rank, which keeps the split decision replicated).
  std::vector<std::vector<uint8_t>> all;
  MitigationOutcome best_outcome;
  VERO_COMM_OK(ctx_.AllGatherBounded(SerializeSplits(local_best), &all,
                                     mitigation_, &best_outcome));
  std::vector<SplitCandidate> best;
  for (int r = 0; r < w; ++r) {
    if (!best_outcome.contributed[r]) continue;
    MergeBestSplits(DeserializeSplits(all[r]), &best);
  }
  return best;
}

void Qd2Trainer::ApplyLayerSplits(const std::vector<NodeId>& nodes,
                                  const std::vector<SplitCandidate>& splits,
                                  std::vector<uint32_t>* child_counts) {
  // Each worker owns full rows, so placement is local (no broadcast).
  std::vector<double> counts(2 * nodes.size(), 0.0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SplitCandidate& s = splits[i];
    auto instances = partition_.Instances(nodes[i]);
    Bitmap go_left(instances.size());
    store_.FillGoLeft(instances, s.feature, s.split_bin, s.default_left,
                      &go_left);
    partition_.Split(nodes[i], go_left);
    counts[2 * i] = partition_.Count(LeftChild(nodes[i]));
    counts[2 * i + 1] = partition_.Count(RightChild(nodes[i]));
  }
  // Global child counts drive the shared subtraction schema (the "master
  // collects instance counts" step of §4.2.2).
  VERO_COMM_OK(ctx_.AllReduceSum(counts));
  child_counts->resize(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    (*child_counts)[i] = static_cast<uint32_t>(counts[i] + 0.5);
  }
}

void Qd2Trainer::UpdateMargins(const Tree& tree) {
  const double lr = options_.params.learning_rate;
  for (NodeId node = 0; node < static_cast<NodeId>(tree.max_nodes());
       ++node) {
    if (!partition_.Has(node)) continue;
    const std::vector<float>& w = tree.node(node).leaf_values;
    for (InstanceId i : partition_.Instances(node)) {
      for (uint32_t k = 0; k < dims_; ++k) {
        margins_[static_cast<size_t>(i) * dims_ + k] += lr * w[k];
      }
    }
  }
}

}  // namespace vero
