#ifndef VERO_QUADRANTS_QD4_VERO_H_
#define VERO_QUADRANTS_QD4_VERO_H_

#include "quadrants/vertical_common.h"

namespace vero {

/// QD4 — Vero: vertical partitioning + row-store (§4.2). Each worker trains
/// on a blockified column group (all instances x owned features, quantized),
/// builds histograms with the node-to-instance index and histogram
/// subtraction, routes split decisions through the master, and broadcasts
/// placement bitmaps after node splits.
class Qd4VeroTrainer : public VerticalTrainerBase {
 public:
  Qd4VeroTrainer(WorkerContext& ctx, const DistTrainOptions& options,
                 Task task, uint32_t num_classes, const VerticalShard& shard);

  uint64_t DataBytes() const override;

 protected:
  void BuildLayerHistograms(const std::vector<BuildTask>& tasks) override;
  bool PlaceInstance(InstanceId instance, uint32_t local_feature,
                     const SplitCandidate& split) const override;
  bool MasterCoordinatesSplits() const override { return true; }

 private:
};

}  // namespace vero

#endif  // VERO_QUADRANTS_QD4_VERO_H_
