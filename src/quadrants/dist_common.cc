#include "quadrants/dist_common.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vero {

TreeCostSummary SummarizeTreeCosts(const std::vector<TreeCost>& costs) {
  TreeCostSummary summary;
  if (costs.empty()) return summary;
  const double n = static_cast<double>(costs.size());
  for (const TreeCost& c : costs) summary.mean += c;
  summary.mean.gradient_seconds /= n;
  summary.mean.hist_seconds /= n;
  summary.mean.find_split_seconds /= n;
  summary.mean.node_split_seconds /= n;
  summary.mean.other_seconds /= n;
  summary.mean.comm_seconds /= n;
  summary.mean.bytes_sent /= costs.size();
  if (costs.size() > 1) {
    double comp_var = 0.0, comm_var = 0.0;
    for (const TreeCost& c : costs) {
      const double dc = c.comp_seconds() - summary.mean.comp_seconds();
      const double dm = c.comm_seconds - summary.mean.comm_seconds;
      comp_var += dc * dc;
      comm_var += dm * dm;
    }
    summary.comp_std = std::sqrt(comp_var / (costs.size() - 1));
    summary.comm_std = std::sqrt(comm_var / (costs.size() - 1));
  }
  return summary;
}

std::vector<uint8_t> SerializeSplits(
    const std::vector<SplitCandidate>& splits) {
  ByteWriter writer;
  writer.WriteU32(static_cast<uint32_t>(splits.size()));
  for (const SplitCandidate& s : splits) s.SerializeTo(&writer);
  return writer.TakeData();
}

std::vector<SplitCandidate> DeserializeSplits(
    const std::vector<uint8_t>& data) {
  ByteReader reader(data);
  uint32_t n = 0;
  VERO_CHECK_OK(reader.ReadU32(&n));
  std::vector<SplitCandidate> splits(n);
  for (SplitCandidate& s : splits) {
    VERO_CHECK_OK(SplitCandidate::Deserialize(&reader, &s));
  }
  return splits;
}

MitigationOptions MitigationFromParams(const GbdtParams& params) {
  MitigationOptions opts;
  switch (params.straggler_mitigation) {
    case StragglerMitigation::kStrict:
      opts.mode = MitigationMode::kStrict;
      break;
    case StragglerMitigation::kBoundedStaleness:
      opts.mode = MitigationMode::kBoundedStaleness;
      break;
    case StragglerMitigation::kSpeculative:
      opts.mode = MitigationMode::kSpeculative;
      break;
  }
  opts.deadline_seconds = params.staleness_deadline_seconds;
  opts.speculation_threshold_seconds = params.speculation_threshold_seconds;
  opts.staleness_bound = params.staleness_bound;
  opts.max_stale_ranks = params.staleness_max_stale_ranks;
  return opts;
}

CodecSpec CodecFromParams(const GbdtParams& params, uint32_t dims) {
  CodecSpec spec;
  switch (params.compression) {
    case HistogramCompression::kOff:
      spec.mode = CollectiveCompression::kOff;
      break;
    case HistogramCompression::kSparse:
      spec.mode = CollectiveCompression::kSparse;
      break;
    case HistogramCompression::kSparseDelta:
      spec.mode = CollectiveCompression::kSparseDelta;
      break;
    case HistogramCompression::kQuantized:
      spec.mode = CollectiveCompression::kQuantized;
      break;
  }
  // One feature's histogram per block: q bins x dims x (grad, hess).
  spec.block_values =
      static_cast<uint64_t>(params.num_candidate_splits) * dims * 2;
  spec.density_threshold = params.compression_density_threshold;
  return spec;
}

void MergeBestSplits(const std::vector<SplitCandidate>& candidates,
                     std::vector<SplitCandidate>* best) {
  if (best->empty()) {
    *best = candidates;
    return;
  }
  VERO_CHECK_EQ(candidates.size(), best->size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].IsBetterThan((*best)[i])) {
      (*best)[i] = candidates[i];
    }
  }
}

DistTrainerBase::DistTrainerBase(WorkerContext& ctx,
                                 const DistTrainOptions& options, Task task,
                                 uint32_t num_classes)
    : ctx_(ctx),
      options_(options),
      task_(task),
      num_classes_(num_classes),
      dims_(task == Task::kMultiClass ? num_classes : 1),
      loss_(MakeLossForTask(task, num_classes)),
      finder_(options.params.reg_lambda, options.params.reg_gamma,
              options.params.min_split_gain),
      mitigation_(MitigationFromParams(options.params)),
      codec_(CodecFromParams(options.params, dims_)),
      auditor_(ctx, options.params.integrity,
               options.params.integrity_tolerance),
      model_(task, num_classes, options.params.learning_rate),
      builder_(options.params.num_threads) {}

void DistTrainerBase::InitFromCheckpoint(const GbdtModel& model,
                                         std::span<const double> margins) {
  VERO_CHECK_EQ(margins.size(), margins_.size());
  model_ = model;
  std::copy(margins.begin(), margins.end(), margins_.begin());
}

void DistTrainerBase::Train(const Dataset* valid,
                            std::vector<TreeCost>* tree_costs,
                            std::vector<IterationStats>* curve,
                            double setup_sim_seconds) {
  const GbdtParams& params = options_.params;
  const uint32_t num_layers = params.num_layers;
  const uint32_t max_nodes = (1u << num_layers) - 1;
  tree_costs->clear();
  if (curve != nullptr) curve->clear();

  // Resuming from a checkpointed prefix: keep its trees, continue the count.
  const uint32_t start_tree = static_cast<uint32_t>(model_.num_trees());

  std::vector<double> valid_margins;
  if (valid != nullptr && ctx_.rank() == 0) {
    if (start_tree > 0) {
      valid_margins = model_.PredictDatasetMargins(*valid);
    } else {
      valid_margins.assign(
          static_cast<size_t>(valid->num_instances()) * dims_, 0.0);
    }
  }
  double elapsed = setup_sim_seconds;
  double best_metric = 0.0;
  bool best_metric_set = false;
  uint32_t rounds_since_best = 0;

  // Null unless an observer with tracing is attached; PhaseSpan measures
  // either way, so the cost accounting below is identical in both modes.
  obs::TraceBuffer* tb = ctx_.trace_buffer();
  const double* sim_clock = &ctx_.stats().sim_seconds;

  for (uint32_t t = start_tree; t < params.num_trees; ++t) {
    const double tree_sim_start = ctx_.stats().sim_seconds;
    const uint64_t tree_bytes_start = ctx_.stats().bytes_sent;
    if (tb != nullptr) tb->SetContext(static_cast<int32_t>(t), -1);
    TreeCost local;  // Thread-CPU seconds of this worker's phases.

    // ---- Gradients ----
    {
      obs::PhaseSpan span(tb, "gradient", sim_clock);
      GradStats root_stats = ComputeGradients();
      ApplyGradientPoison();
      if (auditor_.enabled()) AuditGradients(&root_stats);
      local.gradient_seconds = span.Close();

      InitTreeIndexes();
      node_stats_.assign(max_nodes, GradStats{});
      node_counts_.assign(max_nodes, 0);
      node_stats_[0] = root_stats;
    }

    VERO_CHECK_GT(num_global_instances_, 0u);
    node_counts_[0] = num_global_instances_;

    Tree tree(num_layers, dims_);
    std::vector<NodeId> frontier = {0};
    std::vector<std::pair<NodeId, NodeId>> pairs;
    const bool subtraction =
        UsesSubtraction() && params.histogram_subtraction;

    for (uint32_t depth = 0; depth < num_layers && !frontier.empty();
         ++depth) {
      const bool last_layer = (depth + 1 == num_layers);
      if (tb != nullptr) {
        tb->SetContext(static_cast<int32_t>(t), static_cast<int32_t>(depth));
      }
      // ---- Histogram construction ----
      // Nodes on the last layer become leaves unconditionally, so their
      // histograms are never consulted; skip building them.
      obs::PhaseSpan hist_span(tb, "hist-build", sim_clock);
      if (!last_layer) {
        std::vector<BuildTask> tasks;
        if (depth == 0) {
          tasks.push_back(BuildTask{0, kInvalidNode, kInvalidNode});
        } else {
          for (const auto& [left, right] : pairs) {
            const NodeId parent = Parent(left);
            if (subtraction) {
              const NodeId smaller =
                  node_counts_[left] <= node_counts_[right] ? left : right;
              tasks.push_back(BuildTask{smaller, Sibling(smaller), parent});
            } else {
              tasks.push_back(BuildTask{left, kInvalidNode, parent});
              tasks.push_back(BuildTask{right, kInvalidNode, parent});
            }
          }
        }
        BuildLayerHistograms(tasks);
        ApplyHistogramPoison(tasks);
        if (auditor_.full()) {
          layer_hist_nonfinite_ = ScanBuiltHistograms(tasks);
        }
        // Parents are no longer needed once children histograms exist.
        for (const BuildTask& task : tasks) {
          if (task.parent != kInvalidNode) pool_.Release(task.parent);
        }
        // Kernel wall time + threads of the layer's builder pass. Written
        // from this worker thread only (shards are single-writer); values
        // are wall-clock, which the cross-run determinism check ignores.
        if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
          shard->histogram("hist.build_seconds")
              ->Observe(builder_.last_build_seconds());
          shard->gauge("hist.threads")
              ->Set(static_cast<double>(builder_.last_threads_used()));
        }
      }
      local.hist_seconds += hist_span.Close();

      // ---- Split finding ----
      obs::PhaseSpan find_span(tb, "find-split", sim_clock);
      std::vector<SplitCandidate> best;
      if (!last_layer) {
        best = FindLayerSplits(frontier);
        VERO_CHECK_EQ(best.size(), frontier.size());
        if (auditor_.enabled()) AuditLayer(frontier, &best);
      } else {
        best.resize(frontier.size());
      }
      std::vector<NodeId> split_nodes;
      std::vector<SplitCandidate> split_decisions;
      for (size_t i = 0; i < frontier.size(); ++i) {
        const NodeId node = frontier[i];
        const bool can_split =
            best[i].valid &&
            node_counts_[node] >= 2 * params.min_child_instances;
        if (can_split) {
          split_nodes.push_back(node);
          split_decisions.push_back(std::move(best[i]));
        } else {
          tree.SetLeaf(node, finder_.LeafWeights(node_stats_[node]));
          pool_.Release(node);
        }
      }
      local.find_split_seconds += find_span.Close();

      // ---- Node splitting ----
      obs::PhaseSpan split_span(tb, "node-split", sim_clock);
      pairs.clear();
      std::vector<NodeId> next_frontier;
      if (!split_nodes.empty()) {
        for (size_t i = 0; i < split_nodes.size(); ++i) {
          const SplitCandidate& s = split_decisions[i];
          tree.SetSplit(split_nodes[i], s.feature, s.split_value, s.split_bin,
                        s.default_left, s.gain);
        }
        std::vector<uint32_t> child_counts;
        ApplyLayerSplits(split_nodes, split_decisions, &child_counts);
        VERO_CHECK_EQ(child_counts.size(), 2 * split_nodes.size());
        for (size_t i = 0; i < split_nodes.size(); ++i) {
          const NodeId l = LeftChild(split_nodes[i]);
          const NodeId r = RightChild(split_nodes[i]);
          node_stats_[l] = split_decisions[i].left_stats;
          node_stats_[r] = split_decisions[i].right_stats;
          node_counts_[l] = child_counts[2 * i];
          node_counts_[r] = child_counts[2 * i + 1];
          pairs.emplace_back(l, r);
          next_frontier.push_back(l);
          next_frontier.push_back(r);
        }
        if (auditor_.enabled()) AuditChildCounts(child_counts);
        if (!subtraction) {
          // No subtraction: parents' histograms are dead immediately.
          for (NodeId node : split_nodes) pool_.Release(node);
        }
      }
      local.node_split_seconds += split_span.Close();
      frontier = std::move(next_frontier);
    }
    if (tb != nullptr) tb->SetContext(static_cast<int32_t>(t), -1);
    for (NodeId node = 0; node < static_cast<NodeId>(max_nodes); ++node) {
      pool_.Release(node);
    }

    // ---- Margin update ----
    {
      obs::PhaseSpan span(tb, "margin-update", sim_clock);
      UpdateMargins(tree);
      local.other_seconds = span.Close();
    }

    if (auditor_.enabled()) AuditRound();

    model_.AddTree(std::move(tree));

    // ---- Cluster-level cost of this round ----
    const double my_comm = ctx_.stats().sim_seconds - tree_sim_start;
    const double my_bytes =
        static_cast<double>(ctx_.stats().bytes_sent - tree_bytes_start);
    TreeCost cost;
    cost.gradient_seconds = ctx_.InstrumentMax(local.gradient_seconds);
    cost.hist_seconds = ctx_.InstrumentMax(local.hist_seconds);
    cost.find_split_seconds = ctx_.InstrumentMax(local.find_split_seconds);
    cost.node_split_seconds = ctx_.InstrumentMax(local.node_split_seconds);
    cost.other_seconds = ctx_.InstrumentMax(local.other_seconds);
    cost.comm_seconds = ctx_.InstrumentMax(my_comm);
    cost.bytes_sent =
        static_cast<uint64_t>(std::llround(ctx_.InstrumentSum(my_bytes)));
    tree_costs->push_back(cost);
    elapsed += cost.total_seconds();

    // ---- Curve recording (rank 0) ----
    if (curve != nullptr) {
      const uint32_t my_rows = static_cast<uint32_t>(labels_.size());
      const double my_loss_sum =
          loss_->ComputeLoss(labels_, margins_, 0, my_rows) * my_rows;
      // Vertical quadrants replicate all rows; horizontal ones own a shard.
      const double loss_sum = OwnsAllRows()
                                  ? my_loss_sum
                                  : ctx_.InstrumentSum(my_loss_sum);
      IterationStats stats;
      stats.tree_index = t;
      stats.train_loss = loss_sum / num_global_instances_;
      stats.elapsed_seconds = elapsed;
      if (valid != nullptr && ctx_.rank() == 0) {
        const Tree& last = model_.tree(model_.num_trees() - 1);
        const CsrMatrix& vm = valid->matrix();
        for (InstanceId i = 0; i < valid->num_instances(); ++i) {
          last.PredictInto(vm.RowFeatures(i), vm.RowValues(i),
                           params.learning_rate,
                           valid_margins.data() +
                               static_cast<size_t>(i) * dims_);
        }
        const MetricValue metric =
            EvaluateMargins(valid->task(), valid->num_classes(),
                            valid->labels(), valid_margins);
        stats.valid_metric = metric.value;
        stats.has_valid_metric = true;
        const bool improved =
            !best_metric_set ||
            (metric.higher_is_better ? metric.value > best_metric
                                     : metric.value < best_metric);
        if (improved) {
          best_metric = metric.value;
          best_metric_set = true;
          rounds_since_best = 0;
        } else {
          ++rounds_since_best;
        }
      }
      curve->push_back(stats);
    }

    // ---- Checkpoint (rank 0 only, no collectives) ----
    // Sits after the cost/curve recording so a checkpoint's trees_done never
    // exceeds the number of recorded cost entries, which the recovery path
    // relies on when stitching the pre-failure prefix.
    const bool interval_hit = checkpoint_interval_ > 0 &&
                              (t + 1 - start_tree) % checkpoint_interval_ == 0;
    // checkpoint_final_ guarantees a checkpoint at exactly the last tree of
    // a boundary-clamped attempt (resize rendezvous resume point) even when
    // the interval does not land there.
    const bool final_hit = checkpoint_final_ && t + 1 == params.num_trees;
    if (checkpoint_sink_ && ctx_.rank() == 0 && (interval_hit || final_hit)) {
      obs::PhaseSpan span(tb, checkpoint_span_name_, sim_clock);
      checkpoint_sink_(model_, t + 1);
    }

    // Early stopping: rank 0 owns the validation metric; every worker must
    // take the same branch, so the decision travels over the
    // instrumentation channel.
    if (params.early_stopping_rounds > 0 && valid != nullptr) {
      const double stop_flag =
          (ctx_.rank() == 0 &&
           rounds_since_best >= params.early_stopping_rounds)
              ? 1.0
              : 0.0;
      if (ctx_.InstrumentMax(stop_flag) > 0.5) break;
    }
  }
  if (tb != nullptr) tb->SetContext(-1, -1);
}

// ---------------------------------------------------------------------------
// Integrity: compute-fault (poison) application.
// ---------------------------------------------------------------------------

namespace {

// xorshift64 matching the transport-corruption PRNG: deterministic poison
// placement from the fault event's seed alone.
uint64_t PoisonRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

double PoisonValue(bool inf) {
  return inf ? std::numeric_limits<double>::infinity()
             : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

void DistTrainerBase::ApplyGradientPoison() {
  const PoisonDecision d = ctx_.ConsultComputeFault(ComputePoint::kGradient);
  if (!d.poison) return;
  const uint32_t n = grads_.num_instances();
  const uint32_t dims = grads_.num_dims();
  if (n == 0 || dims == 0) return;
  uint64_t state = d.seed != 0 ? d.seed : 0x9e3779b97f4a7c15ull;
  const uint32_t row = static_cast<uint32_t>(PoisonRand(&state) % n);
  const uint32_t dim = static_cast<uint32_t>(PoisonRand(&state) % dims);
  grads_.at(row, dim).g = PoisonValue(d.inf);
}

void DistTrainerBase::ApplyHistogramPoison(
    const std::vector<BuildTask>& tasks) {
  if (tasks.empty()) return;
  const PoisonDecision d = ctx_.ConsultComputeFault(ComputePoint::kHistogram);
  if (!d.poison) return;
  uint64_t state = d.seed != 0 ? d.seed : 0x9e3779b97f4a7c15ull;
  const BuildTask& task = tasks[PoisonRand(&state) % tasks.size()];
  Histogram* hist = pool_.Get(task.build_node);
  if (hist == nullptr || hist->raw_size() == 0) return;
  hist->raw_data()[PoisonRand(&state) % hist->raw_size()] =
      PoisonValue(d.inf);
}

// ---------------------------------------------------------------------------
// Integrity: local invariant scans (evidence for the audit flags).
// ---------------------------------------------------------------------------

bool DistTrainerBase::ScanBuiltHistograms(
    const std::vector<BuildTask>& tasks) const {
  for (const BuildTask& task : tasks) {
    for (NodeId node : {task.build_node, task.subtract_node}) {
      if (node == kInvalidNode) continue;
      const Histogram* hist = pool_.Get(node);
      if (hist == nullptr) continue;
      if (HasNonFinite({hist->raw_data(), hist->raw_size()})) return true;
    }
  }
  return false;
}

bool DistTrainerBase::HistMassViolated(
    const std::vector<NodeId>& frontier) const {
  // The supported losses all have h >= 0, so the present hessian mass of
  // any feature column is within [0, node hessian] — whether the histogram
  // at hand is a local shard contribution (horizontal, pre-aggregation), a
  // full-mass owned column (vertical), or the aggregated global column
  // (QD1, where at the root this IS the "root-histogram mass equals the
  // all-reduced gradient sums" identity).
  const double tol = auditor_.tolerance();
  const uint32_t features = HistFeatureCount();
  for (NodeId node : frontier) {
    const Histogram* hist = pool_.Get(node);
    if (hist == nullptr) continue;
    const GradStats& stats = node_stats_[node];
    for (uint32_t f = 0; f < features; ++f) {
      const GradStats present = hist->FeatureTotal(f);
      for (uint32_t k = 0; k < dims_; ++k) {
        const double h = present[k].h;
        const double node_h = stats[k].h;
        if (!std::isfinite(h) || !std::isfinite(node_h)) return true;
        const double slack = tol * (std::fabs(node_h) + 1.0);
        if (h < -slack || h > node_h + slack) return true;
      }
    }
  }
  return false;
}

bool DistTrainerBase::GradsNonFinite() const {
  const uint32_t n = grads_.num_instances();
  const uint32_t dims = grads_.num_dims();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t k = 0; k < dims; ++k) {
      const GradPair& p = grads_.at(i, k);
      if (!std::isfinite(p.g) || !std::isfinite(p.h)) return true;
    }
  }
  return false;
}

bool DistTrainerBase::SplitsNonFinite(
    const std::vector<SplitCandidate>& splits) {
  for (const SplitCandidate& s : splits) {
    if (!s.valid) continue;
    if (!std::isfinite(s.gain) || !std::isfinite(s.split_value)) return true;
    for (const GradPair& p : s.left_stats) {
      if (!std::isfinite(p.g) || !std::isfinite(p.h)) return true;
    }
    for (const GradPair& p : s.right_stats) {
      if (!std::isfinite(p.g) || !std::isfinite(p.h)) return true;
    }
  }
  return false;
}

uint64_t DistTrainerBase::CountsDigest(
    const std::vector<NodeId>& nodes) const {
  std::vector<uint32_t> counts;
  counts.reserve(nodes.size());
  for (NodeId node : nodes) counts.push_back(node_counts_[node]);
  return AuditDigestWords(counts);
}

// ---------------------------------------------------------------------------
// Integrity: audit points and the recompute loops.
// ---------------------------------------------------------------------------

void DistTrainerBase::AuditGradients(GradStats* root_stats) {
  for (uint32_t attempt = 0;; ++attempt) {
    auditor_.PushReplicated(
        "root-stats",
        AuditDigestBytes(root_stats->data(),
                         root_stats->size() * sizeof(GradPair)));
    if (auditor_.full()) {
      auditor_.PushFlag("gradient-nonfinite", GradsNonFinite());
    }
    const AuditVerdict verdict = auditor_.Exchange("gradient");
    if (verdict.ok) return;
    if (attempt >= options_.params.integrity_max_recomputes) {
      auditor_.Escalate(verdict);
    }
    // Recompute gradients and redo the root all-reduce; the occurrence
    // streams have advanced past the injected event, so the retry is clean
    // (a repeat injection re-trips the audit and eventually escalates).
    const uint64_t bytes_before = ctx_.stats().bytes_sent;
    const double sim_before = ctx_.stats().sim_seconds;
    *root_stats = ComputeGradients();
    ApplyGradientPoison();
    auditor_.RecordRecompute(ctx_.stats().bytes_sent - bytes_before,
                             ctx_.stats().sim_seconds - sim_before);
  }
}

void DistTrainerBase::AuditLayer(const std::vector<NodeId>& frontier,
                                 std::vector<SplitCandidate>* best) {
  for (uint32_t attempt = 0;; ++attempt) {
    // Quadrant transport digests for this round were already pushed inside
    // FindLayerSplits; layer-level evidence goes on top of them.
    const std::vector<uint8_t> decision = SerializeSplits(*best);
    auditor_.PushReplicated(
        "layer-decision",
        AuditDigestBytes(decision.data(), decision.size()));
    auditor_.PushReplicated("layer-counts", CountsDigest(frontier));
    if (auditor_.full()) {
      auditor_.PushFlag("hist-built-nonfinite", layer_hist_nonfinite_);
      auditor_.PushFlag("hist-mass", HistMassViolated(frontier));
      auditor_.PushFlag("split-nonfinite", SplitsNonFinite(*best));
    }
    const AuditVerdict verdict = auditor_.Exchange("layer");
    if (verdict.ok) return;
    if (attempt >= options_.params.integrity_max_recomputes) {
      auditor_.Escalate(verdict);
    }
    const uint64_t bytes_before = ctx_.stats().bytes_sent;
    const double sim_before = ctx_.stats().sim_seconds;
    RecomputeLayer(frontier);
    *best = FindLayerSplits(frontier);
    auditor_.RecordRecompute(ctx_.stats().bytes_sent - bytes_before,
                             ctx_.stats().sim_seconds - sim_before);
  }
}

void DistTrainerBase::AuditChildCounts(
    const std::vector<uint32_t>& child_counts) {
  auditor_.PushReplicated(
      "child-counts",
      AuditDigestWords({child_counts.data(), child_counts.size()}));
  const AuditVerdict verdict = auditor_.Exchange("counts");
  // The counts were produced by (and alongside) the instance placement that
  // ApplyLayerSplits already committed, so there is nothing retained to
  // recompute them from; a violation escalates straight to rollback before
  // the divergent frontier can desynchronize the next layer's collectives.
  if (!verdict.ok) auditor_.Escalate(verdict);
}

void DistTrainerBase::AuditRound() {
  auditor_.PushReplicated(
      "round-counts",
      AuditDigestWords({node_counts_.data(), node_counts_.size()}));
  if (auditor_.full()) {
    auditor_.PushFlag("margin-nonfinite", HasNonFinite(margins_));
  }
  const AuditVerdict verdict = auditor_.Exchange("round");
  // Instance placement (and the margins derived from it) cannot be rebuilt
  // from retained state, so a violation here escalates straight to the
  // rollback / membership machine.
  if (!verdict.ok) auditor_.Escalate(verdict);
}

void DistTrainerBase::RecomputeLayer(const std::vector<NodeId>& frontier) {
  // Discard the (possibly corrupted) layer state wholesale: every frontier
  // histogram is rebuilt from this worker's own data without subtraction
  // (parents were already released), after which the caller re-runs the
  // quadrant's split exchange.
  std::vector<BuildTask> tasks;
  tasks.reserve(frontier.size());
  for (NodeId node : frontier) {
    pool_.Release(node);
    tasks.push_back(BuildTask{node, kInvalidNode, kInvalidNode});
  }
  BuildLayerHistograms(tasks);
  ApplyHistogramPoison(tasks);
  if (auditor_.full()) {
    layer_hist_nonfinite_ = ScanBuiltHistograms(tasks);
  }
}

}  // namespace vero
