#include "quadrants/dist_common.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "core/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vero {

TreeCostSummary SummarizeTreeCosts(const std::vector<TreeCost>& costs) {
  TreeCostSummary summary;
  if (costs.empty()) return summary;
  const double n = static_cast<double>(costs.size());
  for (const TreeCost& c : costs) summary.mean += c;
  summary.mean.gradient_seconds /= n;
  summary.mean.hist_seconds /= n;
  summary.mean.find_split_seconds /= n;
  summary.mean.node_split_seconds /= n;
  summary.mean.other_seconds /= n;
  summary.mean.comm_seconds /= n;
  summary.mean.bytes_sent /= costs.size();
  if (costs.size() > 1) {
    double comp_var = 0.0, comm_var = 0.0;
    for (const TreeCost& c : costs) {
      const double dc = c.comp_seconds() - summary.mean.comp_seconds();
      const double dm = c.comm_seconds - summary.mean.comm_seconds;
      comp_var += dc * dc;
      comm_var += dm * dm;
    }
    summary.comp_std = std::sqrt(comp_var / (costs.size() - 1));
    summary.comm_std = std::sqrt(comm_var / (costs.size() - 1));
  }
  return summary;
}

std::vector<uint8_t> SerializeSplits(
    const std::vector<SplitCandidate>& splits) {
  ByteWriter writer;
  writer.WriteU32(static_cast<uint32_t>(splits.size()));
  for (const SplitCandidate& s : splits) s.SerializeTo(&writer);
  return writer.TakeData();
}

std::vector<SplitCandidate> DeserializeSplits(
    const std::vector<uint8_t>& data) {
  ByteReader reader(data);
  uint32_t n = 0;
  VERO_CHECK_OK(reader.ReadU32(&n));
  std::vector<SplitCandidate> splits(n);
  for (SplitCandidate& s : splits) {
    VERO_CHECK_OK(SplitCandidate::Deserialize(&reader, &s));
  }
  return splits;
}

MitigationOptions MitigationFromParams(const GbdtParams& params) {
  MitigationOptions opts;
  switch (params.straggler_mitigation) {
    case StragglerMitigation::kStrict:
      opts.mode = MitigationMode::kStrict;
      break;
    case StragglerMitigation::kBoundedStaleness:
      opts.mode = MitigationMode::kBoundedStaleness;
      break;
    case StragglerMitigation::kSpeculative:
      opts.mode = MitigationMode::kSpeculative;
      break;
  }
  opts.deadline_seconds = params.staleness_deadline_seconds;
  opts.speculation_threshold_seconds = params.speculation_threshold_seconds;
  opts.staleness_bound = params.staleness_bound;
  opts.max_stale_ranks = params.staleness_max_stale_ranks;
  return opts;
}

void MergeBestSplits(const std::vector<SplitCandidate>& candidates,
                     std::vector<SplitCandidate>* best) {
  if (best->empty()) {
    *best = candidates;
    return;
  }
  VERO_CHECK_EQ(candidates.size(), best->size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].IsBetterThan((*best)[i])) {
      (*best)[i] = candidates[i];
    }
  }
}

DistTrainerBase::DistTrainerBase(WorkerContext& ctx,
                                 const DistTrainOptions& options, Task task,
                                 uint32_t num_classes)
    : ctx_(ctx),
      options_(options),
      task_(task),
      num_classes_(num_classes),
      dims_(task == Task::kMultiClass ? num_classes : 1),
      loss_(MakeLossForTask(task, num_classes)),
      finder_(options.params.reg_lambda, options.params.reg_gamma,
              options.params.min_split_gain),
      mitigation_(MitigationFromParams(options.params)),
      model_(task, num_classes, options.params.learning_rate),
      builder_(options.params.num_threads) {}

void DistTrainerBase::InitFromCheckpoint(const GbdtModel& model,
                                         std::span<const double> margins) {
  VERO_CHECK_EQ(margins.size(), margins_.size());
  model_ = model;
  std::copy(margins.begin(), margins.end(), margins_.begin());
}

void DistTrainerBase::Train(const Dataset* valid,
                            std::vector<TreeCost>* tree_costs,
                            std::vector<IterationStats>* curve,
                            double setup_sim_seconds) {
  const GbdtParams& params = options_.params;
  const uint32_t num_layers = params.num_layers;
  const uint32_t max_nodes = (1u << num_layers) - 1;
  tree_costs->clear();
  if (curve != nullptr) curve->clear();

  // Resuming from a checkpointed prefix: keep its trees, continue the count.
  const uint32_t start_tree = static_cast<uint32_t>(model_.num_trees());

  std::vector<double> valid_margins;
  if (valid != nullptr && ctx_.rank() == 0) {
    if (start_tree > 0) {
      valid_margins = model_.PredictDatasetMargins(*valid);
    } else {
      valid_margins.assign(
          static_cast<size_t>(valid->num_instances()) * dims_, 0.0);
    }
  }
  double elapsed = setup_sim_seconds;
  double best_metric = 0.0;
  bool best_metric_set = false;
  uint32_t rounds_since_best = 0;

  // Null unless an observer with tracing is attached; PhaseSpan measures
  // either way, so the cost accounting below is identical in both modes.
  obs::TraceBuffer* tb = ctx_.trace_buffer();
  const double* sim_clock = &ctx_.stats().sim_seconds;

  for (uint32_t t = start_tree; t < params.num_trees; ++t) {
    const double tree_sim_start = ctx_.stats().sim_seconds;
    const uint64_t tree_bytes_start = ctx_.stats().bytes_sent;
    if (tb != nullptr) tb->SetContext(static_cast<int32_t>(t), -1);
    TreeCost local;  // Thread-CPU seconds of this worker's phases.

    // ---- Gradients ----
    {
      obs::PhaseSpan span(tb, "gradient", sim_clock);
      const GradStats root_stats = ComputeGradients();
      local.gradient_seconds = span.Close();

      InitTreeIndexes();
      node_stats_.assign(max_nodes, GradStats{});
      node_counts_.assign(max_nodes, 0);
      node_stats_[0] = root_stats;
    }

    VERO_CHECK_GT(num_global_instances_, 0u);
    node_counts_[0] = num_global_instances_;

    Tree tree(num_layers, dims_);
    std::vector<NodeId> frontier = {0};
    std::vector<std::pair<NodeId, NodeId>> pairs;
    const bool subtraction =
        UsesSubtraction() && params.histogram_subtraction;

    for (uint32_t depth = 0; depth < num_layers && !frontier.empty();
         ++depth) {
      const bool last_layer = (depth + 1 == num_layers);
      if (tb != nullptr) {
        tb->SetContext(static_cast<int32_t>(t), static_cast<int32_t>(depth));
      }
      // ---- Histogram construction ----
      // Nodes on the last layer become leaves unconditionally, so their
      // histograms are never consulted; skip building them.
      obs::PhaseSpan hist_span(tb, "hist-build", sim_clock);
      if (!last_layer) {
        std::vector<BuildTask> tasks;
        if (depth == 0) {
          tasks.push_back(BuildTask{0, kInvalidNode, kInvalidNode});
        } else {
          for (const auto& [left, right] : pairs) {
            const NodeId parent = Parent(left);
            if (subtraction) {
              const NodeId smaller =
                  node_counts_[left] <= node_counts_[right] ? left : right;
              tasks.push_back(BuildTask{smaller, Sibling(smaller), parent});
            } else {
              tasks.push_back(BuildTask{left, kInvalidNode, parent});
              tasks.push_back(BuildTask{right, kInvalidNode, parent});
            }
          }
        }
        BuildLayerHistograms(tasks);
        // Parents are no longer needed once children histograms exist.
        for (const BuildTask& task : tasks) {
          if (task.parent != kInvalidNode) pool_.Release(task.parent);
        }
        // Kernel wall time + threads of the layer's builder pass. Written
        // from this worker thread only (shards are single-writer); values
        // are wall-clock, which the cross-run determinism check ignores.
        if (obs::MetricsShard* shard = ctx_.metrics_shard()) {
          shard->histogram("hist.build_seconds")
              ->Observe(builder_.last_build_seconds());
          shard->gauge("hist.threads")
              ->Set(static_cast<double>(builder_.last_threads_used()));
        }
      }
      local.hist_seconds += hist_span.Close();

      // ---- Split finding ----
      obs::PhaseSpan find_span(tb, "find-split", sim_clock);
      std::vector<SplitCandidate> best;
      if (!last_layer) {
        best = FindLayerSplits(frontier);
        VERO_CHECK_EQ(best.size(), frontier.size());
      } else {
        best.resize(frontier.size());
      }
      std::vector<NodeId> split_nodes;
      std::vector<SplitCandidate> split_decisions;
      for (size_t i = 0; i < frontier.size(); ++i) {
        const NodeId node = frontier[i];
        const bool can_split =
            best[i].valid &&
            node_counts_[node] >= 2 * params.min_child_instances;
        if (can_split) {
          split_nodes.push_back(node);
          split_decisions.push_back(std::move(best[i]));
        } else {
          tree.SetLeaf(node, finder_.LeafWeights(node_stats_[node]));
          pool_.Release(node);
        }
      }
      local.find_split_seconds += find_span.Close();

      // ---- Node splitting ----
      obs::PhaseSpan split_span(tb, "node-split", sim_clock);
      pairs.clear();
      std::vector<NodeId> next_frontier;
      if (!split_nodes.empty()) {
        for (size_t i = 0; i < split_nodes.size(); ++i) {
          const SplitCandidate& s = split_decisions[i];
          tree.SetSplit(split_nodes[i], s.feature, s.split_value, s.split_bin,
                        s.default_left, s.gain);
        }
        std::vector<uint32_t> child_counts;
        ApplyLayerSplits(split_nodes, split_decisions, &child_counts);
        VERO_CHECK_EQ(child_counts.size(), 2 * split_nodes.size());
        for (size_t i = 0; i < split_nodes.size(); ++i) {
          const NodeId l = LeftChild(split_nodes[i]);
          const NodeId r = RightChild(split_nodes[i]);
          node_stats_[l] = split_decisions[i].left_stats;
          node_stats_[r] = split_decisions[i].right_stats;
          node_counts_[l] = child_counts[2 * i];
          node_counts_[r] = child_counts[2 * i + 1];
          pairs.emplace_back(l, r);
          next_frontier.push_back(l);
          next_frontier.push_back(r);
        }
        if (!subtraction) {
          // No subtraction: parents' histograms are dead immediately.
          for (NodeId node : split_nodes) pool_.Release(node);
        }
      }
      local.node_split_seconds += split_span.Close();
      frontier = std::move(next_frontier);
    }
    if (tb != nullptr) tb->SetContext(static_cast<int32_t>(t), -1);
    for (NodeId node = 0; node < static_cast<NodeId>(max_nodes); ++node) {
      pool_.Release(node);
    }

    // ---- Margin update ----
    {
      obs::PhaseSpan span(tb, "margin-update", sim_clock);
      UpdateMargins(tree);
      local.other_seconds = span.Close();
    }

    model_.AddTree(std::move(tree));

    // ---- Cluster-level cost of this round ----
    const double my_comm = ctx_.stats().sim_seconds - tree_sim_start;
    const double my_bytes =
        static_cast<double>(ctx_.stats().bytes_sent - tree_bytes_start);
    TreeCost cost;
    cost.gradient_seconds = ctx_.InstrumentMax(local.gradient_seconds);
    cost.hist_seconds = ctx_.InstrumentMax(local.hist_seconds);
    cost.find_split_seconds = ctx_.InstrumentMax(local.find_split_seconds);
    cost.node_split_seconds = ctx_.InstrumentMax(local.node_split_seconds);
    cost.other_seconds = ctx_.InstrumentMax(local.other_seconds);
    cost.comm_seconds = ctx_.InstrumentMax(my_comm);
    cost.bytes_sent =
        static_cast<uint64_t>(std::llround(ctx_.InstrumentSum(my_bytes)));
    tree_costs->push_back(cost);
    elapsed += cost.total_seconds();

    // ---- Curve recording (rank 0) ----
    if (curve != nullptr) {
      const uint32_t my_rows = static_cast<uint32_t>(labels_.size());
      const double my_loss_sum =
          loss_->ComputeLoss(labels_, margins_, 0, my_rows) * my_rows;
      // Vertical quadrants replicate all rows; horizontal ones own a shard.
      const double loss_sum = OwnsAllRows()
                                  ? my_loss_sum
                                  : ctx_.InstrumentSum(my_loss_sum);
      IterationStats stats;
      stats.tree_index = t;
      stats.train_loss = loss_sum / num_global_instances_;
      stats.elapsed_seconds = elapsed;
      if (valid != nullptr && ctx_.rank() == 0) {
        const Tree& last = model_.tree(model_.num_trees() - 1);
        const CsrMatrix& vm = valid->matrix();
        for (InstanceId i = 0; i < valid->num_instances(); ++i) {
          last.PredictInto(vm.RowFeatures(i), vm.RowValues(i),
                           params.learning_rate,
                           valid_margins.data() +
                               static_cast<size_t>(i) * dims_);
        }
        const MetricValue metric =
            EvaluateMargins(valid->task(), valid->num_classes(),
                            valid->labels(), valid_margins);
        stats.valid_metric = metric.value;
        stats.has_valid_metric = true;
        const bool improved =
            !best_metric_set ||
            (metric.higher_is_better ? metric.value > best_metric
                                     : metric.value < best_metric);
        if (improved) {
          best_metric = metric.value;
          best_metric_set = true;
          rounds_since_best = 0;
        } else {
          ++rounds_since_best;
        }
      }
      curve->push_back(stats);
    }

    // ---- Checkpoint (rank 0 only, no collectives) ----
    // Sits after the cost/curve recording so a checkpoint's trees_done never
    // exceeds the number of recorded cost entries, which the recovery path
    // relies on when stitching the pre-failure prefix.
    const bool interval_hit = checkpoint_interval_ > 0 &&
                              (t + 1 - start_tree) % checkpoint_interval_ == 0;
    // checkpoint_final_ guarantees a checkpoint at exactly the last tree of
    // a boundary-clamped attempt (resize rendezvous resume point) even when
    // the interval does not land there.
    const bool final_hit = checkpoint_final_ && t + 1 == params.num_trees;
    if (checkpoint_sink_ && ctx_.rank() == 0 && (interval_hit || final_hit)) {
      obs::PhaseSpan span(tb, checkpoint_span_name_, sim_clock);
      checkpoint_sink_(model_, t + 1);
    }

    // Early stopping: rank 0 owns the validation metric; every worker must
    // take the same branch, so the decision travels over the
    // instrumentation channel.
    if (params.early_stopping_rounds > 0 && valid != nullptr) {
      const double stop_flag =
          (ctx_.rank() == 0 &&
           rounds_since_best >= params.early_stopping_rounds)
              ? 1.0
              : 0.0;
      if (ctx_.InstrumentMax(stop_flag) > 0.5) break;
    }
  }
  if (tb != nullptr) tb->SetContext(-1, -1);
}

}  // namespace vero
