#include "quadrants/qd1_trainer.h"

#include <cstring>
#include <numeric>

#include "common/logging.h"

namespace vero {

Qd1Trainer::Qd1Trainer(WorkerContext& ctx, const DistTrainOptions& options,
                       const Dataset& shard, const CandidateSplits& splits,
                       uint32_t num_global_instances)
    : DistTrainerBase(ctx, options, shard.task(), shard.num_classes()),
      splits_(splits),
      store_(BinnedColumnStore::FromCsr(shard.matrix(), splits)),
      num_local_rows_(shard.num_instances()) {
  num_global_instances_ = num_global_instances;
  labels_ = shard.labels();
  margins_.assign(static_cast<size_t>(num_local_rows_) * dims_, 0.0);
  grads_ = GradientBuffer(num_local_rows_, dims_);
  all_features_.resize(shard.num_features());
  std::iota(all_features_.begin(), all_features_.end(), FeatureId{0});
  slot_of_node_.assign((size_t{1} << options.params.num_layers) - 1, -1);
}

uint64_t Qd1Trainer::DataBytes() const {
  return store_.MemoryBytes() + labels_.capacity() * sizeof(float);
}

uint32_t Qd1Trainer::HistFeatureCount() const {
  return static_cast<uint32_t>(all_features_.size());
}

void Qd1Trainer::InitTreeIndexes() { node_of_.Init(num_local_rows_); }

GradStats Qd1Trainer::ComputeGradients() {
  ComputeGradientsParallel(*loss_, labels_, margins_, num_local_rows_,
                           options_.params.num_threads, &grads_);
  GradStats local = grads_.Total();
  std::vector<double> raw(2 * dims_);
  for (uint32_t k = 0; k < dims_; ++k) {
    raw[2 * k] = local[k].g;
    raw[2 * k + 1] = local[k].h;
  }
  VERO_COMM_OK(ctx_.AllReduceSum(raw));
  for (uint32_t k = 0; k < dims_; ++k) {
    local[k].g = raw[2 * k];
    local[k].h = raw[2 * k + 1];
  }
  return local;
}

void Qd1Trainer::BuildLayerHistograms(const std::vector<BuildTask>& tasks) {
  const uint32_t q = options_.params.num_candidate_splits;
  // One sweep over all columns builds every frontier node at once, driven
  // by the instance-to-node index (the XGBoost layer pass).
  std::vector<Histogram*> hists((size_t{1} << options_.params.num_layers) - 1,
                                nullptr);
  for (const BuildTask& task : tasks) {
    VERO_CHECK_EQ(task.subtract_node, kInvalidNode);
    hists[task.build_node] =
        pool_.Acquire(task.build_node, HistFeatureCount(), q, dims_);
  }
  builder_.BuildColumnStoreSweep(store_, grads_, node_of_, hists);
}

std::vector<SplitCandidate> Qd1Trainer::FindLayerSplits(
    const std::vector<NodeId>& frontier) {
  const uint32_t q = options_.params.num_candidate_splits;
  const size_t per_node =
      static_cast<size_t>(HistFeatureCount()) * q * dims_ * 2;
  // All-reduce the concatenated layer histograms; afterwards every worker
  // holds the aggregated histograms (XGBoost then lets each worker evaluate
  // all features redundantly — deterministic, so no extra broadcast).
  std::vector<double> buffer(frontier.size() * per_node);
  for (size_t i = 0; i < frontier.size(); ++i) {
    const Histogram* hist = pool_.Get(frontier[i]);
    std::memcpy(buffer.data() + i * per_node, hist->raw_data(),
                per_node * sizeof(double));
  }
  VERO_COMM_OK(ctx_.AllReduceBoundedSumCodec(buffer, codec_, mitigation_));
  if (auditor_.enabled()) {
    // Every worker now holds a replica of the aggregated layer histograms;
    // a digest mismatch pins silent transport corruption on the dissenting
    // rank by majority vote.
    auditor_.PushReplicated("qd1-hist-allreduce", AuditDigestDoubles(buffer));
  }
  std::vector<SplitCandidate> best(frontier.size());
  for (size_t i = 0; i < frontier.size(); ++i) {
    Histogram* hist = pool_.Get(frontier[i]);
    std::memcpy(hist->raw_data(), buffer.data() + i * per_node,
                per_node * sizeof(double));
    best[i] = finder_.FindBest(*hist, node_stats_[frontier[i]],
                               all_features_, splits_);
  }
  return best;
}

void Qd1Trainer::ApplyLayerSplits(const std::vector<NodeId>& nodes,
                                  const std::vector<SplitCandidate>& splits,
                                  std::vector<uint32_t>* child_counts) {
  // Pass 1: instances present in a split feature's column move by value.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SplitCandidate& s = splits[i];
    auto rows = store_.ColumnRows(s.feature);
    auto bins = store_.ColumnBins(s.feature);
    for (size_t k = 0; k < rows.size(); ++k) {
      if (node_of_.Get(rows[k]) != nodes[i]) continue;
      node_of_.Set(rows[k], bins[k] <= s.split_bin ? LeftChild(nodes[i])
                                                   : RightChild(nodes[i]));
    }
    slot_of_node_[nodes[i]] = static_cast<int32_t>(i);
  }
  // Pass 2: one scan moves the remaining (missing-value) instances to the
  // default child of whichever node they still sit on.
  std::vector<double> counts(2 * nodes.size(), 0.0);
  for (InstanceId i = 0; i < num_local_rows_; ++i) {
    const NodeId node = node_of_.Get(i);
    NodeId resolved = node;
    if (static_cast<size_t>(node) < slot_of_node_.size() &&
        slot_of_node_[node] >= 0) {
      const size_t slot = static_cast<size_t>(slot_of_node_[node]);
      resolved = splits[slot].default_left ? LeftChild(node)
                                           : RightChild(node);
      node_of_.Set(i, resolved);
    }
    // Count children of this layer.
    const NodeId parent = Parent(resolved);
    if (resolved > 0 && static_cast<size_t>(parent) < slot_of_node_.size() &&
        slot_of_node_[parent] >= 0) {
      const size_t slot = static_cast<size_t>(slot_of_node_[parent]);
      counts[2 * slot + (IsLeftChild(resolved) ? 0 : 1)] += 1.0;
    }
  }
  for (NodeId node : nodes) slot_of_node_[node] = -1;

  VERO_COMM_OK(ctx_.AllReduceSum(counts));
  child_counts->resize(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    (*child_counts)[i] = static_cast<uint32_t>(counts[i] + 0.5);
  }
}

void Qd1Trainer::UpdateMargins(const Tree& tree) {
  const double lr = options_.params.learning_rate;
  for (InstanceId i = 0; i < num_local_rows_; ++i) {
    const NodeId node = node_of_.Get(i);
    VERO_DCHECK(tree.Exists(node));
    const std::vector<float>& w = tree.node(node).leaf_values;
    for (uint32_t k = 0; k < dims_; ++k) {
      margins_[static_cast<size_t>(i) * dims_ + k] += lr * w[k];
    }
  }
}

}  // namespace vero
