#include "quadrants/train_distributed.h"

#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "quadrants/feature_parallel.h"
#include "quadrants/qd1_trainer.h"
#include "quadrants/qd2_trainer.h"
#include "quadrants/qd4_vero.h"

namespace vero {
namespace {

// Everything one worker reports back after its SPMD run.
struct WorkerOutput {
  GbdtModel model;
  std::vector<TreeCost> tree_costs;
  std::vector<IterationStats> curve;
  uint64_t peak_histogram_bytes = 0;
  uint64_t data_bytes = 0;
  uint64_t train_bytes_sent = 0;
  double setup_seconds = 0.0;
  TransformStats transform_stats;
};

}  // namespace

DistResult TrainDistributed(Cluster& cluster, const Dataset& train,
                            Quadrant quadrant,
                            const DistTrainOptions& options,
                            const Dataset* valid,
                            Qd3IndexPolicy qd3_policy) {
  VERO_CHECK_OK(options.params.Validate());
  const int w = cluster.num_workers();
  const uint32_t n = train.num_instances();

  // Horizontal shards in rank order (the layout loaded from HDFS in §4.2.1).
  std::vector<Dataset> shards;
  if (quadrant != Quadrant::kFeatureParallel) {
    shards.reserve(w);
    for (int r = 0; r < w; ++r) {
      const auto [begin, end] = HorizontalRange(n, w, r);
      shards.emplace_back(train.matrix().SliceRows(begin, end),
                          std::vector<float>(train.labels().begin() + begin,
                                             train.labels().begin() + end),
                          train.task(), train.num_classes());
    }
  }

  cluster.ResetStats();
  std::vector<WorkerOutput> outputs(w);

  cluster.Run([&](WorkerContext& ctx) {
    const int rank = ctx.rank();
    WorkerOutput& out = outputs[rank];
    ThreadCpuTimer setup_cpu;
    const double sim_start = ctx.stats().sim_seconds;

    std::unique_ptr<DistTrainerBase> trainer;
    CandidateSplits splits;       // Storage for horizontal quadrants.
    VerticalShard vertical;       // Storage for vertical quadrants.

    switch (quadrant) {
      case Quadrant::kQD1:
      case Quadrant::kQD2: {
        const Dataset& shard = shards[rank];
        double sketch_seconds = 0.0;
        splits = BuildDistributedCandidateSplits(
            ctx, shard, options.params.num_candidate_splits,
            options.params.sketch_entries, nullptr, &sketch_seconds);
        if (quadrant == Quadrant::kQD1) {
          trainer = std::make_unique<Qd1Trainer>(ctx, options, shard, splits,
                                                 n);
        } else {
          trainer = std::make_unique<Qd2Trainer>(ctx, options, shard, splits,
                                                 n);
        }
        break;
      }
      case Quadrant::kQD3:
      case Quadrant::kQD4: {
        TransformOptions transform = options.transform;
        transform.num_candidate_splits = options.params.num_candidate_splits;
        transform.sketch_entries = options.params.sketch_entries;
        vertical = HorizontalToVertical(ctx, shards[rank], transform);
        out.transform_stats = vertical.stats;
        if (quadrant == Quadrant::kQD3) {
          trainer = std::make_unique<Qd3Trainer>(ctx, options, train.task(),
                                                 train.num_classes(),
                                                 vertical, qd3_policy);
        } else {
          trainer = std::make_unique<Qd4VeroTrainer>(
              ctx, options, train.task(), train.num_classes(), vertical);
        }
        break;
      }
      case Quadrant::kFeatureParallel: {
        // No partitioning: every worker computes identical splits locally
        // from its full copy (no sketch communication).
        splits = ProposeCandidateSplits(train,
                                        options.params.num_candidate_splits,
                                        options.params.sketch_entries);
        trainer = std::make_unique<FeatureParallelTrainer>(ctx, options,
                                                           train, splits);
        break;
      }
    }

    setup_cpu.Stop();
    const double setup_comm = ctx.stats().sim_seconds - sim_start;
    out.setup_seconds =
        ctx.InstrumentMax(setup_cpu.Seconds()) + ctx.InstrumentMax(setup_comm);
    const uint64_t bytes_after_setup = ctx.stats().bytes_sent;

    trainer->Train(valid, &out.tree_costs, &out.curve, out.setup_seconds);
    out.train_bytes_sent = ctx.stats().bytes_sent - bytes_after_setup;
    out.peak_histogram_bytes = trainer->peak_histogram_bytes();
    out.data_bytes = trainer->DataBytes();
    if (rank == 0) out.model = trainer->model();
  });

  DistResult result;
  result.model = std::move(outputs[0].model);
  result.tree_costs = std::move(outputs[0].tree_costs);
  result.curve = std::move(outputs[0].curve);
  result.setup_seconds = outputs[0].setup_seconds;
  result.transform_stats = outputs[0].transform_stats;
  for (const WorkerOutput& out : outputs) {
    result.peak_histogram_bytes =
        std::max(result.peak_histogram_bytes, out.peak_histogram_bytes);
    result.data_bytes = std::max(result.data_bytes, out.data_bytes);
    result.train_bytes_sent += out.train_bytes_sent;
  }
  return result;
}

}  // namespace vero
