#include "quadrants/train_distributed.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "cluster/membership.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quadrants/checkpoint.h"
#include "quadrants/feature_parallel.h"
#include "quadrants/qd1_trainer.h"
#include "quadrants/qd2_trainer.h"
#include "quadrants/qd4_vero.h"

namespace vero {
namespace {

// Everything one worker reports back after its SPMD run.
struct WorkerOutput {
  GbdtModel model;
  std::vector<TreeCost> tree_costs;
  std::vector<IterationStats> curve;
  uint64_t peak_histogram_bytes = 0;
  uint64_t data_bytes = 0;
  uint64_t train_bytes_sent = 0;
  double setup_seconds = 0.0;
  /// Cluster-wide bytes sent during setup (sketch / transform pipeline);
  /// identical on every rank (InstrumentSum).
  uint64_t setup_bytes_sent = 0;
  TransformStats transform_stats;
  /// Audit accounting, salvaged even when the attempt aborts: the driver
  /// attributes integrity-triggered rollbacks from it.
  IntegrityStats integrity;
};

// One training attempt's inputs. The first attempt runs fresh; recovery
// attempts resume from a checkpoint (or restart) on a rebuilt cluster.
struct AttemptConfig {
  Quadrant quadrant = Quadrant::kQD1;
  const DistTrainOptions* options = nullptr;
  const Dataset* train = nullptr;
  const Dataset* valid = nullptr;
  Qd3IndexPolicy qd3_policy = Qd3IndexPolicy::kMixed;
  /// Restored state to resume from (null = train from scratch).
  const TrainCheckpoint* resume = nullptr;
  /// Full N x dims margin matrix of the restored model (null iff !resume).
  const std::vector<double>* resume_margins = nullptr;
  /// Simulated seconds already elapsed (pre-failure prefix + recovery).
  double elapsed_base = 0.0;
  /// Driver-owned checkpoint writer, shared across attempts (null when
  /// checkpointing is disabled). Rank 0's sink submits snapshots to it.
  CheckpointWriter* writer = nullptr;
  /// Force a checkpoint after this attempt's final tree regardless of the
  /// interval (armed on attempts clamped to a resize boundary, so the
  /// resize rendezvous always has the boundary state to hand out).
  bool checkpoint_final = false;
};

std::vector<Dataset> BuildHorizontalShards(const Dataset& train, int world) {
  const uint32_t n = train.num_instances();
  std::vector<Dataset> shards;
  shards.reserve(world);
  for (int r = 0; r < world; ++r) {
    const auto [begin, end] = HorizontalRange(n, world, r);
    shards.emplace_back(train.matrix().SliceRows(begin, end),
                        std::vector<float>(train.labels().begin() + begin,
                                           train.labels().begin() + end),
                        train.task(), train.num_classes());
  }
  return shards;
}

// Runs the SPMD body of one attempt on `cluster`, filling `outputs` (one
// entry per rank). Returns per-rank statuses from Cluster::TryRun.
std::vector<Status> RunAttempt(Cluster& cluster,
                               const std::vector<Dataset>& shards,
                               const AttemptConfig& cfg,
                               std::vector<WorkerOutput>* outputs) {
  const Dataset& train = *cfg.train;
  const DistTrainOptions& options = *cfg.options;
  const Quadrant quadrant = cfg.quadrant;
  const uint32_t n = train.num_instances();
  const uint32_t dims =
      train.task() == Task::kMultiClass ? train.num_classes() : 1;

  return cluster.TryRun([&](WorkerContext& ctx) {
    const int rank = ctx.rank();
    const int w = ctx.world_size();
    WorkerOutput& out = (*outputs)[rank];
    // Phase announcements let FaultPlan events target the sketch/transform
    // setup or the round loop specifically (labels only — no accounting).
    ctx.set_fault_phase(FaultPhase::kSetup);
    ThreadCpuTimer setup_cpu;
    const double sim_start = ctx.stats().sim_seconds;
    const uint64_t bytes_start = ctx.stats().bytes_sent;

    std::unique_ptr<DistTrainerBase> trainer;
    CandidateSplits splits;       // Storage for horizontal quadrants.
    VerticalShard vertical;       // Storage for vertical quadrants.
    const CandidateSplits* checkpoint_splits = nullptr;

    switch (quadrant) {
      case Quadrant::kQD1:
      case Quadrant::kQD2: {
        const Dataset& shard = shards[rank];
        if (cfg.resume != nullptr && cfg.resume->has_splits) {
          // Recovery: reuse the checkpointed split table; the sketch
          // pipeline (and its communication) is skipped entirely.
          splits = cfg.resume->splits;
        } else {
          double sketch_seconds = 0.0;
          splits = BuildDistributedCandidateSplits(
              ctx, shard, options.params.num_candidate_splits,
              options.params.sketch_entries, nullptr, &sketch_seconds);
        }
        if (quadrant == Quadrant::kQD1) {
          trainer = std::make_unique<Qd1Trainer>(ctx, options, shard, splits,
                                                 n);
        } else {
          trainer = std::make_unique<Qd2Trainer>(ctx, options, shard, splits,
                                                 n);
        }
        checkpoint_splits = &splits;
        break;
      }
      case Quadrant::kQD3:
      case Quadrant::kQD4: {
        TransformOptions transform = options.transform;
        transform.num_candidate_splits = options.params.num_candidate_splits;
        transform.sketch_entries = options.params.sketch_entries;
        if (cfg.resume != nullptr && cfg.resume->has_splits) {
          transform.precomputed_splits = &cfg.resume->splits;
        }
        vertical = HorizontalToVertical(ctx, shards[rank], transform);
        out.transform_stats = vertical.stats;
        if (quadrant == Quadrant::kQD3) {
          trainer = std::make_unique<Qd3Trainer>(ctx, options, train.task(),
                                                 train.num_classes(),
                                                 vertical, cfg.qd3_policy);
        } else {
          trainer = std::make_unique<Qd4VeroTrainer>(
              ctx, options, train.task(), train.num_classes(), vertical);
        }
        checkpoint_splits = &vertical.splits;
        break;
      }
      case Quadrant::kFeatureParallel: {
        // No partitioning: every worker computes identical splits locally
        // from its full copy (no sketch communication).
        if (cfg.resume != nullptr && cfg.resume->has_splits) {
          splits = cfg.resume->splits;
        } else {
          splits = ProposeCandidateSplits(
              train, options.params.num_candidate_splits,
              options.params.sketch_entries);
        }
        trainer = std::make_unique<FeatureParallelTrainer>(ctx, options,
                                                           train, splits);
        checkpoint_splits = &splits;
        break;
      }
    }

    if (cfg.resume != nullptr) {
      // Seed the restored prefix: trees plus this worker's margin slice
      // (shard rows for horizontal layouts, all rows for vertical / FP).
      const std::vector<double>& full = *cfg.resume_margins;
      const bool horizontal =
          quadrant == Quadrant::kQD1 || quadrant == Quadrant::kQD2;
      if (horizontal) {
        const auto [begin, end] = HorizontalRange(n, w, rank);
        trainer->InitFromCheckpoint(
            cfg.resume->model,
            std::span<const double>(full.data() +
                                        static_cast<size_t>(begin) * dims,
                                    static_cast<size_t>(end - begin) * dims));
      } else {
        trainer->InitFromCheckpoint(cfg.resume->model, full);
      }
    }

    if (cfg.writer != nullptr && rank == 0) {
      CheckpointWriter* writer = cfg.writer;
      // Submit copies the model and split table into the writer; in async
      // mode that copy is the only work on the round's critical path — the
      // serialization and file IO happen on the writer's thread, so the
      // span name says "snapshot", not "checkpoint".
      trainer->EnableCheckpoints(
          options.checkpoint.interval,
          [writer, checkpoint_splits](const GbdtModel& model,
                                      uint32_t trees_done) {
            writer->Submit(model, trees_done, checkpoint_splits);
          },
          writer->options().async ? "checkpoint-snapshot" : "checkpoint");
      trainer->set_checkpoint_final(cfg.checkpoint_final);
    }

    setup_cpu.Stop();
    const double setup_comm = ctx.stats().sim_seconds - sim_start;
    out.setup_seconds =
        ctx.InstrumentMax(setup_cpu.Seconds()) + ctx.InstrumentMax(setup_comm);
    const uint64_t bytes_after_setup = ctx.stats().bytes_sent;
    out.setup_bytes_sent = static_cast<uint64_t>(std::llround(
        ctx.InstrumentSum(static_cast<double>(bytes_after_setup -
                                              bytes_start))));

    ctx.set_fault_phase(FaultPhase::kTrain);
    try {
      trainer->Train(cfg.valid, &out.tree_costs, &out.curve,
                     cfg.elapsed_base + out.setup_seconds);
    } catch (...) {
      // An integrity escalation (or any abort) unwinds through here; keep
      // the audit accounting so the driver can attribute the failure.
      out.integrity = trainer->integrity_stats();
      throw;
    }
    ctx.set_fault_phase(FaultPhase::kAnyPhase);
    out.train_bytes_sent = ctx.stats().bytes_sent - bytes_after_setup;
    out.peak_histogram_bytes = trainer->peak_histogram_bytes();
    out.data_bytes = trainer->DataBytes();
    out.integrity = trainer->integrity_stats();
    if (rank == 0) out.model = trainer->model();
  });
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void FoldWorkerOutputs(const std::vector<WorkerOutput>& outputs,
                       DistResult* result) {
  for (const WorkerOutput& out : outputs) {
    result->peak_histogram_bytes =
        std::max(result->peak_histogram_bytes, out.peak_histogram_bytes);
    result->data_bytes = std::max(result->data_bytes, out.data_bytes);
    result->train_bytes_sent += out.train_bytes_sent;
  }
}

// Folds one attempt's audit accounting into the result (called for failed
// attempts too — unlike FoldWorkerOutputs). The check/violation counters
// are evaluated identically on every rank, so the max is the cluster value
// even when some ranks died mid-exchange; recompute waste is per-rank local
// traffic and sums, and also counts as goodput waste.
void FoldIntegrity(const std::vector<WorkerOutput>& outputs,
                   DistResult* result) {
  IntegrityStats fold;
  for (const WorkerOutput& out : outputs) {
    const IntegrityStats& s = out.integrity;
    fold.checks = std::max(fold.checks, s.checks);
    fold.violations = std::max(fold.violations, s.violations);
    fold.recomputes = std::max(fold.recomputes, s.recomputes);
    fold.escalations = std::max(fold.escalations, s.escalations);
    if (s.last_blamed_rank >= 0) fold.last_blamed_rank = s.last_blamed_rank;
    fold.wasted_bytes += s.wasted_bytes;
    fold.wasted_seconds += s.wasted_seconds;
  }
  result->integrity.checks += fold.checks;
  result->integrity.violations += fold.violations;
  result->integrity.recomputes += fold.recomputes;
  result->integrity.escalations += fold.escalations;
  if (fold.last_blamed_rank >= 0) {
    result->integrity.last_blamed_rank = fold.last_blamed_rank;
  }
  result->integrity.wasted_bytes += fold.wasted_bytes;
  result->integrity.wasted_seconds += fold.wasted_seconds;
  result->wasted_bytes += fold.wasted_bytes;
  result->wasted_seconds += fold.wasted_seconds;
}

// An escalated audit verdict unwinds with an "integrity:"-prefixed status;
// the driver keys rollback attribution on it.
bool IsIntegrityFailure(const Status& status) {
  return status.message().rfind("integrity:", 0) == 0;
}

// Approximate on-the-wire size of rows [begin, end) of `data`: CSR entries
// (4-byte feature id + 8-byte value) plus labels. Used to price shard
// re-reads from the replicated store and re-shard plan segments.
uint64_t RangeWireBytes(const Dataset& data, uint32_t begin, uint32_t end) {
  uint64_t bytes = 0;
  const CsrMatrix& m = data.matrix();
  for (InstanceId i = begin; i < end; ++i) {
    bytes += m.RowFeatures(i).size() * (sizeof(FeatureId) + sizeof(double));
  }
  bytes += static_cast<uint64_t>(end - begin) * sizeof(float);
  return bytes;
}

// Approximate on-the-wire size of one horizontal shard (a dead worker's
// shard in degraded mode, a replacement's fresh shard in elastic mode).
uint64_t ShardWireBytes(const Dataset& shard) {
  return RangeWireBytes(shard, 0, shard.num_instances());
}

// The training / recovery / elasticity loop proper; the public
// TrainDistributed wraps it to fill the run report once the clusters are
// quiescent.
DistResult TrainDistributedImpl(Cluster& cluster, const Dataset& train,
                                Quadrant quadrant,
                                const DistTrainOptions& options,
                                const Dataset* valid,
                                Qd3IndexPolicy qd3_policy) {
  VERO_CHECK_OK(options.params.Validate());
  const int w = cluster.num_workers();
  const bool sharded = quadrant != Quadrant::kFeatureParallel;
  const bool elastic = options.elastic_rejoin;
  const uint32_t n = train.num_instances();
  const uint32_t resize_at = options.params.elastic_resize_after_trees;
  const int resize_delta =
      static_cast<int>(options.params.elastic_resize_delta);
  // A scheduled resize stays pending until its membership change is
  // applied; while pending, every attempt is clamped to the boundary tree.
  bool resize_pending = resize_at > 0;

  DistResult result;
  if (resize_pending && w + resize_delta < 1) {
    result.status = Status::InvalidArgument(
        "elastic_resize_delta would shrink the cluster below one worker");
    result.recovery.final_world_size = w;
    return result;
  }

  obs::RunObserver* observer = cluster.observer();

  // Driver-owned checkpoint writer, shared by every attempt so the latest
  // restorable state survives cluster teardowns. A scheduled resize needs
  // the boundary checkpoint even when periodic checkpointing is off. The
  // writer's metric cells live on a dedicated shard: whichever single
  // thread commits a write (rank 0 inline in sync mode, the writer thread
  // in async mode) is the sole writer.
  std::unique_ptr<CheckpointWriter> writer;
  if (options.checkpoint.interval > 0 || resize_pending) {
    CheckpointWriter::Metrics writer_metrics;
    if (observer != nullptr) {
      obs::MetricsShard* ckpt_shard = observer->metrics().CreateShard();
      writer_metrics.count = ckpt_shard->counter("checkpoint.count");
      writer_metrics.bytes = ckpt_shard->counter("checkpoint.bytes");
      writer_metrics.rotated_deleted =
          ckpt_shard->counter("checkpoint.rotated_deleted");
      writer_metrics.write_seconds =
          ckpt_shard->histogram("checkpoint.latency_seconds");
      if (options.checkpoint.delta) {
        writer_metrics.delta_count =
            ckpt_shard->counter("checkpoint.delta_count");
        writer_metrics.delta_bytes =
            ckpt_shard->counter("checkpoint.delta_bytes");
      }
      if (!options.checkpoint.dir.empty()) {
        writer_metrics.stale_tmp_deleted =
            ckpt_shard->counter("checkpoint.stale_tmp_deleted");
      }
    }
    CheckpointWriter::Options writer_options;
    writer_options.dir = options.checkpoint.dir;
    writer_options.async = options.checkpoint.async;
    writer_options.keep_last_n = options.checkpoint.keep_last_n;
    writer_options.delta = options.checkpoint.delta;
    writer_options.full_every = options.checkpoint.full_every;
    writer = std::make_unique<CheckpointWriter>(std::move(writer_options),
                                                writer_metrics);
  }

  // Horizontal shards in rank order (the layout loaded from HDFS in §4.2.1)
  // for the ACTIVE world: elastic incarnations keep their width so the
  // table stays put; degraded compaction and resizes rebuild it at the new
  // width.
  std::vector<Dataset> shards;
  if (sharded) shards = BuildHorizontalShards(train, w);

  // While the resize is pending, attempts train toward the boundary only;
  // the rendezvous then continues from the boundary checkpoint at W+-k.
  DistTrainOptions clamped_options = options;
  if (resize_pending) clamped_options.params.num_trees = resize_at;

  cluster.ResetStats();
  std::vector<WorkerOutput> outputs(w);
  AttemptConfig cfg;
  cfg.quadrant = quadrant;
  cfg.options = resize_pending ? &clamped_options : &options;
  cfg.train = &train;
  cfg.valid = valid;
  cfg.qd3_policy = qd3_policy;
  cfg.writer = writer.get();
  cfg.checkpoint_final = resize_pending;
  Status error = FirstError(RunAttempt(cluster, shards, cfg, &outputs));
  FoldIntegrity(outputs, &result);

  // Speculative re-execution's duplicated transfers are pure goodput waste
  // no matter how the attempt ended: the backup's copy only exists to cover
  // a straggler, it never adds information to the model.
  result.wasted_bytes += cluster.TotalStats().speculative_bytes;
  result.wasted_seconds += cluster.TotalStats().speculative_seconds;
  if (error.ok() && !resize_pending) {
    result.model = std::move(outputs[0].model);
    result.tree_costs = std::move(outputs[0].tree_costs);
    result.curve = std::move(outputs[0].curve);
    result.setup_seconds = outputs[0].setup_seconds;
    result.transform_stats = outputs[0].transform_stats;
    FoldWorkerOutputs(outputs, &result);
    result.recovery.final_world_size = w;
    return result;
  }

  // ---- Recovery & elasticity state machine -------------------------------
  // Two transitions share one loop. A RECOVERY transition repairs a failed
  // incarnation: its rendezvous group is permanently broken, so training
  // continues on a fresh cluster — refilled to the current width with
  // re-joined replacements in elastic mode, compacted over the survivors
  // otherwise — resuming from the last checkpoint when one exists. A RESIZE
  // transition fires from a clean boundary: the membership grows or shrinks
  // by the requested delta, the re-shard plan's row movement is charged
  // through the network model, and the run continues at the new width from
  // the boundary checkpoint. Every rendezvous runs under the (shared) fault
  // injector, so a crash mid-transition is an overlapping failure handled
  // by the next recovery iteration.
  if (writer != nullptr) writer->Flush();
  std::vector<int> dead =
      error.ok() ? std::vector<int>() : cluster.dead_ranks();
  result.recovery.failures_observed = static_cast<int>(dead.size());
  int survivors = w - static_cast<int>(dead.size());
  // Stats of the first attempt, for prefix stitching (rank 0 recorded
  // every completed round before any checkpoint covering it).
  const double first_setup_seconds = outputs[0].setup_seconds;
  const TransformStats first_transform_stats = outputs[0].transform_stats;

  obs::TraceBuffer* driver_tb =
      observer != nullptr ? observer->driver_buffer() : nullptr;
  obs::MetricsShard* driver_shard =
      observer != nullptr ? observer->driver_shard() : nullptr;
  if (driver_shard != nullptr && !error.ok()) {
    driver_shard->counter("recovery.failures_observed")->Add(dead.size());
  }

  // Rounds proven durable by a checkpoint (or completed by a kept boundary
  // attempt), stitched across attempts: each settle step below extends this
  // prefix with the failed attempt's rounds the newest checkpoint covers.
  std::vector<TreeCost> committed_costs;
  std::vector<IterationStats> committed_curve;

  // Goodput bookkeeping: the attempt that just failed, pending its waste
  // charge. A failed attempt's communication and modeled time count as
  // wasted except for the trees a later attempt resumes from (via
  // checkpoint); its setup is wasted only when nothing at all was kept.
  // The round in flight at the moment of failure was never recorded as a
  // completed cost, so it is deliberately omitted.
  std::vector<TreeCost> pending_costs;
  std::vector<IterationStats> pending_curve;
  uint32_t pending_start_tree = 0;
  double pending_setup_seconds = 0.0;
  uint64_t pending_setup_bytes = 0;
  if (!error.ok()) {
    pending_costs = std::move(outputs[0].tree_costs);
    pending_curve = std::move(outputs[0].curve);
    pending_setup_seconds = first_setup_seconds;
    pending_setup_bytes = outputs[0].setup_bytes_sent;
  } else {
    // The boundary attempt succeeded: its rounds are kept outright and its
    // transfers were productive.
    committed_costs = std::move(outputs[0].tree_costs);
    committed_curve = std::move(outputs[0].curve);
    FoldWorkerOutputs(outputs, &result);
  }
  auto charge_wasted = [&result](const std::vector<TreeCost>& costs,
                                 uint32_t start_tree, uint32_t trees_kept,
                                 double setup_seconds, uint64_t setup_bytes) {
    const uint32_t kept =
        trees_kept > start_tree
            ? std::min<uint32_t>(trees_kept - start_tree,
                                 static_cast<uint32_t>(costs.size()))
            : 0;
    for (size_t t = kept; t < costs.size(); ++t) {
      result.wasted_seconds += costs[t].total_seconds();
      result.wasted_bytes += costs[t].bytes_sent;
    }
    if (kept == 0) {
      result.wasted_seconds += setup_seconds;
      result.wasted_bytes += setup_bytes;
    }
  };

  // The shared injector keeps its occurrence counters across incarnations:
  // already-fired events never re-fire, and phase-targeted events scheduled
  // for the recovery rendezvous can still trigger.
  std::shared_ptr<FaultInjector> injector = cluster.shared_fault_injector();
  Membership membership = InitialMembership(w);
  double redistribution_elapsed = 0.0;
  std::unique_ptr<Cluster> rebuilt;

  while (true) {
    // A failed attempt needs a recovery transition (bounded by the budget);
    // a clean boundary needs the resize transition (free: the operator
    // asked for it).
    const bool recovering = !error.ok();
    if (recovering) {
      // No rank died: the failure has no one to evict (e.g. an unattributed
      // integrity violation where the digests disagree without a majority).
      // Detected but unrecoverable — surface the error as-is.
      if (dead.empty()) break;
      if (result.recovery.recovery_attempts >=
              options.max_recovery_attempts ||
          survivors < 1) {
        break;
      }
      ++result.recovery.recovery_attempts;
      if (IsIntegrityFailure(error)) {
        ++result.integrity_rollbacks;
        if (driver_shard != nullptr) {
          driver_shard->counter("integrity.rollbacks")->Increment();
        }
      }
    }
    obs::PhaseSpan transition_span(driver_tb,
                                   recovering ? "recovery" : "resize",
                                   nullptr);
    transition_span.set_category("driver");
    if (recovering && driver_shard != nullptr) {
      driver_shard->counter("recovery.attempts")->Increment();
    }

    // ---- Settle the durable state --------------------------------------
    TrainCheckpoint restored;
    bool have_checkpoint = false;
    if (writer != nullptr) {
      writer->Flush();
      std::optional<TrainCheckpoint> latest = writer->Latest();
      if (latest.has_value() && latest->trees_done > 0) {
        restored = std::move(*latest);
        have_checkpoint = true;
      }
    }
    const uint32_t trees_recovered = have_checkpoint ? restored.trees_done : 0;

    // Rounds of the pending failed attempt now covered by a checkpoint join
    // the committed prefix; the rest of that attempt is charged as waste.
    if (trees_recovered > committed_costs.size()) {
      const size_t need = trees_recovered - committed_costs.size();
      const size_t take_costs = std::min(need, pending_costs.size());
      committed_costs.insert(committed_costs.end(), pending_costs.begin(),
                             pending_costs.begin() +
                                 static_cast<ptrdiff_t>(take_costs));
      const size_t take_curve = std::min(need, pending_curve.size());
      committed_curve.insert(committed_curve.end(), pending_curve.begin(),
                             pending_curve.begin() +
                                 static_cast<ptrdiff_t>(take_curve));
    }
    charge_wasted(pending_costs, pending_start_tree, trees_recovered,
                  pending_setup_seconds, pending_setup_bytes);
    pending_costs.clear();
    pending_curve.clear();
    pending_start_tree = trees_recovered;
    pending_setup_seconds = 0.0;
    pending_setup_bytes = 0;

    // ---- Next incarnation ----------------------------------------------
    const int prev_world = membership.world;
    if (!recovering && membership.world + resize_delta < 1) {
      // Degradation since the schedule was validated left too few workers.
      error = Status::InvalidArgument(
          "scheduled resize would shrink the cluster below one worker");
      break;
    }
    membership =
        NextMembership(membership, dead, elastic, recovering ? 0 : resize_delta);
    const int world = membership.world;
    if (!membership.rejoined.empty()) {
      result.recovery.rejoined_workers +=
          static_cast<int>(membership.rejoined.size());
      if (driver_shard != nullptr) {
        driver_shard->counter("recovery.rejoined_workers")
            ->Add(membership.rejoined.size());
      }
    }
    if (recovering) {
      VERO_LOG(Info) << "recovery attempt "
                     << result.recovery.recovery_attempts << ": "
                     << membership.ToString()
                     << (have_checkpoint
                             ? " resuming at tree " +
                                   std::to_string(trees_recovered)
                             : " restarting from scratch");
    } else {
      resize_pending = false;
      result.elasticity.resizes += 1;
      result.elasticity.admitted_workers +=
          static_cast<int>(membership.admitted.size());
      result.elasticity.retired_workers +=
          static_cast<int>(membership.retired.size());
      if (driver_shard != nullptr) {
        driver_shard->counter("elasticity.resizes")->Increment();
        if (!membership.admitted.empty()) {
          driver_shard->counter("elasticity.admitted_workers")
              ->Add(membership.admitted.size());
        }
        if (!membership.retired.empty()) {
          driver_shard->counter("elasticity.retired_workers")
              ->Add(membership.retired.size());
        }
      }
      VERO_LOG(Info) << "resize at tree " << trees_recovered << ": "
                     << prev_world << " -> " << world << " workers, "
                     << membership.ToString();
    }

    // ---- Price state movement (the pre-transition table is still active)
    // Driver-priced traffic is what the rendezvous below cannot simulate:
    // re-reads from the replicated store (a replacement's or admitted
    // worker's fresh shard; the dead workers' shards re-spread across the
    // survivors in degraded from-scratch mode; a retired worker's rows,
    // whose owner is gone). Rows moving between surviving ranks ship
    // through the rendezvous all-to-all instead.
    uint64_t priced_bytes = 0;
    std::vector<std::vector<uint64_t>> reshard_send;
    if (recovering) {
      if (sharded) {
        if (elastic) {
          for (int r : membership.rejoined) {
            priced_bytes += ShardWireBytes(shards[r]);
          }
        } else if (!have_checkpoint) {
          for (int r : dead) {
            if (r < static_cast<int>(shards.size())) {
              priced_bytes += ShardWireBytes(shards[r]);
            }
          }
        }
      }
    } else {
      uint64_t reshard_bytes = 0;
      if (sharded) {
        // The deterministic W -> W' plan: every rank derives the same
        // segment list, so no coordination traffic is needed to agree on it.
        reshard_send.assign(world, std::vector<uint64_t>(world, 0));
        for (const ShardMove& move : PlanReshard(n, prev_world, world)) {
          const uint64_t bytes =
              RangeWireBytes(train, move.row_begin, move.row_end);
          reshard_bytes += bytes;
          if (move.from_rank < world) {
            reshard_send[move.from_rank][move.to_rank] += bytes;
          } else {
            priced_bytes += bytes;  // Retired sender: re-read from store.
          }
        }
      } else {
        // Feature-parallel replicates the full dataset: an admitted worker
        // pulls a complete copy from the store; retirements move nothing.
        const uint64_t full_copy = RangeWireBytes(train, 0, n);
        const uint64_t admitted_copies =
            full_copy * membership.admitted.size();
        reshard_bytes += admitted_copies;
        priced_bytes += admitted_copies;
      }
      result.elasticity.reshard_bytes += reshard_bytes;
      if (driver_shard != nullptr) {
        driver_shard->counter("elasticity.reshard_bytes")->Add(reshard_bytes);
      }
    }

    if (sharded && world != prev_world) {
      shards = BuildHorizontalShards(train, world);
    }

    rebuilt = std::make_unique<Cluster>(world, cluster.network_model());
    rebuilt->set_collective_timeout_seconds(
        cluster.collective_timeout_seconds());
    // A scale-up outgrows the injector's per-rank counter bank; admitted
    // ranks get fresh counters (no events ever target them).
    if (injector != nullptr) injector->EnsureWorkers(world);
    rebuilt->AdoptFaultInjector(injector);
    // Same observer as the failed cluster: the run's trace / metrics keep
    // accumulating across recovery attempts.
    rebuilt->AttachObserver(observer);

    // ---- Rendezvous ------------------------------------------------------
    // The next incarnation meets at a barrier between boosting rounds; rank
    // 0 serves the latest checkpoint to the group, and a resize ships the
    // re-shard plan's surviving-owner rows through a personalized
    // all-to-all (charging the network model exactly the plan's bytes).
    // This runs under the shared fault injector (phase kRecovery), so a
    // crash here is an overlapping failure handled by the next loop
    // iteration.
    std::vector<uint8_t> blob =
        have_checkpoint ? SerializeCheckpoint(restored) : std::vector<uint8_t>();
    Status rendezvous_error;
    {
      obs::PhaseSpan rejoin_span(driver_tb, recovering ? "rejoin" : "reshard",
                                 nullptr);
      rejoin_span.set_category("driver");
      rendezvous_error = FirstError(rebuilt->TryRun([&](WorkerContext& ctx) {
        ctx.set_fault_phase(FaultPhase::kRecovery);
        VERO_COMM_OK(ctx.Barrier());
        std::vector<uint8_t> received =
            ctx.rank() == 0 ? blob : std::vector<uint8_t>();
        VERO_COMM_OK(ctx.Broadcast(&received, 0));
        if (!reshard_send.empty()) {
          std::vector<std::vector<uint8_t>> to_each(
              static_cast<size_t>(ctx.world_size()));
          for (int r = 0; r < ctx.world_size(); ++r) {
            to_each[r].resize(reshard_send[ctx.rank()][r]);
          }
          std::vector<std::vector<uint8_t>> from_each;
          VERO_COMM_OK(ctx.AllToAll(std::move(to_each), &from_each));
        }
        ctx.set_fault_phase(FaultPhase::kAnyPhase);
      }));
    }
    const uint64_t rendezvous_bytes = rebuilt->TotalStats().bytes_sent;
    const double rendezvous_seconds = rebuilt->MaxSimSeconds();

    const uint64_t redistribution_bytes = priced_bytes + rendezvous_bytes;
    const double redistribution_seconds =
        cluster.network_model().OpSeconds(priced_bytes, 0) +
        rendezvous_seconds;
    if (recovering) {
      result.recovery.recovery_bytes += redistribution_bytes;
      result.recovery.recovery_seconds += redistribution_seconds;
      if (driver_shard != nullptr) {
        driver_shard->counter("recovery.redistribution_bytes")
            ->Add(redistribution_bytes);
        driver_shard->histogram("recovery.redistribution_seconds")
            ->Observe(redistribution_seconds);
      }
    } else {
      result.elasticity.reshard_seconds += redistribution_seconds;
      if (driver_shard != nullptr) {
        driver_shard->histogram("elasticity.reshard_seconds")
            ->Observe(redistribution_seconds);
      }
    }
    redistribution_elapsed += redistribution_seconds;

    if (!rendezvous_error.ok()) {
      // Overlapping failure during the redistribution itself: the whole
      // redistribution (shard re-ship plus the rendezvous traffic) was
      // spent for nothing — the next iteration has to redo it. The new
      // death toll updates the membership and the loop (budget permitting)
      // goes again; a crashed RESIZE rendezvous keeps the already-applied
      // new width, so the repair refills dead slots at W'.
      error = rendezvous_error;
      ++result.recovery.rendezvous_failures;
      dead = rebuilt->dead_ranks();
      result.recovery.failures_observed += static_cast<int>(dead.size());
      result.wasted_bytes += redistribution_bytes;
      result.wasted_seconds += redistribution_seconds;
      survivors = world - static_cast<int>(dead.size());
      if (driver_shard != nullptr) {
        driver_shard->counter("recovery.rendezvous_failures")->Increment();
        driver_shard->counter("recovery.failures_observed")->Add(dead.size());
      }
      if (dead.empty()) break;  // Unrecoverable (timeout/internal).
      continue;
    }

    std::vector<double> resume_margins;
    if (have_checkpoint) {
      resume_margins = restored.model.PredictDatasetMargins(train);
    }

    // Simulated time already on the clock when this attempt starts.
    double elapsed_base = first_setup_seconds + redistribution_elapsed;
    for (uint32_t t = 0;
         t < trees_recovered && t < committed_costs.size(); ++t) {
      elapsed_base += committed_costs[t].total_seconds();
    }

    std::vector<WorkerOutput> attempt_outputs(world);
    AttemptConfig attempt_cfg = cfg;
    attempt_cfg.options = resize_pending ? &clamped_options : &options;
    attempt_cfg.checkpoint_final = resize_pending;
    attempt_cfg.resume = have_checkpoint ? &restored : nullptr;
    attempt_cfg.resume_margins = have_checkpoint ? &resume_margins : nullptr;
    attempt_cfg.elapsed_base = elapsed_base;
    error = FirstError(RunAttempt(*rebuilt, shards, attempt_cfg,
                                  &attempt_outputs));
    FoldIntegrity(attempt_outputs, &result);
    // As above: speculative duplicates from this attempt are waste whether
    // or not the attempt survived.
    result.wasted_bytes += rebuilt->TotalStats().speculative_bytes;
    result.wasted_seconds += rebuilt->TotalStats().speculative_seconds;
    if (!error.ok()) {
      dead = rebuilt->dead_ranks();
      result.recovery.failures_observed += static_cast<int>(dead.size());
      survivors = world - static_cast<int>(dead.size());
      if (driver_shard != nullptr) {
        driver_shard->counter("recovery.failures_observed")->Add(dead.size());
      }
      // This attempt becomes the pending failed attempt; the next settle
      // step charges its waste once the amount kept through checkpoints is
      // known.
      pending_costs = std::move(attempt_outputs[0].tree_costs);
      pending_curve = std::move(attempt_outputs[0].curve);
      pending_start_tree = trees_recovered;
      pending_setup_seconds = attempt_outputs[0].setup_seconds;
      pending_setup_bytes = attempt_outputs[0].setup_bytes_sent;
      if (dead.empty()) break;  // Unrecoverable (timeout/internal).
      continue;
    }

    // The attempt succeeded. The rebuilt cluster's setup phase (re-binning
    // / re-transforming on the new membership) is part of what the
    // transition that launched it cost.
    if (recovering) {
      result.recovery.recovery_seconds += attempt_outputs[0].setup_seconds;
    } else {
      result.elasticity.reshard_seconds += attempt_outputs[0].setup_seconds;
    }
    dead.clear();

    if (resize_pending) {
      // Boundary reached (with recovery along the way): keep this attempt's
      // rounds and take the resize transition on the next iteration.
      std::vector<TreeCost> stitched_costs(
          committed_costs.begin(),
          committed_costs.begin() +
              std::min<size_t>(trees_recovered, committed_costs.size()));
      stitched_costs.insert(stitched_costs.end(),
                            attempt_outputs[0].tree_costs.begin(),
                            attempt_outputs[0].tree_costs.end());
      committed_costs = std::move(stitched_costs);
      std::vector<IterationStats> stitched_curve(
          committed_curve.begin(),
          committed_curve.begin() +
              std::min<size_t>(trees_recovered, committed_curve.size()));
      stitched_curve.insert(stitched_curve.end(),
                            attempt_outputs[0].curve.begin(),
                            attempt_outputs[0].curve.end());
      committed_curve = std::move(stitched_curve);
      FoldWorkerOutputs(attempt_outputs, &result);
      result.recovery.trees_recovered = trees_recovered;
      continue;
    }

    // Stitch the committed prefix (rounds covered by the checkpoint) with
    // this attempt's suffix.
    result.model = std::move(attempt_outputs[0].model);
    result.tree_costs.assign(
        committed_costs.begin(),
        committed_costs.begin() +
            std::min<size_t>(trees_recovered, committed_costs.size()));
    result.tree_costs.insert(result.tree_costs.end(),
                             attempt_outputs[0].tree_costs.begin(),
                             attempt_outputs[0].tree_costs.end());
    result.curve.assign(
        committed_curve.begin(),
        committed_curve.begin() +
            std::min<size_t>(trees_recovered, committed_curve.size()));
    result.curve.insert(result.curve.end(),
                        attempt_outputs[0].curve.begin(),
                        attempt_outputs[0].curve.end());
    result.setup_seconds = first_setup_seconds;
    result.transform_stats = first_transform_stats;
    FoldWorkerOutputs(attempt_outputs, &result);
    result.recovery.trees_recovered = trees_recovered;
    result.recovery.trees_retrained = static_cast<uint32_t>(
        attempt_outputs[0].tree_costs.size());
    result.recovery.final_world_size = world;
    if (writer != nullptr) writer->Flush();
    return result;
  }

  // The run failed outright: nothing from the last failed attempt was kept.
  charge_wasted(pending_costs, pending_start_tree, 0, pending_setup_seconds,
                pending_setup_bytes);
  result.status = error;
  result.recovery.final_world_size = survivors;
  return result;
}

}  // namespace

DistResult TrainDistributed(Cluster& cluster, const Dataset& train,
                            Quadrant quadrant,
                            const DistTrainOptions& options,
                            const Dataset* valid,
                            Qd3IndexPolicy qd3_policy) {
  DistResult result = TrainDistributedImpl(cluster, train, quadrant, options,
                                           valid, qd3_policy);
  if constexpr (obs::kObsEnabled) {
    obs::RunObserver* observer = cluster.observer();
    if (observer != nullptr) {
      if (obs::MetricsShard* shard = observer->driver_shard()) {
        shard->gauge("train.peak_histogram_bytes")
            ->SetMax(static_cast<double>(result.peak_histogram_bytes));
        shard->gauge("train.data_bytes")
            ->SetMax(static_cast<double>(result.data_bytes));
      }
      obs::RunReport& report = result.report;
      report.enabled = true;
      report.quadrant = QuadrantToString(quadrant);
      report.workers = cluster.num_workers();
      report.trees = static_cast<uint32_t>(result.model.num_trees());
      report.train_seconds = result.TrainSeconds();
      report.comp_seconds = result.TotalCompSeconds();
      report.comm_seconds = result.TotalCommSeconds();
      report.setup_seconds = result.setup_seconds;
      for (const TreeCost& c : result.tree_costs) {
        report.phases.gradient += c.gradient_seconds;
        report.phases.hist += c.hist_seconds;
        report.phases.find_split += c.find_split_seconds;
        report.phases.node_split += c.node_split_seconds;
        report.phases.other += c.other_seconds;
        report.phases.comm += c.comm_seconds;
      }
      report.train_bytes_sent = result.train_bytes_sent;
      report.peak_histogram_bytes = result.peak_histogram_bytes;
      report.data_bytes = result.data_bytes;
      report.wasted_bytes = result.wasted_bytes;
      report.wasted_seconds = result.wasted_seconds;
      report.recovery.failures_observed = result.recovery.failures_observed;
      report.recovery.recovery_attempts = result.recovery.recovery_attempts;
      report.recovery.trees_recovered = result.recovery.trees_recovered;
      report.recovery.trees_retrained = result.recovery.trees_retrained;
      report.recovery.final_world_size = result.recovery.final_world_size;
      report.recovery.rejoined_workers = result.recovery.rejoined_workers;
      report.recovery.rendezvous_failures =
          result.recovery.rendezvous_failures;
      report.recovery.recovery_seconds = result.recovery.recovery_seconds;
      report.recovery.recovery_bytes = result.recovery.recovery_bytes;
      report.elasticity.resizes = result.elasticity.resizes;
      report.elasticity.admitted_workers = result.elasticity.admitted_workers;
      report.elasticity.retired_workers = result.elasticity.retired_workers;
      report.elasticity.reshard_bytes = result.elasticity.reshard_bytes;
      report.elasticity.reshard_seconds = result.elasticity.reshard_seconds;
      report.integrity.level = IntegrityLevelToString(options.params.integrity);
      report.integrity.checks = result.integrity.checks;
      report.integrity.violations = result.integrity.violations;
      report.integrity.recomputes = result.integrity.recomputes;
      report.integrity.escalations = result.integrity.escalations;
      report.integrity.rollbacks = result.integrity_rollbacks;
      report.integrity.last_blamed_rank = result.integrity.last_blamed_rank;
      report.integrity.wasted_bytes = result.integrity.wasted_bytes;
      report.integrity.wasted_seconds = result.integrity.wasted_seconds;
      report.metrics = observer->metrics().Merged();
      if (observer->trace_enabled()) {
        obs::AnatomyTotals totals;
        totals.quadrant = report.quadrant;
        totals.workers = report.workers;
        totals.trees = report.trees;
        totals.train_seconds = report.train_seconds;
        totals.setup_seconds = result.setup_seconds;
        totals.recovery_seconds = result.recovery.recovery_seconds;
        totals.reshard_seconds = result.elasticity.reshard_seconds;
        totals.wasted_seconds = result.wasted_seconds;
        totals.train_bytes_sent = result.train_bytes_sent;
        result.anatomy = obs::BuildAnatomyReport(*observer, totals);
      }
    }
  }
  return result;
}

}  // namespace vero
