#include "quadrants/train_distributed.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quadrants/checkpoint.h"
#include "quadrants/feature_parallel.h"
#include "quadrants/qd1_trainer.h"
#include "quadrants/qd2_trainer.h"
#include "quadrants/qd4_vero.h"

namespace vero {
namespace {

// Everything one worker reports back after its SPMD run.
struct WorkerOutput {
  GbdtModel model;
  std::vector<TreeCost> tree_costs;
  std::vector<IterationStats> curve;
  uint64_t peak_histogram_bytes = 0;
  uint64_t data_bytes = 0;
  uint64_t train_bytes_sent = 0;
  double setup_seconds = 0.0;
  /// Cluster-wide bytes sent during setup (sketch / transform pipeline);
  /// identical on every rank (InstrumentSum).
  uint64_t setup_bytes_sent = 0;
  TransformStats transform_stats;
};

// Latest checkpoint, written by rank 0's thread during an attempt and read
// by the driver after the attempt joins.
struct CheckpointStore {
  CheckpointOptions options;
  std::vector<uint8_t> latest;
};

// One training attempt's inputs. The first attempt runs fresh; recovery
// attempts resume from a checkpoint (or restart) on a smaller cluster.
struct AttemptConfig {
  Quadrant quadrant = Quadrant::kQD1;
  const DistTrainOptions* options = nullptr;
  const Dataset* train = nullptr;
  const Dataset* valid = nullptr;
  Qd3IndexPolicy qd3_policy = Qd3IndexPolicy::kMixed;
  /// Restored state to resume from (null = train from scratch).
  const TrainCheckpoint* resume = nullptr;
  /// Full N x dims margin matrix of the restored model (null iff !resume).
  const std::vector<double>* resume_margins = nullptr;
  /// Simulated seconds already elapsed (pre-failure prefix + recovery).
  double elapsed_base = 0.0;
  CheckpointStore* store = nullptr;
};

std::vector<Dataset> BuildHorizontalShards(const Dataset& train, int world) {
  const uint32_t n = train.num_instances();
  std::vector<Dataset> shards;
  shards.reserve(world);
  for (int r = 0; r < world; ++r) {
    const auto [begin, end] = HorizontalRange(n, world, r);
    shards.emplace_back(train.matrix().SliceRows(begin, end),
                        std::vector<float>(train.labels().begin() + begin,
                                           train.labels().begin() + end),
                        train.task(), train.num_classes());
  }
  return shards;
}

// Runs the SPMD body of one attempt on `cluster`, filling `outputs` (one
// entry per rank). Returns per-rank statuses from Cluster::TryRun.
std::vector<Status> RunAttempt(Cluster& cluster,
                               const std::vector<Dataset>& shards,
                               const AttemptConfig& cfg,
                               std::vector<WorkerOutput>* outputs) {
  const Dataset& train = *cfg.train;
  const DistTrainOptions& options = *cfg.options;
  const Quadrant quadrant = cfg.quadrant;
  const uint32_t n = train.num_instances();
  const uint32_t dims =
      train.task() == Task::kMultiClass ? train.num_classes() : 1;

  return cluster.TryRun([&](WorkerContext& ctx) {
    const int rank = ctx.rank();
    const int w = ctx.world_size();
    WorkerOutput& out = (*outputs)[rank];
    ThreadCpuTimer setup_cpu;
    const double sim_start = ctx.stats().sim_seconds;
    const uint64_t bytes_start = ctx.stats().bytes_sent;

    std::unique_ptr<DistTrainerBase> trainer;
    CandidateSplits splits;       // Storage for horizontal quadrants.
    VerticalShard vertical;       // Storage for vertical quadrants.
    const CandidateSplits* checkpoint_splits = nullptr;

    switch (quadrant) {
      case Quadrant::kQD1:
      case Quadrant::kQD2: {
        const Dataset& shard = shards[rank];
        if (cfg.resume != nullptr && cfg.resume->has_splits) {
          // Recovery: reuse the checkpointed split table; the sketch
          // pipeline (and its communication) is skipped entirely.
          splits = cfg.resume->splits;
        } else {
          double sketch_seconds = 0.0;
          splits = BuildDistributedCandidateSplits(
              ctx, shard, options.params.num_candidate_splits,
              options.params.sketch_entries, nullptr, &sketch_seconds);
        }
        if (quadrant == Quadrant::kQD1) {
          trainer = std::make_unique<Qd1Trainer>(ctx, options, shard, splits,
                                                 n);
        } else {
          trainer = std::make_unique<Qd2Trainer>(ctx, options, shard, splits,
                                                 n);
        }
        checkpoint_splits = &splits;
        break;
      }
      case Quadrant::kQD3:
      case Quadrant::kQD4: {
        TransformOptions transform = options.transform;
        transform.num_candidate_splits = options.params.num_candidate_splits;
        transform.sketch_entries = options.params.sketch_entries;
        if (cfg.resume != nullptr && cfg.resume->has_splits) {
          transform.precomputed_splits = &cfg.resume->splits;
        }
        vertical = HorizontalToVertical(ctx, shards[rank], transform);
        out.transform_stats = vertical.stats;
        if (quadrant == Quadrant::kQD3) {
          trainer = std::make_unique<Qd3Trainer>(ctx, options, train.task(),
                                                 train.num_classes(),
                                                 vertical, cfg.qd3_policy);
        } else {
          trainer = std::make_unique<Qd4VeroTrainer>(
              ctx, options, train.task(), train.num_classes(), vertical);
        }
        checkpoint_splits = &vertical.splits;
        break;
      }
      case Quadrant::kFeatureParallel: {
        // No partitioning: every worker computes identical splits locally
        // from its full copy (no sketch communication).
        if (cfg.resume != nullptr && cfg.resume->has_splits) {
          splits = cfg.resume->splits;
        } else {
          splits = ProposeCandidateSplits(
              train, options.params.num_candidate_splits,
              options.params.sketch_entries);
        }
        trainer = std::make_unique<FeatureParallelTrainer>(ctx, options,
                                                           train, splits);
        checkpoint_splits = &splits;
        break;
      }
    }

    if (cfg.resume != nullptr) {
      // Seed the restored prefix: trees plus this worker's margin slice
      // (shard rows for horizontal layouts, all rows for vertical / FP).
      const std::vector<double>& full = *cfg.resume_margins;
      const bool horizontal =
          quadrant == Quadrant::kQD1 || quadrant == Quadrant::kQD2;
      if (horizontal) {
        const auto [begin, end] = HorizontalRange(n, w, rank);
        trainer->InitFromCheckpoint(
            cfg.resume->model,
            std::span<const double>(full.data() +
                                        static_cast<size_t>(begin) * dims,
                                    static_cast<size_t>(end - begin) * dims));
      } else {
        trainer->InitFromCheckpoint(cfg.resume->model, full);
      }
    }

    if (cfg.store != nullptr && cfg.store->options.interval > 0 &&
        rank == 0) {
      CheckpointStore* store = cfg.store;
      // Resolve the checkpoint metric handles once; the sink then records a
      // size / count / latency sample per checkpoint on rank 0's shard.
      obs::Counter* ckpt_bytes = nullptr;
      obs::Counter* ckpt_count = nullptr;
      obs::HistogramMetric* ckpt_latency = nullptr;
      if (obs::MetricsShard* shard = ctx.metrics_shard()) {
        ckpt_bytes = shard->counter("checkpoint.bytes");
        ckpt_count = shard->counter("checkpoint.count");
        ckpt_latency = shard->histogram("checkpoint.latency_seconds");
      }
      trainer->EnableCheckpoints(
          store->options.interval,
          [store, checkpoint_splits, ckpt_bytes, ckpt_count, ckpt_latency](
              const GbdtModel& model, uint32_t trees_done) {
            WallTimer latency;
            TrainCheckpoint checkpoint;
            checkpoint.trees_done = trees_done;
            checkpoint.model = model;
            checkpoint.has_splits = true;
            checkpoint.splits = *checkpoint_splits;
            store->latest = SerializeCheckpoint(checkpoint);
            if (!store->options.dir.empty()) {
              const Status s = SaveCheckpoint(
                  checkpoint, store->options.dir + "/latest.vckp");
              if (!s.ok()) {
                VERO_LOG(Warning)
                    << "checkpoint write failed: " << s.ToString();
              }
            }
            if (ckpt_count != nullptr) {
              ckpt_count->Increment();
              ckpt_bytes->Add(store->latest.size());
              ckpt_latency->Observe(latency.Seconds());
            }
          });
    }

    setup_cpu.Stop();
    const double setup_comm = ctx.stats().sim_seconds - sim_start;
    out.setup_seconds =
        ctx.InstrumentMax(setup_cpu.Seconds()) + ctx.InstrumentMax(setup_comm);
    const uint64_t bytes_after_setup = ctx.stats().bytes_sent;
    out.setup_bytes_sent = static_cast<uint64_t>(std::llround(
        ctx.InstrumentSum(static_cast<double>(bytes_after_setup -
                                              bytes_start))));

    trainer->Train(cfg.valid, &out.tree_costs, &out.curve,
                   cfg.elapsed_base + out.setup_seconds);
    out.train_bytes_sent = ctx.stats().bytes_sent - bytes_after_setup;
    out.peak_histogram_bytes = trainer->peak_histogram_bytes();
    out.data_bytes = trainer->DataBytes();
    if (rank == 0) out.model = trainer->model();
  });
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void FoldWorkerOutputs(const std::vector<WorkerOutput>& outputs,
                       DistResult* result) {
  for (const WorkerOutput& out : outputs) {
    result->peak_histogram_bytes =
        std::max(result->peak_histogram_bytes, out.peak_histogram_bytes);
    result->data_bytes = std::max(result->data_bytes, out.data_bytes);
    result->train_bytes_sent += out.train_bytes_sent;
  }
}

// Approximate on-the-wire size of one horizontal shard: CSR entries (4-byte
// feature id + 8-byte value) plus labels. Used to cost a from-scratch
// redistribution when no checkpoint exists.
uint64_t ShardWireBytes(const Dataset& shard) {
  uint64_t bytes = 0;
  const CsrMatrix& m = shard.matrix();
  for (InstanceId i = 0; i < shard.num_instances(); ++i) {
    bytes += m.RowFeatures(i).size() * (sizeof(FeatureId) + sizeof(double));
  }
  bytes += static_cast<uint64_t>(shard.num_instances()) * sizeof(float);
  return bytes;
}

// The training/recovery loop proper; the public TrainDistributed wraps it to
// fill the run report once the clusters are quiescent.
DistResult TrainDistributedImpl(Cluster& cluster, const Dataset& train,
                                Quadrant quadrant,
                                const DistTrainOptions& options,
                                const Dataset* valid,
                                Qd3IndexPolicy qd3_policy) {
  VERO_CHECK_OK(options.params.Validate());
  const int w = cluster.num_workers();
  const bool sharded = quadrant != Quadrant::kFeatureParallel;

  CheckpointStore store;
  store.options = options.checkpoint;

  // Horizontal shards in rank order (the layout loaded from HDFS in §4.2.1).
  std::vector<Dataset> shards;
  if (sharded) shards = BuildHorizontalShards(train, w);

  cluster.ResetStats();
  std::vector<WorkerOutput> outputs(w);
  AttemptConfig cfg;
  cfg.quadrant = quadrant;
  cfg.options = &options;
  cfg.train = &train;
  cfg.valid = valid;
  cfg.qd3_policy = qd3_policy;
  cfg.store = &store;
  Status error = FirstError(RunAttempt(cluster, shards, cfg, &outputs));

  DistResult result;
  if (error.ok()) {
    result.model = std::move(outputs[0].model);
    result.tree_costs = std::move(outputs[0].tree_costs);
    result.curve = std::move(outputs[0].curve);
    result.setup_seconds = outputs[0].setup_seconds;
    result.transform_stats = outputs[0].transform_stats;
    FoldWorkerOutputs(outputs, &result);
    result.recovery.final_world_size = w;
    return result;
  }

  // ---- Recovery ----------------------------------------------------------
  // The failed cluster's rendezvous group is permanently broken; training
  // continues on a fresh, smaller cluster over the surviving workers,
  // resuming from the last checkpoint when one exists.
  std::vector<int> dead = cluster.dead_ranks();
  result.recovery.failures_observed = static_cast<int>(dead.size());
  int survivors = w - static_cast<int>(dead.size());
  // Stats of the pre-failure attempt, for prefix stitching (rank 0 recorded
  // every completed round before any checkpoint covering it).
  const double first_setup_seconds = outputs[0].setup_seconds;
  const TransformStats first_transform_stats = outputs[0].transform_stats;
  const std::vector<TreeCost> first_costs = std::move(outputs[0].tree_costs);
  const std::vector<IterationStats> first_curve =
      std::move(outputs[0].curve);

  obs::RunObserver* observer = cluster.observer();
  obs::TraceBuffer* driver_tb =
      observer != nullptr ? observer->driver_buffer() : nullptr;
  obs::MetricsShard* driver_shard =
      observer != nullptr ? observer->driver_shard() : nullptr;
  if (driver_shard != nullptr) {
    driver_shard->counter("recovery.failures_observed")->Add(dead.size());
  }

  // Goodput bookkeeping: the attempt that just failed, pending its waste
  // charge. A failed attempt's communication and modeled time count as
  // wasted except for the trees a later attempt resumes from (via
  // checkpoint); its setup is wasted only when nothing at all was kept.
  // The round in flight at the moment of failure was never recorded as a
  // completed cost, so it is deliberately omitted.
  std::vector<TreeCost> prev_costs = first_costs;
  uint32_t prev_start_tree = 0;
  double prev_setup_seconds = first_setup_seconds;
  uint64_t prev_setup_bytes = outputs[0].setup_bytes_sent;
  auto charge_wasted = [&result](const std::vector<TreeCost>& costs,
                                 uint32_t start_tree, uint32_t trees_kept,
                                 double setup_seconds, uint64_t setup_bytes) {
    const uint32_t kept =
        trees_kept > start_tree
            ? std::min<uint32_t>(trees_kept - start_tree,
                                 static_cast<uint32_t>(costs.size()))
            : 0;
    for (size_t t = kept; t < costs.size(); ++t) {
      result.wasted_seconds += costs[t].total_seconds();
      result.wasted_bytes += costs[t].bytes_sent;
    }
    if (kept == 0) {
      result.wasted_seconds += setup_seconds;
      result.wasted_bytes += setup_bytes;
    }
  };

  while (result.recovery.recovery_attempts < options.max_recovery_attempts &&
         survivors >= 1) {
    ++result.recovery.recovery_attempts;
    obs::PhaseSpan recovery_span(driver_tb, "recovery", nullptr);
    recovery_span.set_category("driver");
    if (driver_shard != nullptr) {
      driver_shard->counter("recovery.attempts")->Increment();
    }

    TrainCheckpoint restored;
    bool have_checkpoint = false;
    if (!store.latest.empty()) {
      have_checkpoint =
          DeserializeCheckpoint(store.latest, &restored).ok() &&
          restored.trees_done > 0;
    }

    // Cost of getting the survivors ready: ship the checkpoint to each of
    // them (margins are recomputed locally from the model), or — with no
    // checkpoint — re-read the dead workers' raw shards from the replicated
    // store and ship them across the survivors.
    uint64_t redistribution_bytes = 0;
    if (have_checkpoint) {
      redistribution_bytes =
          static_cast<uint64_t>(store.latest.size()) * survivors;
    } else if (sharded) {
      for (int r : dead) {
        if (r < static_cast<int>(shards.size())) {
          redistribution_bytes += ShardWireBytes(shards[r]);
        }
      }
    }
    const double redistribution_seconds =
        cluster.network_model().OpSeconds(redistribution_bytes, 0);
    result.recovery.recovery_bytes += redistribution_bytes;
    result.recovery.recovery_seconds += redistribution_seconds;
    if (driver_shard != nullptr) {
      driver_shard->counter("recovery.redistribution_bytes")
          ->Add(redistribution_bytes);
      driver_shard->histogram("recovery.redistribution_seconds")
          ->Observe(redistribution_seconds);
    }

    const uint32_t trees_recovered =
        have_checkpoint ? restored.trees_done : 0;
    // Now that we know how much of the failed attempt survives through the
    // checkpoint, charge the rest of it as waste.
    charge_wasted(prev_costs, prev_start_tree, trees_recovered,
                  prev_setup_seconds, prev_setup_bytes);
    std::vector<double> resume_margins;
    if (have_checkpoint) {
      resume_margins = restored.model.PredictDatasetMargins(train);
    }

    // Simulated time already on the clock when the recovery run starts.
    double elapsed_base = first_setup_seconds + redistribution_seconds;
    for (uint32_t t = 0; t < trees_recovered && t < first_costs.size(); ++t) {
      elapsed_base += first_costs[t].total_seconds();
    }

    Cluster recovery_cluster(survivors, cluster.network_model());
    recovery_cluster.set_collective_timeout_seconds(
        cluster.collective_timeout_seconds());
    // Same observer as the failed cluster: the run's trace / metrics keep
    // accumulating across recovery attempts.
    recovery_cluster.AttachObserver(observer);
    std::vector<Dataset> recovery_shards;
    if (sharded) recovery_shards = BuildHorizontalShards(train, survivors);
    std::vector<WorkerOutput> recovery_outputs(survivors);

    AttemptConfig recovery_cfg = cfg;
    recovery_cfg.resume = have_checkpoint ? &restored : nullptr;
    recovery_cfg.resume_margins = have_checkpoint ? &resume_margins : nullptr;
    recovery_cfg.elapsed_base = elapsed_base;
    error = FirstError(RunAttempt(recovery_cluster, recovery_shards,
                                  recovery_cfg, &recovery_outputs));
    if (!error.ok()) {
      const std::vector<int> newly_dead = recovery_cluster.dead_ranks();
      result.recovery.failures_observed +=
          static_cast<int>(newly_dead.size());
      survivors -= static_cast<int>(newly_dead.size());
      if (driver_shard != nullptr) {
        driver_shard->counter("recovery.failures_observed")
            ->Add(newly_dead.size());
      }
      // This attempt becomes the pending failed attempt; the next iteration
      // (or the final-failure path) charges its waste once the amount kept
      // through checkpoints is known.
      prev_costs = std::move(recovery_outputs[0].tree_costs);
      prev_start_tree = trees_recovered;
      prev_setup_seconds = recovery_outputs[0].setup_seconds;
      prev_setup_bytes = recovery_outputs[0].setup_bytes_sent;
      if (newly_dead.empty()) break;  // Unrecoverable (timeout/internal).
      continue;
    }

    // Stitch the pre-failure prefix (rounds covered by the checkpoint) with
    // the recovery run's suffix.
    result.model = std::move(recovery_outputs[0].model);
    result.tree_costs.assign(
        first_costs.begin(),
        first_costs.begin() +
            std::min<size_t>(trees_recovered, first_costs.size()));
    result.tree_costs.insert(result.tree_costs.end(),
                             recovery_outputs[0].tree_costs.begin(),
                             recovery_outputs[0].tree_costs.end());
    result.curve.assign(
        first_curve.begin(),
        first_curve.begin() +
            std::min<size_t>(trees_recovered, first_curve.size()));
    result.curve.insert(result.curve.end(),
                        recovery_outputs[0].curve.begin(),
                        recovery_outputs[0].curve.end());
    result.setup_seconds = first_setup_seconds;
    result.transform_stats = first_transform_stats;
    FoldWorkerOutputs(recovery_outputs, &result);
    result.recovery.trees_recovered = trees_recovered;
    result.recovery.trees_retrained = static_cast<uint32_t>(
        recovery_outputs[0].tree_costs.size());
    result.recovery.final_world_size = survivors;
    // The recovery cluster's setup phase (rebuilding stores / re-binning on
    // the survivors) is part of what the failure cost.
    result.recovery.recovery_seconds += recovery_outputs[0].setup_seconds;
    return result;
  }

  // The run failed outright: nothing from the last failed attempt was kept.
  charge_wasted(prev_costs, prev_start_tree, 0, prev_setup_seconds,
                prev_setup_bytes);
  result.status = error;
  result.recovery.final_world_size = survivors;
  return result;
}

}  // namespace

DistResult TrainDistributed(Cluster& cluster, const Dataset& train,
                            Quadrant quadrant,
                            const DistTrainOptions& options,
                            const Dataset* valid,
                            Qd3IndexPolicy qd3_policy) {
  DistResult result = TrainDistributedImpl(cluster, train, quadrant, options,
                                           valid, qd3_policy);
  if constexpr (obs::kObsEnabled) {
    obs::RunObserver* observer = cluster.observer();
    if (observer != nullptr) {
      if (obs::MetricsShard* shard = observer->driver_shard()) {
        shard->gauge("train.peak_histogram_bytes")
            ->SetMax(static_cast<double>(result.peak_histogram_bytes));
        shard->gauge("train.data_bytes")
            ->SetMax(static_cast<double>(result.data_bytes));
      }
      obs::RunReport& report = result.report;
      report.enabled = true;
      report.quadrant = QuadrantToString(quadrant);
      report.workers = cluster.num_workers();
      report.trees = static_cast<uint32_t>(result.model.num_trees());
      report.train_seconds = result.TrainSeconds();
      report.comp_seconds = result.TotalCompSeconds();
      report.comm_seconds = result.TotalCommSeconds();
      report.setup_seconds = result.setup_seconds;
      for (const TreeCost& c : result.tree_costs) {
        report.phases.gradient += c.gradient_seconds;
        report.phases.hist += c.hist_seconds;
        report.phases.find_split += c.find_split_seconds;
        report.phases.node_split += c.node_split_seconds;
        report.phases.other += c.other_seconds;
        report.phases.comm += c.comm_seconds;
      }
      report.train_bytes_sent = result.train_bytes_sent;
      report.peak_histogram_bytes = result.peak_histogram_bytes;
      report.data_bytes = result.data_bytes;
      report.wasted_bytes = result.wasted_bytes;
      report.wasted_seconds = result.wasted_seconds;
      report.recovery.failures_observed = result.recovery.failures_observed;
      report.recovery.recovery_attempts = result.recovery.recovery_attempts;
      report.recovery.trees_recovered = result.recovery.trees_recovered;
      report.recovery.trees_retrained = result.recovery.trees_retrained;
      report.recovery.final_world_size = result.recovery.final_world_size;
      report.recovery.recovery_seconds = result.recovery.recovery_seconds;
      report.recovery.recovery_bytes = result.recovery.recovery_bytes;
      report.metrics = observer->metrics().Merged();
    }
  }
  return result;
}

}  // namespace vero
