#include "quadrants/advisor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/hist_builder.h"
#include "core/histogram.h"

namespace vero {
namespace {

// Number of tree nodes whose splits are searched (internal-node budget of an
// L-layer tree): 2^(L-1) - 1, the paper's aggregation count (§3.1.3).
double InternalNodes(uint32_t layers) {
  return std::pow(2.0, layers - 1) - 1.0;
}

// Entries scanned per tree per worker during histogram construction, as a
// multiple of the worker's shard entries. With subtraction only the smaller
// sibling of each pair is built: the root layer scans everything, each of
// the remaining L-2 build layers scans at most half.
double ScanPassesWithSubtraction(uint32_t layers) {
  return 1.0 + 0.5 * (layers > 2 ? layers - 2 : 0);
}

// Without subtraction every build layer scans the full shard.
double ScanPassesWithoutSubtraction(uint32_t layers) {
  return static_cast<double>(layers - 1);
}

}  // namespace

uint64_t QuadrantAdvisor::HistogramBytesPerNode(const WorkloadSpec& w) {
  return 2ull * w.num_features * w.num_candidate_splits * w.gradient_dim() *
         8ull;
}

QuadrantEstimate QuadrantAdvisor::Estimate(const WorkloadSpec& w,
                                           Quadrant quadrant) const {
  const double workers = env_.num_workers;
  const double n = static_cast<double>(w.num_instances);
  const double dims = w.gradient_dim();
  const double layers = w.num_layers;
  const double size_hist = static_cast<double>(HistogramBytesPerNode(w));
  const double internal = InternalNodes(w.num_layers);
  const double shard_entries = w.total_nnz() / workers;

  QuadrantEstimate e;
  e.quadrant = quadrant;

  // ---- Computation ----------------------------------------------------
  const bool vertical = IsVertical(quadrant);
  const bool subtraction = quadrant != Quadrant::kQD1;
  const double scan_passes = subtraction
                                 ? ScanPassesWithSubtraction(w.num_layers)
                                 : ScanPassesWithoutSubtraction(w.num_layers);
  // QD3's linear column scans cannot skip instances of subtracted siblings:
  // every pass reads the whole shard.
  const double effective_passes =
      quadrant == Quadrant::kQD3 ? ScanPassesWithoutSubtraction(w.num_layers)
                                 : scan_passes;
  const double hist_seconds =
      effective_passes * shard_entries * dims / env_.scan_throughput;

  // Split enumeration: QD1 evaluates all D features on every worker
  // (redundant post-all-reduce); the others evaluate D/W.
  const double features_searched =
      quadrant == Quadrant::kQD1 ? static_cast<double>(w.num_features)
                                 : w.num_features / workers;
  const double split_seconds = internal * features_searched *
                               w.num_candidate_splits * dims /
                               env_.gain_throughput;

  // Gradients + index updates + margin updates: shard rows for horizontal,
  // every row for vertical (replicated placement work — why Gender favors
  // horizontal).
  const double rows_touched = vertical ? n : n / workers;
  const double index_seconds =
      (layers + dims) * rows_touched / env_.index_throughput;

  e.comp_seconds = hist_seconds + split_seconds + index_seconds;

  // ---- Communication ----------------------------------------------------
  double per_worker_wire = 0.0;  // max(bytes sent, received) per worker
  double ops = 0.0;
  if (!vertical && quadrant != Quadrant::kFeatureParallel) {
    // Histogram aggregation over the internal nodes (§3.1.3): all-reduce
    // moves ~2x a reduce-scatter.
    const double factor = quadrant == Quadrant::kQD1 ? 2.0 : 1.0;
    per_worker_wire =
        factor * size_hist * internal * (workers - 1) / workers;
    ops = 3.0 * (layers - 1);
  } else if (vertical) {
    // Placement bitmaps: ceil(N/8) bytes per split layer, broadcast by the
    // owning workers to W-1 peers; split exchange is negligible by
    // comparison. Charge the cluster-total wire to the critical worker
    // conservatively (owners rotate, so divide by W).
    per_worker_wire =
        std::ceil(n / 8.0) * (workers - 1) * (layers - 1) / workers;
    ops = 4.0 * (layers - 1);
  } else {
    // Feature-parallel: only split exchange.
    per_worker_wire = 256.0 * internal;
    ops = 2.0 * (layers - 1);
  }
  e.comm_seconds = ops * env_.network.latency_seconds +
                   per_worker_wire / env_.network.bandwidth_bytes_per_second;
  e.comm_bytes_per_tree =
      static_cast<uint64_t>(per_worker_wire * workers);

  // ---- Memory (§3.1.2) ---------------------------------------------------
  const double live_nodes = std::pow(2.0, w.num_layers >= 2 ? w.num_layers - 2
                                                            : 0);
  // Subtraction retains parents while children materialize: ~1.5x the layer.
  const double retention = subtraction ? 1.5 : 1.0;
  double hist_bytes = retention * live_nodes * size_hist;
  if (vertical) hist_bytes /= workers;
  e.histogram_bytes = static_cast<uint64_t>(hist_bytes);
  e.fits_memory = e.histogram_bytes <= env_.memory_budget_bytes;
  return e;
}

std::vector<QuadrantEstimate> QuadrantAdvisor::Rank(
    const WorkloadSpec& w) const {
  std::vector<QuadrantEstimate> estimates;
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    estimates.push_back(Estimate(w, q));
  }
  std::stable_sort(estimates.begin(), estimates.end(),
                   [](const QuadrantEstimate& a, const QuadrantEstimate& b) {
                     if (a.fits_memory != b.fits_memory) return a.fits_memory;
                     return a.total_seconds() < b.total_seconds();
                   });
  return estimates;
}

Quadrant QuadrantAdvisor::Recommend(const WorkloadSpec& w) const {
  return Rank(w).front().quadrant;
}

std::string QuadrantAdvisor::Explain(const WorkloadSpec& w) const {
  std::ostringstream out;
  out << "workload: N=" << w.num_instances << " D=" << w.num_features
      << " C=" << w.num_classes << " density=" << w.density
      << " L=" << w.num_layers << " q=" << w.num_candidate_splits
      << "  (Sizehist=" << HistogramBytesPerNode(w) / 1e6 << " MB)\n";
  for (const QuadrantEstimate& e : Rank(w)) {
    out << "  " << QuadrantToString(e.quadrant)
        << ": comp=" << e.comp_seconds << "s comm=" << e.comm_seconds
        << "s hist-mem=" << e.histogram_bytes / 1e6 << " MB"
        << (e.fits_memory ? "" : "  [exceeds memory budget]") << "\n";
  }
  return out.str();
}

EnvironmentSpec QuadrantAdvisor::Calibrate(EnvironmentSpec base) {
  Rng rng(97);
  // Histogram-accumulation throughput.
  {
    const uint32_t d = 256, q = 20;
    Histogram hist(d, q, 1);
    const size_t entries = 2'000'000;
    std::vector<uint32_t> features(entries);
    std::vector<BinId> bins(entries);
    for (size_t i = 0; i < entries; ++i) {
      features[i] = static_cast<uint32_t>(rng.Uniform(d));
      bins[i] = static_cast<BinId>(rng.Uniform(q));
    }
    const GradPair g{1.0, 0.5};
    ThreadCpuTimer timer;
    // The shared builder's entry kernel — the same code path the trainers'
    // histogram construction bottoms out in, so the calibrated throughput
    // matches what training actually achieves.
    HistogramBuilder::AccumulateEntries(&hist, features, bins, &g);
    timer.Stop();
    if (timer.Seconds() > 0) {
      base.scan_throughput = entries / timer.Seconds();
    }
  }
  // Gain-evaluation throughput: approximate with the dominant FLOP pattern.
  {
    const size_t evals = 2'000'000;
    double acc = 0.0, g = 0.3, h = 0.7;
    ThreadCpuTimer timer;
    for (size_t i = 0; i < evals; ++i) {
      g += 1e-9;
      h += 1e-9;
      acc += g * g / (h + 1.0);
    }
    timer.Stop();
    if (timer.Seconds() > 0 && acc > 0) {
      base.gain_throughput = evals / timer.Seconds();
    }
  }
  return base;
}

}  // namespace vero
