#include "quadrants/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/serialize.h"
#include "obs/metrics.h"

namespace vero {
namespace {

constexpr uint32_t kCheckpointMagic = 0x56434b50u;   // "VCKP"
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kManifestMagic = 0x56434b4du;     // "VCKM"
constexpr uint32_t kManifestVersion = 1;

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const TrainCheckpoint& checkpoint) {
  ByteWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteU32(checkpoint.trees_done);
  writer.WriteU8(checkpoint.has_splits ? 1 : 0);
  checkpoint.model.SerializeTo(&writer);
  if (checkpoint.has_splits) checkpoint.splits.SerializeTo(&writer);
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  return writer.TakeData();
}

Status DeserializeCheckpoint(const std::vector<uint8_t>& data,
                             TrainCheckpoint* out) {
  if (data.size() < 4 * sizeof(uint32_t) + 1) {
    return Status::Corruption("checkpoint buffer too short");
  }
  const size_t payload_end = data.size() - sizeof(uint32_t);
  {
    ByteReader trailer(data.data() + payload_end, sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(data.data(), payload_end) != stored_crc) {
      return Status::Corruption("checkpoint CRC mismatch");
    }
  }
  ByteReader reader(data.data(), payload_end);
  uint32_t magic = 0, version = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  VERO_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  TrainCheckpoint checkpoint;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&checkpoint.trees_done));
  uint8_t has_splits = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU8(&has_splits));
  if (has_splits > 1) {
    return Status::Corruption("bad has_splits flag in checkpoint");
  }
  checkpoint.has_splits = has_splits != 0;
  Status s = GbdtModel::Deserialize(&reader, &checkpoint.model);
  if (!s.ok()) {
    return s.code() == StatusCode::kOutOfRange
               ? Status::Corruption("truncated checkpoint model")
               : s;
  }
  if (checkpoint.has_splits) {
    s = CandidateSplits::Deserialize(&reader, &checkpoint.splits);
    if (!s.ok()) {
      return s.code() == StatusCode::kOutOfRange
                 ? Status::Corruption("truncated checkpoint splits")
                 : s;
    }
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in checkpoint");
  }
  *out = std::move(checkpoint);
  return Status::OK();
}

Status SaveCheckpoint(const TrainCheckpoint& checkpoint,
                      const std::string& path) {
  const std::vector<uint8_t> data = SerializeCheckpoint(checkpoint);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  std::vector<uint8_t> data(content.begin(), content.end());
  TrainCheckpoint checkpoint;
  VERO_RETURN_IF_ERROR(DeserializeCheckpoint(data, &checkpoint));
  return checkpoint;
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

namespace {

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  out->assign(content.begin(), content.end());
  return Status::OK();
}

/// Write-to-temp + atomic rename; a crash mid-write leaves the destination
/// untouched (or a stray .tmp sibling that later commits simply overwrite).
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out.good()) return Status::IOError("write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

std::string ChainFileName(uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06u.vckp", index);
  return buf;
}

/// Parses the NNNNNN out of "ckpt-NNNNNN.vckp"; -1 for anything else.
int64_t ChainFileIndex(const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".vckp";
  if (name.size() != 16) return -1;
  if (name.compare(0, 5, kPrefix) != 0) return -1;
  if (name.compare(11, 5, kSuffix) != 0) return -1;
  int64_t index = 0;
  for (int i = 5; i < 11; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    index = index * 10 + (name[i] - '0');
  }
  return index;
}

}  // namespace

std::vector<uint8_t> SerializeManifest(const CheckpointManifest& manifest) {
  ByteWriter writer;
  writer.WriteU32(kManifestMagic);
  writer.WriteU32(kManifestVersion);
  writer.WriteU32(static_cast<uint32_t>(manifest.entries.size()));
  for (const ManifestEntry& e : manifest.entries) {
    writer.WriteString(e.file);
    writer.WriteU32(e.trees_done);
    writer.WriteU64(e.bytes);
    writer.WriteU32(e.crc32);
  }
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  return writer.TakeData();
}

Status DeserializeManifest(const std::vector<uint8_t>& data,
                           CheckpointManifest* out) {
  if (data.size() < 4 * sizeof(uint32_t)) {
    return Status::Corruption("manifest buffer too short");
  }
  const size_t payload_end = data.size() - sizeof(uint32_t);
  {
    ByteReader trailer(data.data() + payload_end, sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(data.data(), payload_end) != stored_crc) {
      return Status::Corruption("manifest CRC mismatch");
    }
  }
  ByteReader reader(data.data(), payload_end);
  uint32_t magic = 0, version = 0, count = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kManifestMagic) return Status::Corruption("bad manifest magic");
  VERO_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported manifest version");
  }
  VERO_RETURN_IF_ERROR(reader.ReadU32(&count));
  CheckpointManifest manifest;
  manifest.entries.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    Status s = reader.ReadString(&e.file);
    if (s.ok()) s = reader.ReadU32(&e.trees_done);
    if (s.ok()) s = reader.ReadU64(&e.bytes);
    if (s.ok()) s = reader.ReadU32(&e.crc32);
    if (!s.ok()) {
      return s.code() == StatusCode::kOutOfRange
                 ? Status::Corruption("truncated manifest entry")
                 : s;
    }
    manifest.entries.push_back(std::move(e));
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in manifest");
  }
  *out = std::move(manifest);
  return Status::OK();
}

Status SaveManifest(const CheckpointManifest& manifest,
                    const std::string& path) {
  return AtomicWriteFile(path, SerializeManifest(manifest));
}

StatusOr<CheckpointManifest> LoadManifest(const std::string& path) {
  std::vector<uint8_t> data;
  VERO_RETURN_IF_ERROR(ReadFileBytes(path, &data));
  CheckpointManifest manifest;
  VERO_RETURN_IF_ERROR(DeserializeManifest(data, &manifest));
  return manifest;
}

StatusOr<TrainCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  bool had_candidate = false;

  // Manifest path: newest entry first, size + whole-file CRC cross-checked
  // before the (also CRC-framed) payload is parsed.
  StatusOr<CheckpointManifest> manifest =
      LoadManifest(dir + "/" + kManifestFileName);
  if (manifest.ok()) {
    const std::vector<ManifestEntry>& entries = manifest.value().entries;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      had_candidate = true;
      std::vector<uint8_t> data;
      if (!ReadFileBytes(dir + "/" + it->file, &data).ok()) continue;
      if (data.size() != it->bytes) continue;
      if (Crc32(data.data(), data.size()) != it->crc32) continue;
      TrainCheckpoint checkpoint;
      if (!DeserializeCheckpoint(data, &checkpoint).ok()) continue;
      return checkpoint;
    }
  }

  // Fallback: the manifest is damaged/missing or every listed entry was
  // bad. Scan the directory for chain files (newest index first), then the
  // latest.vckp alias.
  std::vector<std::pair<int64_t, std::string>> chain;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const int64_t index = ChainFileIndex(name);
    if (index >= 0) chain.emplace_back(index, name);
  }
  std::sort(chain.begin(), chain.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  chain.emplace_back(-1, "latest.vckp");
  for (const auto& [index, name] : chain) {
    const std::string path = dir + "/" + name;
    if (!std::filesystem::exists(path, ec)) continue;
    had_candidate = true;
    StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(path);
    if (loaded.ok()) return std::move(loaded).value();
  }

  if (had_candidate) {
    return Status::Corruption("no valid checkpoint survives in " + dir);
  }
  return Status::NotFound("no checkpoint files in " + dir);
}

// ---------------------------------------------------------------------------
// CheckpointWriter.
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(Options options, Metrics metrics)
    : options_(std::move(options)), metrics_(metrics) {
  if (!options_.dir.empty()) {
    // Adopt a pre-existing chain so rotation/GC and numbering continue
    // rather than clobbering files from an earlier incarnation.
    StatusOr<CheckpointManifest> existing =
        LoadManifest(options_.dir + "/" + kManifestFileName);
    if (existing.ok()) {
      manifest_ = std::move(existing).value();
      for (const ManifestEntry& e : manifest_.entries) {
        const int64_t index = ChainFileIndex(e.file);
        if (index >= 0 && index + 1 > next_index_) {
          next_index_ = static_cast<uint32_t>(index + 1);
        }
      }
    }
  }
  if (options_.async) {
    worker_ = std::thread([this] { WriterLoop(); });
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void CheckpointWriter::Submit(const GbdtModel& model, uint32_t trees_done,
                              const CandidateSplits* splits) {
  TrainCheckpoint snapshot;
  snapshot.trees_done = trees_done;
  snapshot.model = model;
  if (splits != nullptr) {
    snapshot.has_splits = true;
    snapshot.splits = *splits;
  }
  if (!options_.async) {
    CommitSnapshot(std::move(snapshot));
    return;
  }
  {
    // Double buffer: the slot holds at most one snapshot; a newer Submit
    // while the writer is busy replaces it (newest wins).
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = std::move(snapshot);
  }
  cv_.notify_all();
}

void CheckpointWriter::Flush() {
  if (!options_.async) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !pending_.has_value() && !writing_; });
}

std::optional<TrainCheckpoint> CheckpointWriter::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

Status CheckpointWriter::write_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_status_;
}

void CheckpointWriter::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (write_status_.ok()) write_status_ = std::move(status);
}

void CheckpointWriter::WriterLoop() {
  for (;;) {
    TrainCheckpoint snapshot;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return pending_.has_value() || stop_; });
      if (!pending_.has_value()) break;  // stop_ set and slot drained
      snapshot = std::move(*pending_);
      pending_.reset();
      writing_ = true;
    }
    CommitSnapshot(std::move(snapshot));
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
    }
    cv_.notify_all();
  }
}

void CheckpointWriter::CommitSnapshot(TrainCheckpoint snapshot) {
  const auto wall_begin = std::chrono::steady_clock::now();
  const std::vector<uint8_t> data = SerializeCheckpoint(snapshot);
  if (!options_.dir.empty()) {
    const std::string name = ChainFileName(next_index_++);
    Status s = AtomicWriteFile(options_.dir + "/" + name, data);
    if (s.ok()) {
      // Refresh the alias the simple single-file loader looks for.
      s = AtomicWriteFile(options_.dir + "/latest.vckp", data);
    }
    if (s.ok()) {
      ManifestEntry entry;
      entry.file = name;
      entry.trees_done = snapshot.trees_done;
      entry.bytes = data.size();
      entry.crc32 = Crc32(data.data(), data.size());
      manifest_.entries.push_back(std::move(entry));
      // GC: drop chain files beyond keep_last_n (manifest order is oldest
      // first). The manifest commits after the deletes, so a crash between
      // them only leaves unreferenced files, never dangling entries.
      if (options_.keep_last_n > 0 &&
          manifest_.entries.size() > options_.keep_last_n) {
        const size_t drop = manifest_.entries.size() - options_.keep_last_n;
        for (size_t i = 0; i < drop; ++i) {
          std::error_code ec;
          std::filesystem::remove(
              options_.dir + "/" + manifest_.entries[i].file, ec);
          if (metrics_.rotated_deleted != nullptr) {
            metrics_.rotated_deleted->Increment();
          }
        }
        manifest_.entries.erase(manifest_.entries.begin(),
                                manifest_.entries.begin() +
                                    static_cast<ptrdiff_t>(drop));
      }
      s = SaveManifest(manifest_, options_.dir + "/" + kManifestFileName);
    }
    if (!s.ok()) RecordError(std::move(s));
  }
  if (metrics_.count != nullptr) metrics_.count->Increment();
  if (metrics_.bytes != nullptr) metrics_.bytes->Add(data.size());
  if (metrics_.write_seconds != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_begin;
    metrics_.write_seconds->Observe(elapsed.count());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = std::move(snapshot);
  }
}

}  // namespace vero

