#include "quadrants/checkpoint.h"

#include <fstream>
#include <sstream>

#include "common/crc32.h"
#include "common/serialize.h"

namespace vero {
namespace {

constexpr uint32_t kCheckpointMagic = 0x56434b50u;  // "VCKP"
constexpr uint32_t kCheckpointVersion = 1;

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const TrainCheckpoint& checkpoint) {
  ByteWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteU32(checkpoint.trees_done);
  writer.WriteU8(checkpoint.has_splits ? 1 : 0);
  checkpoint.model.SerializeTo(&writer);
  if (checkpoint.has_splits) checkpoint.splits.SerializeTo(&writer);
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  return writer.TakeData();
}

Status DeserializeCheckpoint(const std::vector<uint8_t>& data,
                             TrainCheckpoint* out) {
  if (data.size() < 4 * sizeof(uint32_t) + 1) {
    return Status::Corruption("checkpoint buffer too short");
  }
  const size_t payload_end = data.size() - sizeof(uint32_t);
  {
    ByteReader trailer(data.data() + payload_end, sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(data.data(), payload_end) != stored_crc) {
      return Status::Corruption("checkpoint CRC mismatch");
    }
  }
  ByteReader reader(data.data(), payload_end);
  uint32_t magic = 0, version = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  VERO_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  TrainCheckpoint checkpoint;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&checkpoint.trees_done));
  uint8_t has_splits = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU8(&has_splits));
  if (has_splits > 1) {
    return Status::Corruption("bad has_splits flag in checkpoint");
  }
  checkpoint.has_splits = has_splits != 0;
  Status s = GbdtModel::Deserialize(&reader, &checkpoint.model);
  if (!s.ok()) {
    return s.code() == StatusCode::kOutOfRange
               ? Status::Corruption("truncated checkpoint model")
               : s;
  }
  if (checkpoint.has_splits) {
    s = CandidateSplits::Deserialize(&reader, &checkpoint.splits);
    if (!s.ok()) {
      return s.code() == StatusCode::kOutOfRange
                 ? Status::Corruption("truncated checkpoint splits")
                 : s;
    }
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in checkpoint");
  }
  *out = std::move(checkpoint);
  return Status::OK();
}

Status SaveCheckpoint(const TrainCheckpoint& checkpoint,
                      const std::string& path) {
  const std::vector<uint8_t> data = SerializeCheckpoint(checkpoint);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  std::vector<uint8_t> data(content.begin(), content.end());
  TrainCheckpoint checkpoint;
  VERO_RETURN_IF_ERROR(DeserializeCheckpoint(data, &checkpoint));
  return checkpoint;
}

}  // namespace vero
