#include "quadrants/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/serialize.h"
#include "obs/metrics.h"

namespace vero {
namespace {

constexpr uint32_t kCheckpointMagic = 0x56434b50u;   // "VCKP"
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kDeltaMagic = 0x56434b44u;        // "VCKD"
constexpr uint32_t kDeltaVersion = 1;
constexpr uint32_t kManifestMagic = 0x56434b4du;     // "VCKM"
// v2 added per-entry kind + base_trees for delta chains; v1 manifests (all
// entries implicitly full) are still accepted on read.
constexpr uint32_t kManifestVersion = 2;

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const TrainCheckpoint& checkpoint) {
  ByteWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteU32(checkpoint.trees_done);
  writer.WriteU8(checkpoint.has_splits ? 1 : 0);
  checkpoint.model.SerializeTo(&writer);
  if (checkpoint.has_splits) checkpoint.splits.SerializeTo(&writer);
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  return writer.TakeData();
}

Status DeserializeCheckpoint(const std::vector<uint8_t>& data,
                             TrainCheckpoint* out) {
  if (data.size() < 4 * sizeof(uint32_t) + 1) {
    return Status::Corruption("checkpoint buffer too short");
  }
  const size_t payload_end = data.size() - sizeof(uint32_t);
  {
    ByteReader trailer(data.data() + payload_end, sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(data.data(), payload_end) != stored_crc) {
      return Status::Corruption("checkpoint CRC mismatch");
    }
  }
  ByteReader reader(data.data(), payload_end);
  uint32_t magic = 0, version = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  VERO_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  TrainCheckpoint checkpoint;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&checkpoint.trees_done));
  uint8_t has_splits = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU8(&has_splits));
  if (has_splits > 1) {
    return Status::Corruption("bad has_splits flag in checkpoint");
  }
  checkpoint.has_splits = has_splits != 0;
  Status s = GbdtModel::Deserialize(&reader, &checkpoint.model);
  if (!s.ok()) {
    return s.code() == StatusCode::kOutOfRange
               ? Status::Corruption("truncated checkpoint model")
               : s;
  }
  if (checkpoint.has_splits) {
    s = CandidateSplits::Deserialize(&reader, &checkpoint.splits);
    if (!s.ok()) {
      return s.code() == StatusCode::kOutOfRange
                 ? Status::Corruption("truncated checkpoint splits")
                 : s;
    }
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in checkpoint");
  }
  *out = std::move(checkpoint);
  return Status::OK();
}

std::vector<uint8_t> SerializeDeltaCheckpoint(const DeltaCheckpoint& delta) {
  ByteWriter writer;
  writer.WriteU32(kDeltaMagic);
  writer.WriteU32(kDeltaVersion);
  writer.WriteU32(delta.trees_done);
  writer.WriteU32(delta.base_trees);
  writer.WriteU32(static_cast<uint32_t>(delta.trees.size()));
  for (const Tree& tree : delta.trees) tree.SerializeTo(&writer);
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  return writer.TakeData();
}

Status DeserializeDeltaCheckpoint(const std::vector<uint8_t>& data,
                                  DeltaCheckpoint* out) {
  if (data.size() < 6 * sizeof(uint32_t)) {
    return Status::Corruption("delta checkpoint buffer too short");
  }
  const size_t payload_end = data.size() - sizeof(uint32_t);
  {
    ByteReader trailer(data.data() + payload_end, sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(data.data(), payload_end) != stored_crc) {
      return Status::Corruption("delta checkpoint CRC mismatch");
    }
  }
  ByteReader reader(data.data(), payload_end);
  uint32_t magic = 0, version = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kDeltaMagic) {
    return Status::Corruption("bad delta checkpoint magic");
  }
  VERO_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kDeltaVersion) {
    return Status::Corruption("unsupported delta checkpoint version");
  }
  DeltaCheckpoint delta;
  uint32_t count = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&delta.trees_done));
  VERO_RETURN_IF_ERROR(reader.ReadU32(&delta.base_trees));
  VERO_RETURN_IF_ERROR(reader.ReadU32(&count));
  if (delta.base_trees >= delta.trees_done ||
      count != delta.trees_done - delta.base_trees) {
    return Status::Corruption("inconsistent delta checkpoint tree counts");
  }
  delta.trees.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    Tree tree;
    Status s = Tree::Deserialize(&reader, &tree);
    if (!s.ok()) {
      return s.code() == StatusCode::kOutOfRange
                 ? Status::Corruption("truncated delta checkpoint tree")
                 : s;
    }
    delta.trees.push_back(std::move(tree));
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in delta checkpoint");
  }
  *out = std::move(delta);
  return Status::OK();
}

Status SaveCheckpoint(const TrainCheckpoint& checkpoint,
                      const std::string& path) {
  const std::vector<uint8_t> data = SerializeCheckpoint(checkpoint);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  std::vector<uint8_t> data(content.begin(), content.end());
  TrainCheckpoint checkpoint;
  VERO_RETURN_IF_ERROR(DeserializeCheckpoint(data, &checkpoint));
  return checkpoint;
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

namespace {

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  out->assign(content.begin(), content.end());
  return Status::OK();
}

/// Write-to-temp + atomic rename; a crash mid-write leaves the destination
/// untouched (or a stray .tmp sibling that later commits simply overwrite).
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out.good()) return Status::IOError("write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

std::string ChainFileName(uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%06u.vckp", index);
  return buf;
}

/// Parses the NNNNNN out of "ckpt-NNNNNN.vckp"; -1 for anything else.
int64_t ChainFileIndex(const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".vckp";
  if (name.size() != 16) return -1;
  if (name.compare(0, 5, kPrefix) != 0) return -1;
  if (name.compare(11, 5, kSuffix) != 0) return -1;
  int64_t index = 0;
  for (int i = 5; i < 11; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    index = index * 10 + (name[i] - '0');
  }
  return index;
}

}  // namespace

std::vector<uint8_t> SerializeManifest(const CheckpointManifest& manifest) {
  ByteWriter writer;
  writer.WriteU32(kManifestMagic);
  writer.WriteU32(kManifestVersion);
  writer.WriteU32(static_cast<uint32_t>(manifest.entries.size()));
  for (const ManifestEntry& e : manifest.entries) {
    writer.WriteString(e.file);
    writer.WriteU32(e.trees_done);
    writer.WriteU64(e.bytes);
    writer.WriteU32(e.crc32);
    writer.WriteU8(e.kind);
    writer.WriteU32(e.base_trees);
  }
  writer.WriteU32(Crc32(writer.data().data(), writer.size()));
  return writer.TakeData();
}

Status DeserializeManifest(const std::vector<uint8_t>& data,
                           CheckpointManifest* out) {
  if (data.size() < 4 * sizeof(uint32_t)) {
    return Status::Corruption("manifest buffer too short");
  }
  const size_t payload_end = data.size() - sizeof(uint32_t);
  {
    ByteReader trailer(data.data() + payload_end, sizeof(uint32_t));
    uint32_t stored_crc = 0;
    VERO_RETURN_IF_ERROR(trailer.ReadU32(&stored_crc));
    if (Crc32(data.data(), payload_end) != stored_crc) {
      return Status::Corruption("manifest CRC mismatch");
    }
  }
  ByteReader reader(data.data(), payload_end);
  uint32_t magic = 0, version = 0, count = 0;
  VERO_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kManifestMagic) return Status::Corruption("bad manifest magic");
  VERO_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != 1 && version != kManifestVersion) {
    return Status::Corruption("unsupported manifest version");
  }
  VERO_RETURN_IF_ERROR(reader.ReadU32(&count));
  CheckpointManifest manifest;
  manifest.entries.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    Status s = reader.ReadString(&e.file);
    if (s.ok()) s = reader.ReadU32(&e.trees_done);
    if (s.ok()) s = reader.ReadU64(&e.bytes);
    if (s.ok()) s = reader.ReadU32(&e.crc32);
    if (version >= 2) {
      // v1 entries are implicitly full (kind/base default-initialized).
      if (s.ok()) s = reader.ReadU8(&e.kind);
      if (s.ok()) s = reader.ReadU32(&e.base_trees);
      if (s.ok() && e.kind > kManifestEntryDelta) {
        return Status::Corruption("bad manifest entry kind");
      }
      if (s.ok() && e.kind == kManifestEntryDelta &&
          e.base_trees >= e.trees_done) {
        return Status::Corruption("bad manifest delta base");
      }
    }
    if (!s.ok()) {
      return s.code() == StatusCode::kOutOfRange
                 ? Status::Corruption("truncated manifest entry")
                 : s;
    }
    manifest.entries.push_back(std::move(e));
  }
  if (reader.position() != payload_end) {
    return Status::Corruption("trailing bytes in manifest");
  }
  *out = std::move(manifest);
  return Status::OK();
}

Status SaveManifest(const CheckpointManifest& manifest,
                    const std::string& path) {
  return AtomicWriteFile(path, SerializeManifest(manifest));
}

StatusOr<CheckpointManifest> LoadManifest(const std::string& path) {
  std::vector<uint8_t> data;
  VERO_RETURN_IF_ERROR(ReadFileBytes(path, &data));
  CheckpointManifest manifest;
  VERO_RETURN_IF_ERROR(DeserializeManifest(data, &manifest));
  return manifest;
}

namespace {

/// A chain file parsed by magic: either a self-contained full checkpoint or
/// a delta entry that still needs its base.
struct ParsedChainFile {
  bool is_delta = false;
  TrainCheckpoint full;
  DeltaCheckpoint delta;
  uint32_t trees_done() const {
    return is_delta ? delta.trees_done : full.trees_done;
  }
};

Status ParseChainBytes(const std::vector<uint8_t>& data,
                       ParsedChainFile* out) {
  if (DeserializeCheckpoint(data, &out->full).ok()) {
    out->is_delta = false;
    return Status::OK();
  }
  if (DeserializeDeltaCheckpoint(data, &out->delta).ok()) {
    out->is_delta = true;
    return Status::OK();
  }
  return Status::Corruption("unparseable chain file");
}

/// Resolves entry `idx` of a parsed chain (newest last) to a full
/// checkpoint, recursively restoring a delta's base: the nearest earlier
/// entry whose tree count matches. Damaged or missing links fail the
/// resolution (the caller then falls back to an older entry).
bool ResolveParsedEntry(const std::vector<ParsedChainFile>& chain, size_t idx,
                        TrainCheckpoint* out) {
  const ParsedChainFile& entry = chain[idx];
  if (!entry.is_delta) {
    *out = entry.full;
    return true;
  }
  for (size_t j = idx; j-- > 0;) {
    if (chain[j].trees_done() != entry.delta.base_trees) continue;
    TrainCheckpoint base;
    if (!ResolveParsedEntry(chain, j, &base)) continue;
    for (const Tree& tree : entry.delta.trees) {
      base.model.AddTree(tree);
    }
    base.trees_done = entry.delta.trees_done;
    *out = std::move(base);
    return true;
  }
  return false;
}

}  // namespace

StatusOr<TrainCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  bool had_candidate = false;

  // Manifest path: newest entry first, size + whole-file CRC cross-checked
  // before the (also CRC-framed) payload is parsed. Entries are read into a
  // parsed chain (bad files become holes) and resolved newest-first so a
  // delta whose base chain is damaged falls back to the next older
  // restorable entry.
  StatusOr<CheckpointManifest> manifest =
      LoadManifest(dir + "/" + kManifestFileName);
  if (manifest.ok()) {
    const std::vector<ManifestEntry>& entries = manifest.value().entries;
    std::vector<ParsedChainFile> parsed;
    std::vector<bool> valid;
    for (const ManifestEntry& e : entries) {
      had_candidate = true;
      ParsedChainFile file;
      bool ok = false;
      std::vector<uint8_t> data;
      if (ReadFileBytes(dir + "/" + e.file, &data).ok() &&
          data.size() == e.bytes &&
          Crc32(data.data(), data.size()) == e.crc32 &&
          ParseChainBytes(data, &file).ok() &&
          file.is_delta == (e.kind == kManifestEntryDelta) &&
          file.trees_done() == e.trees_done) {
        ok = true;
      }
      parsed.push_back(std::move(file));
      valid.push_back(ok);
    }
    // Collapse to the valid subset (holes drop out; delta bases are matched
    // by tree count, so survivors still link up when their base survived).
    std::vector<ParsedChainFile> chain;
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (valid[i]) chain.push_back(std::move(parsed[i]));
    }
    for (size_t i = chain.size(); i-- > 0;) {
      TrainCheckpoint restored;
      if (ResolveParsedEntry(chain, i, &restored)) return restored;
    }
  }

  // Fallback: the manifest is damaged/missing or every listed entry was
  // bad. Scan the directory for chain files (in index order, newest last),
  // link deltas to bases by tree count, then try the latest.vckp alias.
  std::vector<std::pair<int64_t, std::string>> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const int64_t index = ChainFileIndex(name);
    if (index >= 0) names.emplace_back(index, name);
  }
  std::sort(names.begin(), names.end());
  std::vector<ParsedChainFile> chain;
  for (const auto& [index, name] : names) {
    had_candidate = true;
    std::vector<uint8_t> data;
    if (!ReadFileBytes(dir + "/" + name, &data).ok()) continue;
    ParsedChainFile file;
    if (!ParseChainBytes(data, &file).ok()) continue;
    chain.push_back(std::move(file));
  }
  for (size_t i = chain.size(); i-- > 0;) {
    TrainCheckpoint restored;
    if (ResolveParsedEntry(chain, i, &restored)) return restored;
  }
  const std::string alias = dir + "/latest.vckp";
  if (std::filesystem::exists(alias, ec)) {
    had_candidate = true;
    StatusOr<TrainCheckpoint> loaded = LoadCheckpoint(alias);
    if (loaded.ok()) return std::move(loaded).value();
  }

  if (had_candidate) {
    return Status::Corruption("no valid checkpoint survives in " + dir);
  }
  return Status::NotFound("no checkpoint files in " + dir);
}

// ---------------------------------------------------------------------------
// CheckpointWriter.
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(Options options, Metrics metrics)
    : options_(std::move(options)), metrics_(metrics) {
  if (!options_.dir.empty()) {
    SweepStaleTmpFiles();
    // Adopt a pre-existing chain so rotation/GC and numbering continue
    // rather than clobbering files from an earlier incarnation.
    StatusOr<CheckpointManifest> existing =
        LoadManifest(options_.dir + "/" + kManifestFileName);
    if (existing.ok()) {
      manifest_ = std::move(existing).value();
      for (const ManifestEntry& e : manifest_.entries) {
        const int64_t index = ChainFileIndex(e.file);
        if (index >= 0 && index + 1 > next_index_) {
          next_index_ = static_cast<uint32_t>(index + 1);
        }
      }
    }
  }
  if (options_.async) {
    worker_ = std::thread([this] { WriterLoop(); });
  }
}

void CheckpointWriter::SweepStaleTmpFiles() {
  // A crash between AtomicWriteFile's write and rename strands a *.tmp
  // sibling. Only files matching our own naming patterns are touched; other
  // tenants of the directory are left alone.
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kTmpSuffix = ".tmp";
    if (name.size() <= 4 || name.compare(name.size() - 4, 4, kTmpSuffix) != 0) {
      continue;
    }
    const std::string stem = name.substr(0, name.size() - 4);
    if (ChainFileIndex(stem) < 0 && stem != "latest.vckp" &&
        stem != kManifestFileName) {
      continue;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path(), remove_ec) &&
        metrics_.stale_tmp_deleted != nullptr) {
      metrics_.stale_tmp_deleted->Increment();
    }
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void CheckpointWriter::Submit(const GbdtModel& model, uint32_t trees_done,
                              const CandidateSplits* splits) {
  PendingSnapshot snapshot;
  // A delta is possible when a base is in the pipeline, the tree count
  // advanced past it, and the model's tree vector indexes rounds directly
  // (one tree per round; anything else forces a safe full snapshot).
  const bool can_delta =
      options_.delta && submit_base_trees_ != kNoBase &&
      trees_done > submit_base_trees_ &&
      static_cast<uint32_t>(model.num_trees()) == trees_done &&
      (options_.full_every == 0 ||
       submits_since_full_ + 1 < options_.full_every);
  if (can_delta) {
    snapshot.is_delta = true;
    snapshot.delta.trees_done = trees_done;
    snapshot.delta.base_trees = submit_base_trees_;
    snapshot.delta.trees.reserve(trees_done - submit_base_trees_);
    for (uint32_t t = submit_base_trees_; t < trees_done; ++t) {
      snapshot.delta.trees.push_back(model.tree(t));
    }
    ++submits_since_full_;
  } else {
    snapshot.is_delta = false;
    snapshot.full.trees_done = trees_done;
    snapshot.full.model = model;
    if (splits != nullptr) {
      snapshot.full.has_splits = true;
      snapshot.full.splits = *splits;
    }
    submits_since_full_ = 0;
  }
  submit_base_trees_ = trees_done;
  if (!options_.async) {
    CommitSnapshot(std::move(snapshot));
    return;
  }
  {
    // Double buffer: the slot holds at most one snapshot; a newer Submit
    // while the writer is busy replaces it (newest wins). A dropped
    // snapshot never commits, so a delta replacing it must absorb the
    // dropped trees — its base stays the last snapshot that WILL commit.
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.has_value() && snapshot.is_delta) {
      if (pending_->is_delta) {
        // delta(bp -> tp) + delta(tp -> tn) = delta(bp -> tn); the merged
        // entry commits once, so the full cadence counter backs up by one.
        pending_->delta.trees.insert(
            pending_->delta.trees.end(),
            std::make_move_iterator(snapshot.delta.trees.begin()),
            std::make_move_iterator(snapshot.delta.trees.end()));
        pending_->delta.trees_done = snapshot.delta.trees_done;
        snapshot = std::move(*pending_);
        if (submits_since_full_ > 0) --submits_since_full_;
      } else {
        // full(tp) + delta(tp -> tn): extend the dropped full in place; the
        // commit stays self-contained.
        for (Tree& tree : snapshot.delta.trees) {
          pending_->full.model.AddTree(std::move(tree));
        }
        pending_->full.trees_done = snapshot.delta.trees_done;
        snapshot = std::move(*pending_);
        submits_since_full_ = 0;
      }
    }
    pending_ = std::move(snapshot);
  }
  cv_.notify_all();
}

void CheckpointWriter::Flush() {
  if (!options_.async) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !pending_.has_value() && !writing_; });
}

std::optional<TrainCheckpoint> CheckpointWriter::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

Status CheckpointWriter::write_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_status_;
}

void CheckpointWriter::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (write_status_.ok()) write_status_ = std::move(status);
}

void CheckpointWriter::WriterLoop() {
  for (;;) {
    PendingSnapshot snapshot;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return pending_.has_value() || stop_; });
      if (!pending_.has_value()) break;  // stop_ set and slot drained
      snapshot = std::move(*pending_);
      pending_.reset();
      writing_ = true;
    }
    CommitSnapshot(std::move(snapshot));
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
    }
    cv_.notify_all();
  }
}

void CheckpointWriter::CommitSnapshot(PendingSnapshot snapshot) {
  const auto wall_begin = std::chrono::steady_clock::now();
  const std::vector<uint8_t> data =
      snapshot.is_delta ? SerializeDeltaCheckpoint(snapshot.delta)
                        : SerializeCheckpoint(snapshot.full);
  if (!options_.dir.empty()) {
    const std::string name = ChainFileName(next_index_++);
    Status s = AtomicWriteFile(options_.dir + "/" + name, data);
    if (s.ok()) {
      // Refresh the alias the simple single-file loader looks for; it is
      // always byte-equal to the newest chain file (so in delta mode it may
      // itself be a delta that needs the chain to reconstruct).
      s = AtomicWriteFile(options_.dir + "/latest.vckp", data);
    }
    if (s.ok()) {
      ManifestEntry entry;
      entry.file = name;
      entry.trees_done = snapshot.trees_done();
      entry.bytes = data.size();
      entry.crc32 = Crc32(data.data(), data.size());
      entry.kind =
          snapshot.is_delta ? kManifestEntryDelta : kManifestEntryFull;
      entry.base_trees = snapshot.is_delta ? snapshot.delta.base_trees : 0;
      manifest_.entries.push_back(std::move(entry));
      // GC: drop chain files beyond keep_last_n (manifest order is oldest
      // first), but never orphan a retained delta chain — the kept suffix
      // must start at a full entry, so the drop point backs up to the
      // nearest full at or before it. The manifest commits after the
      // deletes, so a crash between them only leaves unreferenced files,
      // never dangling entries.
      if (options_.keep_last_n > 0 &&
          manifest_.entries.size() > options_.keep_last_n) {
        size_t drop = manifest_.entries.size() - options_.keep_last_n;
        while (drop > 0 &&
               manifest_.entries[drop].kind != kManifestEntryFull) {
          --drop;
        }
        for (size_t i = 0; i < drop; ++i) {
          std::error_code ec;
          std::filesystem::remove(
              options_.dir + "/" + manifest_.entries[i].file, ec);
          if (metrics_.rotated_deleted != nullptr) {
            metrics_.rotated_deleted->Increment();
          }
        }
        manifest_.entries.erase(manifest_.entries.begin(),
                                manifest_.entries.begin() +
                                    static_cast<ptrdiff_t>(drop));
      }
      s = SaveManifest(manifest_, options_.dir + "/" + kManifestFileName);
    }
    if (!s.ok()) RecordError(std::move(s));
  }
  if (metrics_.count != nullptr) metrics_.count->Increment();
  if (metrics_.bytes != nullptr) metrics_.bytes->Add(data.size());
  if (snapshot.is_delta) {
    if (metrics_.delta_count != nullptr) metrics_.delta_count->Increment();
    if (metrics_.delta_bytes != nullptr) {
      metrics_.delta_bytes->Add(data.size());
    }
  }
  if (metrics_.write_seconds != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_begin;
    metrics_.write_seconds->Observe(elapsed.count());
  }
  // Publish: the in-memory latest is always a FULL checkpoint. A delta
  // commit extends the previous latest, whose tree count matches the
  // delta's base by construction (commits pop in submit order).
  bool base_matches = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!snapshot.is_delta) {
      latest_ = std::move(snapshot.full);
    } else if (latest_.has_value() &&
               latest_->trees_done == snapshot.delta.base_trees) {
      for (Tree& tree : snapshot.delta.trees) {
        latest_->model.AddTree(std::move(tree));
      }
      latest_->trees_done = snapshot.delta.trees_done;
    } else {
      base_matches = false;
    }
  }
  if (!base_matches) {
    RecordError(Status::Internal("delta checkpoint base out of sync"));
  }
}

}  // namespace vero

