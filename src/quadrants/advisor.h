#ifndef VERO_QUADRANTS_ADVISOR_H_
#define VERO_QUADRANTS_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/network_model.h"
#include "quadrants/quadrant.h"

namespace vero {

/// Shape of a training workload, in the units of the paper's §3 analysis.
struct WorkloadSpec {
  uint64_t num_instances = 0;   ///< N
  uint64_t num_features = 0;    ///< D
  uint32_t num_classes = 2;     ///< C (gradient dim; 2 == binary -> 1 dim)
  double density = 1.0;         ///< nnz fraction (d = density * D)
  uint32_t num_layers = 8;      ///< L
  uint32_t num_candidate_splits = 20;  ///< q

  /// Gradient dimensionality: 1 unless multi-class.
  uint32_t gradient_dim() const { return num_classes > 2 ? num_classes : 1; }
  /// Average nonzeros per instance.
  double avg_row_nnz() const { return density * num_features; }
  /// Total nonzeros.
  double total_nnz() const { return avg_row_nnz() * num_instances; }
};

/// Cluster environment: worker count, network, and calibrated kernel
/// throughputs (entries/s and gain-evaluations/s of this build on this
/// host).
struct EnvironmentSpec {
  int num_workers = 8;
  NetworkModel network = NetworkModel::Lab1Gbps();
  /// Histogram-accumulation throughput, (entry x class) adds per second.
  double scan_throughput = 150e6;
  /// Split-enumeration throughput, (bin x class) gain evaluations/second.
  double gain_throughput = 100e6;
  /// Index/margin bookkeeping throughput, instance-touches per second.
  double index_throughput = 400e6;
  /// Per-worker memory available for histograms; estimates exceeding it are
  /// flagged (and ranked last), mirroring the paper's OOM observations.
  uint64_t memory_budget_bytes = 4ull << 30;
};

/// Predicted per-tree cost of one quadrant under the §3 model.
struct QuadrantEstimate {
  Quadrant quadrant = Quadrant::kQD4;
  double comp_seconds = 0.0;        ///< Per tree, critical-path worker.
  double comm_seconds = 0.0;        ///< Per tree, modeled network time.
  uint64_t histogram_bytes = 0;     ///< Peak per worker.
  uint64_t comm_bytes_per_tree = 0; ///< Cluster-wide.
  bool fits_memory = true;

  double total_seconds() const { return comp_seconds + comm_seconds; }
};

/// The paper's closing open problem (§6: "How to determine an optimal data
/// management strategy given the dataset and the environment ... remains
/// unsolved"), answered with its own §3 cost model: predict per-quadrant
/// computation, communication, and memory, and recommend the cheapest
/// quadrant that fits.
class QuadrantAdvisor {
 public:
  explicit QuadrantAdvisor(EnvironmentSpec env) : env_(std::move(env)) {}

  /// Sizehist = 2 x D x q x C x 8 bytes (§3.1.1).
  static uint64_t HistogramBytesPerNode(const WorkloadSpec& workload);

  /// Cost estimate for one quadrant.
  QuadrantEstimate Estimate(const WorkloadSpec& workload,
                            Quadrant quadrant) const;

  /// Estimates for QD1-QD4, best (feasible, fastest) first.
  std::vector<QuadrantEstimate> Rank(const WorkloadSpec& workload) const;

  /// The recommended quadrant (first of Rank()).
  Quadrant Recommend(const WorkloadSpec& workload) const;

  /// Human-readable report of the ranking (one line per quadrant).
  std::string Explain(const WorkloadSpec& workload) const;

  const EnvironmentSpec& environment() const { return env_; }

  /// Measures this host's kernel throughputs with short micro-runs and
  /// returns a calibrated environment (network/topology fields taken from
  /// `base`).
  static EnvironmentSpec Calibrate(EnvironmentSpec base);

 private:
  EnvironmentSpec env_;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_ADVISOR_H_
