#ifndef VERO_QUADRANTS_CHECKPOINT_H_
#define VERO_QUADRANTS_CHECKPOINT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/tree.h"
#include "sketch/candidate_splits.h"

namespace vero {

namespace obs {
class Counter;
class HistogramMetric;
}  // namespace obs

/// Training state captured after a completed boosting round, sufficient to
/// resume on a (possibly smaller) cluster without redoing finished work:
/// the model prefix plus the candidate-split table the forest was binned
/// against. Margins are not stored — they are recomputed from the model,
/// which keeps checkpoints small (trees, not N x dims doubles).
///
/// Wire format (same framing discipline as model_io): magic "VCKP",
/// version, payload, CRC-32 trailer over everything before the trailer.
struct TrainCheckpoint {
  uint32_t trees_done = 0;
  GbdtModel model;
  /// Candidate-split table used to bin the forest so far. Reusing it on
  /// recovery skips the sketch pipeline (QD1/QD2) or transform steps 1-2
  /// (QD3/QD4) and keeps recovered trees consistent with the prefix.
  bool has_splits = false;
  CandidateSplits splits;
};

/// Serializes `checkpoint` into a framed, CRC-protected byte buffer.
std::vector<uint8_t> SerializeCheckpoint(const TrainCheckpoint& checkpoint);

/// Parses a buffer produced by SerializeCheckpoint. Returns kCorruption for
/// bad magic/version/CRC/framing, never crashes on malformed input.
Status DeserializeCheckpoint(const std::vector<uint8_t>& data,
                             TrainCheckpoint* out);

/// File convenience wrappers.
Status SaveCheckpoint(const TrainCheckpoint& checkpoint,
                      const std::string& path);
StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path);

// ---------------------------------------------------------------------------
// Rotated checkpoint chain: manifest + background writer.
// ---------------------------------------------------------------------------

/// Delta chain entry payload: only the trees appended since `base_trees`,
/// with no split table (the chain's full ancestor carries it). Framed like
/// a full checkpoint (magic "VCKD", version, payload, CRC-32 trailer) so
/// the loader can tell the two apart by magic alone.
struct DeltaCheckpoint {
  uint32_t trees_done = 0;
  /// trees_done of the chain entry this delta extends; the full forest is
  /// that entry's reconstruction plus `trees`.
  uint32_t base_trees = 0;
  std::vector<Tree> trees;
};

std::vector<uint8_t> SerializeDeltaCheckpoint(const DeltaCheckpoint& delta);
Status DeserializeDeltaCheckpoint(const std::vector<uint8_t>& data,
                                  DeltaCheckpoint* out);

/// Manifest entry kinds (`ManifestEntry::kind`).
inline constexpr uint8_t kManifestEntryFull = 0;
inline constexpr uint8_t kManifestEntryDelta = 1;

/// One committed checkpoint of the rotated chain, as recorded in the
/// manifest. `crc32` covers the entire chain file (including the file's own
/// CRC trailer), so the manifest can detect file damage without parsing.
struct ManifestEntry {
  std::string file;  ///< Basename within the checkpoint dir.
  uint32_t trees_done = 0;
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
  /// kManifestEntryFull for a self-contained checkpoint, kManifestEntryDelta
  /// for a delta that extends the previous chain entry.
  uint8_t kind = kManifestEntryFull;
  /// For delta entries: trees_done of the entry this delta builds on
  /// (always the immediately preceding manifest entry). 0 for full entries.
  uint32_t base_trees = 0;
};

/// Index of the on-disk chain, oldest entry first. Serialized with the same
/// framing discipline as checkpoints (magic "VCKM", version, CRC trailer)
/// and committed via write-to-temp + atomic rename, so a crash mid-write
/// leaves either the old or the new manifest, never a torn one.
struct CheckpointManifest {
  std::vector<ManifestEntry> entries;
};

std::vector<uint8_t> SerializeManifest(const CheckpointManifest& manifest);
Status DeserializeManifest(const std::vector<uint8_t>& data,
                           CheckpointManifest* out);

/// Atomic save (temp + rename) / load of the manifest file.
Status SaveManifest(const CheckpointManifest& manifest,
                    const std::string& path);
StatusOr<CheckpointManifest> LoadManifest(const std::string& path);

/// Name of the manifest file inside a checkpoint directory.
inline constexpr const char* kManifestFileName = "MANIFEST.vckm";

/// Recovers the newest restorable checkpoint from `dir`. Walks the manifest
/// newest-to-oldest, cross-checking each entry's size and CRC before
/// parsing; delta entries are reconstructed by walking their base chain
/// back to a full entry, and a damaged link fails the whole chain suffix
/// that depends on it (the walk then falls back to the next older entry).
/// On manifest damage (or when every listed entry is bad) falls back to
/// scanning the directory for chain files — linking parsed delta files to
/// their bases by tree count — and the latest.vckp alias. Returns kNotFound
/// when the directory holds no checkpoint files at all, kCorruption when
/// candidates exist but none survives validation. Never crashes on
/// malformed input.
StatusOr<TrainCheckpoint> LoadLatestCheckpoint(const std::string& dir);

/// Double-buffered checkpoint writer with rotation/GC.
///
/// Submit() captures a snapshot (model + split-table copy) of the state to
/// persist. In synchronous mode the serialization, chain-file write,
/// manifest commit, and GC all happen inline; in async mode Submit returns
/// after the copy and a background thread does the rest, keeping file IO off
/// the boosting round's critical path. Under backpressure (a new Submit
/// while the previous snapshot is still being written) the pending snapshot
/// is replaced — newest wins — so the writer never queues unboundedly and
/// the durable state is always some fully committed round.
///
/// Thread contract: Submit may be called from any single thread at a time
/// (rank 0 of the running attempt); Latest()/Flush() are safe from the
/// driver thread. Metric handles, when provided, are touched only while a
/// write commits, always by exactly one thread at a time.
class CheckpointWriter {
 public:
  struct Options {
    /// Directory for the rotated chain; empty keeps checkpoints in memory
    /// only (Latest() still works, nothing touches disk).
    std::string dir;
    /// Background writes (see class comment).
    bool async = false;
    /// Chain files kept on disk after GC; 0 disables GC. In delta mode the
    /// kept window extends back to the nearest full entry so a retained
    /// delta chain always keeps its anchor.
    uint32_t keep_last_n = 3;
    /// Delta mode: commits carry only the trees appended since the previous
    /// entry (shrinking both the Submit copy and the bytes written); every
    /// `full_every`-th commit is a self-contained full checkpoint. The
    /// first commit, and any commit whose tree count did not advance past
    /// the previous submission (e.g. after a recovery resume), is always
    /// full.
    bool delta = false;
    /// Delta mode: cadence of forced full commits (1 = every commit full,
    /// 0 = only the automatic fulls described above).
    uint32_t full_every = 8;
  };

  /// Pre-resolved metric handles (all optional). The caller must guarantee
  /// the cells are not written by any other thread for the writer's
  /// lifetime.
  struct Metrics {
    obs::Counter* count = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* rotated_deleted = nullptr;
    obs::HistogramMetric* write_seconds = nullptr;
    /// Delta-mode commits (subset of `count`) and their bytes.
    obs::Counter* delta_count = nullptr;
    obs::Counter* delta_bytes = nullptr;
    /// Orphaned *.tmp files swept by the constructor's startup GC.
    obs::Counter* stale_tmp_deleted = nullptr;
  };

  CheckpointWriter(Options options, Metrics metrics);
  explicit CheckpointWriter(Options options)
      : CheckpointWriter(std::move(options), Metrics()) {}
  /// Drains pending work and joins the background thread.
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Captures (model, splits) for persistence. `splits` may be null.
  void Submit(const GbdtModel& model, uint32_t trees_done,
              const CandidateSplits* splits);

  /// Blocks until every snapshot submitted so far is committed (visible via
  /// Latest() and, when a dir is set, durable on disk). No-op in sync mode.
  void Flush();

  /// Newest fully committed checkpoint, or nullopt if none yet.
  std::optional<TrainCheckpoint> Latest() const;

  /// First file-IO error encountered, OK otherwise. Write errors do not
  /// stop the writer; the in-memory Latest() keeps updating.
  Status write_status() const;

  const Options& options() const { return options_; }

 private:
  /// One snapshot in the Submit -> commit pipeline: a self-contained full
  /// checkpoint or a delta carrying only the trees appended since the
  /// previous pipeline entry.
  struct PendingSnapshot {
    bool is_delta = false;
    TrainCheckpoint full;   ///< Valid when !is_delta.
    DeltaCheckpoint delta;  ///< Valid when is_delta.
    uint32_t trees_done() const {
      return is_delta ? delta.trees_done : full.trees_done;
    }
  };

  /// Sentinel for submit_base_trees_: no snapshot in the pipeline yet, the
  /// next submission must be full.
  static constexpr uint32_t kNoBase = 0xffffffffu;

  void WriterLoop();
  /// Serializes and commits one snapshot (chain file + manifest + alias +
  /// GC), then publishes it as Latest(). Runs inline (sync) or on the
  /// background thread (async).
  void CommitSnapshot(PendingSnapshot snapshot);
  void RecordError(Status status);
  /// Sweeps orphaned *.tmp siblings of our own file names left by a crash
  /// between write and rename (constructor only, before the worker starts).
  void SweepStaleTmpFiles();

  const Options options_;
  const Metrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<PendingSnapshot> pending_;
  bool writing_ = false;
  bool stop_ = false;
  std::optional<TrainCheckpoint> latest_;
  Status write_status_;

  /// Delta bookkeeping (touched only by the single submitting thread):
  /// trees_done of the newest snapshot handed to the pipeline (kNoBase
  /// before the first), and commits emitted since the last full one.
  uint32_t submit_base_trees_ = kNoBase;
  uint32_t submits_since_full_ = 0;

  /// Next chain-file index and the live manifest (writer-thread-owned once
  /// the background thread starts; inline-owned in sync mode).
  uint32_t next_index_ = 0;
  CheckpointManifest manifest_;

  std::thread worker_;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_CHECKPOINT_H_
