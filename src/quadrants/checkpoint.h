#ifndef VERO_QUADRANTS_CHECKPOINT_H_
#define VERO_QUADRANTS_CHECKPOINT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/tree.h"
#include "sketch/candidate_splits.h"

namespace vero {

namespace obs {
class Counter;
class HistogramMetric;
}  // namespace obs

/// Training state captured after a completed boosting round, sufficient to
/// resume on a (possibly smaller) cluster without redoing finished work:
/// the model prefix plus the candidate-split table the forest was binned
/// against. Margins are not stored — they are recomputed from the model,
/// which keeps checkpoints small (trees, not N x dims doubles).
///
/// Wire format (same framing discipline as model_io): magic "VCKP",
/// version, payload, CRC-32 trailer over everything before the trailer.
struct TrainCheckpoint {
  uint32_t trees_done = 0;
  GbdtModel model;
  /// Candidate-split table used to bin the forest so far. Reusing it on
  /// recovery skips the sketch pipeline (QD1/QD2) or transform steps 1-2
  /// (QD3/QD4) and keeps recovered trees consistent with the prefix.
  bool has_splits = false;
  CandidateSplits splits;
};

/// Serializes `checkpoint` into a framed, CRC-protected byte buffer.
std::vector<uint8_t> SerializeCheckpoint(const TrainCheckpoint& checkpoint);

/// Parses a buffer produced by SerializeCheckpoint. Returns kCorruption for
/// bad magic/version/CRC/framing, never crashes on malformed input.
Status DeserializeCheckpoint(const std::vector<uint8_t>& data,
                             TrainCheckpoint* out);

/// File convenience wrappers.
Status SaveCheckpoint(const TrainCheckpoint& checkpoint,
                      const std::string& path);
StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path);

// ---------------------------------------------------------------------------
// Rotated checkpoint chain: manifest + background writer.
// ---------------------------------------------------------------------------

/// One committed checkpoint of the rotated chain, as recorded in the
/// manifest. `crc32` covers the entire chain file (including the file's own
/// CRC trailer), so the manifest can detect file damage without parsing.
struct ManifestEntry {
  std::string file;  ///< Basename within the checkpoint dir.
  uint32_t trees_done = 0;
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
};

/// Index of the on-disk chain, oldest entry first. Serialized with the same
/// framing discipline as checkpoints (magic "VCKM", version, CRC trailer)
/// and committed via write-to-temp + atomic rename, so a crash mid-write
/// leaves either the old or the new manifest, never a torn one.
struct CheckpointManifest {
  std::vector<ManifestEntry> entries;
};

std::vector<uint8_t> SerializeManifest(const CheckpointManifest& manifest);
Status DeserializeManifest(const std::vector<uint8_t>& data,
                           CheckpointManifest* out);

/// Atomic save (temp + rename) / load of the manifest file.
Status SaveManifest(const CheckpointManifest& manifest,
                    const std::string& path);
StatusOr<CheckpointManifest> LoadManifest(const std::string& path);

/// Name of the manifest file inside a checkpoint directory.
inline constexpr const char* kManifestFileName = "MANIFEST.vckm";

/// Recovers the newest restorable checkpoint from `dir`. Walks the manifest
/// newest-to-oldest, cross-checking each entry's size and CRC before
/// parsing; on manifest damage (or when every listed entry is bad) falls
/// back to scanning the directory for chain files and the latest.vckp
/// alias. Returns kNotFound when the directory holds no checkpoint files at
/// all, kCorruption when candidates exist but none survives validation.
/// Never crashes on malformed input.
StatusOr<TrainCheckpoint> LoadLatestCheckpoint(const std::string& dir);

/// Double-buffered checkpoint writer with rotation/GC.
///
/// Submit() captures a snapshot (model + split-table copy) of the state to
/// persist. In synchronous mode the serialization, chain-file write,
/// manifest commit, and GC all happen inline; in async mode Submit returns
/// after the copy and a background thread does the rest, keeping file IO off
/// the boosting round's critical path. Under backpressure (a new Submit
/// while the previous snapshot is still being written) the pending snapshot
/// is replaced — newest wins — so the writer never queues unboundedly and
/// the durable state is always some fully committed round.
///
/// Thread contract: Submit may be called from any single thread at a time
/// (rank 0 of the running attempt); Latest()/Flush() are safe from the
/// driver thread. Metric handles, when provided, are touched only while a
/// write commits, always by exactly one thread at a time.
class CheckpointWriter {
 public:
  struct Options {
    /// Directory for the rotated chain; empty keeps checkpoints in memory
    /// only (Latest() still works, nothing touches disk).
    std::string dir;
    /// Background writes (see class comment).
    bool async = false;
    /// Chain files kept on disk after GC; 0 disables GC.
    uint32_t keep_last_n = 3;
  };

  /// Pre-resolved metric handles (all optional). The caller must guarantee
  /// the cells are not written by any other thread for the writer's
  /// lifetime.
  struct Metrics {
    obs::Counter* count = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* rotated_deleted = nullptr;
    obs::HistogramMetric* write_seconds = nullptr;
  };

  CheckpointWriter(Options options, Metrics metrics);
  explicit CheckpointWriter(Options options)
      : CheckpointWriter(std::move(options), Metrics()) {}
  /// Drains pending work and joins the background thread.
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Captures (model, splits) for persistence. `splits` may be null.
  void Submit(const GbdtModel& model, uint32_t trees_done,
              const CandidateSplits* splits);

  /// Blocks until every snapshot submitted so far is committed (visible via
  /// Latest() and, when a dir is set, durable on disk). No-op in sync mode.
  void Flush();

  /// Newest fully committed checkpoint, or nullopt if none yet.
  std::optional<TrainCheckpoint> Latest() const;

  /// First file-IO error encountered, OK otherwise. Write errors do not
  /// stop the writer; the in-memory Latest() keeps updating.
  Status write_status() const;

  const Options& options() const { return options_; }

 private:
  void WriterLoop();
  /// Serializes and commits one snapshot (chain file + manifest + alias +
  /// GC), then publishes it as Latest(). Runs inline (sync) or on the
  /// background thread (async).
  void CommitSnapshot(TrainCheckpoint snapshot);
  void RecordError(Status status);

  const Options options_;
  const Metrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<TrainCheckpoint> pending_;
  bool writing_ = false;
  bool stop_ = false;
  std::optional<TrainCheckpoint> latest_;
  Status write_status_;

  /// Next chain-file index and the live manifest (writer-thread-owned once
  /// the background thread starts; inline-owned in sync mode).
  uint32_t next_index_ = 0;
  CheckpointManifest manifest_;

  std::thread worker_;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_CHECKPOINT_H_
