#ifndef VERO_QUADRANTS_CHECKPOINT_H_
#define VERO_QUADRANTS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tree.h"
#include "sketch/candidate_splits.h"

namespace vero {

/// Training state captured after a completed boosting round, sufficient to
/// resume on a (possibly smaller) cluster without redoing finished work:
/// the model prefix plus the candidate-split table the forest was binned
/// against. Margins are not stored — they are recomputed from the model,
/// which keeps checkpoints small (trees, not N x dims doubles).
///
/// Wire format (same framing discipline as model_io): magic "VCKP",
/// version, payload, CRC-32 trailer over everything before the trailer.
struct TrainCheckpoint {
  uint32_t trees_done = 0;
  GbdtModel model;
  /// Candidate-split table used to bin the forest so far. Reusing it on
  /// recovery skips the sketch pipeline (QD1/QD2) or transform steps 1-2
  /// (QD3/QD4) and keeps recovered trees consistent with the prefix.
  bool has_splits = false;
  CandidateSplits splits;
};

/// Serializes `checkpoint` into a framed, CRC-protected byte buffer.
std::vector<uint8_t> SerializeCheckpoint(const TrainCheckpoint& checkpoint);

/// Parses a buffer produced by SerializeCheckpoint. Returns kCorruption for
/// bad magic/version/CRC/framing, never crashes on malformed input.
Status DeserializeCheckpoint(const std::vector<uint8_t>& data,
                             TrainCheckpoint* out);

/// File convenience wrappers.
Status SaveCheckpoint(const TrainCheckpoint& checkpoint,
                      const std::string& path);
StatusOr<TrainCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace vero

#endif  // VERO_QUADRANTS_CHECKPOINT_H_
