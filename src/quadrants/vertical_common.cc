#include "quadrants/vertical_common.h"

#include "common/logging.h"
#include "common/serialize.h"

namespace vero {

VerticalTrainerBase::VerticalTrainerBase(WorkerContext& ctx,
                                         const DistTrainOptions& options,
                                         Task task, uint32_t num_classes,
                                         const VerticalShard& shard)
    : DistTrainerBase(ctx, options, task, num_classes), shard_(shard) {
  num_global_instances_ = shard.num_instances;
  labels_ = shard.labels;
  margins_.assign(static_cast<size_t>(shard.num_instances) * dims_, 0.0);
  grads_ = GradientBuffer(shard.num_instances, dims_);
  local_id_of_.assign(shard.num_features, kInvalidFeature);
  for (size_t i = 0; i < shard.owned_features.size(); ++i) {
    local_id_of_[shard.owned_features[i]] = static_cast<uint32_t>(i);
  }
}

void VerticalTrainerBase::InitTreeIndexes() {
  partition_.Init(shard_.num_instances, options_.params.num_layers);
}

GradStats VerticalTrainerBase::ComputeGradients() {
  // Every worker recomputes gradients for all instances (replicated work,
  // zero communication — the vertical trade-off of §2.2.1).
  ComputeGradientsParallel(*loss_, labels_, margins_, shard_.num_instances,
                           options_.params.num_threads, &grads_);
  return grads_.Total();
}

std::vector<SplitCandidate> VerticalTrainerBase::LocalBestSplits(
    const std::vector<NodeId>& frontier) {
  std::vector<SplitCandidate> local(frontier.size());
  for (size_t i = 0; i < frontier.size(); ++i) {
    const Histogram* hist = pool_.Get(frontier[i]);
    VERO_CHECK(hist != nullptr);
    local[i] = finder_.FindBest(*hist, node_stats_[frontier[i]],
                                shard_.owned_features, shard_.splits);
  }
  return local;
}

std::vector<SplitCandidate> VerticalTrainerBase::FindLayerSplits(
    const std::vector<NodeId>& frontier) {
  const std::vector<SplitCandidate> local = LocalBestSplits(frontier);
  std::vector<SplitCandidate> best;
  if (mitigation_.enabled()) {
    // Mitigated path for both vertical flows: the master-coordinated
    // exchange has no useful bounded form (a master stalled on a straggler's
    // gather IS the bottleneck mitigation removes), so it degrades to the
    // symmetric all-gather. A deferred rank's candidates are skipped
    // identically on every rank; since dropped candidates never win, the
    // winning split's feature owner is always a live participant of the
    // placement broadcast that follows.
    std::vector<std::vector<uint8_t>> all;
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx_.AllGatherBounded(SerializeSplits(local), &all,
                                       mitigation_, &outcome));
    for (int r = 0; r < ctx_.world_size(); ++r) {
      if (!outcome.contributed[r]) continue;
      MergeBestSplits(DeserializeSplits(all[r]), &best);
    }
    return best;
  }
  if (MasterCoordinatesSplits()) {
    // Vero: master gathers local bests, resolves, broadcasts the winners.
    const std::vector<uint8_t> mine = SerializeSplits(local);
    std::vector<std::vector<uint8_t>> gathered;
    VERO_COMM_OK(ctx_.Gather(mine, /*root=*/0, &gathered));
    if (auditor_.enabled()) {
      // Pairwise evidence for the asymmetric gather: every rank attests
      // what it sent to the master; only the master has receive-side
      // evidence (all other pairs carry the skip sentinel).
      const int w = ctx_.world_size();
      std::vector<uint64_t> sent_digest(w, kAuditSkip);
      std::vector<uint64_t> recv_digest(w, kAuditSkip);
      sent_digest[0] = AuditDigestBytes(mine.data(), mine.size());
      if (ctx_.rank() == 0) {
        for (int r = 0; r < w; ++r) {
          recv_digest[r] =
              AuditDigestBytes(gathered[r].data(), gathered[r].size());
        }
      }
      auditor_.PushPairwise("vertical-gather", sent_digest, recv_digest,
                            /*exact=*/true);
    }
    std::vector<uint8_t> decision;
    if (ctx_.rank() == 0) {
      for (const auto& buf : gathered) {
        MergeBestSplits(DeserializeSplits(buf), &best);
      }
      decision = SerializeSplits(best);
    }
    VERO_COMM_OK(ctx_.Broadcast(&decision, /*root=*/0));
    best = DeserializeSplits(decision);
  } else {
    // Yggdrasil: all workers exchange local bests and resolve locally.
    std::vector<std::vector<uint8_t>> all;
    VERO_COMM_OK(ctx_.AllGather(SerializeSplits(local), &all));
    for (const auto& buf : all) {
      MergeBestSplits(DeserializeSplits(buf), &best);
    }
  }
  return best;
}

void VerticalTrainerBase::ApplyLayerSplits(
    const std::vector<NodeId>& nodes,
    const std::vector<SplitCandidate>& splits,
    std::vector<uint32_t>* child_counts) {
  const int w = ctx_.world_size();
  // The feature values of a split live on exactly one worker; it computes
  // the placement bitmap and broadcasts it (bit j = j-th instance in the
  // node's canonical order goes left). Broadcasts are batched per owner.
  std::vector<int> owner_of(nodes.size());
  std::vector<std::vector<uint8_t>> payload_by_owner(w);
  for (size_t i = 0; i < nodes.size(); ++i) {
    owner_of[i] = shard_.feature_owner[splits[i].feature];
  }
  for (int owner = 0; owner < w; ++owner) {
    bool any = false;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (owner_of[i] == owner) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    std::vector<uint8_t> payload;
    if (ctx_.rank() == owner) {
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (owner_of[i] != owner) continue;
        const uint32_t local_f = local_id_of_[splits[i].feature];
        VERO_CHECK_NE(local_f, kInvalidFeature);
        auto instances = partition_.Instances(nodes[i]);
        Bitmap go_left(instances.size());
        for (size_t j = 0; j < instances.size(); ++j) {
          go_left.Assign(j, PlaceInstance(instances[j], local_f, splits[i]));
        }
        go_left.SerializeTo(&payload);
      }
    }
    VERO_COMM_OK(ctx_.Broadcast(&payload, owner));
    payload_by_owner[owner] = std::move(payload);
  }

  // Apply the bitmaps in node order (every worker decodes the same bytes).
  std::vector<size_t> cursor(w, 0);
  child_counts->clear();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int owner = owner_of[i];
    const std::vector<uint8_t>& payload = payload_by_owner[owner];
    const size_t count = partition_.Count(nodes[i]);
    Bitmap go_left;
    VERO_CHECK(Bitmap::Deserialize(payload.data() + cursor[owner],
                                   payload.size() - cursor[owner], count,
                                   &go_left));
    cursor[owner] += go_left.SerializedBytes();
    partition_.Split(nodes[i], go_left);
    OnNodeSplit(nodes[i]);
    child_counts->push_back(partition_.Count(LeftChild(nodes[i])));
    child_counts->push_back(partition_.Count(RightChild(nodes[i])));
  }
}

void VerticalTrainerBase::UpdateMargins(const Tree& tree) {
  const double lr = options_.params.learning_rate;
  for (NodeId node = 0; node < static_cast<NodeId>(tree.max_nodes());
       ++node) {
    if (!partition_.Has(node)) continue;
    const std::vector<float>& w = tree.node(node).leaf_values;
    for (InstanceId i : partition_.Instances(node)) {
      for (uint32_t k = 0; k < dims_; ++k) {
        margins_[static_cast<size_t>(i) * dims_ + k] += lr * w[k];
      }
    }
  }
}

}  // namespace vero
