#ifndef VERO_QUADRANTS_FEATURE_PARALLEL_H_
#define VERO_QUADRANTS_FEATURE_PARALLEL_H_

#include <vector>

#include "core/binned.h"
#include "core/node_indexer.h"
#include "quadrants/dist_common.h"

namespace vero {

/// Feature-parallel LightGBM (Appendix D): the dataset is NOT partitioned —
/// every worker loads a full copy. Histogram construction and split finding
/// are divided by feature subset (like vertical partitioning), but node
/// splitting is local on every worker (like horizontal partitioning), so
/// the only communication is the per-layer exchange of local best splits.
/// The cost is W copies of the dataset in memory, which is why the paper
/// rules it out for large-scale workloads.
class FeatureParallelTrainer : public DistTrainerBase {
 public:
  /// `full` is the complete dataset (identical on every worker).
  FeatureParallelTrainer(WorkerContext& ctx, const DistTrainOptions& options,
                         const Dataset& full, const CandidateSplits& splits);

  uint64_t DataBytes() const override;

 protected:
  bool OwnsAllRows() const override { return true; }
  uint32_t HistFeatureCount() const override {
    return static_cast<uint32_t>(owned_features_.size());
  }
  const std::vector<FeatureId>& HistGlobalIds() const override {
    return owned_features_;
  }
  void InitTreeIndexes() override;
  GradStats ComputeGradients() override;
  void BuildLayerHistograms(const std::vector<BuildTask>& tasks) override;
  std::vector<SplitCandidate> FindLayerSplits(
      const std::vector<NodeId>& frontier) override;
  void ApplyLayerSplits(const std::vector<NodeId>& nodes,
                        const std::vector<SplitCandidate>& splits,
                        std::vector<uint32_t>* child_counts) override;
  void UpdateMargins(const Tree& tree) override;

 private:
  const CandidateSplits& splits_;
  BinnedRowStore store_;        ///< Full dataset, global feature ids.
  RowPartition partition_;
  /// This worker's feature slice [begin, end) as global ids.
  std::vector<FeatureId> owned_features_;
  uint32_t feature_begin_ = 0;
  uint32_t num_rows_ = 0;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_FEATURE_PARALLEL_H_
