#ifndef VERO_QUADRANTS_QD2_TRAINER_H_
#define VERO_QUADRANTS_QD2_TRAINER_H_

#include <vector>

#include "core/binned.h"
#include "core/node_indexer.h"
#include "quadrants/dist_common.h"

namespace vero {

/// QD2: horizontal partitioning + row-store (the LightGBM / DimBoost
/// design). Each worker holds a row shard binned over the full feature
/// space, maintains a node-to-instance index with histogram subtraction,
/// aggregates histograms with a feature-sliced reduce-scatter, finds splits
/// on its feature slice, and exchanges per-node local bests.
class Qd2Trainer : public DistTrainerBase {
 public:
  /// `shard` is this worker's contiguous row range (global feature space);
  /// `splits` must be the shared distributed candidate-split table.
  Qd2Trainer(WorkerContext& ctx, const DistTrainOptions& options,
             const Dataset& shard, const CandidateSplits& splits,
             uint32_t num_global_instances);

  uint64_t DataBytes() const override;

 protected:
  bool OwnsAllRows() const override { return false; }
  uint32_t HistFeatureCount() const override;
  const std::vector<FeatureId>& HistGlobalIds() const override {
    return all_features_;
  }
  void InitTreeIndexes() override;
  GradStats ComputeGradients() override;
  void BuildLayerHistograms(const std::vector<BuildTask>& tasks) override;
  std::vector<SplitCandidate> FindLayerSplits(
      const std::vector<NodeId>& frontier) override;
  void ApplyLayerSplits(const std::vector<NodeId>& nodes,
                        const std::vector<SplitCandidate>& splits,
                        std::vector<uint32_t>* child_counts) override;
  void UpdateMargins(const Tree& tree) override;

 private:

  const CandidateSplits& splits_;
  BinnedRowStore store_;
  RowPartition partition_;
  std::vector<FeatureId> all_features_;
  uint32_t num_local_rows_ = 0;
};

}  // namespace vero

#endif  // VERO_QUADRANTS_QD2_TRAINER_H_
