#include "quadrants/feature_parallel.h"

#include <numeric>

#include "common/bitmap.h"
#include "common/logging.h"

namespace vero {

FeatureParallelTrainer::FeatureParallelTrainer(WorkerContext& ctx,
                                               const DistTrainOptions& options,
                                               const Dataset& full,
                                               const CandidateSplits& splits)
    : DistTrainerBase(ctx, options, full.task(), full.num_classes()),
      splits_(splits),
      store_(BinnedRowStore::FromCsr(full.matrix(), splits)),
      num_rows_(full.num_instances()) {
  num_global_instances_ = num_rows_;
  labels_ = full.labels();
  margins_.assign(static_cast<size_t>(num_rows_) * dims_, 0.0);
  grads_ = GradientBuffer(num_rows_, dims_);
  const uint32_t d = full.num_features();
  feature_begin_ =
      static_cast<uint32_t>(ctx.SliceBegin(d, ctx.rank()));
  const uint32_t feature_end =
      static_cast<uint32_t>(ctx.SliceEnd(d, ctx.rank()));
  owned_features_.resize(feature_end - feature_begin_);
  std::iota(owned_features_.begin(), owned_features_.end(), feature_begin_);
}

uint64_t FeatureParallelTrainer::DataBytes() const {
  return store_.MemoryBytes() + labels_.capacity() * sizeof(float);
}

void FeatureParallelTrainer::InitTreeIndexes() {
  partition_.Init(num_rows_, options_.params.num_layers);
}

GradStats FeatureParallelTrainer::ComputeGradients() {
  ComputeGradientsParallel(*loss_, labels_, margins_, num_rows_,
                           options_.params.num_threads, &grads_);
  return grads_.Total();
}

void FeatureParallelTrainer::BuildLayerHistograms(
    const std::vector<BuildTask>& tasks) {
  // Row scans over the full copy, restricted to the owned feature slice
  // (feature-parallel histogram division); the builder maps global feature
  // f to histogram column f - feature_begin_.
  BuildRowLayer(store_, partition_, tasks, feature_begin_,
                feature_begin_ + static_cast<uint32_t>(owned_features_.size()),
                store_.num_features());
}

std::vector<SplitCandidate> FeatureParallelTrainer::FindLayerSplits(
    const std::vector<NodeId>& frontier) {
  std::vector<SplitCandidate> local(frontier.size());
  for (size_t i = 0; i < frontier.size(); ++i) {
    const Histogram* hist = pool_.Get(frontier[i]);
    local[i] = finder_.FindBest(*hist, node_stats_[frontier[i]],
                                owned_features_, splits_);
  }
  std::vector<std::vector<uint8_t>> all;
  MitigationOutcome outcome;
  VERO_COMM_OK(ctx_.AllGatherBounded(SerializeSplits(local), &all, mitigation_,
                                     &outcome));
  std::vector<SplitCandidate> best;
  for (int r = 0; r < ctx_.world_size(); ++r) {
    if (!outcome.contributed[r]) continue;
    MergeBestSplits(DeserializeSplits(all[r]), &best);
  }
  return best;
}

void FeatureParallelTrainer::ApplyLayerSplits(
    const std::vector<NodeId>& nodes,
    const std::vector<SplitCandidate>& splits,
    std::vector<uint32_t>* child_counts) {
  // Every worker holds the full dataset: placement is local, no broadcast.
  child_counts->clear();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SplitCandidate& s = splits[i];
    auto instances = partition_.Instances(nodes[i]);
    Bitmap go_left(instances.size());
    store_.FillGoLeft(instances, s.feature, s.split_bin, s.default_left,
                      &go_left);
    partition_.Split(nodes[i], go_left);
    child_counts->push_back(partition_.Count(LeftChild(nodes[i])));
    child_counts->push_back(partition_.Count(RightChild(nodes[i])));
  }
}

void FeatureParallelTrainer::UpdateMargins(const Tree& tree) {
  const double lr = options_.params.learning_rate;
  for (NodeId node = 0; node < static_cast<NodeId>(tree.max_nodes());
       ++node) {
    if (!partition_.Has(node)) continue;
    const std::vector<float>& w = tree.node(node).leaf_values;
    for (InstanceId i : partition_.Instances(node)) {
      for (uint32_t k = 0; k < dims_; ++k) {
        margins_[static_cast<size_t>(i) * dims_ + k] += lr * w[k];
      }
    }
  }
}

}  // namespace vero
